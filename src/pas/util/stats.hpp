// Descriptive statistics and error metrics used throughout the
// experiment harnesses (relative prediction error, summaries of error
// matrices, linear fits for trend checks).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pas::util {

/// Summary of a sample.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double median(std::vector<double> xs);       ///< by value: sorts a copy

/// |measured - predicted| / |measured|; 0 when both are 0.
double relative_error(double measured, double predicted);

/// Signed (predicted - measured) / measured.
double signed_relative_error(double measured, double predicted);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient; 0 if either side is constant.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace pas::util
