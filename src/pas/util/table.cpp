#include "pas/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <ostream>

#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Accept trailing unit suffixes like "%", " s", " us".
  return end != s.c_str();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::size_t TextTable::num_cols() const {
  std::size_t n = header_.size();
  for (const auto& r : rows_) n = std::max(n, r.size());
  return n;
}

std::string TextTable::to_string() const {
  const std::size_t cols = num_cols();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < cols; ++c) {
      out += '+';
      out.append(width[c] + 2, '-');
    }
    out += "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      out += "| ";
      out += looks_numeric(cell) ? pad_left(cell, width[c])
                                 : pad_right(cell, width[c]);
      out += ' ';
    }
    out += "|\n";
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

obs::WriteResult TextTable::write_csv(const std::string& path) const {
  obs::WriteResult r = obs::write_text_file(path, to_csv());
  if (!r.ok()) log_warn("write_csv: " + r.to_string());
  return r;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace pas::util
