#include "pas/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pas::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(),
                                xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double relative_error(double measured, double predicted) {
  if (measured == 0.0) return predicted == 0.0 ? 0.0 : HUGE_VAL;
  return std::fabs(measured - predicted) / std::fabs(measured);
}

double signed_relative_error(double measured, double predicted) {
  if (measured == 0.0) return predicted == 0.0 ? 0.0 : HUGE_VAL;
  return (predicted - measured) / measured;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return f;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace pas::util
