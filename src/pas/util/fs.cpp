#include "pas/util/fs.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

namespace pas::util {
namespace {

// Simulated-ENOSPC injection (torture harness). -1 = off; otherwise
// the number of durable writes still allowed to succeed.
std::atomic<long>& write_fault_budget() {
  static std::atomic<long> budget{[] {
    const char* v = std::getenv("PASIM_INJECT_WRITE_FAULT_AFTER");
    if (v == nullptr || *v == '\0') return -1L;
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    return (end != v && *end == '\0' && n >= 0) ? n : -1L;
  }()};
  return budget;
}

/// 0, or the errno this durable write must fail with.
int take_injected_fault() {
  std::atomic<long>& budget = write_fault_budget();
  long have = budget.load(std::memory_order_relaxed);
  while (have >= 0) {
    if (have == 0) return ENOSPC;
    if (budget.compare_exchange_weak(have, have - 1,
                                     std::memory_order_relaxed))
      return 0;
  }
  return 0;
}

int write_all(int fd, std::string_view content) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    off += static_cast<std::size_t>(n);
  }
  return 0;
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(s, 14695981039346656037ULL);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

void set_write_fault_after(long n) {
  write_fault_budget().store(n < 0 ? -1 : n, std::memory_order_relaxed);
}

void fsync_parent_dir(const std::string& path) {
  struct stat st {};
  const std::string dir =
      (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) ? path
                                                              : dir_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);  // best-effort: a failure here cannot be acted on
  ::close(fd);
}

int atomic_write_file(const std::string& path, std::string_view content) {
  if (const int injected = take_injected_fault()) return injected;
  // Per-process temp name: concurrent processes publishing the same
  // path each write their own temp file; the renames serialize and the
  // last one wins with complete bytes either way.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno != 0 ? errno : EIO;
  int err = write_all(fd, content);
  if (err == 0 && ::fsync(fd) != 0) err = errno != 0 ? errno : EIO;
  if (::close(fd) != 0 && err == 0) err = errno != 0 ? errno : EIO;
  if (err == 0 && ::rename(tmp.c_str(), path.c_str()) != 0)
    err = errno != 0 ? errno : EIO;
  if (err != 0) {
    ::unlink(tmp.c_str());
    return err;
  }
  fsync_parent_dir(path);
  return 0;
}

int append_durable(const std::string& path, std::string_view content) {
  if (const int injected = take_injected_fault()) return injected;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno != 0 ? errno : EIO;
  // One write() call: O_APPEND makes the offset update atomic, so
  // concurrent appenders (isolated sweep workers) never interleave
  // bytes inside one journal record.
  int err = write_all(fd, content);
  if (err == 0 && ::fsync(fd) != 0) err = errno != 0 ? errno : EIO;
  if (::close(fd) != 0 && err == 0) err = errno != 0 ? errno : EIO;
  return err;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buf.str();
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FileLock::~FileLock() { release(); }

void FileLock::release() {
  if (fd_ < 0) return;
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

FileLock FileLock::acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return FileLock();
  while (::flock(fd, LOCK_EX) != 0) {
    if (errno != EINTR) {
      ::close(fd);
      return FileLock();
    }
  }
  return FileLock(fd);
}

std::optional<FileLock> FileLock::try_acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return std::nullopt;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return FileLock(fd);
}

}  // namespace pas::util
