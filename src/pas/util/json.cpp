#include "pas/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::util {
namespace {

/// Parser recursion cap: hostile "[[[[..." input must fail cleanly,
/// not exhaust the stack.
constexpr int kMaxDepth = 100;

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument(
      strf("json: byte %zu: %s", pos, what.c_str()));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      fail(pos_, "trailing characters after the JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(pos_, strf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail(pos_, "invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail(pos_, "invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return Json();
        fail(pos_, "invalid literal (expected 'null')");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected a quoted object key");
      const std::size_t key_pos = pos_;
      std::string key = parse_string();
      if (obj.find(key) != nullptr)
        fail(key_pos, strf("duplicate object key \"%s\"", key.c_str()));
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail(pos_, "expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail(pos_, "expected ',' or ']' in array");
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail(pos_ - 1, "invalid hex digit in \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(pos_ - 1, "unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail(pos_, "high surrogate not followed by \\u escape");
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail(pos_ - 4, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_ - 4, "lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, strf("invalid escape '\\%c'", e));
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: a digit is mandatory; leading zeros are banned.
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      fail(start, "invalid value");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail(pos_, "expected digits after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail(pos_, "expected digits in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), nullptr);
    // "1e999" parses as infinity — unrepresentable, so invalid input.
    if (!std::isfinite(v)) fail(start, "number out of binary64 range");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strf("\\u%04x", static_cast<unsigned char>(c));
        else
          out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string json_number_string(double v) {
  if (!std::isfinite(v))
    throw std::invalid_argument("json: NaN/Inf is not representable");
  // -0.0 canonicalizes to 0: the two compare equal and a spec that
  // distinguishes them is asking for cache-key trouble.
  if (v == 0.0) return "0";
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) <= kMaxExactInt)
    return strf("%.0f", v);
  return strf("%.17g", v);
}

bool Json::as_bool() const {
  if (type_ != Type::kBool)
    throw std::invalid_argument("json: value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber)
    throw std::invalid_argument("json: value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString)
    throw std::invalid_argument("json: value is not a string");
  return str_;
}

Json& Json::push_back(Json v) {
  if (type_ != Type::kArray)
    throw std::invalid_argument("json: push_back on a non-array");
  arr_.push_back(std::move(v));
  return arr_.back();
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray)
    throw std::invalid_argument("json: items() on a non-array");
  return arr_;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject)
    throw std::invalid_argument("json: set() on a non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject)
    throw std::invalid_argument("json: find() on a non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject)
    throw std::invalid_argument("json: members() on a non-object");
  return obj_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_number_string(num_);
      return;
    case Type::kString:
      append_escaped(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ",";
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ",";
        newline_pad(depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser p(text);
  return p.parse_document();
}

}  // namespace pas::util
