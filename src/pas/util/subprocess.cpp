#include "pas/util/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

namespace pas::util {
namespace {

void redirect(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) _exit(126);
  ::dup2(fd, target_fd);
  ::close(fd);
}

void apply_options_in_child(const Subprocess::Options& opts) {
  redirect(opts.stdout_path, STDOUT_FILENO);
  redirect(opts.stderr_path, STDERR_FILENO);
  for (const std::string& kv : opts.env) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
  }
}

}  // namespace

std::string Subprocess::Result::describe() const {
  if (!started) return "failed to start: " + error;
  std::ostringstream out;
  if (timed_out) {
    out << "timed out (killed by supervisor)";
    return out.str();
  }
  if (signaled) {
    out << "killed by signal " << term_signal;
    const char* name = ::strsignal(term_signal);
    if (name != nullptr) out << " (" << name;
    if (term_signal == SIGKILL) out << (name ? "; possibly the OOM killer" : "");
    if (name != nullptr) out << ")";
    return out.str();
  }
  if (exited) {
    out << "exited " << exit_code;
    return out.str();
  }
  return "still running";
}

Subprocess::Handle::Handle(Handle&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_),
      result_(std::move(other.result_)) {
  other.pid_ = -1;
  other.reaped_ = false;
}

Subprocess::Handle& Subprocess::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    if (running()) {
      kill(SIGKILL);
      wait();
    }
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    result_ = std::move(other.result_);
    other.pid_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

Subprocess::Handle::~Handle() {
  if (running()) {
    kill(SIGKILL);
    wait();
  }
}

bool Subprocess::Handle::poll() {
  if (reaped_ || pid_ <= 0) return reaped_;
  int status = 0;
  const pid_t got = ::waitpid(pid_, &status, WNOHANG);
  if (got == 0) return false;
  reaped_ = true;
  if (got < 0) {
    // ECHILD etc.: we cannot classify the exit; report it as a crash so
    // the supervisor retries rather than trusting a phantom success.
    result_.signaled = true;
    result_.term_signal = SIGKILL;
    return true;
  }
  if (WIFEXITED(status)) {
    result_.exited = true;
    result_.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result_.signaled = true;
    result_.term_signal = WTERMSIG(status);
  }
  return true;
}

Subprocess::Result Subprocess::Handle::wait(double timeout_s) {
  if (reaped_ || pid_ <= 0) return result_;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!poll()) {
    if (timeout_s > 0.0 && std::chrono::steady_clock::now() >= deadline) {
      kill(SIGKILL);
      while (!poll()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      result_.timed_out = true;
      return result_;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return result_;
}

void Subprocess::Handle::kill(int sig) const {
  if (pid_ > 0 && !reaped_) ::kill(pid_, sig);
}

Subprocess::Handle Subprocess::spawn(std::function<int()> body,
                                     const Options& opts) {
  Handle h;
  const pid_t pid = ::fork();
  if (pid < 0) {
    h.reaped_ = true;
    h.result_.error = std::strerror(errno);
    return h;
  }
  if (pid == 0) {
    apply_options_in_child(opts);
    int code = 125;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "subprocess body threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "subprocess body threw a non-std exception\n");
    }
    // _exit, not exit: the child shares the parent's atexit handlers and
    // stdio buffers; running them here would double-flush or deadlock.
    std::fflush(nullptr);
    _exit(code);
  }
  h.pid_ = pid;
  h.result_.started = true;
  return h;
}

Subprocess::Handle Subprocess::spawn(const std::vector<std::string>& argv,
                                     const Options& opts) {
  if (argv.empty()) {
    Handle h;
    h.reaped_ = true;
    h.result_.error = "empty argv";
    return h;
  }
  Handle h;
  const pid_t pid = ::fork();
  if (pid < 0) {
    h.reaped_ = true;
    h.result_.error = std::strerror(errno);
    return h;
  }
  if (pid == 0) {
    apply_options_in_child(opts);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    std::fprintf(stderr, "execvp %s: %s\n", cargv[0], std::strerror(errno));
    _exit(127);
  }
  h.pid_ = pid;
  h.result_.started = true;
  return h;
}

Subprocess::Result Subprocess::call(std::function<int()> body,
                                    double timeout_s, const Options& opts) {
  Handle h = spawn(std::move(body), opts);
  return h.wait(timeout_s);
}

Subprocess::Result Subprocess::run(const std::vector<std::string>& argv,
                                   double timeout_s, const Options& opts) {
  Handle h = spawn(argv, opts);
  return h.wait(timeout_s);
}

}  // namespace pas::util
