// Crash-safe filesystem primitives shared by every durable writer in
// the tree: the artifact writers (obs::write_text_file), the run/ledger
// cache and the sweep journal.
//
//   * atomic_write_file — temp file + fsync + rename + directory fsync,
//     so a reader can never observe a truncated or interleaved file and
//     a crash at any instruction leaves either the old bytes or the new
//     bytes, never a mix (DESIGN.md §12).
//   * append_durable — O_APPEND single-write() append + fsync, the
//     write-ahead discipline of the sweep journal.
//   * FileLock — advisory flock() on a lock file. flock locks die with
//     their holder (the kernel releases them on process exit, however
//     violent), so a crashed writer can never wedge the cache: stale-
//     lock recovery is inherent, no PID files or timeouts needed.
//   * fnv1a — the content checksum used by cache entries and journal
//     records (and their file names).
//
// Torture-harness hook: set_write_fault_after(n) (or
// $PASIM_INJECT_WRITE_FAULT_AFTER) makes every durable write after the
// n-th fail with a simulated ENOSPC, so tests can prove that disk
// pressure degrades writers gracefully instead of corrupting state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pas::util {

/// FNV-1a 64-bit over `s`. Stable across platforms; spelled out in
/// scripts/check_journal_schema.py, so do not change the constants.
std::uint64_t fnv1a(std::string_view s);

/// FNV-1a continued from an arbitrary starting hash. Folding a second
/// string into an existing digest gives the combined hash the
/// rendezvous assignment in pas::serve uses to score (column, broker)
/// pairs without concatenating strings on the hot path.
std::uint64_t fnv1a(std::string_view s, std::uint64_t seed);

/// Writes `content` to `path` atomically and durably: a private temp
/// file in the same directory, fsync, rename over `path`, fsync of the
/// directory. Returns 0 or the errno of the failing step (the temp
/// file is cleaned up on failure). Never throws.
int atomic_write_file(const std::string& path, std::string_view content);

/// Appends `content` to `path` (creating it) with one write() call and
/// an fsync before returning — the journal's write-ahead guarantee.
/// Returns 0 or an errno. Never throws.
int append_durable(const std::string& path, std::string_view content);

/// Whole-file read; nullopt on any error (missing file included).
std::optional<std::string> read_file(const std::string& path);

/// Best-effort fsync of the directory containing `path` (or of `path`
/// itself if it is a directory). Quarantine renames use this so the
/// `.bad` name survives a crash (ISSUE 7 satellite).
void fsync_parent_dir(const std::string& path);

/// After `n` more successful durable writes, every later one fails
/// with a simulated ENOSPC. n < 0 disables injection (the default).
/// Also configured by $PASIM_INJECT_WRITE_FAULT_AFTER at first use.
void set_write_fault_after(long n);

/// Advisory whole-file lock (flock). Acquire creates the lock file if
/// needed. The lock is released by the destructor — or by the kernel
/// the instant the holding process dies, which is the stale-lock
/// recovery story: no lock can outlive its owner.
class FileLock {
 public:
  FileLock() = default;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();

  /// Blocks until the lock is held. Returns a non-held lock only when
  /// the lock file cannot be created at all (read-only dir, ENOSPC).
  static FileLock acquire(const std::string& path);

  /// Non-blocking; nullopt when another process (or fd) holds it.
  static std::optional<FileLock> try_acquire(const std::string& path);

  bool held() const { return fd_ >= 0; }
  void release();

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace pas::util
