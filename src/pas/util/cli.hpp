// Tiny command-line option parser for the example and bench binaries.
// Supports "--name value", "--name=value" and boolean "--flag".
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace pas::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Throws std::invalid_argument naming the first option that is not
  /// in `known` (a typo'd --flag must not be silently ignored). The
  /// message lists the accepted options.
  void require_known(std::initializer_list<const char*> known) const;
  void require_known(const std::vector<std::string>& known) const;

  /// require_known for main(): on an unknown option prints the error
  /// and the accepted options to stderr and exits with status 2. The
  /// vector overload composes with SweepSpec::cli_option_names().
  void check_usage(std::initializer_list<const char*> known) const;
  void check_usage(const std::vector<std::string>& known) const;

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --nodes 1,2,4,8,16.
  std::vector<long> get_int_list(const std::string& name,
                                 std::vector<long> fallback) const;

  /// Comma-separated list of strings; a flag repeated on the command
  /// line (--peer a:1 --peer b:2) accumulates into the same list.
  /// Empty when the option is absent; empty elements are dropped.
  std::vector<std::string> get_list(const std::string& name) const;

  /// Positional arguments (everything not consumed as an option).
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace pas::util
