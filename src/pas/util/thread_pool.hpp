// Fixed-capacity worker pool with a shared work queue and futures.
//
// Workers are spawned lazily (submitting never creates more than
// `max_threads` OS threads) and reused until destruction — the point is
// to amortize thread creation across many short tasks, e.g. the rank
// bodies of successive simulated runs (pas/mpi/runtime.cpp) or the grid
// points of a parallel sweep (pas/analysis/sweep_executor.cpp).
//
// Cooperating tasks that block on *each other* (the rank bodies of one
// simulated run rendezvous through mailboxes) must each hold a worker
// for the whole run; call ensure_workers(k) before submitting such a
// batch of k tasks. Independent tasks need no such call — any spare
// worker eventually drains the queue.
//
// Waiting on a future from *inside* a pool task is safe only when the
// pool is guaranteed to have a worker free for the nested task
// (ensure_workers again); otherwise prefer structuring the work as a
// flat task list.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pas::util {

class ThreadPool {
 public:
  /// `max_threads` < 1 is clamped to 1.
  explicit ThreadPool(int max_threads);

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int max_threads() const { return max_threads_; }

  /// Workers spawned so far (<= max_threads).
  int spawned() const;

  /// Pre-spawns workers until at least min(n, max_threads) exist. Call
  /// before submitting a batch of tasks that block on one another.
  void ensure_workers(int n);

  /// Enqueues `fn` and returns a future for its result. Exceptions
  /// thrown by `fn` surface at future.get().
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Pool size for "use the machine": hardware_concurrency, at least 1.
  static int default_jobs();

 private:
  void post(std::function<void()> task);
  void spawn_worker_locked();
  void worker_loop();

  const int max_threads_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int idle_ = 0;
  bool stop_ = false;
};

}  // namespace pas::util
