#include "pas/util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pas::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  // A repeated option accumulates comma-joined, so list-valued flags
  // (--peer host:port, once per peer) compose with get_list(); for
  // scalar getters the joined value simply fails to parse past the
  // first element, which repeated scalar flags never relied on.
  const auto put = [this](const std::string& name, const std::string& value) {
    auto [it, inserted] = options_.try_emplace(name, value);
    if (!inserted && !value.empty()) {
      if (!it->second.empty()) it->second += ',';
      it->second += value;
    }
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      put(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      put(arg, argv[++i]);
    } else {
      put(arg, "");
    }
  }
}

void Cli::require_known(std::initializer_list<const char*> known) const {
  require_known(std::vector<std::string>(known.begin(), known.end()));
}

void Cli::require_known(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : options_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string msg = "unknown option --" + name + "; accepted:";
    for (const std::string& k : known) msg += " --" + k;
    throw std::invalid_argument(msg);
  }
}

void Cli::check_usage(std::initializer_list<const char*> known) const {
  check_usage(std::vector<std::string>(known.begin(), known.end()));
}

void Cli::check_usage(const std::vector<std::string>& known) const {
  try {
    require_known(known);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(), e.what());
    std::exit(2);
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& name, long fallback) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1" ||
      it->second == "yes" || it->second == "on")
    return true;
  return false;
}

std::vector<std::string> Cli::get_list(const std::string& name) const {
  std::vector<std::string> out;
  auto it = options_.find(name);
  if (it == options_.end()) return out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::vector<long> Cli::get_int_list(const std::string& name,
                                    std::vector<long> fallback) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::vector<long> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtol(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace pas::util
