// util::Json — a minimal, strict, deterministic JSON value.
//
// The canonical SweepSpec documents (pas/analysis/sweep_spec.hpp) and
// the pasim_serve wire protocol (pas/serve/protocol.hpp) both need a
// JSON round-trip the repo controls end to end, so this is a small
// first-principles implementation rather than a dependency:
//
//   * parse() is strict RFC 8259: no comments, no trailing commas, no
//     unquoted keys, duplicate object keys rejected (a spec with two
//     "nodes" keys is a user error, not a last-one-wins surprise), a
//     nesting-depth limit instead of parser recursion crashing on
//     hostile input. Errors throw std::invalid_argument naming the
//     byte offset and what was expected.
//   * dump() is canonical: object keys keep insertion order, numbers
//     print as integers when they are integral (|x| <= 2^53) and as
//     shortest-17-significant-digit doubles otherwise, so
//     dump(parse(dump(v))) == dump(v) — the spec round-trip tests pin
//     this fixpoint byte for byte.
//
// Numbers are binary64 (like JavaScript); NaN/Inf are unrepresentable
// in JSON and dump() throws on them rather than emitting garbage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pas::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(unsigned long long i)
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; throw std::invalid_argument on a type
  /// mismatch (the spec validator turns these into field errors).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access. push_back() is only valid on arrays.
  Json& push_back(Json v);
  const std::vector<Json>& items() const;

  /// Object access, insertion-ordered. set() inserts or overwrites;
  /// find() returns null when the key is absent.
  Json& set(const std::string& key, Json v);
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Canonical serialization. `indent` > 0 pretty-prints with that
  /// many spaces per level; 0 emits the compact one-line form.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Throws std::invalid_argument with a byte offset.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Canonical number spelling shared by dump() and the wire protocol:
/// integral binary64 in [-2^53, 2^53] print without a decimal point,
/// everything else as %.17g (which round-trips binary64 exactly).
std::string json_number_string(double v);

}  // namespace pas::util
