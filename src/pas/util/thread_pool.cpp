#include "pas/util/thread_pool.hpp"

#include <algorithm>

namespace pas::util {

ThreadPool::ThreadPool(int max_threads)
    : max_threads_(std::max(1, max_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::spawned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::ensure_workers(int n) {
  const int want = std::min(n, max_threads_);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < want) spawn_worker_locked();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    // Spawn only when nobody is free to pick the task up; blocked-task
    // batches that need one worker per task use ensure_workers.
    if (idle_ == 0 && static_cast<int>(workers_.size()) < max_threads_)
      spawn_worker_locked();
  }
  cv_.notify_one();
}

void ThreadPool::spawn_worker_locked() {
  // Counted idle from birth: the new worker is committed to reaching
  // the wait loop, so posts racing with its startup must not conclude
  // "nobody is free" and spawn redundant threads.
  ++idle_;
  workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) {
        --idle_;
        return;
      }
      continue;
    }
    --idle_;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    ++idle_;
  }
}

int ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace pas::util
