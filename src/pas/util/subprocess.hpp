// util::Subprocess — fork/exec (or fork/call) children with wall-clock
// timeouts and faithful exit classification.
//
// The sweep supervisor (SweepExecutor --isolate, DESIGN.md §12) runs
// each sweep column in a child so that a segfault, an abort(), an OOM
// kill or a runaway loop costs one column, not the sweep. The parent
// needs to know exactly how a child died, so Result distinguishes:
//
//   * exited / exit_code — normal termination,
//   * signaled / term_signal — killed by a signal. SIGKILL a parent
//     did not send is the kernel OOM killer's signature,
//   * timed_out — the parent enforced the deadline with SIGKILL.
//
// spawn(fn) forks WITHOUT exec: the child runs `fn` in a copy of the
// address space and _exit()s with its return value (no atexit
// handlers, no stdio double-flush). Callers must fork from a thread
// that holds no locks shared with running threads — the --isolate
// supervisor dispatches all forks from the one coordinating thread.
#pragma once

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace pas::util {

class Subprocess {
 public:
  struct Result {
    bool started = false;   ///< fork (and exec, if any) succeeded
    bool exited = false;    ///< normal termination
    int exit_code = -1;     ///< valid when exited
    bool signaled = false;  ///< killed by a signal
    int term_signal = 0;    ///< valid when signaled
    bool timed_out = false; ///< parent killed it at the deadline
    std::string error;      ///< errno text of a spawn-level failure

    bool ok() const { return started && exited && exit_code == 0; }
    /// "exited 0", "killed by signal 9 (SIGKILL — possibly the OOM
    /// killer)", "timed out after 30.0s", ...
    std::string describe() const;
  };

  struct Options {
    /// stdout / stderr redirection targets; empty = inherit.
    std::string stdout_path;
    std::string stderr_path;
    /// Extra "NAME=VALUE" environment entries for the child.
    std::vector<std::string> env;
  };

  /// A live (or reaped) child. Move-only; destroying a still-running
  /// handle kills (SIGKILL) and reaps the child — a supervisor that
  /// unwinds never leaks orphans.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept;
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle();

    pid_t pid() const { return pid_; }
    bool valid() const { return pid_ > 0 || reaped_; }
    bool running() const { return pid_ > 0 && !reaped_; }

    /// Non-blocking reap attempt; true once the child has been reaped
    /// (result() is then final).
    bool poll();

    /// Blocks until exit, or until `timeout_s` (> 0) elapses — then
    /// SIGKILLs the child, reaps it and marks the result timed_out.
    Result wait(double timeout_s = 0.0);

    void kill(int sig) const;

    const Result& result() const { return result_; }

   private:
    friend class Subprocess;
    pid_t pid_ = -1;
    bool reaped_ = false;
    Result result_;
  };

  /// Forks a child that runs `body` and _exit()s with its return value
  /// (exceptions are reported on stderr and exit as 125).
  static Handle spawn(std::function<int()> body, const Options& opts = {});

  /// Forks and execs `argv` (argv[0] resolved via PATH).
  static Handle spawn(const std::vector<std::string>& argv,
                      const Options& opts = {});

  /// spawn(body) + wait(timeout_s).
  static Result call(std::function<int()> body, double timeout_s = 0.0,
                     const Options& opts = {});

  /// spawn(argv) + wait(timeout_s).
  static Result run(const std::vector<std::string>& argv,
                    double timeout_s = 0.0, const Options& opts = {});
};

}  // namespace pas::util
