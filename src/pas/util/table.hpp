// ASCII table rendering + CSV export used by the bench harnesses to
// print paper-style tables (Table 1, 3, 5, 6, 7) and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pas/obs/write_result.hpp"

namespace pas::util {

/// A rectangular text table with a header row. Rows may be ragged while
/// building; rendering pads to the widest row.
class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Replaces the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Convenience: append a row of already-formatted cells.
  template <typename... Cells>
  void add(Cells&&... cells) {
    add_row(std::vector<std::string>{std::string(std::forward<Cells>(cells))...});
  }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const;
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with column alignment (numbers right-aligned heuristically).
  std::string to_string() const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Writes to_csv() to `path`. Failures are also logged, but the
  /// caller owns the outcome — check `result.ok()`.
  obs::WriteResult write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace pas::util
