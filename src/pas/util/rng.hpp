// Deterministic PRNGs for workload generation.
//
// SplitMix64 for seeding, Xoshiro256** for streams. The NPB linear
// congruential generator lives in pas/npb/npb_rng.hpp because its exact
// constants are part of the benchmark definition.
#pragma once

#include <array>
#include <cstdint>

namespace pas::util {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, per-rank stream generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound > 0); slight modulo bias is
  /// acceptable for workload generation.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Stream position, for checkpoint capture/restore: a restored
  /// generator continues the exact draw sequence.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace pas::util
