// Minimal leveled logger. Thread-safe line-at-a-time output; level is a
// process-wide atomic so benches can silence the substrate.
#pragma once

#include <string>

namespace pas::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits "[level] message\n" to stderr if `level` >= the global level.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace pas::util
