// Small string-formatting helpers (libstdc++ 12 lacks <format>).
//
// All helpers return std::string and never throw on formatting itself;
// they are intended for tables, logs and error messages.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pas::util {

/// printf-style formatting into a std::string.
/// Example: strf("%.2f MHz", 600.0) -> "600.00 MHz".
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point with `digits` fractional digits.
std::string fixed(double v, int digits = 3);

/// Human-friendly engineering notation: 1.5e9 -> "1.50 G", 2e-6 -> "2.00 u".
std::string eng(double v, int digits = 2);

/// Percentage with `digits` fractional digits: 0.123 -> "12.3%".
std::string percent(double fraction, int digits = 1);

/// Seconds pretty-printer: 0.000153 -> "153.0 us".
std::string seconds(double s, int digits = 1);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Left/right padding to a given width (no truncation).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// True if `a` and `b` agree to within `rel_tol` relative tolerance,
/// using max(|a|,|b|) as the scale; exact for both zero.
bool approx_equal(double a, double b, double rel_tol = 1e-9);

}  // namespace pas::util
