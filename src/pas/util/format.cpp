#include "pas/util/format.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace pas::util {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args);
  return out;
}

std::string fixed(double v, int digits) { return strf("%.*f", digits, v); }

std::string eng(double v, int digits) {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {1e12, " T"}, {1e9, " G"}, {1e6, " M"}, {1e3, " k"},
      {1.0, " "},   {1e-3, " m"}, {1e-6, " u"}, {1e-9, " n"},
  };
  const double mag = std::fabs(v);
  if (mag == 0.0 || !std::isfinite(v)) return strf("%.*f ", digits, v);
  for (const Unit& u : kUnits) {
    if (mag >= u.scale) return strf("%.*f%s", digits, v / u.scale, u.suffix);
  }
  return strf("%.*f p", digits, v / 1e-12);
}

std::string percent(double fraction, int digits) {
  return strf("%.*f%%", digits, fraction * 100.0);
}

std::string seconds(double s, int digits) {
  const double mag = std::fabs(s);
  if (!std::isfinite(s)) return strf("%f s", s);
  if (mag >= 1.0) return strf("%.*f s", digits, s);
  if (mag >= 1e-3) return strf("%.*f ms", digits, s * 1e3);
  if (mag >= 1e-6) return strf("%.*f us", digits, s * 1e6);
  return strf("%.*f ns", digits, s * 1e9);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

bool approx_equal(double a, double b, double rel_tol) {
  if (a == b) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace pas::util
