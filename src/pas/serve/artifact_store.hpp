// ArtifactStore — the networked content-addressed tier of the serve
// fabric (DESIGN.md §15).
//
// RunCache keys are content hashes: they spell out every parameter
// that shapes a record, so a record fetched from any host is the
// record — location-independent, and verifiable byte-for-byte. The
// ArtifactStore exploits that to make a set of cooperating brokers
// share one logical cache:
//
//   * read-through — a key this broker has never resolved is asked of
//     a peer with `cas.get`; the reply payload is checksum-verified
//     (fnv1a over the canonical encoding, the same checksum the
//     on-disk entries carry) before it is trusted,
//   * write-through mirroring — every verified fetch is stored into
//     the local RunCache, so it lands on disk under the broker's own
//     `--cache-cap` LRU eviction and the next lookup is local,
//   * quarantine — a payload whose checksum does not match is written
//     to `<cache_dir>/cas_<sum>.bad` (picked up by the existing `.bad`
//     eviction sweep), counted in `cas.quarantined`, and treated as a
//     miss: corruption can cross the wire but never enter a cache,
//   * rendezvous ownership — owner_of() ranks self + every configured
//     peer by fnv1a(identity, fnv1a(basis)) and returns the winner, so
//     all brokers whose peer sets agree assign each (kernel, N,
//     comm-DVFS) column to the same host with no coordination,
//   * failure cooldown — a peer that fails a request is marked down
//     for a short window; fabric traffic degrades to local execution
//     instead of hammering a dead host (the broker re-runs reclaimed
//     columns under its own fail-soft supervisor).
//
// One persistent connection per peer, guarded by a per-link mutex
// (requests on a link are strictly request/response). recv timeouts
// bound every wait, and shutdown_links() unblocks parked threads on
// stop. All metrics references are resolved at construction — the
// broker scheduler forks, and nothing here may take the registry lock
// afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/obs/metrics.hpp"
#include "pas/serve/client.hpp"
#include "pas/serve/socket.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

class ArtifactStore {
 public:
  /// `self` is this broker's advertised identity (host:port, spelled
  /// exactly as the peers spell it in their --peer flags — rendezvous
  /// hashes the string); `peers` are the other brokers' identities.
  /// `cache` outlives the store. Throws std::invalid_argument on an
  /// address that is not host:port.
  ArtifactStore(analysis::RunCache* cache, std::string self,
                std::vector<std::string> peers);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  std::size_t peer_count() const { return links_.size(); }
  const std::string& peer_addr(std::size_t i) const;
  const std::string& self() const { return self_; }

  /// Rendezvous (highest-random-weight) owner of `basis` among self
  /// and every configured peer: -1 = this broker, otherwise the peer
  /// index. Purely combinatorial — liveness is the caller's problem
  /// (a dead owner's work falls back to local execution).
  int owner_of(const std::string& basis) const;

  /// False while the peer is inside its failure cooldown.
  bool peer_alive(int peer) const;

  /// cas.get of a RunRecord: verified, mirrored into the local cache,
  /// counted (cas.hit/cas.miss/cas.bytes). nullopt on miss, link
  /// failure, or a quarantined (checksum-mismatched) payload.
  std::optional<analysis::RunRecord> fetch_record(int peer,
                                                  const std::string& key);

  /// cas.get of a charged-work ledger, mirrored via store_ledger so
  /// the next column worker re-prices locally. True on a verified hit.
  bool fetch_ledger(int peer, const std::string& key);

  /// cas.put of a completed record to `peer` (work-stealing push-back).
  /// True when the peer acknowledged the import.
  bool push_record(int peer, const std::string& key,
                   const analysis::RunRecord& record);

  /// {"op":"steal"} against `peer`: the stolen column descriptor, or
  /// nullopt when the peer had nothing to give (or is down).
  std::optional<util::Json> steal_from(int peer);

  /// Forwards a document-only sweep to `peer` on a dedicated
  /// connection (the shared link stays strictly request/response) and
  /// blocks for the full reply, every read bounded by
  /// `recv_timeout_s`. The request is marked forwarded, so the peer
  /// executes locally instead of re-entering the fabric. False on any
  /// connect/protocol failure (the peer enters cooldown).
  bool forward_sweep(int peer, const analysis::SweepSpec& spec,
                     double recv_timeout_s, SweepReply* reply);

  /// Stop path: closes every link and unblocks threads parked in a
  /// peer recv. The store refuses to reconnect afterwards.
  void shutdown_links();

 private:
  struct Link {
    std::string addr;
    std::string host;
    int port = 0;
    std::mutex mutex;
    Fd fd;
    std::unique_ptr<LineReader> reader;
    /// Monotonic seconds until which the peer counts as down.
    double down_until = 0.0;
  };

  /// One request/response round trip on the peer's link, connecting
  /// lazily. nullopt (plus cooldown) on connect/send/recv/parse
  /// failure or when the peer is cooling down.
  std::optional<util::Json> request(int peer, const util::Json& body);
  void quarantine_payload(const std::string& payload);
  /// Starts the peer's failure cooldown and counts the failure.
  void mark_down(int peer, const char* what);

  analysis::RunCache* cache_;
  std::string self_;
  std::vector<std::unique_ptr<Link>> links_;
  std::atomic<bool> stopping_{false};
  /// In-flight forwarded sweeps, aborted by shutdown_links().
  std::mutex forwards_mutex_;
  std::vector<std::shared_ptr<Client>> forwards_;

  obs::Counter& cas_hits_;
  obs::Counter& cas_misses_;
  obs::Counter& cas_bytes_;
  obs::Counter& cas_quarantined_;
  obs::Counter& peer_failures_;
};

}  // namespace pas::serve
