// Minimal socket plumbing for pasim_serve: RAII fds, Unix-domain and
// localhost-TCP listeners/connections, and a buffered newline reader
// for the line protocol (pas/serve/protocol.hpp).
//
// Everything here is blocking I/O with poll()-based timeouts where a
// caller needs one (accept loops must notice a stop flag; clients wait
// for a server to come up). SIGPIPE is never raised: sends use
// MSG_NOSIGNAL, so a vanished peer is an error return, not a signal.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace pas::serve {

/// Thrown by the connect_* factories. Carries the failing connect(2)
/// errno so callers can tell a cold-start race (ECONNREFUSED — the
/// listener is not up yet; ECONNRESET — it dropped the backlog while
/// starting) from a permanent failure, and retry only the former.
class ConnectError : public std::runtime_error {
 public:
  ConnectError(const std::string& what, int err)
      : std::runtime_error(what), saved_errno(err) {}
  int saved_errno = 0;
};

/// Hard cap on one protocol line. A full-grid sweep response line
/// carries one encoded RunRecord (~1 KiB); 8 MiB is three orders of
/// magnitude of headroom and still refuses a garbage stream quickly.
constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd();

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();
  /// shutdown(SHUT_RDWR): unblocks a thread parked in recv() on this
  /// fd from another thread, without racing the close.
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

// All factory functions throw std::runtime_error with errno detail on
// failure.

/// Binds + listens on a Unix-domain socket, unlinking a stale socket
/// file first. Note the sun_path limit (~107 bytes): keep paths short.
Fd listen_unix(const std::string& path);

/// Binds + listens on 127.0.0.1:`port` (0 picks an ephemeral port);
/// the actually bound port is stored in *bound_port.
Fd listen_tcp(int port, int* bound_port);

// The connect factories throw ConnectError (errno preserved) when the
// connect(2) itself fails.
Fd connect_unix(const std::string& path);
Fd connect_tcp(const std::string& host, int port);

/// SO_RCVTIMEO: a recv() parked on this fd returns after `timeout_s`
/// instead of blocking forever. Peer links use this so a hung broker
/// costs a bounded wait, never a wedged scheduler. <= 0 clears it.
void set_recv_timeout(const Fd& fd, double timeout_s);

/// Waits up to `timeout_s` for a connection; returns an invalid Fd on
/// timeout (the accept loop's stop-flag poll point).
Fd accept_with_timeout(const Fd& listener, double timeout_s);

/// Sends every byte (MSG_NOSIGNAL); false if the peer vanished.
bool send_all(const Fd& fd, const std::string& data);

/// Buffered reader of '\n'-terminated lines.
class LineReader {
 public:
  explicit LineReader(const Fd& fd, std::size_t max_line = kMaxLineBytes)
      : fd_(fd), max_line_(max_line) {}

  /// Reads the next line into *line (newline stripped). False on EOF,
  /// read error, or a line exceeding max_line (the connection is then
  /// unusable — framing is lost).
  bool next(std::string* line);

 private:
  const Fd& fd_;
  std::size_t max_line_;
  std::string buf_;
};

}  // namespace pas::serve
