#include "pas/serve/protocol.hpp"

#include <sstream>

#include "pas/analysis/run_cache.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"

namespace pas::serve {

std::string error_line(const std::string& message) {
  util::Json j = util::Json::object();
  j.set("ok", util::Json(false));
  j.set("error", util::Json(message));
  return j.dump() + "\n";
}

std::string ok_line(const std::string& op) {
  util::Json j = util::Json::object();
  j.set("ok", util::Json(true));
  j.set("op", util::Json(op));
  return j.dump() + "\n";
}

std::string encode_point_line(std::size_t index,
                              const analysis::RunRecord& record,
                              bool from_cache) {
  util::Json j = util::Json::object();
  j.set("point", util::Json(static_cast<double>(index)));
  j.set("nodes", util::Json(record.nodes));
  j.set("frequency_mhz", util::Json(record.frequency_mhz));
  j.set("status",
        util::Json(std::string(analysis::run_status_name(record.status))));
  j.set("from_cache", util::Json(from_cache));
  j.set("seconds", util::Json(record.seconds));
  j.set("record", util::Json(cas_encode_record(record)));
  return j.dump() + "\n";
}

bool decode_point_line(const util::Json& line, PointLine* out) {
  if (!line.is_object()) return false;
  const util::Json* point = line.find("point");
  const util::Json* from_cache = line.find("from_cache");
  const util::Json* record = line.find("record");
  if (point == nullptr || !point->is_number() || point->as_number() < 0)
    return false;
  if (from_cache == nullptr || !from_cache->is_bool()) return false;
  if (record == nullptr || !record->is_string()) return false;
  analysis::RunRecord rec;
  if (!cas_decode_record(record->as_string(), &rec)) return false;
  out->index = static_cast<std::size_t>(point->as_number());
  out->from_cache = from_cache->as_bool();
  out->record = std::move(rec);
  return true;
}

std::string cas_checksum(const std::string& payload) {
  return util::strf("%016llx", static_cast<unsigned long long>(
                                   util::fnv1a(payload)));
}

bool decode_cas_payload(const util::Json& msg, std::string* payload,
                        bool* verified) {
  *verified = false;
  if (!msg.is_object()) return false;
  const util::Json* p = msg.find("payload");
  const util::Json* sum = msg.find("sum");
  if (p == nullptr || !p->is_string()) return false;
  if (sum == nullptr || !sum->is_string()) return false;
  *payload = p->as_string();
  *verified = sum->as_string() == cas_checksum(*payload);
  return true;
}

std::string cas_encode_record(const analysis::RunRecord& record) {
  std::ostringstream out;
  out << "status " << static_cast<int>(record.status) << '\n';
  // Length-prefixed raw bytes, exactly like the journal frame: the
  // error text of a failed run is free-form.
  out << "error " << record.error.size() << '\n' << record.error << '\n';
  out << analysis::RunCache::encode_record(record);
  return out.str();
}

bool cas_decode_record(const std::string& payload,
                       analysis::RunRecord* record) {
  std::istringstream in(payload);
  std::string word;
  long status = 0;
  if (!(in >> word >> status) || word != "status" || status < 0 ||
      status > static_cast<long>(analysis::RunStatus::kCrashed))
    return false;
  if (in.get() != '\n') return false;
  std::size_t err_len = 0;
  if (!(in >> word >> err_len) || word != "error" ||
      err_len > payload.size())
    return false;
  if (in.get() != '\n') return false;
  std::string error(err_len, '\0');
  if (err_len > 0 &&
      !in.read(error.data(), static_cast<std::streamsize>(err_len)))
    return false;
  if (in.get() != '\n') return false;
  if (!analysis::RunCache::decode_record(in, record)) return false;
  record->status = static_cast<analysis::RunStatus>(status);
  record->error = std::move(error);
  return true;
}

}  // namespace pas::serve
