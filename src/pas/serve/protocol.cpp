#include "pas/serve/protocol.hpp"

#include <sstream>

#include "pas/analysis/run_cache.hpp"

namespace pas::serve {

std::string error_line(const std::string& message) {
  util::Json j = util::Json::object();
  j.set("ok", util::Json(false));
  j.set("error", util::Json(message));
  return j.dump() + "\n";
}

std::string ok_line(const std::string& op) {
  util::Json j = util::Json::object();
  j.set("ok", util::Json(true));
  j.set("op", util::Json(op));
  return j.dump() + "\n";
}

std::string encode_point_line(std::size_t index,
                              const analysis::RunRecord& record,
                              bool from_cache) {
  util::Json j = util::Json::object();
  j.set("point", util::Json(static_cast<double>(index)));
  j.set("nodes", util::Json(record.nodes));
  j.set("frequency_mhz", util::Json(record.frequency_mhz));
  j.set("status",
        util::Json(std::string(analysis::run_status_name(record.status))));
  j.set("from_cache", util::Json(from_cache));
  j.set("seconds", util::Json(record.seconds));
  j.set("record", util::Json(analysis::RunCache::encode_record(record)));
  return j.dump() + "\n";
}

bool decode_point_line(const util::Json& line, PointLine* out) {
  if (!line.is_object()) return false;
  const util::Json* point = line.find("point");
  const util::Json* from_cache = line.find("from_cache");
  const util::Json* record = line.find("record");
  if (point == nullptr || !point->is_number() || point->as_number() < 0)
    return false;
  if (from_cache == nullptr || !from_cache->is_bool()) return false;
  if (record == nullptr || !record->is_string()) return false;
  std::istringstream in(record->as_string());
  analysis::RunRecord rec;
  if (!analysis::RunCache::decode_record(in, &rec)) return false;
  out->index = static_cast<std::size_t>(point->as_number());
  out->from_cache = from_cache->as_bool();
  out->record = std::move(rec);
  return true;
}

}  // namespace pas::serve
