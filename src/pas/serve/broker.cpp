#include "pas/serve/broker.hpp"

#include <signal.h>
#include <sys/stat.h>

#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "pas/analysis/experiment.hpp"
#include "pas/fault/fault.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"
#include "pas/util/subprocess.hpp"

namespace pas::serve {
namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// mkdir -p: the journal is published into the cache directory before
/// the cache's own first store would create it.
void make_dirs(const std::string& path) {
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/')
      ::mkdir(path.substr(0, i).c_str(), 0777);
  }
}

BrokerOptions validate_options(BrokerOptions opts) {
  if (opts.cache_dir.empty())
    throw std::invalid_argument("serve: BrokerOptions.cache_dir is required");
  if (opts.workers < 1)
    throw std::invalid_argument("serve: BrokerOptions.workers must be >= 1");
  if (opts.worker_timeout_s <= 0.0)
    throw std::invalid_argument(
        "serve: BrokerOptions.worker_timeout_s must be > 0");
  if (opts.worker_retries < 0)
    throw std::invalid_argument(
        "serve: BrokerOptions.worker_retries must be >= 0");
  if (opts.journal_path.empty())
    opts.journal_path = opts.cache_dir + "/serve.journal";
  make_dirs(opts.cache_dir);
  return opts;
}

}  // namespace

struct Broker::Live {
  util::Subprocess::Handle handle;
  std::shared_ptr<Column> col;
  double t0 = 0.0;
  double deadline = 0.0;
  bool timed_out = false;
};

Broker::Broker(BrokerOptions opts)
    : opts_(validate_options(std::move(opts))),
      cache_(opts_.cache_dir, opts_.cache_cap_bytes),
      // resume=true: a restarted server warm-starts from everything the
      // previous incarnation journaled.
      journal_(opts_.journal_path, /*resume=*/true),
      sweeps_(obs::registry().counter("serve.sweeps")),
      sweep_points_(obs::registry().counter("serve.sweep_points")),
      cache_hits_(obs::registry().counter("serve.cache_hits")),
      dedup_hits_(obs::registry().counter("serve.dedup_hits")),
      columns_(obs::registry().counter("serve.columns")),
      queue_depth_(obs::registry().gauge("serve.queue_depth")),
      workers_running_(obs::registry().gauge("serve.workers_running")),
      worker_restarts_(obs::registry().counter("serve.worker_restarts")),
      worker_crashes_(obs::registry().counter("serve.worker_crashes")),
      worker_timeouts_(obs::registry().counter("serve.worker_timeouts")),
      scheduler_([this] { scheduler_main(); }) {}

Broker::~Broker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
}

void Broker::set_hold(bool hold) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hold_ = hold;
  }
  work_cv_.notify_all();
}

Broker::SweepResult Broker::run(const analysis::SweepSpec& spec) {
  spec.validate();
  const std::unique_ptr<npb::Kernel> kernel = analysis::make_spec_kernel(spec);
  sim::ClusterConfig cluster =
      spec.cluster ? *spec.cluster : spec.resolved_cluster();
  // Same precedence as the SweepExecutor ctor, so the keys computed
  // here are the keys an offline run of this spec stores under.
  if (spec.fault) cluster.fault = *spec.fault;

  std::vector<analysis::SweepExecutor::Point> points;
  for (const int n : spec.resolved_nodes())
    for (const double f : spec.resolved_freqs())
      points.push_back(
          analysis::SweepExecutor::Point{n, f, spec.comm_dvfs_mhz});

  sweeps_.add();
  sweep_points_.add(points.size());

  SweepResult out;
  out.records.resize(points.size());
  out.from_cache.assign(points.size(), 0);
  std::vector<std::string> keys(points.size());
  std::vector<char> resolved(points.size(), 0);
  // Sampled specs key apart from exact ones (the same suffix
  // SweepExecutor::point_key applies), so a sampled submission can
  // never be answered with an exact record or vice versa.
  const std::string sampled_suffix =
      spec.options.sampling
          ? analysis::RunCache::sampled_key_suffix(spec.options.sample_period,
                                                   spec.options.warmup_iters)
          : std::string();
  for (std::size_t i = 0; i < points.size(); ++i)
    keys[i] = analysis::RunCache::key(*kernel, cluster, spec.power,
                                      points[i].nodes, points[i].frequency_mhz,
                                      points[i].comm_dvfs_mhz) +
              sampled_suffix;

  // Answer from the service's memory first: the journal (this server's
  // and its workers' completed points, including deterministic
  // failures) and the shared run cache (everything any offline sweep
  // over the same directory ever stored).
  journal_.refresh();
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::optional<analysis::RunRecord> hit = journal_.find(keys[i]);
    if (!hit) hit = cache_.lookup(keys[i]);
    if (hit) {
      out.records[i] = std::move(*hit);
      out.from_cache[i] = 1;
      resolved[i] = 1;
      ++out.cache_hits;
    }
  }
  cache_hits_.add(out.cache_hits);

  // Group unresolved points into (N, comm-DVFS) columns. comm-DVFS is
  // spec-wide, so node count alone identifies a column here; ordered so
  // column identity is deterministic in member order.
  std::map<int, std::vector<std::size_t>> members_of;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!resolved[i]) members_of[points[i].nodes].push_back(i);

  std::vector<std::shared_ptr<Column>> waits;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("serve: broker is shutting down");
    for (const auto& [nodes, members] : members_of) {
      (void)nodes;
      // Content-hash identity: the member cache keys already spell out
      // kernel, cluster, power model and operating points; the retry
      // budget joins them because it changes record bytes (attempts).
      std::string id;
      for (const std::size_t i : members) {
        id += keys[i];
        id += '\n';
      }
      id += util::strf("retries=%d", spec.options.run_retries);
      const auto it = in_flight_.find(id);
      if (it != in_flight_.end()) {
        ++out.dedup_hits;
        dedup_hits_.add();
        waits.push_back(it->second);
        continue;
      }
      auto col = std::make_shared<Column>();
      col->id = id;
      col->spec.kernel = spec.kernel;
      col->spec.scale = spec.scale;
      col->spec.comm_dvfs_mhz = spec.comm_dvfs_mhz;
      col->spec.iterations = spec.iterations;
      col->spec.fault = spec.fault;
      col->spec.cluster = spec.cluster;
      col->spec.power = spec.power;
      col->spec.options.jobs = 1;
      col->spec.options.cache_dir = opts_.cache_dir;
      col->spec.options.cache_cap_bytes = opts_.cache_cap_bytes;
      col->spec.options.run_retries = spec.options.run_retries;
      col->spec.options.sampling = spec.options.sampling;
      col->spec.options.sample_period = spec.options.sample_period;
      col->spec.options.warmup_iters = spec.options.warmup_iters;
      col->spec.options.verify_sampling = spec.options.verify_sampling;
      col->spec.options.checkpoints = spec.options.checkpoints;
      col->spec.options.journal_path = opts_.journal_path;
      col->spec.options.resume = true;
      for (const std::size_t i : members) {
        col->points.push_back(points[i]);
        col->keys.push_back(keys[i]);
      }
      columns_.add();
      queue_.push_back(col);
      in_flight_.emplace(col->id, col);
      queue_depth_.set(static_cast<double>(queue_.size()));
      waits.push_back(std::move(col));
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Column>& col : waits)
      done_cv_.wait(lock, [&col] { return col->done; });
  }

  // Collect: the journal holds everything a worker completed (another
  // submission's worker counts — that is the dedup paying off);
  // synthesized fail-soft records cover the rest.
  journal_.refresh();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (resolved[i]) continue;
    if (std::optional<analysis::RunRecord> rec = journal_.find(keys[i])) {
      out.records[i] = std::move(*rec);
      continue;
    }
    bool found = false;
    for (const std::shared_ptr<Column>& col : waits) {
      const auto it = col->synthesized.find(keys[i]);
      if (it != col->synthesized.end()) {
        out.records[i] = it->second;
        found = true;
        break;
      }
    }
    if (!found) {
      // A column finished without covering this key — defensive only.
      analysis::RunRecord rec;
      rec.nodes = points[i].nodes;
      rec.frequency_mhz = points[i].frequency_mhz;
      rec.status = analysis::RunStatus::kCrashed;
      rec.error = "serve: worker finished without a result";
      out.records[i] = std::move(rec);
    }
  }
  return out;
}

bool Broker::column_complete(const Column& col) {
  for (const std::string& key : col.keys)
    if (!journal_.find(key)) return false;
  return true;
}

void Broker::synthesize_failures(Column& col, bool timed_out,
                                 const std::string& detail) {
  for (std::size_t i = 0; i < col.keys.size(); ++i) {
    if (journal_.find(col.keys[i])) continue;
    analysis::RunRecord rec;
    rec.nodes = col.points[i].nodes;
    rec.frequency_mhz = col.points[i].frequency_mhz;
    rec.status = timed_out ? analysis::RunStatus::kTimeout
                           : analysis::RunStatus::kCrashed;
    rec.error = detail;
    rec.attempts = std::max(1, col.attempts);
    // NOT journaled and NOT cached: a crash is an environmental
    // accident — the next submission retries these points for real.
    col.synthesized[col.keys[i]] = std::move(rec);
  }
}

void Broker::finish_column(const std::shared_ptr<Column>& col) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    col->done = true;
    in_flight_.erase(col->id);
  }
  done_cv_.notify_all();
}

void Broker::launch(std::shared_ptr<Column> col, std::vector<Live>& live) {
  ++col->attempts;
  // Plain copies for the child: it must never touch parent objects.
  const analysis::SweepSpec child_spec = col->spec;
  const std::vector<analysis::SweepExecutor::Point> child_points = col->points;
  Live l;
  l.col = std::move(col);
  // fork without exec, from this thread only (fork safety): the child
  // builds a fresh executor over the shared cache directory + journal
  // and reports through the journal's flock'd appends.
  l.handle = util::Subprocess::spawn([child_spec, child_points]() -> int {
    analysis::SweepExecutor exec(child_spec);
    const std::unique_ptr<npb::Kernel> kernel =
        analysis::make_spec_kernel(exec.spec());
    exec.run_points(*kernel, child_points);
    return 0;
  });
  l.t0 = mono_seconds();
  l.deadline = l.t0 + opts_.worker_timeout_s;
  live.push_back(std::move(l));
}

void Broker::run_inline(const std::shared_ptr<Column>& col) {
  ++col->attempts;
  try {
    analysis::SweepExecutor exec(col->spec);
    const std::unique_ptr<npb::Kernel> kernel =
        analysis::make_spec_kernel(exec.spec());
    exec.run_points(*kernel, col->points);
  } catch (const std::exception& e) {
    util::log_warn(util::strf("serve: inline column failed: %s", e.what()));
  }
  journal_.refresh();
  if (!column_complete(*col)) {
    worker_crashes_.add();
    if (col->attempts <= opts_.worker_retries) {
      worker_restarts_.add();
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(col);
      return;
    }
    synthesize_failures(*col, /*timed_out=*/false,
                        "serve: inline execution failed");
  }
  finish_column(col);
}

void Broker::scheduler_main() {
  std::vector<Live> live;
  const std::size_t window = static_cast<std::size_t>(opts_.workers);
  for (;;) {
    std::shared_ptr<Column> next;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Poll-shaped wait: live-worker deadlines and backoff gates need
      // the clock even when nothing is queued.
      work_cv_.wait_for(lock, std::chrono::milliseconds(live.empty() ? 50 : 5),
                        [&] {
                          return stop_ || (!hold_ && !queue_.empty() &&
                                           live.size() < window);
                        });
      stopping = stop_;
      if (!stopping && !hold_ && live.size() < window) {
        const double now = mono_seconds();
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if ((*it)->not_before <= now) {
            next = *it;
            queue_.erase(it);
            break;
          }
        }
      }
      queue_depth_.set(static_cast<double>(queue_.size()));
    }

    if (stopping) {
      // Fail everything soft so blocked run() calls return: SIGKILL
      // live workers, synthesize for their columns and the queue.
      for (Live& l : live) {
        if (l.handle.running()) l.handle.kill(SIGKILL);
        l.handle.wait();
      }
      journal_.refresh();
      for (Live& l : live) {
        if (!column_complete(*l.col))
          synthesize_failures(*l.col, false, "serve: server shut down");
        finish_column(l.col);
      }
      live.clear();
      for (;;) {
        std::shared_ptr<Column> col;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (queue_.empty()) break;
          col = queue_.front();
          queue_.pop_front();
        }
        if (!column_complete(*col))
          synthesize_failures(*col, false, "serve: server shut down");
        finish_column(col);
      }
      workers_running_.set(0.0);
      return;
    }

    if (next) {
      if (opts_.inline_exec)
        run_inline(next);
      else
        launch(std::move(next), live);
    }

    // Reap / deadline pass over live workers.
    for (std::size_t k = 0; k < live.size();) {
      Live& l = live[k];
      if (!l.handle.poll()) {
        if (!l.timed_out && mono_seconds() > l.deadline) {
          l.timed_out = true;
          l.handle.kill(SIGKILL);
        }
        ++k;
        continue;
      }
      util::Subprocess::Result res = l.handle.result();
      res.timed_out = res.timed_out || l.timed_out;
      const std::shared_ptr<Column> col = l.col;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));

      // Harvest whatever the worker journaled — a crashed worker's
      // completed points survive; only in-flight work is lost.
      journal_.refresh();
      if (column_complete(*col)) {
        finish_column(col);
        continue;
      }
      if (res.timed_out)
        worker_timeouts_.add();
      else
        worker_crashes_.add();
      // The dead worker may have left a torn tail frame; repair before
      // anyone appends at that offset (same policy as --isolate).
      journal_.repair_tail();
      if (col->attempts <= opts_.worker_retries) {
        worker_restarts_.add();
        const double backoff = fault::backoff_s(0.05, col->attempts - 1);
        col->not_before = mono_seconds() + backoff;
        util::log_warn(util::strf(
            "serve: %s N=%d column worker %s; retrying in %.0f ms "
            "(attempt %d/%d)",
            col->spec.kernel.c_str(), col->points.front().nodes,
            res.describe().c_str(), backoff * 1e3, col->attempts + 1,
            opts_.worker_retries + 1));
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(col);
      } else {
        util::log_warn(util::strf(
            "serve: %s N=%d column worker %s after %d attempt(s); "
            "answering unfinished points as %s",
            col->spec.kernel.c_str(), col->points.front().nodes,
            res.describe().c_str(), col->attempts,
            res.timed_out ? "timeout" : "crashed"));
        synthesize_failures(*col, res.timed_out,
                            "serve worker " + res.describe());
        finish_column(col);
      }
    }
    workers_running_.set(static_cast<double>(live.size()));
  }
}

}  // namespace pas::serve
