#include "pas/serve/broker.hpp"

#include <signal.h>
#include <sys/stat.h>

#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pas/analysis/experiment.hpp"
#include "pas/fault/fault.hpp"
#include "pas/serve/artifact_store.hpp"
#include "pas/serve/client.hpp"
#include "pas/serve/protocol.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"
#include "pas/util/subprocess.hpp"

namespace pas::serve {
namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// mkdir -p: the journal is published into the cache directory before
/// the cache's own first store would create it.
void make_dirs(const std::string& path) {
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/')
      ::mkdir(path.substr(0, i).c_str(), 0777);
  }
}

BrokerOptions validate_options(BrokerOptions opts) {
  if (opts.cache_dir.empty())
    throw std::invalid_argument("serve: BrokerOptions.cache_dir is required");
  if (opts.workers < 1)
    throw std::invalid_argument("serve: BrokerOptions.workers must be >= 1");
  if (opts.worker_timeout_s <= 0.0)
    throw std::invalid_argument(
        "serve: BrokerOptions.worker_timeout_s must be > 0");
  if (opts.worker_retries < 0)
    throw std::invalid_argument(
        "serve: BrokerOptions.worker_retries must be >= 0");
  if (opts.journal_path.empty())
    opts.journal_path = opts.cache_dir + "/serve.journal";
  make_dirs(opts.cache_dir);
  return opts;
}

/// Everything run() and submit_stolen() both derive from a spec: the
/// resolved grid, the per-point cache keys, and per-node-count shard
/// bases. Shared so a stolen column recomputes byte-identical keys on
/// the thief.
struct GridPlan {
  sim::ClusterConfig cluster;
  std::vector<analysis::SweepExecutor::Point> points;
  std::vector<std::string> keys;
  /// nodes -> rendezvous shard basis (the frequency-independent
  /// ledger key — stable however the grid is sliced, so every broker
  /// assigns a column the same owner no matter which subset of its
  /// members is still unresolved).
  std::map<int, std::string> basis_of;
  /// Eligible for the fabric: no process-local cluster override and
  /// the default power model, so a peer rebuilding the spec from its
  /// document half computes the same cache keys.
  bool portable = false;
};

GridPlan plan_grid(const analysis::SweepSpec& spec) {
  GridPlan plan;
  const std::unique_ptr<npb::Kernel> kernel = analysis::make_spec_kernel(spec);
  plan.cluster = spec.cluster ? *spec.cluster : spec.resolved_cluster();
  // Same precedence as the SweepExecutor ctor, so the keys computed
  // here are the keys an offline run of this spec stores under.
  if (spec.fault) plan.cluster.fault = *spec.fault;
  for (const int n : spec.resolved_nodes())
    for (const double f : spec.resolved_freqs())
      plan.points.push_back(
          analysis::SweepExecutor::Point{n, f, spec.comm_dvfs_mhz});
  // Sampled specs key apart from exact ones (the same suffix
  // SweepExecutor::point_key applies), so a sampled submission can
  // never be answered with an exact record or vice versa.
  const std::string sampled_suffix =
      spec.options.sampling
          ? analysis::RunCache::sampled_key_suffix(spec.options.sample_period,
                                                   spec.options.warmup_iters)
          : std::string();
  plan.keys.resize(plan.points.size());
  for (std::size_t i = 0; i < plan.points.size(); ++i)
    plan.keys[i] =
        analysis::RunCache::key(*kernel, plan.cluster, spec.power,
                                plan.points[i].nodes,
                                plan.points[i].frequency_mhz,
                                plan.points[i].comm_dvfs_mhz) +
        sampled_suffix;
  for (const int n : spec.resolved_nodes())
    plan.basis_of[n] = analysis::RunCache::ledger_key(*kernel, plan.cluster, n,
                                                      spec.comm_dvfs_mhz) +
                       sampled_suffix;
  plan.portable = !spec.cluster &&
                  analysis::power_signature(spec.power) ==
                      analysis::power_signature(power::PowerModel{});
  return plan;
}

/// The document-only spec a peer rebuilds `col` from: one node count,
/// the column's member frequencies in member order, and exactly the
/// record-shaping options — never this broker's execution policy.
analysis::SweepSpec portable_doc(const analysis::SweepSpec& spec,
                                 const std::vector<analysis::SweepExecutor::Point>& points) {
  analysis::SweepSpec doc;
  doc.kernel = spec.kernel;
  doc.scale = spec.scale;
  doc.comm_dvfs_mhz = spec.comm_dvfs_mhz;
  doc.iterations = spec.iterations;
  doc.fault = spec.fault;
  doc.nodes = {points.front().nodes};
  for (const analysis::SweepExecutor::Point& p : points)
    doc.freqs_mhz.push_back(p.frequency_mhz);
  doc.options.run_retries = spec.options.run_retries;
  doc.options.sampling = spec.options.sampling;
  doc.options.sample_period = spec.options.sample_period;
  doc.options.warmup_iters = spec.options.warmup_iters;
  doc.options.verify_sampling = spec.options.verify_sampling;
  doc.options.checkpoints = spec.options.checkpoints;
  return doc;
}

/// Deterministic failures (fault aborts) are journal/cache material; a
/// crash or timeout is an environmental accident that must never cross
/// hosts into a journal.
bool environmental_failure(const analysis::RunRecord& rec) {
  return rec.status == analysis::RunStatus::kCrashed ||
         rec.status == analysis::RunStatus::kTimeout;
}

/// Copies the document half of `src` into `dst` and overlays this
/// broker's execution policy — a column worker's actual config.
void fill_column_spec(analysis::SweepSpec* dst, const analysis::SweepSpec& src,
                      const BrokerOptions& opts) {
  dst->kernel = src.kernel;
  dst->scale = src.scale;
  dst->comm_dvfs_mhz = src.comm_dvfs_mhz;
  dst->iterations = src.iterations;
  dst->fault = src.fault;
  dst->cluster = src.cluster;
  dst->power = src.power;
  dst->options.jobs = 1;
  dst->options.cache_dir = opts.cache_dir;
  dst->options.cache_cap_bytes = opts.cache_cap_bytes;
  dst->options.run_retries = src.options.run_retries;
  dst->options.sampling = src.options.sampling;
  dst->options.sample_period = src.options.sample_period;
  dst->options.warmup_iters = src.options.warmup_iters;
  dst->options.verify_sampling = src.options.verify_sampling;
  dst->options.checkpoints = src.options.checkpoints;
  dst->options.journal_path = opts.journal_path;
  dst->options.resume = true;
}

}  // namespace

struct Broker::Live {
  util::Subprocess::Handle handle;
  std::shared_ptr<Column> col;
  double t0 = 0.0;
  double deadline = 0.0;
  bool timed_out = false;
};

Broker::Broker(BrokerOptions opts)
    : opts_(validate_options(std::move(opts))),
      cache_(opts_.cache_dir, opts_.cache_cap_bytes),
      // resume=true: a restarted server warm-starts from everything the
      // previous incarnation journaled.
      journal_(opts_.journal_path, /*resume=*/true),
      sweeps_(obs::registry().counter("serve.sweeps")),
      sweep_points_(obs::registry().counter("serve.sweep_points")),
      cache_hits_(obs::registry().counter("serve.cache_hits")),
      dedup_hits_(obs::registry().counter("serve.dedup_hits")),
      columns_(obs::registry().counter("serve.columns")),
      queue_depth_(obs::registry().gauge("serve.queue_depth")),
      workers_running_(obs::registry().gauge("serve.workers_running")),
      worker_restarts_(obs::registry().counter("serve.worker_restarts")),
      worker_crashes_(obs::registry().counter("serve.worker_crashes")),
      worker_timeouts_(obs::registry().counter("serve.worker_timeouts")),
      forwarded_columns_(obs::registry().counter("serve.forwarded_columns")),
      steal_columns_(obs::registry().counter("serve.steal_columns")),
      steal_requests_(obs::registry().counter("serve.steal_requests")),
      steal_empty_(obs::registry().counter("serve.steal_empty")),
      steal_given_(obs::registry().counter("serve.steal_given")),
      steal_reclaimed_(obs::registry().counter("serve.steal_reclaimed")),
      scheduler_([this] { scheduler_main(); }) {}

void Broker::configure_peering(const std::string& self,
                               const std::vector<std::string>& peers) {
  if (peers.empty()) return;
  auto store = std::make_shared<ArtifactStore>(&cache_, self, peers);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = std::move(store);
  }
  work_cv_.notify_all();
}

std::shared_ptr<ArtifactStore> Broker::artifact_store() {
  return store_snapshot();
}

std::shared_ptr<ArtifactStore> Broker::store_snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

double Broker::steal_deadline_s() const {
  if (opts_.steal_timeout_s > 0.0) return opts_.steal_timeout_s;
  // The thief runs the column under its own supervisor policy; give it
  // the full retry budget plus slack before assuming it died.
  return opts_.worker_timeout_s * (opts_.worker_retries + 1) + 10.0;
}

Broker::~Broker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  scheduler_.join();
}

void Broker::set_hold(bool hold) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hold_ = hold;
  }
  work_cv_.notify_all();
}

Broker::SweepResult Broker::run(const analysis::SweepSpec& spec,
                                bool local_only) {
  spec.validate();
  const GridPlan plan = plan_grid(spec);
  const std::vector<analysis::SweepExecutor::Point>& points = plan.points;
  const std::vector<std::string>& keys = plan.keys;

  sweeps_.add();
  sweep_points_.add(points.size());

  SweepResult out;
  out.records.resize(points.size());
  out.from_cache.assign(points.size(), 0);
  std::vector<char> resolved(points.size(), 0);

  // Answer from the service's memory first: the journal (this server's
  // and its workers' completed points, including deterministic
  // failures) and the shared run cache (everything any offline sweep
  // over the same directory ever stored).
  journal_.refresh();
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::optional<analysis::RunRecord> hit = journal_.find(keys[i]);
    if (!hit) hit = cache_.lookup(keys[i]);
    if (hit) {
      out.records[i] = std::move(*hit);
      out.from_cache[i] = 1;
      resolved[i] = 1;
      ++out.cache_hits;
    }
  }
  cache_hits_.add(out.cache_hits);

  // Group unresolved points into (N, comm-DVFS) columns. comm-DVFS is
  // spec-wide, so node count alone identifies a column here; ordered so
  // column identity is deterministic in member order.
  std::map<int, std::vector<std::size_t>> members_of;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!resolved[i]) members_of[points[i].nodes].push_back(i);

  // Peer fabric: rendezvous-assign each column, and CAS read-through
  // the members of peer-owned columns — the owner may have resolved
  // them for another client, and a verified fetch is a disk read on
  // two hosts instead of a simulation on this one.
  const bool fabric = !local_only && plan.portable;
  const std::shared_ptr<ArtifactStore> store =
      fabric ? store_snapshot() : nullptr;
  std::map<int, int> owner_of_nodes;
  if (store) {
    for (auto& [nodes, members] : members_of) {
      const int owner = store->owner_of(plan.basis_of.at(nodes));
      owner_of_nodes[nodes] = owner;
      if (owner < 0 || !store->peer_alive(owner)) continue;
      for (auto it = members.begin(); it != members.end();) {
        std::optional<analysis::RunRecord> rec =
            store->fetch_record(owner, keys[*it]);
        if (!rec) {
          ++it;
          continue;
        }
        out.records[*it] = std::move(*rec);
        out.from_cache[*it] = 1;
        resolved[*it] = 1;
        ++out.cache_hits;
        cache_hits_.add();
        it = members.erase(it);
      }
    }
    for (auto it = members_of.begin(); it != members_of.end();)
      it = it->second.empty() ? members_of.erase(it) : std::next(it);
  }

  std::vector<std::shared_ptr<Column>> waits;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("serve: broker is shutting down");
    for (const auto& [nodes, members] : members_of) {
      // Content-hash identity: the member cache keys already spell out
      // kernel, cluster, power model and operating points; the retry
      // budget joins them because it changes record bytes (attempts).
      std::string id;
      for (const std::size_t i : members) {
        id += keys[i];
        id += '\n';
      }
      id += util::strf("retries=%d", spec.options.run_retries);
      const auto it = in_flight_.find(id);
      if (it != in_flight_.end()) {
        ++out.dedup_hits;
        dedup_hits_.add();
        waits.push_back(it->second);
        continue;
      }
      auto col = std::make_shared<Column>();
      col->id = id;
      col->basis = plan.basis_of.at(nodes);
      col->portable = fabric;
      if (store) {
        const auto o = owner_of_nodes.find(nodes);
        if (o != owner_of_nodes.end()) col->owner = o->second;
      }
      fill_column_spec(&col->spec, spec, opts_);
      for (const std::size_t i : members) {
        col->points.push_back(points[i]);
        col->keys.push_back(keys[i]);
      }
      columns_.add();
      queue_.push_back(col);
      in_flight_.emplace(col->id, col);
      queue_depth_.set(static_cast<double>(queue_.size()));
      waits.push_back(std::move(col));
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Column>& col : waits)
      done_cv_.wait(lock, [&col] { return col->done; });
  }

  // Collect: the journal holds everything a worker completed (another
  // submission's worker counts — that is the dedup paying off);
  // synthesized fail-soft records cover the rest.
  journal_.refresh();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (resolved[i]) continue;
    if (std::optional<analysis::RunRecord> rec = journal_.find(keys[i])) {
      out.records[i] = std::move(*rec);
      continue;
    }
    bool found = false;
    for (const std::shared_ptr<Column>& col : waits) {
      const auto it = col->synthesized.find(keys[i]);
      if (it != col->synthesized.end()) {
        out.records[i] = it->second;
        found = true;
        break;
      }
    }
    if (!found) {
      // A column finished without covering this key — defensive only.
      analysis::RunRecord rec;
      rec.nodes = points[i].nodes;
      rec.frequency_mhz = points[i].frequency_mhz;
      rec.status = analysis::RunStatus::kCrashed;
      rec.error = "serve: worker finished without a result";
      out.records[i] = std::move(rec);
    }
  }
  return out;
}

bool Broker::column_complete(const Column& col) {
  for (const std::string& key : col.keys)
    if (!journal_.find(key)) return false;
  return true;
}

void Broker::synthesize_failures(Column& col, bool timed_out,
                                 const std::string& detail) {
  for (std::size_t i = 0; i < col.keys.size(); ++i) {
    if (journal_.find(col.keys[i])) continue;
    analysis::RunRecord rec;
    rec.nodes = col.points[i].nodes;
    rec.frequency_mhz = col.points[i].frequency_mhz;
    rec.status = timed_out ? analysis::RunStatus::kTimeout
                           : analysis::RunStatus::kCrashed;
    rec.error = detail;
    rec.attempts = std::max(1, col.attempts);
    // NOT journaled and NOT cached: a crash is an environmental
    // accident — the next submission retries these points for real.
    col.synthesized[col.keys[i]] = std::move(rec);
  }
}

void Broker::finish_column(const std::shared_ptr<Column>& col) {
  // A stolen column's results belong to the victim first: push before
  // `done`, so the victim's lent-column pass finds them journaled.
  if (col->stolen_from >= 0) push_back_stolen(col);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    col->done = true;
    if (col->stolen_from < 0) {
      in_flight_.erase(col->id);
    } else if (stolen_live_ > 0) {
      --stolen_live_;
    }
  }
  done_cv_.notify_all();
}

std::optional<std::string> Broker::cas_lookup(const std::string& kind,
                                              const std::string& key) {
  if (kind == "record") {
    journal_.refresh();
    if (std::optional<analysis::RunRecord> rec = journal_.find(key))
      return cas_encode_record(*rec);
    if (std::optional<analysis::RunRecord> rec = cache_.lookup(key))
      return cas_encode_record(*rec);
    return std::nullopt;
  }
  if (kind == "ledger") {
    if (std::shared_ptr<const sim::WorkLedger> ledger =
            cache_.lookup_ledger(key))
      return analysis::RunCache::encode_ledger(*ledger);
    return std::nullopt;
  }
  return std::nullopt;
}

bool Broker::cas_import(const std::string& key, const std::string& payload) {
  analysis::RunRecord rec;
  if (!cas_decode_record(payload, &rec)) return false;
  if (environmental_failure(rec)) return false;
  journal_.append(key, rec);
  cache_.store(key, rec);
  // A lent column may just have become complete; the scheduler's
  // lent-column pass decides.
  work_cv_.notify_all();
  return true;
}

std::optional<util::Json> Broker::give_column() {
  steal_requests_.add();
  std::shared_ptr<Column> col;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stop_) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        // Only portable self-owned local columns travel: remote-owned
        // ones are being forwarded anyway, and a stolen column never
        // hops twice (no fabric cycles).
        if ((*it)->portable && (*it)->owner < 0 && (*it)->stolen_from < 0) {
          col = *it;
          queue_.erase(it);
          lent_.push_back(Lent{col, mono_seconds() + steal_deadline_s()});
          break;
        }
      }
      queue_depth_.set(static_cast<double>(queue_.size()));
    }
  }
  if (!col) {
    steal_empty_.add();
    return std::nullopt;
  }
  steal_given_.add();
  util::Json desc = util::Json::object();
  desc.set("spec", portable_doc(col->spec, col->points).to_json());
  return desc;
}

bool Broker::submit_stolen(const util::Json& descriptor, int victim) {
  analysis::SweepSpec spec;
  GridPlan plan;
  try {
    spec = analysis::SweepSpec::from_json(descriptor);
    spec.validate();
    plan = plan_grid(spec);
  } catch (const std::exception& e) {
    util::log_warn(util::strf("serve: rejecting stolen column: %s", e.what()));
    return false;
  }
  if (plan.points.empty() || !plan.portable) return false;

  auto col = std::make_shared<Column>();
  col->stolen_from = victim;
  col->basis = plan.basis_of.begin()->second;
  col->points = plan.points;
  col->keys = plan.keys;
  for (const std::string& key : col->keys) {
    col->id += key;
    col->id += '\n';
  }
  col->id += util::strf("retries=%d", spec.options.run_retries);
  fill_column_spec(&col->spec, spec, opts_);

  // Prefetch the victim's charged-work ledger: the worker then
  // re-prices the whole DVFS column from a disk read instead of
  // simulating (sampled columns skip this — their basis carries the
  // sampled suffix, which is not a ledger cache key).
  if (!spec.options.sampling) {
    if (const std::shared_ptr<ArtifactStore> store = store_snapshot())
      store->fetch_ledger(victim, col->basis);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return false;
    ++stolen_live_;
    queue_.push_back(col);
    queue_depth_.set(static_cast<double>(queue_.size()));
  }
  steal_columns_.add();
  columns_.add();
  work_cv_.notify_all();
  return true;
}

void Broker::push_back_stolen(const std::shared_ptr<Column>& col) {
  const std::shared_ptr<ArtifactStore> store = store_snapshot();
  if (!store) return;
  journal_.refresh();
  for (const std::string& key : col->keys) {
    if (const std::optional<analysis::RunRecord> rec = journal_.find(key))
      store->push_record(col->stolen_from, key, *rec);
  }
}

void Broker::steal_probe() {
  const std::shared_ptr<ArtifactStore> store = store_snapshot();
  if (!store) return;
  const double now = mono_seconds();
  if (now < next_steal_) return;
  next_steal_ = now + 0.1;
  const std::size_t n = store->peer_count();
  for (std::size_t k = 0; k < n; ++k) {
    const int peer = static_cast<int>((steal_rr_ + k) % n);
    if (!store->peer_alive(peer)) continue;
    const std::optional<util::Json> desc = store->steal_from(peer);
    if (!desc) continue;
    const util::Json* doc = desc->find("spec");
    if (doc == nullptr || !doc->is_object()) continue;
    if (submit_stolen(*doc, peer)) {
      steal_rr_ = static_cast<std::size_t>(peer);
      next_steal_ = now;  // the peer is loaded: keep draining it
      return;
    }
  }
  if (n > 0) steal_rr_ = (steal_rr_ + 1) % n;
}

void Broker::start_forward(std::shared_ptr<Column> col) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stop_) {
      forwarded_columns_.add();
      Forward fwd;
      fwd.done = std::make_shared<std::atomic<bool>>(false);
      std::shared_ptr<std::atomic<bool>> done = fwd.done;
      fwd.thread = std::thread([this, col, done] {
        forward_main(col);
        done->store(true, std::memory_order_release);
      });
      forwards_.push_back(std::move(fwd));
      return;
    }
  }
  // Raced with stop: fail the column soft here — the stop drain
  // already ran or is running, and nobody else will finish it.
  journal_.refresh();
  if (!column_complete(*col))
    synthesize_failures(*col, false, "serve: server shut down");
  finish_column(col);
}

void Broker::forward_main(std::shared_ptr<Column> col) {
  const std::shared_ptr<ArtifactStore> store = store_snapshot();
  SweepReply reply;
  bool ok = false;
  if (store) {
    const analysis::SweepSpec doc = portable_doc(col->spec, col->points);
    ok = store->forward_sweep(col->owner, doc, steal_deadline_s(), &reply) &&
         reply.records.size() == col->keys.size();
  }
  if (!ok) {
    // The owner is unreachable (or answered garbage): fall back to
    // local execution — fabric failures cost latency, never answers.
    util::log_warn(util::strf(
        "serve: forwarding %s N=%d failed; reclaiming the column locally",
        col->spec.kernel.c_str(), col->points.front().nodes));
    std::lock_guard<std::mutex> lock(mutex_);
    col->owner = -1;
    queue_.push_back(std::move(col));
    queue_depth_.set(static_cast<double>(queue_.size()));
    work_cv_.notify_all();
    return;
  }
  for (std::size_t i = 0; i < col->keys.size(); ++i) {
    const analysis::RunRecord& rec = reply.records[i];
    if (environmental_failure(rec)) {
      // The owner failed soft on this member; answer the submission
      // but keep the journal clean so a later one retries for real.
      col->synthesized[col->keys[i]] = rec;
      continue;
    }
    journal_.append(col->keys[i], rec);
    cache_.store(col->keys[i], rec);
  }
  finish_column(col);
}

void Broker::lent_pass() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (lent_.empty()) return;
  }
  journal_.refresh();
  std::vector<std::shared_ptr<Column>> completed;
  std::size_t reclaimed = 0;
  const double now = mono_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lent_.begin(); it != lent_.end();) {
      if (column_complete(*it->col)) {
        completed.push_back(it->col);
        it = lent_.erase(it);
      } else if (now > it->deadline) {
        // The thief went quiet: take the column back and run it under
        // the local supervisor. A late push-back is harmless — imports
        // are idempotent and the local worker resumes past them.
        it->col->not_before = 0.0;
        queue_.push_back(it->col);
        ++reclaimed;
        it = lent_.erase(it);
      } else {
        ++it;
      }
    }
    queue_depth_.set(static_cast<double>(queue_.size()));
  }
  for (const std::shared_ptr<Column>& col : completed) finish_column(col);
  if (reclaimed > 0) {
    steal_reclaimed_.add(reclaimed);
    util::log_warn(util::strf(
        "serve: reclaimed %zu lent column(s) from a quiet thief", reclaimed));
    work_cv_.notify_all();
  }
}

void Broker::reap_forwards(bool all) {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = forwards_.begin(); it != forwards_.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = forwards_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) t.join();
}

void Broker::launch(std::shared_ptr<Column> col, std::vector<Live>& live) {
  ++col->attempts;
  // Plain copies for the child: it must never touch parent objects.
  const analysis::SweepSpec child_spec = col->spec;
  const std::vector<analysis::SweepExecutor::Point> child_points = col->points;
  Live l;
  l.col = std::move(col);
  // fork without exec, from this thread only (fork safety): the child
  // builds a fresh executor over the shared cache directory + journal
  // and reports through the journal's flock'd appends.
  l.handle = util::Subprocess::spawn([child_spec, child_points]() -> int {
    analysis::SweepExecutor exec(child_spec);
    const std::unique_ptr<npb::Kernel> kernel =
        analysis::make_spec_kernel(exec.spec());
    exec.run_points(*kernel, child_points);
    return 0;
  });
  l.t0 = mono_seconds();
  l.deadline = l.t0 + opts_.worker_timeout_s;
  live.push_back(std::move(l));
}

void Broker::run_inline(const std::shared_ptr<Column>& col) {
  ++col->attempts;
  try {
    analysis::SweepExecutor exec(col->spec);
    const std::unique_ptr<npb::Kernel> kernel =
        analysis::make_spec_kernel(exec.spec());
    exec.run_points(*kernel, col->points);
  } catch (const std::exception& e) {
    util::log_warn(util::strf("serve: inline column failed: %s", e.what()));
  }
  journal_.refresh();
  if (!column_complete(*col)) {
    worker_crashes_.add();
    if (col->attempts <= opts_.worker_retries) {
      worker_restarts_.add();
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(col);
      return;
    }
    synthesize_failures(*col, /*timed_out=*/false,
                        "serve: inline execution failed");
  }
  finish_column(col);
}

void Broker::scheduler_main() {
  std::vector<Live> live;
  const std::size_t window = static_cast<std::size_t>(opts_.workers);
  for (;;) {
    std::shared_ptr<Column> next;
    std::vector<std::shared_ptr<Column>> to_forward;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Poll-shaped wait: live-worker deadlines, backoff gates, lent
      // deadlines and steal probes need the clock even when nothing is
      // queued.
      work_cv_.wait_for(
          lock, std::chrono::milliseconds(live.empty() ? 50 : 5), [&] {
            if (stop_) return true;
            if (hold_ || queue_.empty()) return false;
            if (live.size() < window) return true;
            for (const std::shared_ptr<Column>& col : queue_)
              if (col->owner >= 0) return true;  // forwardable
            return false;
          });
      stopping = stop_;
      if (!stopping && !hold_) {
        // Remote-owned columns leave on forwarding threads — they
        // never consume a local worker slot.
        for (auto it = queue_.begin(); it != queue_.end();) {
          if ((*it)->owner >= 0) {
            to_forward.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
        if (live.size() < window) {
          const double now = mono_seconds();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if ((*it)->not_before <= now) {
              next = *it;
              queue_.erase(it);
              break;
            }
          }
        }
      }
      queue_depth_.set(static_cast<double>(queue_.size()));
    }

    if (stopping) {
      // Unblock and retire the fabric first: shutdown_links() aborts
      // every peer request, so forwarding threads either finish their
      // column or re-queue it for the drain below.
      if (const std::shared_ptr<ArtifactStore> store = store_snapshot())
        store->shutdown_links();
      reap_forwards(/*all=*/true);
      // Fail everything soft so blocked run() calls return: SIGKILL
      // live workers, synthesize for their columns, the queue and the
      // lent-out columns (their thieves may answer too late).
      for (Live& l : live) {
        if (l.handle.running()) l.handle.kill(SIGKILL);
        l.handle.wait();
      }
      journal_.refresh();
      for (Live& l : live) {
        if (!column_complete(*l.col))
          synthesize_failures(*l.col, false, "serve: server shut down");
        finish_column(l.col);
      }
      live.clear();
      for (;;) {
        std::shared_ptr<Column> col;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (queue_.empty() && lent_.empty()) break;
          if (!queue_.empty()) {
            col = queue_.front();
            queue_.pop_front();
          } else {
            col = lent_.front().col;
            lent_.erase(lent_.begin());
          }
        }
        if (!column_complete(*col))
          synthesize_failures(*col, false, "serve: server shut down");
        finish_column(col);
      }
      workers_running_.set(0.0);
      return;
    }

    for (std::shared_ptr<Column>& col : to_forward)
      start_forward(std::move(col));
    to_forward.clear();

    if (next) {
      if (opts_.inline_exec)
        run_inline(next);
      else
        launch(std::move(next), live);
    }

    // Reap / deadline pass over live workers.
    for (std::size_t k = 0; k < live.size();) {
      Live& l = live[k];
      if (!l.handle.poll()) {
        if (!l.timed_out && mono_seconds() > l.deadline) {
          l.timed_out = true;
          l.handle.kill(SIGKILL);
        }
        ++k;
        continue;
      }
      util::Subprocess::Result res = l.handle.result();
      res.timed_out = res.timed_out || l.timed_out;
      const std::shared_ptr<Column> col = l.col;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));

      // Harvest whatever the worker journaled — a crashed worker's
      // completed points survive; only in-flight work is lost.
      journal_.refresh();
      if (column_complete(*col)) {
        finish_column(col);
        continue;
      }
      if (res.timed_out)
        worker_timeouts_.add();
      else
        worker_crashes_.add();
      // The dead worker may have left a torn tail frame; repair before
      // anyone appends at that offset (same policy as --isolate).
      journal_.repair_tail();
      if (col->attempts <= opts_.worker_retries) {
        worker_restarts_.add();
        const double backoff = fault::backoff_s(0.05, col->attempts - 1);
        col->not_before = mono_seconds() + backoff;
        util::log_warn(util::strf(
            "serve: %s N=%d column worker %s; retrying in %.0f ms "
            "(attempt %d/%d)",
            col->spec.kernel.c_str(), col->points.front().nodes,
            res.describe().c_str(), backoff * 1e3, col->attempts + 1,
            opts_.worker_retries + 1));
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(col);
      } else {
        util::log_warn(util::strf(
            "serve: %s N=%d column worker %s after %d attempt(s); "
            "answering unfinished points as %s",
            col->spec.kernel.c_str(), col->points.front().nodes,
            res.describe().c_str(), col->attempts,
            res.timed_out ? "timeout" : "crashed"));
        synthesize_failures(*col, res.timed_out,
                            "serve worker " + res.describe());
        finish_column(col);
      }
    }
    workers_running_.set(static_cast<double>(live.size()));

    // Fabric passes: join finished forwarding threads, settle lent
    // columns, and — when this broker is fully idle — ask a peer for
    // work instead of sitting on a warm cache.
    reap_forwards(/*all=*/false);
    lent_pass();
    bool idle = live.empty();
    if (idle) {
      std::lock_guard<std::mutex> lock(mutex_);
      idle = queue_.empty() && !hold_ &&
             stolen_live_ < static_cast<std::size_t>(opts_.workers);
    }
    if (idle) steal_probe();
  }
}

}  // namespace pas::serve
