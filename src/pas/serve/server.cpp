#include "pas/serve/server.hpp"

#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <utility>

#include "pas/serve/protocol.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/json.hpp"
#include "pas/util/log.hpp"

namespace pas::serve {
namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      broker_(opts_.broker),
      requests_(obs::registry().counter("serve.requests")),
      connections_(obs::registry().counter("serve.connections")),
      protocol_errors_(obs::registry().counter("serve.protocol_errors")),
      cas_served_(obs::registry().counter("cas.served")),
      cas_rejected_(obs::registry().counter("cas.rejected")),
      request_seconds_(obs::registry().histogram("serve.request_seconds")) {
  if (opts_.unix_socket.empty() && opts_.tcp_port < 0)
    throw std::invalid_argument(
        "serve: configure a unix socket path and/or a tcp port");
  if (!opts_.unix_socket.empty())
    unix_listener_ = listen_unix(opts_.unix_socket);
  if (opts_.tcp_port >= 0)
    tcp_listener_ = listen_tcp(opts_.tcp_port, &bound_tcp_port_);
  if (!opts_.peers.empty()) {
    // Peering needs the bound port first: the advertised identity IS
    // the address peers dial, and rendezvous hashes its exact spelling.
    if (opts_.advertise.empty() && bound_tcp_port_ < 0)
      throw std::invalid_argument(
          "serve: --peer needs a tcp listener (or an explicit advertise "
          "address)");
    const std::string self =
        opts_.advertise.empty()
            ? "127.0.0.1:" + std::to_string(bound_tcp_port_)
            : opts_.advertise;
    broker_.configure_peering(self, opts_.peers);
  }
  if (unix_listener_.valid())
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  if (tcp_listener_.valid())
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
}

Server::~Server() { stop(); }

void Server::accept_loop(const Fd* listener) {
  while (!stop_.load()) {
    Fd conn = accept_with_timeout(*listener, 0.1);
    if (!conn.valid()) continue;  // timeout: re-check the stop flag
    connections_.add();
    auto shared = std::make_shared<Fd>(std::move(conn));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_.load()) return;  // raced stop(): drop the connection
    conns_.push_back(shared);
    conn_threads_.emplace_back(
        [this, shared] { handle_connection(std::move(shared)); });
  }
}

void Server::handle_connection(std::shared_ptr<Fd> conn) {
  LineReader reader(*conn);
  std::string line;
  while (!stop_.load() && reader.next(&line)) {
    if (line.empty()) continue;
    const double t0 = mono_seconds();
    requests_.add();
    try {
      const util::Json request = util::Json::parse(line);
      if (!request.is_object())
        throw std::invalid_argument("request must be a JSON object");
      const util::Json* op = request.find("op");
      if (op == nullptr || !op->is_string())
        throw std::invalid_argument("request needs a string \"op\" member");
      const std::string& name = op->as_string();
      if (name == "ping") {
        if (!send_all(*conn, ok_line("ping"))) break;
      } else if (name == "stats") {
        if (!send_all(*conn, stats_line())) break;
      } else if (name == "shutdown") {
        send_all(*conn, ok_line("shutdown"));
        {
          std::lock_guard<std::mutex> lock(wait_mutex_);
          shutdown_requested_ = true;
        }
        wait_cv_.notify_all();
      } else if (name == "sweep") {
        handle_sweep(request, *conn);
      } else if (name == "cas.get") {
        const util::Json* kind = request.find("kind");
        const util::Json* key = request.find("key");
        if (kind == nullptr || !kind->is_string() || key == nullptr ||
            !key->is_string())
          throw std::invalid_argument(
              "cas.get needs string \"kind\" and \"key\" members");
        util::Json reply = util::Json::object();
        reply.set("ok", util::Json(true));
        reply.set("op", util::Json("cas.get"));
        if (std::optional<std::string> payload =
                broker_.cas_lookup(kind->as_string(), key->as_string())) {
          reply.set("hit", util::Json(true));
          reply.set("sum", util::Json(cas_checksum(*payload)));
          reply.set("payload", util::Json(std::move(*payload)));
          cas_served_.add();
        } else {
          reply.set("hit", util::Json(false));
        }
        if (!send_all(*conn, reply.dump() + "\n")) break;
      } else if (name == "cas.put") {
        const util::Json* kind = request.find("kind");
        const util::Json* key = request.find("key");
        if (kind == nullptr || !kind->is_string() || key == nullptr ||
            !key->is_string())
          throw std::invalid_argument(
              "cas.put needs string \"kind\" and \"key\" members");
        if (kind->as_string() != "record")
          throw std::invalid_argument("cas.put only accepts kind \"record\"");
        std::string payload;
        bool verified = false;
        if (!decode_cas_payload(request, &payload, &verified))
          throw std::invalid_argument(
              "cas.put needs string \"payload\" and \"sum\" members");
        if (!verified || !broker_.cas_import(key->as_string(), payload)) {
          // Corruption (or an environmental-failure record) stops at
          // the door: counted, refused, and never journaled.
          cas_rejected_.add();
          throw std::invalid_argument("cas.put payload rejected");
        }
        if (!send_all(*conn, ok_line("cas.put"))) break;
      } else if (name == "steal") {
        util::Json reply = util::Json::object();
        reply.set("ok", util::Json(true));
        reply.set("op", util::Json("steal"));
        if (std::optional<util::Json> column = broker_.give_column())
          reply.set("column", std::move(*column));
        else
          reply.set("column", util::Json());
        if (!send_all(*conn, reply.dump() + "\n")) break;
      } else {
        throw std::invalid_argument("unknown op \"" + name + "\"");
      }
    } catch (const std::exception& e) {
      // A bad request costs an error line, never the connection: the
      // client may hold other sweeps on it.
      protocol_errors_.add();
      if (!send_all(*conn, error_line(e.what()))) break;
    }
    request_seconds_.observe(mono_seconds() - t0);
  }
  conn->shutdown_both();
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == conn) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void Server::handle_sweep(const util::Json& request, const Fd& conn) {
  const util::Json* spec_json = request.find("spec");
  if (spec_json == nullptr)
    throw std::invalid_argument("sweep request needs a \"spec\" member");
  const analysis::SweepSpec spec = analysis::SweepSpec::from_json(*spec_json);
  // A forwarded sweep came from a peer broker: execute it locally so
  // two brokers whose peer sets disagree can never forward in a cycle.
  const util::Json* forwarded = request.find("forwarded");
  const bool local_only =
      forwarded != nullptr && forwarded->is_bool() && forwarded->as_bool();
  const Broker::SweepResult result = broker_.run(spec, local_only);

  // Buffer the whole response: header, one line per grid point, trailer.
  util::Json header = util::Json::object();
  header.set("ok", util::Json(true));
  header.set("op", util::Json("sweep"));
  header.set("points",
             util::Json(static_cast<double>(result.records.size())));
  std::string payload = header.dump() + "\n";
  for (std::size_t i = 0; i < result.records.size(); ++i)
    payload += encode_point_line(i, result.records[i],
                                 result.from_cache[i] != 0);
  util::Json trailer = util::Json::object();
  trailer.set("done", util::Json(true));
  trailer.set("points",
              util::Json(static_cast<double>(result.records.size())));
  trailer.set("cache_hits",
              util::Json(static_cast<double>(result.cache_hits)));
  trailer.set("dedup_hits",
              util::Json(static_cast<double>(result.dedup_hits)));
  payload += trailer.dump() + "\n";
  send_all(conn, payload);
}

std::string Server::stats_line() {
  const analysis::RunCache& cache = broker_.cache();
  util::Json stats = util::Json::object();
  util::Json cache_stats = util::Json::object();
  cache_stats.set("hits", util::Json(static_cast<double>(cache.hits())));
  cache_stats.set("misses", util::Json(static_cast<double>(cache.misses())));
  cache_stats.set("stores", util::Json(static_cast<double>(cache.stores())));
  stats.set("cache", std::move(cache_stats));
  stats.set("journal_entries",
            util::Json(static_cast<double>(broker_.journal_entries())));
  stats.set("requests", util::Json(static_cast<double>(requests_.value())));
  stats.set("connections",
            util::Json(static_cast<double>(connections_.value())));
  const obs::Histogram::Snapshot lat = request_seconds_.snapshot();
  util::Json latency = util::Json::object();
  latency.set("count", util::Json(static_cast<double>(lat.count)));
  latency.set("p50", util::Json(lat.p50));
  latency.set("p90", util::Json(lat.p90));
  latency.set("p99", util::Json(lat.p99));
  stats.set("request_seconds", std::move(latency));
  util::Json j = util::Json::object();
  j.set("ok", util::Json(true));
  j.set("op", util::Json("stats"));
  j.set("stats", std::move(stats));
  return j.dump() + "\n";
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] { return shutdown_requested_ || stop_.load(); });
}

bool Server::wait_for(double timeout_s) {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  return wait_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s),
      [this] { return shutdown_requested_ || stop_.load(); });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true);
  wait_cv_.notify_all();
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  // Unblock connection threads parked in recv().
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const std::shared_ptr<Fd>& conn : conns_) conn->shutdown_both();
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    t.join();
  }
  if (!opts_.unix_socket.empty()) ::unlink(opts_.unix_socket.c_str());
  if (!opts_.metrics_csv.empty()) {
    const int err = util::atomic_write_file(
        opts_.metrics_csv,
        obs::registry().to_csv(obs::Stability::kVolatile));
    if (err != 0)
      util::log_warn("serve: cannot write " + opts_.metrics_csv);
  }
}

}  // namespace pas::serve
