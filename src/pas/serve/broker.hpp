// Broker — the execution core of pasim_serve (DESIGN.md §13).
//
// A broker turns submitted SweepSpec documents into RunRecords while
// simulating every operating point at most once, however many clients
// ask for it and however they overlap in time:
//
//   * answers come from the shared run cache / sweep journal first
//     (cold points only ever reach a worker once — afterwards they are
//     disk hits for every later submission),
//   * unresolved points are grouped into (kernel, N, comm-DVFS)
//     columns — the frequency-collapse unit, so one worker prices a
//     whole DVFS column from one simulated run — and identical
//     in-flight columns are deduplicated by content-hash identity: a
//     spec submitted twice concurrently enqueues each column once and
//     both submissions wait on the same column object,
//   * columns run in forked worker processes (util::Subprocess) under
//     the PR 7 supervisor policy: wall-clock deadlines, bounded
//     exponential-backoff re-forks, and fail-soft kCrashed/kTimeout
//     records when a column never completes — a dying worker costs a
//     column, never the server.
//
// Workers report through the shared sweep journal (the same flock'd
// append-only IPC the --isolate supervisor uses), so a crashed
// worker's completed points survive and a re-forked worker resumes
// past them. Supervisor-synthesized crash records are never journaled
// and never cached — a later submission retries those points for real.
//
// Peering (DESIGN.md §15): once configure_peering() wires an
// ArtifactStore, the broker joins a shard fabric. Each column's
// frequency-independent shard basis (the RunCache ledger key) is
// rendezvous-hashed across the member brokers; a column owned by a
// peer is forwarded there over the sweep protocol (and its records
// imported back), unresolved keys of remote-owned columns are CAS
// read-through fetched before anything executes, an idle broker
// steals queued columns from its peers (running them under its own
// supervisor and pushing the records back with cas.put), and a lent
// column whose thief goes quiet past its deadline is reclaimed and
// re-run locally — a dead peer costs latency, never an answer.
//
// Fork safety: all forks happen on the single scheduler thread, and
// every metric reference is resolved at construction, so no other
// broker thread ever takes the metrics-registry lock while the
// scheduler forks. Worker children only touch their own fresh
// executor state (own RunCache handle, own SweepJournal handle on the
// shared files) — never the parent's objects.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/sweep_executor.hpp"
#include "pas/analysis/sweep_journal.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/obs/metrics.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

struct BrokerOptions {
  /// Maximum concurrently live worker processes.
  int workers = 2;
  /// Per-worker wall-clock deadline (then SIGKILL + retry).
  double worker_timeout_s = 300.0;
  /// Re-forks per failed column before fail-soft records are synthesized.
  int worker_retries = 1;
  /// Shared run-cache directory (required — the cache IS the service's
  /// memory; the sweep journal lives next to it by default).
  std::string cache_dir;
  /// Defaults to `<cache_dir>/serve.journal`.
  std::string journal_path;
  /// RunCache LRU cap (0 = unbounded).
  std::uint64_t cache_cap_bytes = 0;
  /// Run columns on the scheduler thread instead of forking workers.
  /// For tests under sanitizers that dislike fork(); no deadlines.
  bool inline_exec = false;
  /// Deadline for a column lent to a thief before this broker reclaims
  /// it and re-runs it locally; <= 0 derives from the worker policy
  /// (worker_timeout_s * (worker_retries + 1) plus slack).
  double steal_timeout_s = 0.0;
};

class ArtifactStore;

class Broker {
 public:
  /// Opens (or warm-resumes) the cache and journal and starts the
  /// scheduler thread. Throws std::invalid_argument on bad options.
  explicit Broker(BrokerOptions opts);
  /// Stops the scheduler: live workers are SIGKILLed, every pending
  /// column is failed soft, blocked run() calls return.
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  struct SweepResult {
    /// Grid order (nodes-major, frequency-minor) — exactly the order
    /// an offline SweepExecutor::run() of the same spec emits.
    std::vector<analysis::RunRecord> records;
    /// Per-record: answered from the shared cache/journal without
    /// reaching a worker during this submission.
    std::vector<char> from_cache;
    std::uint64_t cache_hits = 0;  ///< pre-resolved points
    std::uint64_t dedup_hits = 0;  ///< columns joined in-flight
  };

  /// Resolves every point of the spec's grid and blocks until done.
  /// Thread-safe: concurrent submissions share in-flight columns. Only
  /// the spec's document half shapes the result; execution-policy
  /// options (jobs, cache_dir, journal, isolate) are the broker's to
  /// choose — except run_retries, which changes record bytes and so
  /// keys column identity. Throws std::invalid_argument on an invalid
  /// spec and std::runtime_error after stop(). `local_only` pins every
  /// column to this broker (set for forwarded submissions, so two
  /// brokers whose peer sets disagree can never forward in a cycle).
  SweepResult run(const analysis::SweepSpec& spec, bool local_only = false);

  /// Wires the peer fabric once the server knows this broker's
  /// advertised identity (only after binding listeners — the identity
  /// is the address peers dial). `peers` are the other brokers'
  /// host:port identities, spelled exactly as they advertise
  /// themselves (rendezvous hashes the strings). No-op when `peers`
  /// is empty; throws std::invalid_argument on a malformed address.
  void configure_peering(const std::string& self,
                         const std::vector<std::string>& peers);

  /// The peer fabric, or nullptr before configure_peering().
  std::shared_ptr<ArtifactStore> artifact_store();

  /// The CAS read half (a peer's cas.get): the canonical payload of a
  /// journaled/cached record ("record") or a cached ledger ("ledger");
  /// nullopt on a miss or an unknown kind.
  std::optional<std::string> cas_lookup(const std::string& kind,
                                        const std::string& key);

  /// The CAS write half (a thief's cas.put push-back): imports a
  /// decoded record into the journal + cache and nudges the scheduler
  /// so a lent column waiting on it completes. False when the payload
  /// does not decode or carries an environmental (crash/timeout)
  /// status — those never enter a journal.
  bool cas_import(const std::string& key, const std::string& payload);

  /// The steal give half: pops the oldest stealable queued column,
  /// registers it as lent with a reclaim deadline, and returns its
  /// wire descriptor ({"spec": <document-only SweepSpec JSON>}).
  /// nullopt when nothing queued is portable.
  std::optional<util::Json> give_column();

  analysis::RunCache& cache() { return cache_; }
  std::size_t journal_entries() const { return journal_.entries(); }
  const BrokerOptions& options() const { return opts_; }

  /// Test hook: freeze (true) / thaw (false) worker dispatch, so a
  /// test can pile up concurrent duplicate submissions and observe
  /// the dedup before anything runs.
  void set_hold(bool hold);

 private:
  struct Column {
    std::string id;  ///< member cache keys + retry policy
    /// Document spec a worker rebuilds its executor from.
    analysis::SweepSpec spec;
    std::vector<analysis::SweepExecutor::Point> points;
    std::vector<std::string> keys;
    int attempts = 0;
    double not_before = 0.0;  ///< retry backoff gate (monotonic seconds)
    /// Rendezvous shard basis: the frequency-independent column
    /// identity (RunCache ledger key + sampled suffix).
    std::string basis;
    /// Eligible for the fabric: document-only spec, default power.
    bool portable = false;
    int owner = -1;        ///< owning peer index; -1 = this broker
    int stolen_from = -1;  ///< victim peer index; -1 = a local column
    bool done = false;
    /// Fail-soft records for members the journal never received,
    /// keyed like the journal. Written by the scheduler before `done`,
    /// read by waiters after — the broker mutex orders both.
    std::unordered_map<std::string, analysis::RunRecord> synthesized;
  };

  struct Live;
  void scheduler_main();
  void launch(std::shared_ptr<Column> col, std::vector<Live>& live);
  void run_inline(const std::shared_ptr<Column>& col);
  /// True when every member key is in the journal.
  bool column_complete(const Column& col);
  void synthesize_failures(Column& col, bool timed_out,
                           const std::string& detail);
  void finish_column(const std::shared_ptr<Column>& col);

  std::shared_ptr<ArtifactStore> store_snapshot();
  double steal_deadline_s() const;
  /// Forwards `col` to its owning peer on a dedicated thread; a peer
  /// failure re-queues the column for local execution.
  void start_forward(std::shared_ptr<Column> col);
  void forward_main(std::shared_ptr<Column> col);
  /// Scheduler-idle pass: asks peers for a stealable column.
  void steal_probe();
  /// Rebuilds a stolen column from its wire descriptor and queues it
  /// locally (tagged with the victim for the push-back). False on a
  /// malformed descriptor.
  bool submit_stolen(const util::Json& descriptor, int victim);
  /// Pushes a finished stolen column's journaled records to the victim.
  void push_back_stolen(const std::shared_ptr<Column>& col);
  /// Scheduler pass over lent columns: finish the ones a thief
  /// completed, reclaim (re-queue locally) the ones past deadline.
  void lent_pass();
  /// Joins finished forward threads (`all` joins every one — stop path,
  /// after shutdown_links unblocked them).
  void reap_forwards(bool all);

  BrokerOptions opts_;
  analysis::RunCache cache_;
  analysis::SweepJournal journal_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes the scheduler
  std::condition_variable done_cv_;  ///< wakes run() waiters
  std::deque<std::shared_ptr<Column>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Column>> in_flight_;
  bool stop_ = false;
  bool hold_ = false;

  // Peer fabric state (all under mutex_ except where noted).
  std::shared_ptr<ArtifactStore> store_;  ///< set once by configure_peering
  struct Lent {
    std::shared_ptr<Column> col;
    double deadline = 0.0;  ///< monotonic seconds; then reclaim
  };
  std::vector<Lent> lent_;
  struct Forward {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Forward> forwards_;
  std::size_t stolen_live_ = 0;  ///< stolen-in columns not yet finished
  double next_steal_ = 0.0;      ///< probe rate gate (scheduler thread only)
  std::size_t steal_rr_ = 0;     ///< probe round-robin (scheduler thread only)

  // Metric references resolved at construction (fork safety — see the
  // header comment). All volatile: serving traffic is wall-clock shaped.
  obs::Counter& sweeps_;
  obs::Counter& sweep_points_;
  obs::Counter& cache_hits_;
  obs::Counter& dedup_hits_;
  obs::Counter& columns_;
  obs::Gauge& queue_depth_;
  obs::Gauge& workers_running_;
  obs::Counter& worker_restarts_;
  obs::Counter& worker_crashes_;
  obs::Counter& worker_timeouts_;
  obs::Counter& forwarded_columns_;
  obs::Counter& steal_columns_;
  obs::Counter& steal_requests_;
  obs::Counter& steal_empty_;
  obs::Counter& steal_given_;
  obs::Counter& steal_reclaimed_;

  std::thread scheduler_;
};

}  // namespace pas::serve
