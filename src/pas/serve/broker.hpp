// Broker — the execution core of pasim_serve (DESIGN.md §13).
//
// A broker turns submitted SweepSpec documents into RunRecords while
// simulating every operating point at most once, however many clients
// ask for it and however they overlap in time:
//
//   * answers come from the shared run cache / sweep journal first
//     (cold points only ever reach a worker once — afterwards they are
//     disk hits for every later submission),
//   * unresolved points are grouped into (kernel, N, comm-DVFS)
//     columns — the frequency-collapse unit, so one worker prices a
//     whole DVFS column from one simulated run — and identical
//     in-flight columns are deduplicated by content-hash identity: a
//     spec submitted twice concurrently enqueues each column once and
//     both submissions wait on the same column object,
//   * columns run in forked worker processes (util::Subprocess) under
//     the PR 7 supervisor policy: wall-clock deadlines, bounded
//     exponential-backoff re-forks, and fail-soft kCrashed/kTimeout
//     records when a column never completes — a dying worker costs a
//     column, never the server.
//
// Workers report through the shared sweep journal (the same flock'd
// append-only IPC the --isolate supervisor uses), so a crashed
// worker's completed points survive and a re-forked worker resumes
// past them. Supervisor-synthesized crash records are never journaled
// and never cached — a later submission retries those points for real.
//
// Fork safety: all forks happen on the single scheduler thread, and
// every metric reference is resolved at construction, so no other
// broker thread ever takes the metrics-registry lock while the
// scheduler forks. Worker children only touch their own fresh
// executor state (own RunCache handle, own SweepJournal handle on the
// shared files) — never the parent's objects.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/sweep_executor.hpp"
#include "pas/analysis/sweep_journal.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/obs/metrics.hpp"

namespace pas::serve {

struct BrokerOptions {
  /// Maximum concurrently live worker processes.
  int workers = 2;
  /// Per-worker wall-clock deadline (then SIGKILL + retry).
  double worker_timeout_s = 300.0;
  /// Re-forks per failed column before fail-soft records are synthesized.
  int worker_retries = 1;
  /// Shared run-cache directory (required — the cache IS the service's
  /// memory; the sweep journal lives next to it by default).
  std::string cache_dir;
  /// Defaults to `<cache_dir>/serve.journal`.
  std::string journal_path;
  /// RunCache LRU cap (0 = unbounded).
  std::uint64_t cache_cap_bytes = 0;
  /// Run columns on the scheduler thread instead of forking workers.
  /// For tests under sanitizers that dislike fork(); no deadlines.
  bool inline_exec = false;
};

class Broker {
 public:
  /// Opens (or warm-resumes) the cache and journal and starts the
  /// scheduler thread. Throws std::invalid_argument on bad options.
  explicit Broker(BrokerOptions opts);
  /// Stops the scheduler: live workers are SIGKILLed, every pending
  /// column is failed soft, blocked run() calls return.
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  struct SweepResult {
    /// Grid order (nodes-major, frequency-minor) — exactly the order
    /// an offline SweepExecutor::run() of the same spec emits.
    std::vector<analysis::RunRecord> records;
    /// Per-record: answered from the shared cache/journal without
    /// reaching a worker during this submission.
    std::vector<char> from_cache;
    std::uint64_t cache_hits = 0;  ///< pre-resolved points
    std::uint64_t dedup_hits = 0;  ///< columns joined in-flight
  };

  /// Resolves every point of the spec's grid and blocks until done.
  /// Thread-safe: concurrent submissions share in-flight columns. Only
  /// the spec's document half shapes the result; execution-policy
  /// options (jobs, cache_dir, journal, isolate) are the broker's to
  /// choose — except run_retries, which changes record bytes and so
  /// keys column identity. Throws std::invalid_argument on an invalid
  /// spec and std::runtime_error after stop().
  SweepResult run(const analysis::SweepSpec& spec);

  analysis::RunCache& cache() { return cache_; }
  std::size_t journal_entries() const { return journal_.entries(); }
  const BrokerOptions& options() const { return opts_; }

  /// Test hook: freeze (true) / thaw (false) worker dispatch, so a
  /// test can pile up concurrent duplicate submissions and observe
  /// the dedup before anything runs.
  void set_hold(bool hold);

 private:
  struct Column {
    std::string id;  ///< member cache keys + retry policy
    /// Document spec a worker rebuilds its executor from.
    analysis::SweepSpec spec;
    std::vector<analysis::SweepExecutor::Point> points;
    std::vector<std::string> keys;
    int attempts = 0;
    double not_before = 0.0;  ///< retry backoff gate (monotonic seconds)
    bool done = false;
    /// Fail-soft records for members the journal never received,
    /// keyed like the journal. Written by the scheduler before `done`,
    /// read by waiters after — the broker mutex orders both.
    std::unordered_map<std::string, analysis::RunRecord> synthesized;
  };

  struct Live;
  void scheduler_main();
  void launch(std::shared_ptr<Column> col, std::vector<Live>& live);
  void run_inline(const std::shared_ptr<Column>& col);
  /// True when every member key is in the journal.
  bool column_complete(const Column& col);
  void synthesize_failures(Column& col, bool timed_out,
                           const std::string& detail);
  void finish_column(const std::shared_ptr<Column>& col);

  BrokerOptions opts_;
  analysis::RunCache cache_;
  analysis::SweepJournal journal_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes the scheduler
  std::condition_variable done_cv_;  ///< wakes run() waiters
  std::deque<std::shared_ptr<Column>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Column>> in_flight_;
  bool stop_ = false;
  bool hold_ = false;

  // Metric references resolved at construction (fork safety — see the
  // header comment). All volatile: serving traffic is wall-clock shaped.
  obs::Counter& sweeps_;
  obs::Counter& sweep_points_;
  obs::Counter& cache_hits_;
  obs::Counter& dedup_hits_;
  obs::Counter& columns_;
  obs::Gauge& queue_depth_;
  obs::Gauge& workers_running_;
  obs::Counter& worker_restarts_;
  obs::Counter& worker_crashes_;
  obs::Counter& worker_timeouts_;

  std::thread scheduler_;
};

}  // namespace pas::serve
