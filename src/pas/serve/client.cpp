#include "pas/serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "pas/fault/fault.hpp"
#include "pas/serve/protocol.hpp"

namespace pas::serve {
namespace {

Fd connect_once(const ClientOptions& opts) {
  if (!opts.unix_socket.empty()) return connect_unix(opts.unix_socket);
  if (opts.tcp_port >= 0) return connect_tcp(opts.host, opts.tcp_port);
  throw std::runtime_error(
      "serve: ClientOptions needs a unix socket path or a tcp port");
}

/// The errnos worth retrying: the server is (re)starting or shed the
/// backlog. ENOENT covers a unix socket whose file is not bound yet.
bool transient_connect_error(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ENOENT;
}

Fd connect(const ClientOptions& opts) {
  for (int attempt = 0;; ++attempt) {
    try {
      Fd fd = connect_once(opts);
      if (opts.recv_timeout_s > 0.0) set_recv_timeout(fd, opts.recv_timeout_s);
      return fd;
    } catch (const ConnectError& e) {
      if (attempt >= opts.connect_retries ||
          !transient_connect_error(e.saved_errno))
        throw;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        fault::backoff_s(opts.connect_backoff_s, attempt)));
  }
}

[[noreturn]] void raise_reply_error(const util::Json& reply) {
  const util::Json* error = reply.find("error");
  throw std::runtime_error("serve: server error: " +
                           (error != nullptr && error->is_string()
                                ? error->as_string()
                                : reply.dump()));
}

}  // namespace

Client::Client(const ClientOptions& opts)
    : fd_(connect(opts)), reader_(fd_) {}

bool Client::wait_ready(const ClientOptions& opts, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      Client client(opts);
      if (client.ping()) return true;
    } catch (const std::exception&) {
      // Not up yet.
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

util::Json Client::request(const util::Json& body) {
  if (!send_all(fd_, body.dump() + "\n"))
    throw std::runtime_error("serve: connection lost while sending");
  std::string line;
  if (!reader_.next(&line))
    throw std::runtime_error("serve: connection lost while waiting");
  return util::Json::parse(line);
}

bool Client::ping() {
  util::Json body = util::Json::object();
  body.set("op", util::Json("ping"));
  const util::Json reply = request(body);
  const util::Json* ok = reply.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

util::Json Client::stats() {
  util::Json body = util::Json::object();
  body.set("op", util::Json("stats"));
  const util::Json reply = request(body);
  const util::Json* ok = reply.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
    raise_reply_error(reply);
  const util::Json* stats = reply.find("stats");
  if (stats == nullptr)
    throw std::runtime_error("serve: stats reply without a stats member");
  return *stats;
}

bool Client::shutdown_server() {
  util::Json body = util::Json::object();
  body.set("op", util::Json("shutdown"));
  const util::Json reply = request(body);
  const util::Json* ok = reply.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

SweepReply Client::sweep(const analysis::SweepSpec& spec, bool forwarded) {
  util::Json body = util::Json::object();
  body.set("op", util::Json("sweep"));
  body.set("spec", spec.to_json());
  if (forwarded) body.set("forwarded", util::Json(true));
  const util::Json header = request(body);
  const util::Json* ok = header.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
    raise_reply_error(header);
  const util::Json* points = header.find("points");
  if (points == nullptr || !points->is_number() || points->as_number() < 0)
    throw std::runtime_error("serve: sweep header without a point count");
  const auto n = static_cast<std::size_t>(points->as_number());

  SweepReply reply;
  reply.records.resize(n);
  reply.from_cache.assign(n, 0);
  std::vector<char> seen(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::string line;
    if (!reader_.next(&line))
      throw std::runtime_error("serve: connection lost mid-sweep");
    PointLine point;
    if (!decode_point_line(util::Json::parse(line), &point) ||
        point.index >= n || seen[point.index])
      throw std::runtime_error("serve: malformed sweep point line");
    reply.records[point.index] = std::move(point.record);
    reply.from_cache[point.index] = point.from_cache ? 1 : 0;
    seen[point.index] = 1;
  }
  std::string line;
  if (!reader_.next(&line))
    throw std::runtime_error("serve: connection lost before the trailer");
  const util::Json trailer = util::Json::parse(line);
  const util::Json* done = trailer.find("done");
  if (done == nullptr || !done->is_bool() || !done->as_bool())
    throw std::runtime_error("serve: sweep response ended without done");
  if (const util::Json* hits = trailer.find("cache_hits");
      hits != nullptr && hits->is_number())
    reply.cache_hits = static_cast<std::uint64_t>(hits->as_number());
  if (const util::Json* hits = trailer.find("dedup_hits");
      hits != nullptr && hits->is_number())
    reply.dedup_hits = static_cast<std::uint64_t>(hits->as_number());
  return reply;
}

}  // namespace pas::serve
