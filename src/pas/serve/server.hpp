// Server — the pasim_serve front end: listeners, connection threads,
// request dispatch (DESIGN.md §13).
//
// A Server owns one Broker and serves the line protocol
// (pas/serve/protocol.hpp) over a Unix-domain socket, a localhost TCP
// port, or both. Each connection gets a thread; requests on one
// connection are sequential (the protocol is request/response), while
// sweeps from different connections run concurrently and dedup inside
// the broker. A malformed request line costs an error response, never
// the connection; a vanished client costs the connection, never the
// server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pas/serve/broker.hpp"
#include "pas/serve/socket.hpp"

namespace pas::serve {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_socket;
  /// >= 0 enables the 127.0.0.1 TCP listener (0 = ephemeral port).
  int tcp_port = -1;
  BrokerOptions broker;
  /// When set, the full metrics registry (volatile rows included —
  /// serving traffic is wall-clock shaped) is written here on stop().
  std::string metrics_csv;
  /// Other brokers' advertised identities (host:port). Non-empty
  /// joins the shard fabric (DESIGN.md §15) — requires the TCP
  /// listener (peers dial back on it).
  std::vector<std::string> peers;
  /// The identity this broker is reachable at, spelled exactly as the
  /// peers spell it in their --peer flags. Empty derives
  /// 127.0.0.1:<bound tcp port> — right for single-host fabrics.
  std::string advertise;
};

class Server {
 public:
  /// Binds the listeners, starts the broker and the accept threads.
  /// Throws std::invalid_argument when no listener is configured and
  /// std::runtime_error on bind failures.
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound TCP port (-1 when TCP is disabled).
  int tcp_port() const { return bound_tcp_port_; }
  Broker& broker() { return broker_; }

  /// Blocks until a client sends {"op":"shutdown"} or stop() is called.
  void wait();

  /// wait() bounded to `timeout_s`; true when shutdown was requested
  /// (or the server already stopped). The tool's signal-polling loop.
  bool wait_for(double timeout_s);

  /// Idempotent orderly stop: unblocks every accept loop and open
  /// connection, joins all threads, writes metrics_csv.
  void stop();

 private:
  void accept_loop(const Fd* listener);
  void handle_connection(std::shared_ptr<Fd> conn);
  void handle_sweep(const util::Json& request, const Fd& conn);
  std::string stats_line();

  ServerOptions opts_;
  Broker broker_;
  Fd unix_listener_;
  Fd tcp_listener_;
  int bound_tcp_port_ = -1;

  std::atomic<bool> stop_{false};
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::shared_ptr<Fd>> conns_;
  std::vector<std::thread> accept_threads_;

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;  ///< stop() already ran to completion

  // Resolved at construction (fork safety — see pas/serve/broker.hpp).
  obs::Counter& requests_;
  obs::Counter& connections_;
  obs::Counter& protocol_errors_;
  obs::Counter& cas_served_;
  obs::Counter& cas_rejected_;
  obs::Histogram& request_seconds_;
};

}  // namespace pas::serve
