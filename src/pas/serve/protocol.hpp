// The pasim_serve wire protocol: newline-delimited JSON over a
// Unix-domain or localhost-TCP stream (DESIGN.md §13).
//
// Requests, one JSON object per line:
//
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//   {"op":"sweep","spec":{...}}     spec = canonical SweepSpec JSON
//
// Peer-fabric requests (DESIGN.md §15 — brokers talking to brokers):
//
//   {"op":"cas.get","kind":"record"|"ledger","key":K}
//   {"op":"cas.put","kind":"record","key":K,"payload":P,"sum":H}
//   {"op":"steal"}
//
// Responses:
//
//   ping / shutdown   {"ok":true,"op":<op>}
//   stats             {"ok":true,"op":"stats","stats":{...}}
//   any error         {"ok":false,"error":<message>}
//   sweep             a header line
//                       {"ok":true,"op":"sweep","points":N}
//                     then N point lines in grid order (nodes-major,
//                     frequency-minor — the exact order an offline
//                     SweepExecutor::run() emits), then a trailer
//                       {"done":true,"points":N,
//                        "cache_hits":H,"dedup_hits":D}
//   cas.get           {"ok":true,"op":"cas.get","hit":true,
//                      "payload":P,"sum":H}   (or "hit":false)
//   cas.put           {"ok":true,"op":"cas.put"}
//   steal             {"ok":true,"op":"steal","column":{...}|null}
//
// CAS payloads are the RunCache canonical encodings embedded in a
// JSON string — encode_ledger for ledgers, and for records the sweep
// journal's status/error framing around encode_record (deterministic
// failures are journal material and must survive the wire with their
// status intact; bare encode_record cannot carry one). `sum` is the
// fnv1a-64 of the payload bytes in fixed 16-hex spelling — verified by
// the receiving side on both get and put, so a corrupt or tampered
// entry can never cross hosts into a cache.
//
// Each point line carries the full RunRecord in the same framed
// encoding (status/error around the hex-float RunCache bytes) embedded
// in a JSON string, so the record a client decodes is bit-identical —
// status and diagnostic included — to what an offline sweep of the
// same spec produces. The byte-identical-artifacts oracle rests on
// this transport being exact.
#pragma once

#include <cstddef>
#include <string>

#include "pas/analysis/run_matrix.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

/// {"ok":false,"error":<message>} plus the terminating newline.
std::string error_line(const std::string& message);

/// {"ok":true,"op":<op>} plus the terminating newline.
std::string ok_line(const std::string& op);

/// One decoded sweep-response point.
struct PointLine {
  std::size_t index = 0;
  bool from_cache = false;
  analysis::RunRecord record;
};

/// Serializes grid point `index` (newline included). `from_cache`
/// tells the client whether the broker answered from the shared
/// run cache / journal instead of simulating.
std::string encode_point_line(std::size_t index,
                              const analysis::RunRecord& record,
                              bool from_cache);

/// Parses what encode_point_line produced. False on any missing,
/// mistyped or undecodable member.
bool decode_point_line(const util::Json& line, PointLine* out);

/// The CAS content checksum: fnv1a-64 of the payload bytes, fixed
/// 16-hex spelling (matches the run-cache entry `sum` line).
std::string cas_checksum(const std::string& payload);

/// Pulls `payload` out of a CAS message (a cas.put request or a
/// cas.get hit reply) and verifies its `sum`. False on a missing or
/// mistyped member; *verified=false (with the payload still returned)
/// on a checksum mismatch, so callers can quarantine the bytes.
bool decode_cas_payload(const util::Json& msg, std::string* payload,
                        bool* verified);

/// The cas record payload: the journal's status/error framing
/// followed by the RunCache::encode_record bytes —
///
///   status <RunStatus int>\n
///   error <bytes>\n<raw error text>\n
///   <encode_record bytes>
///
/// so a deterministic-failure record crosses hosts exactly as it
/// crosses a journal, status and diagnostic intact.
std::string cas_encode_record(const analysis::RunRecord& record);

/// Parses what cas_encode_record produced. False on any malformed
/// field; `record` is unspecified then.
bool cas_decode_record(const std::string& payload,
                       analysis::RunRecord* record);

}  // namespace pas::serve
