// The pasim_serve wire protocol: newline-delimited JSON over a
// Unix-domain or localhost-TCP stream (DESIGN.md §13).
//
// Requests, one JSON object per line:
//
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//   {"op":"sweep","spec":{...}}     spec = canonical SweepSpec JSON
//
// Responses:
//
//   ping / shutdown   {"ok":true,"op":<op>}
//   stats             {"ok":true,"op":"stats","stats":{...}}
//   any error         {"ok":false,"error":<message>}
//   sweep             a header line
//                       {"ok":true,"op":"sweep","points":N}
//                     then N point lines in grid order (nodes-major,
//                     frequency-minor — the exact order an offline
//                     SweepExecutor::run() emits), then a trailer
//                       {"done":true,"points":N,
//                        "cache_hits":H,"dedup_hits":D}
//
// Each point line carries the full RunRecord as the RunCache canonical
// encoding (hex-float fields) embedded in a JSON string, so the record
// a client decodes is bit-identical to what an offline sweep of the
// same spec produces — the byte-identical-artifacts oracle rests on
// this transport being exact.
#pragma once

#include <cstddef>
#include <string>

#include "pas/analysis/run_matrix.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

/// {"ok":false,"error":<message>} plus the terminating newline.
std::string error_line(const std::string& message);

/// {"ok":true,"op":<op>} plus the terminating newline.
std::string ok_line(const std::string& op);

/// One decoded sweep-response point.
struct PointLine {
  std::size_t index = 0;
  bool from_cache = false;
  analysis::RunRecord record;
};

/// Serializes grid point `index` (newline included). `from_cache`
/// tells the client whether the broker answered from the shared
/// run cache / journal instead of simulating.
std::string encode_point_line(std::size_t index,
                              const analysis::RunRecord& record,
                              bool from_cache);

/// Parses what encode_point_line produced. False on any missing,
/// mistyped or undecodable member.
bool decode_point_line(const util::Json& line, PointLine* out);

}  // namespace pas::serve
