// Client — the pasim_serve line-protocol client library, used by the
// pasim_client tool and the serve tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pas/analysis/run_matrix.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/serve/socket.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

struct ClientOptions {
  /// Unix-domain socket path; wins over TCP when both are set.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
};

/// One decoded sweep response.
struct SweepReply {
  /// Grid order, bit-identical to an offline run of the same spec.
  std::vector<analysis::RunRecord> records;
  std::vector<char> from_cache;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_hits = 0;
};

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit Client(const ClientOptions& opts);

  /// Retries ping-connects until the server answers or `timeout_s`
  /// elapses — the "wait for the server to come up" helper.
  static bool wait_ready(const ClientOptions& opts, double timeout_s);

  /// True when the server answers {"op":"ping"}.
  bool ping();

  /// The server's {"op":"stats"} payload (the "stats" member).
  util::Json stats();

  /// Asks the server to exit its wait() loop. True on acknowledgement.
  bool shutdown_server();

  /// Submits the spec's document half and blocks for the full
  /// response. Throws std::runtime_error on a protocol error, a server
  /// error response, or a lost connection.
  SweepReply sweep(const analysis::SweepSpec& spec);

 private:
  util::Json request(const util::Json& body);

  Fd fd_;
  LineReader reader_;
};

}  // namespace pas::serve
