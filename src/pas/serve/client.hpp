// Client — the pasim_serve line-protocol client library, used by the
// pasim_client tool and the serve tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pas/analysis/run_matrix.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/serve/socket.hpp"
#include "pas/util/json.hpp"

namespace pas::serve {

struct ClientOptions {
  /// Unix-domain socket path; wins over TCP when both are set.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  /// Reconnect attempts after a refused/reset connect (a server that
  /// is restarting, or a listen backlog burst). Each retry backs off
  /// exponentially from `connect_backoff_s`; other connect errors
  /// (bad address, permission) never retry.
  int connect_retries = 0;
  double connect_backoff_s = 0.05;
  /// Bounds every read on the connection (SO_RCVTIMEO); <= 0 waits
  /// forever. Set by brokers forwarding sweeps to peers, so a hung
  /// peer costs a timeout instead of a wedged thread.
  double recv_timeout_s = 0.0;
};

/// One decoded sweep response.
struct SweepReply {
  /// Grid order, bit-identical to an offline run of the same spec.
  std::vector<analysis::RunRecord> records;
  std::vector<char> from_cache;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_hits = 0;
};

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit Client(const ClientOptions& opts);

  /// Retries ping-connects until the server answers or `timeout_s`
  /// elapses — the "wait for the server to come up" helper.
  static bool wait_ready(const ClientOptions& opts, double timeout_s);

  /// True when the server answers {"op":"ping"}.
  bool ping();

  /// The server's {"op":"stats"} payload (the "stats" member).
  util::Json stats();

  /// Asks the server to exit its wait() loop. True on acknowledgement.
  bool shutdown_server();

  /// Submits the spec's document half and blocks for the full
  /// response. Throws std::runtime_error on a protocol error, a server
  /// error response, or a lost connection. `forwarded` marks the
  /// request as broker-to-broker: the receiving broker executes it
  /// locally instead of re-entering the peer fabric.
  SweepReply sweep(const analysis::SweepSpec& spec, bool forwarded = false);

  /// Unblocks any thread parked in this client's recv (thread-safe);
  /// the next read fails. For stop paths that must not wait out a
  /// recv timeout.
  void abort() const { fd_.shutdown_both(); }

 private:
  util::Json request(const util::Json& body);

  Fd fd_;
  LineReader reader_;
};

}  // namespace pas::serve
