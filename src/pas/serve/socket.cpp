#include "pas/serve/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "pas/util/format.hpp"

namespace pas::serve {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error(
      util::strf("%s: %s", what.c_str(), std::strerror(errno)));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error(util::strf(
        "unix socket path \"%s\" exceeds the %zu-byte sun_path limit",
        path.c_str(), sizeof(addr.sun_path) - 1));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error(
        util::strf("\"%s\" is not an IPv4 address", host.c_str()));
  return addr;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

Fd::~Fd() { reset(); }

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  // A server that died uncleanly leaves its socket file behind;
  // binding over it needs the unlink first.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    raise_errno(util::strf("bind(%s)", path.c_str()));
  if (::listen(fd.get(), 64) != 0)
    raise_errno(util::strf("listen(%s)", path.c_str()));
  return fd;
}

Fd listen_tcp(int port, int* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) raise_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_tcp_addr("127.0.0.1", port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    raise_errno(util::strf("bind(127.0.0.1:%d)", port));
  if (::listen(fd.get(), 64) != 0)
    raise_errno(util::strf("listen(127.0.0.1:%d)", port));
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0)
      raise_errno("getsockname");
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    throw ConnectError(
        util::strf("connect(%s): %s", path.c_str(), std::strerror(err)), err);
  }
  return fd;
}

Fd connect_tcp(const std::string& host, int port) {
  const sockaddr_in addr = make_tcp_addr(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) raise_errno("socket(AF_INET)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    throw ConnectError(util::strf("connect(%s:%d): %s", host.c_str(), port,
                                  std::strerror(err)),
                       err);
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_recv_timeout(const Fd& fd, double timeout_s) {
  timeval tv{};
  if (timeout_s > 0.0) {
    tv.tv_sec = static_cast<time_t>(timeout_s);
    tv.tv_usec = static_cast<suseconds_t>((timeout_s - tv.tv_sec) * 1e6);
  }
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Fd accept_with_timeout(const Fd& listener, double timeout_s) {
  pollfd pfd{listener.get(), POLLIN, 0};
  const int ms = static_cast<int>(timeout_s * 1000.0);
  const int n = ::poll(&pfd, 1, ms);
  if (n == 0) return Fd();
  if (n < 0) {
    if (errno == EINTR) return Fd();
    raise_errno("poll(listener)");
  }
  const int conn = ::accept(listener.get(), nullptr, nullptr);
  if (conn < 0) {
    // The peer can abort between poll and accept; that is its
    // problem, not the accept loop's.
    if (errno == ECONNABORTED || errno == EINTR || errno == EAGAIN ||
        errno == EINVAL)
      return Fd();
    raise_errno("accept");
  }
  return Fd(conn);
}

bool send_all(const Fd& fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd.get(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::next(std::string* line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (buf_.size() > max_line_) return false;  // framing lost
    char chunk[65536];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace pas::serve
