#include "pas/serve/artifact_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pas/serve/protocol.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/log.hpp"

namespace pas::serve {
namespace {

/// How long a failed peer stays "down" before the next attempt. Long
/// enough that a dead broker costs one connect timeout per window,
/// short enough that a restarted one rejoins the fabric promptly.
constexpr double kCooldownSeconds = 2.0;

/// Per-request recv bound on a peer link. CAS answers are cache reads
/// — milliseconds on a healthy peer; a hung one must not wedge the
/// scheduler.
constexpr double kPeerRecvTimeoutSeconds = 10.0;

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void split_host_port(const std::string& addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
    throw std::invalid_argument("serve: peer address \"" + addr +
                                "\" is not host:port");
  *host = addr.substr(0, colon);
  const std::string port_str = addr.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || p < 1 || p > 65535)
    throw std::invalid_argument("serve: peer address \"" + addr +
                                "\" has an invalid port");
  *port = static_cast<int>(p);
}

bool reply_ok(const util::Json& reply) {
  const util::Json* ok = reply.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

}  // namespace

ArtifactStore::ArtifactStore(analysis::RunCache* cache, std::string self,
                             std::vector<std::string> peers)
    : cache_(cache),
      self_(std::move(self)),
      cas_hits_(obs::registry().counter("cas.hit")),
      cas_misses_(obs::registry().counter("cas.miss")),
      cas_bytes_(obs::registry().counter("cas.bytes")),
      cas_quarantined_(obs::registry().counter("cas.quarantined")),
      peer_failures_(obs::registry().counter("serve.peer_failures")) {
  for (std::string& addr : peers) {
    auto link = std::make_unique<Link>();
    link->addr = std::move(addr);
    split_host_port(link->addr, &link->host, &link->port);
    links_.push_back(std::move(link));
  }
}

const std::string& ArtifactStore::peer_addr(std::size_t i) const {
  return links_.at(i)->addr;
}

int ArtifactStore::owner_of(const std::string& basis) const {
  // Highest-random-weight: every broker scores (identity, basis) with
  // the same seeded hash, so all hosts agree on the winner without
  // talking. Ties (identical identity strings — a misconfiguration)
  // resolve to self for safety.
  const std::uint64_t h = util::fnv1a(basis);
  std::uint64_t best = util::fnv1a(self_, h);
  int owner = -1;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const std::uint64_t score = util::fnv1a(links_[i]->addr, h);
    if (score > best) {
      best = score;
      owner = static_cast<int>(i);
    }
  }
  return owner;
}

bool ArtifactStore::peer_alive(int peer) const {
  if (peer < 0 || peer >= static_cast<int>(links_.size())) return false;
  Link& link = *links_[peer];
  std::lock_guard<std::mutex> lock(link.mutex);
  return link.down_until <= mono_seconds();
}

std::optional<util::Json> ArtifactStore::request(int peer,
                                                 const util::Json& body) {
  if (peer < 0 || peer >= static_cast<int>(links_.size())) return std::nullopt;
  Link& link = *links_[peer];
  std::lock_guard<std::mutex> lock(link.mutex);
  if (stopping_.load(std::memory_order_relaxed)) return std::nullopt;
  const double now = mono_seconds();
  if (link.down_until > now) return std::nullopt;
  const auto fail = [&](const char* what) -> std::optional<util::Json> {
    link.fd.reset();
    link.reader.reset();
    link.down_until = mono_seconds() + kCooldownSeconds;
    peer_failures_.add();
    util::log_warn(util::strf("serve: peer %s %s; cooling down %.0f ms",
                              link.addr.c_str(), what,
                              kCooldownSeconds * 1e3));
    return std::nullopt;
  };
  if (!link.fd.valid()) {
    try {
      link.fd = connect_tcp(link.host, link.port);
    } catch (const std::exception&) {
      return fail("is unreachable");
    }
    set_recv_timeout(link.fd, kPeerRecvTimeoutSeconds);
    link.reader = std::make_unique<LineReader>(link.fd);
  }
  if (!send_all(link.fd, body.dump() + "\n")) return fail("dropped a send");
  std::string line;
  if (!link.reader->next(&line)) return fail("dropped a reply");
  try {
    return util::Json::parse(line);
  } catch (const std::exception&) {
    return fail("sent unparseable bytes");
  }
}

void ArtifactStore::quarantine_payload(const std::string& payload) {
  cas_quarantined_.add();
  if (cache_->dir().empty()) return;
  // Same .bad suffix as the run cache's own quarantine, so the LRU
  // eviction pass reclaims these files too.
  const std::string path =
      cache_->dir() + "/cas_" + cas_checksum(payload) + ".bad";
  util::atomic_write_file(path, payload);
}

std::optional<analysis::RunRecord> ArtifactStore::fetch_record(
    int peer, const std::string& key) {
  util::Json body = util::Json::object();
  body.set("op", util::Json("cas.get"));
  body.set("kind", util::Json("record"));
  body.set("key", util::Json(key));
  const std::optional<util::Json> reply = request(peer, body);
  if (!reply || !reply_ok(*reply)) {
    cas_misses_.add();
    return std::nullopt;
  }
  const util::Json* hit = reply->find("hit");
  if (hit == nullptr || !hit->is_bool() || !hit->as_bool()) {
    cas_misses_.add();
    return std::nullopt;
  }
  std::string payload;
  bool verified = false;
  if (!decode_cas_payload(*reply, &payload, &verified)) {
    cas_misses_.add();
    return std::nullopt;
  }
  cas_bytes_.add(payload.size());
  analysis::RunRecord rec;
  if (verified) verified = cas_decode_record(payload, &rec);
  if (!verified) {
    quarantine_payload(payload);
    cas_misses_.add();
    return std::nullopt;
  }
  // Mirror locally: the record lands on disk under this broker's own
  // --cache-cap eviction, and the next lookup never crosses the wire.
  // (store() drops failed records by design — a deterministic failure
  // record still answers this submission, it just stays remote.)
  cache_->store(key, rec);
  cas_hits_.add();
  return rec;
}

bool ArtifactStore::fetch_ledger(int peer, const std::string& key) {
  util::Json body = util::Json::object();
  body.set("op", util::Json("cas.get"));
  body.set("kind", util::Json("ledger"));
  body.set("key", util::Json(key));
  const std::optional<util::Json> reply = request(peer, body);
  if (!reply || !reply_ok(*reply)) {
    cas_misses_.add();
    return false;
  }
  const util::Json* hit = reply->find("hit");
  if (hit == nullptr || !hit->is_bool() || !hit->as_bool()) {
    cas_misses_.add();
    return false;
  }
  std::string payload;
  bool verified = false;
  if (!decode_cas_payload(*reply, &payload, &verified)) {
    cas_misses_.add();
    return false;
  }
  cas_bytes_.add(payload.size());
  sim::WorkLedger ledger;
  if (verified) {
    std::istringstream in(payload);
    verified = analysis::RunCache::decode_ledger(in, &ledger);
  }
  if (!verified) {
    quarantine_payload(payload);
    cas_misses_.add();
    return false;
  }
  cache_->store_ledger(key, std::move(ledger));
  cas_hits_.add();
  return true;
}

bool ArtifactStore::push_record(int peer, const std::string& key,
                                const analysis::RunRecord& record) {
  const std::string payload = cas_encode_record(record);
  util::Json body = util::Json::object();
  body.set("op", util::Json("cas.put"));
  body.set("kind", util::Json("record"));
  body.set("key", util::Json(key));
  body.set("payload", util::Json(payload));
  body.set("sum", util::Json(cas_checksum(payload)));
  const std::optional<util::Json> reply = request(peer, body);
  if (!reply || !reply_ok(*reply)) return false;
  cas_bytes_.add(payload.size());
  return true;
}

std::optional<util::Json> ArtifactStore::steal_from(int peer) {
  util::Json body = util::Json::object();
  body.set("op", util::Json("steal"));
  const std::optional<util::Json> reply = request(peer, body);
  if (!reply || !reply_ok(*reply)) return std::nullopt;
  const util::Json* column = reply->find("column");
  if (column == nullptr || !column->is_object()) return std::nullopt;
  return *column;
}

void ArtifactStore::mark_down(int peer, const char* what) {
  Link& link = *links_[peer];
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    link.down_until = mono_seconds() + kCooldownSeconds;
  }
  peer_failures_.add();
  util::log_warn(util::strf("serve: peer %s %s; cooling down %.0f ms",
                            link.addr.c_str(), what, kCooldownSeconds * 1e3));
}

bool ArtifactStore::forward_sweep(int peer, const analysis::SweepSpec& spec,
                                  double recv_timeout_s, SweepReply* reply) {
  if (peer < 0 || peer >= static_cast<int>(links_.size())) return false;
  if (stopping_.load(std::memory_order_relaxed) || !peer_alive(peer))
    return false;
  std::shared_ptr<Client> client;
  try {
    ClientOptions copts;
    copts.host = links_[peer]->host;
    copts.tcp_port = links_[peer]->port;
    copts.recv_timeout_s = recv_timeout_s;
    client = std::make_shared<Client>(copts);
  } catch (const std::exception&) {
    mark_down(peer, "refused a forwarded sweep");
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(forwards_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) return false;
    forwards_.push_back(client);
  }
  bool ok = false;
  try {
    *reply = client->sweep(spec, /*forwarded=*/true);
    ok = true;
  } catch (const std::exception&) {
    mark_down(peer, "dropped a forwarded sweep");
  }
  {
    std::lock_guard<std::mutex> lock(forwards_mutex_);
    forwards_.erase(std::remove(forwards_.begin(), forwards_.end(), client),
                    forwards_.end());
  }
  return ok;
}

void ArtifactStore::shutdown_links() {
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown (not close) from outside the link mutex: a thread parked
  // in recv on the link wakes with an error, releases the mutex, and
  // its fail path closes the fd.
  for (const std::unique_ptr<Link>& link : links_) link->fd.shutdown_both();
  std::lock_guard<std::mutex> lock(forwards_mutex_);
  for (const std::shared_ptr<Client>& client : forwards_) client->abort();
}

}  // namespace pas::serve
