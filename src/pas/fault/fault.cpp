#include "pas/fault/fault.hpp"

#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"

namespace pas::fault {
namespace {

// Fixed odd multipliers decorrelate the per-node and per-rank streams
// derived from one master seed.
constexpr std::uint64_t kNodeStream = 0xa24baed4963ee407ULL;
constexpr std::uint64_t kRankStream = 0x9fb21c651e98df25ULL;

std::string d17(double x) { return pas::util::strf("%.17g", x); }

}  // namespace

NodeFailedError::NodeFailedError(int node, double fail_time_s)
    : FaultError(pas::util::strf("node %d failed at t=%.6gs", node,
                                 fail_time_s)),
      node_(node),
      fail_time_s_(fail_time_s) {}

MessageLossError::MessageLossError(int src, int dst, int tag, int attempts)
    : FaultError(pas::util::strf(
          "message %d->%d (tag %d) lost after %d send attempt%s", src, dst,
          tag, attempts, attempts == 1 ? "" : "s")) {}

bool FaultConfig::enabled() const {
  return straggler_fraction > 0.0 || dvfs_jitter_s > 0.0 ||
         message_delay_prob > 0.0 || message_drop_prob > 0.0 ||
         node_failure_prob > 0.0;
}

std::string FaultConfig::signature() const {
  return pas::util::strf(
      "seed=%llu;strag=%s,%s;jit=%s;delay=%s,%s;drop=%s,%d,%s;fail=%s,%s",
      static_cast<unsigned long long>(seed), d17(straggler_fraction).c_str(),
      d17(straggler_slowdown).c_str(), d17(dvfs_jitter_s).c_str(),
      d17(message_delay_prob).c_str(), d17(message_delay_s).c_str(),
      d17(message_drop_prob).c_str(), max_send_attempts,
      d17(retry_backoff_s).c_str(), d17(node_failure_prob).c_str(),
      d17(node_failure_window_s).c_str());
}

FaultConfig FaultConfig::scaled(double rate, std::uint64_t seed) {
  if (rate < 0.0 || rate > 1.0)
    throw std::invalid_argument(
        pas::util::strf("fault rate %g out of [0, 1]", rate));
  FaultConfig f;
  f.seed = seed;
  f.straggler_fraction = rate;
  f.dvfs_jitter_s = rate * 100e-6;
  f.message_delay_prob = rate;
  f.message_drop_prob = rate * 0.5;
  f.node_failure_prob = rate * 0.25;
  return f;
}

FaultConfig FaultConfig::from_cli(const util::Cli& cli) {
  const double rate = cli.get_double("faults", 0.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  if (rate == 0.0) return FaultConfig{};
  return scaled(rate, seed);
}

RankFaults::RankFaults(const FaultConfig& cfg, std::uint64_t stream_seed,
                       int rank, double fail_time_s)
    : cfg_(cfg),
      active_(true),
      rank_(rank),
      fail_time_s_(fail_time_s),
      rng_(stream_seed) {}

void RankFaults::check_alive(double now) const {
  if (active_ && now >= fail_time_s_)
    throw NodeFailedError(rank_, fail_time_s_);
}

bool RankFaults::draw_drop() {
  if (!active_ || cfg_.message_drop_prob <= 0.0) return false;
  return rng_.next_double() < cfg_.message_drop_prob;
}

double RankFaults::draw_delay() {
  if (!active_ || cfg_.message_delay_prob <= 0.0) return 0.0;
  if (rng_.next_double() >= cfg_.message_delay_prob) return 0.0;
  // Delayed: uniform in [0.5, 1.5) of the mean — a second draw, made
  // only on the delayed path, so the stream stays in program order.
  return cfg_.message_delay_s * (0.5 + rng_.next_double());
}

double RankFaults::draw_dvfs_jitter() {
  if (!active_ || cfg_.dvfs_jitter_s <= 0.0) return 0.0;
  return cfg_.dvfs_jitter_s * rng_.next_double();
}

double backoff_s(double base_s, int retry) {
  if (retry < 0) retry = 0;
  if (retry > 62) retry = 62;
  return base_s * static_cast<double>(1ULL << retry);
}

double RankFaults::backoff_s(int retry) const {
  return fault::backoff_s(cfg_.retry_backoff_s, retry);
}

FaultPlan::FaultPlan(const FaultConfig& cfg, int nranks, int attempt)
    : cfg_(cfg), active_(cfg.enabled()), attempt_(attempt) {
  if (!active_) return;
  // Attempt-salted master: a retry replays a fresh schedule, but the
  // same (seed, nranks, attempt) always expands identically.
  util::SplitMix64 sm(cfg_.seed +
                      0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(attempt + 1));
  salt_ = sm.next();
  speed_.resize(static_cast<std::size_t>(nranks), 1.0);
  fail_at_.resize(static_cast<std::size_t>(nranks),
                  std::numeric_limits<double>::infinity());
  for (int n = 0; n < nranks; ++n) {
    util::Xoshiro256 rng(salt_ ^
                         (kNodeStream * static_cast<std::uint64_t>(n + 1)));
    if (rng.next_double() < cfg_.straggler_fraction)
      speed_[static_cast<std::size_t>(n)] = 1.0 - cfg_.straggler_slowdown;
    if (cfg_.node_failure_prob > 0.0 &&
        rng.next_double() < cfg_.node_failure_prob)
      fail_at_[static_cast<std::size_t>(n)] =
          rng.next_double() * cfg_.node_failure_window_s;
  }
}

double FaultPlan::speed_factor(int node) const {
  if (!active_) return 1.0;
  return speed_.at(static_cast<std::size_t>(node));
}

double FaultPlan::fail_time_s(int node) const {
  if (!active_) return std::numeric_limits<double>::infinity();
  return fail_at_.at(static_cast<std::size_t>(node));
}

RankFaults FaultPlan::rank_faults(int rank) const {
  if (!active_) return RankFaults{};
  return RankFaults(
      cfg_, salt_ ^ (kRankStream * static_cast<std::uint64_t>(rank + 1)), rank,
      fail_time_s(rank));
}

}  // namespace pas::fault
