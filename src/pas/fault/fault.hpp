// pas::fault — seeded, deterministic fault injection for the simulated
// cluster.
//
// A FaultPlan expands (FaultConfig, nranks, attempt) into per-node
// decisions (straggler skew, whole-node failure times) drawn once at
// plan creation, plus one private RankFaults stream per rank for the
// per-event draws (message drop/delay, DVFS-transition jitter). Every
// draw a rank makes happens in its own program order from its own
// stream, so a faulty run is still a pure function of the run inputs:
// the same seed produces bit-identical results at any --jobs and any
// thread interleaving (DESIGN.md §7).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "pas/util/rng.hpp"

namespace pas::util {
class Cli;
}

namespace pas::fault {

/// The repo's one exponential-backoff policy: base * 2^retry (retry is
/// 0-based, clamped to [0, 62]). Used by message-send retries here and
/// by the sweep supervisor's crashed-worker retries (SweepExecutor
/// --isolate) so both layers back off identically.
double backoff_s(double base_s, int retry);

/// Base of every fault-induced abort. SweepExecutor treats these (and
/// the runtime's DeadlockError/TimeoutError) as fail-soft: the run is
/// recorded as failed and the sweep continues.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A node reached its planned whole-node failure time.
class NodeFailedError : public FaultError {
 public:
  NodeFailedError(int node, double fail_time_s);
  int node() const { return node_; }
  double fail_time_s() const { return fail_time_s_; }

 private:
  int node_;
  double fail_time_s_;
};

/// A message was dropped on every allowed send attempt.
class MessageLossError : public FaultError {
 public:
  MessageLossError(int src, int dst, int tag, int attempts);
};

/// Knobs of the fault model. All probabilities are per-event; all rates
/// default to 0 so a default-constructed config is a perfect cluster.
struct FaultConfig {
  /// Master seed; everything below is a deterministic function of it.
  std::uint64_t seed = 0;

  // Stragglers: a fraction of nodes runs its CPU/bus slower by
  // `straggler_slowdown` (per-node decision, drawn at plan creation).
  double straggler_fraction = 0.0;
  double straggler_slowdown = 0.25;  ///< 0.25 => straggler at 75 % speed

  /// Extra per-transition latency when a per-phase DVFS schedule
  /// switches operating points, uniform in [0, dvfs_jitter_s).
  double dvfs_jitter_s = 0.0;

  // Message faults (per send attempt / per delivered message).
  double message_delay_prob = 0.0;
  double message_delay_s = 500e-6;  ///< mean extra switch delay
  double message_drop_prob = 0.0;
  int max_send_attempts = 4;        ///< total tries before MessageLossError
  double retry_backoff_s = 200e-6;  ///< first backoff; doubles per retry

  // Whole-node failure: with `node_failure_prob`, a node dies at a
  // uniform virtual time in [0, node_failure_window_s).
  double node_failure_prob = 0.0;
  double node_failure_window_s = 1.0;

  bool enabled() const;
  bool message_faults() const {
    return message_delay_prob > 0.0 || message_drop_prob > 0.0;
  }

  /// Canonical spelling of every knob (cache keys; see RunCache).
  std::string signature() const;

  /// A single-knob preset: every probability scaled from one rate, as
  /// swept by bench/resilience_sweep.
  static FaultConfig scaled(double rate, std::uint64_t seed = 1);

  /// `--faults <rate>` (the scaled() preset) and `--fault-seed <n>`.
  static FaultConfig from_cli(const util::Cli& cli);
};

/// Per-rank fault stream, handed to each Comm at run start. The
/// default-constructed instance is inactive: draws nothing, never
/// throws — the zero-overhead path for fault-free runs.
class RankFaults {
 public:
  RankFaults() = default;
  RankFaults(const FaultConfig& cfg, std::uint64_t stream_seed, int rank,
             double fail_time_s);

  bool active() const { return active_; }
  bool message_faults() const { return active_ && cfg_.message_faults(); }

  /// Throws NodeFailedError once the rank's virtual clock has reached
  /// its planned failure time.
  void check_alive(double now) const;

  /// One send attempt: true if the attempt is lost.
  bool draw_drop();
  /// Extra switch-to-receiver delay for a delivered message (0 when
  /// the message is not delayed).
  double draw_delay();
  /// Extra DVFS-transition latency, uniform in [0, dvfs_jitter_s).
  double draw_dvfs_jitter();

  int max_send_attempts() const { return cfg_.max_send_attempts; }
  /// Backoff before retry number `retry` (0-based): base * 2^retry.
  double backoff_s(int retry) const;

  /// Fault-stream position, for checkpoint capture/restore: a restored
  /// stream continues the exact draw sequence (drop/delay/jitter draws
  /// after the boundary match the uninterrupted run).
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) {
    rng_.set_state(s);
  }

 private:
  FaultConfig cfg_;
  bool active_ = false;
  int rank_ = 0;
  double fail_time_s_ = std::numeric_limits<double>::infinity();
  util::Xoshiro256 rng_{0};
};

/// The expanded fault schedule of one run attempt. Construction draws
/// all per-node decisions; rank_faults() derives the per-rank streams.
class FaultPlan {
 public:
  /// Inactive plan (perfect cluster).
  FaultPlan() = default;
  /// `attempt` salts the seed so a sweep-level retry of a transient
  /// fault replays a *different* (but still deterministic) schedule.
  FaultPlan(const FaultConfig& cfg, int nranks, int attempt = 0);

  bool active() const { return active_; }
  int attempt() const { return attempt_; }

  /// CPU/bus speed multiplier of `node` (1.0, or 1-slowdown for a
  /// straggler).
  double speed_factor(int node) const;
  /// Virtual time at which `node` dies (+inf if it survives).
  double fail_time_s(int node) const;

  RankFaults rank_faults(int rank) const;

 private:
  FaultConfig cfg_;
  bool active_ = false;
  int attempt_ = 0;
  std::uint64_t salt_ = 0;
  std::vector<double> speed_;
  std::vector<double> fail_at_;
};

}  // namespace pas::fault
