#include "pas/power/power_model.hpp"

#include "pas/util/format.hpp"

namespace pas::power {

PowerModel::PowerModel(PowerModelConfig cfg) : cfg_(cfg) {}

double PowerModel::cpu_power_w(const sim::OperatingPoint& p) const {
  const double dynamic = cfg_.c_eff_farad * p.voltage_v * p.voltage_v *
                         p.frequency_hz;
  const double leakage = cfg_.leakage_w_per_v * p.voltage_v;
  return dynamic + leakage;
}

double PowerModel::node_power_w(sim::Activity activity,
                                const sim::OperatingPoint& p) const {
  const double cpu_full = cpu_power_w(p);
  switch (activity) {
    case sim::Activity::kCpu:
      return cfg_.base_w + cpu_full;
    case sim::Activity::kMemory:
      // The core stalls (little switching) but DRAM is hot.
      return cfg_.base_w + cfg_.idle_cpu_factor * cpu_full +
             cfg_.memory_active_w;
    case sim::Activity::kNetwork:
      return cfg_.base_w + cfg_.network_cpu_factor * cpu_full +
             cfg_.network_active_w;
    case sim::Activity::kIdle:
      return cfg_.base_w + cfg_.idle_cpu_factor * cpu_full;
  }
  return cfg_.base_w;
}

std::string PowerModel::to_string() const {
  return pas::util::strf(
      "C_eff=%.2g F, leak=%.2g W/V, base=%.1f W, mem+%.1f W, net+%.1f W",
      cfg_.c_eff_farad, cfg_.leakage_w_per_v, cfg_.base_w,
      cfg_.memory_active_w, cfg_.network_active_w);
}

}  // namespace pas::power
