// Node power model for the simulated power-aware cluster.
//
// The paper's testbed has no numbered power table beyond the
// voltage/frequency pairs of Table 2; its conclusion couples the
// speedup model with an energy-delay metric. Hardware watt meters are
// unavailable here (see DESIGN.md §2), so we substitute the standard
// CMOS model:
//
//   P_cpu_dyn(f) = C_eff * V(f)^2 * f          (dynamic, DVFS-sensitive)
//   P_cpu_leak(V) = k_leak * V                 (first-order leakage)
//   P_node = P_base + P_cpu + activity adders  (DRAM / NIC activity)
//
// C_eff is calibrated so the top operating point matches the
// Pentium M 1.4 GHz TDP-class power (~21 W core).
#pragma once

#include <string>

#include "pas/sim/operating_point.hpp"
#include "pas/sim/virtual_clock.hpp"

namespace pas::power {

struct PowerModelConfig {
  /// Effective switched capacitance (F). 6.8e-9 puts the 1.4 GHz /
  /// 1.484 V point at ~21 W dynamic.
  double c_eff_farad = 6.8e-9;
  /// First-order leakage coefficient (W per volt).
  double leakage_w_per_v = 1.5;
  /// Node baseline excluding CPU: chipset, DRAM refresh, NIC, fans.
  /// Laptop-class nodes (Inspiron 8600) — low enough that CPU dynamic
  /// power dominates, the regime in which DVFS saves energy (the
  /// premise of the paper's power-aware cluster).
  double base_w = 6.0;
  /// Extra draw while stalled on DRAM traffic.
  double memory_active_w = 4.0;
  /// Extra draw while the NIC / network stack is busy.
  double network_active_w = 2.0;
  /// CPU activity factor while waiting on the network (the CPU spins
  /// or naps; MPICH-era progress engines poll).
  double network_cpu_factor = 0.35;
  /// CPU activity factor while idle at a sync point.
  double idle_cpu_factor = 0.15;

  static PowerModelConfig pentium_m_node() { return PowerModelConfig{}; }
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig cfg = PowerModelConfig::pentium_m_node());

  const PowerModelConfig& config() const { return cfg_; }

  /// Full-activity CPU power at an operating point (dynamic + leakage).
  double cpu_power_w(const sim::OperatingPoint& p) const;

  /// Whole-node draw while performing `activity` at point `p`.
  double node_power_w(sim::Activity activity,
                      const sim::OperatingPoint& p) const;

  std::string to_string() const;

 private:
  PowerModelConfig cfg_;
};

}  // namespace pas::power
