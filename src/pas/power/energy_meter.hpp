// Energy accounting over a simulated run.
//
// Consumes per-node activity profiles (seconds spent computing,
// stalled on memory, communicating, idle) — the quantities a wall-plug
// meter per node would integrate — and produces per-activity energy.
// Kept independent of the message-passing layer: callers convert their
// run reports into ActivityProfile records (see
// pas/analysis/run_matrix.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pas/power/power_model.hpp"

namespace pas::power {

/// One node's activity over a run. `makespan` padding: if the node
/// finished before the run's makespan it idles until the end (the
/// cluster is only "done" when the slowest node is).
struct ActivityProfile {
  double cpu_s = 0.0;
  double memory_s = 0.0;
  double network_s = 0.0;
  double idle_s = 0.0;

  double total() const { return cpu_s + memory_s + network_s + idle_s; }
};

struct EnergyBreakdown {
  double cpu_j = 0.0;
  double memory_j = 0.0;
  double network_j = 0.0;
  double idle_j = 0.0;

  double total_j() const { return cpu_j + memory_j + network_j + idle_j; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
  std::string to_string() const;
};

/// One node's activity at one operating point. A static-DVFS run has a
/// single slice per node; a per-phase schedule produces several.
struct FrequencySlice {
  double frequency_mhz = 0.0;
  ActivityProfile activity;
};

class EnergyMeter {
 public:
  explicit EnergyMeter(PowerModel model = PowerModel());

  const PowerModel& model() const { return model_; }

  /// Energy of one node's profile at operating point `p`, padding idle
  /// time up to `makespan` if the profile ends early.
  EnergyBreakdown measure_node(const ActivityProfile& profile,
                               const sim::OperatingPoint& p,
                               double makespan) const;

  /// Cluster energy: sum over the participating nodes' profiles.
  EnergyBreakdown measure(std::span<const ActivityProfile> profiles,
                          const sim::OperatingPoint& p,
                          double makespan) const;

  /// Energy of one node whose run is split across operating points
  /// (per-phase DVFS). Idle padding up to `makespan` is billed at the
  /// point `idle_mhz` (the application's nominal point). Frequencies
  /// are resolved against `points`; throws std::out_of_range for an
  /// unknown point.
  EnergyBreakdown measure_node_slices(std::span<const FrequencySlice> slices,
                                      const sim::OperatingPointTable& points,
                                      double makespan, double idle_mhz) const;

 private:
  PowerModel model_;
};

}  // namespace pas::power
