#include "pas/power/energy_meter.hpp"

#include <algorithm>

#include "pas/util/format.hpp"

namespace pas::power {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) {
  cpu_j += o.cpu_j;
  memory_j += o.memory_j;
  network_j += o.network_j;
  idle_j += o.idle_j;
  return *this;
}

std::string EnergyBreakdown::to_string() const {
  return pas::util::strf("E=%.1f J (cpu %.1f, mem %.1f, net %.1f, idle %.1f)",
                         total_j(), cpu_j, memory_j, network_j, idle_j);
}

EnergyMeter::EnergyMeter(PowerModel model) : model_(std::move(model)) {}

EnergyBreakdown EnergyMeter::measure_node(const ActivityProfile& profile,
                                          const sim::OperatingPoint& p,
                                          double makespan) const {
  EnergyBreakdown e;
  e.cpu_j = profile.cpu_s * model_.node_power_w(sim::Activity::kCpu, p);
  e.memory_j =
      profile.memory_s * model_.node_power_w(sim::Activity::kMemory, p);
  e.network_j =
      profile.network_s * model_.node_power_w(sim::Activity::kNetwork, p);
  const double pad = std::max(0.0, makespan - profile.total());
  e.idle_j = (profile.idle_s + pad) *
             model_.node_power_w(sim::Activity::kIdle, p);
  return e;
}

EnergyBreakdown EnergyMeter::measure_node_slices(
    std::span<const FrequencySlice> slices,
    const sim::OperatingPointTable& points, double makespan,
    double idle_mhz) const {
  EnergyBreakdown e;
  double covered = 0.0;
  for (const FrequencySlice& s : slices) {
    const sim::OperatingPoint& p = points.at_mhz(s.frequency_mhz);
    e.cpu_j += s.activity.cpu_s * model_.node_power_w(sim::Activity::kCpu, p);
    e.memory_j +=
        s.activity.memory_s * model_.node_power_w(sim::Activity::kMemory, p);
    e.network_j += s.activity.network_s *
                   model_.node_power_w(sim::Activity::kNetwork, p);
    e.idle_j +=
        s.activity.idle_s * model_.node_power_w(sim::Activity::kIdle, p);
    covered += s.activity.total();
  }
  const double pad = std::max(0.0, makespan - covered);
  e.idle_j += pad * model_.node_power_w(sim::Activity::kIdle,
                                        points.at_mhz(idle_mhz));
  return e;
}

EnergyBreakdown EnergyMeter::measure(std::span<const ActivityProfile> profiles,
                                     const sim::OperatingPoint& p,
                                     double makespan) const {
  EnergyBreakdown total;
  for (const ActivityProfile& profile : profiles)
    total += measure_node(profile, p, makespan);
  return total;
}

}  // namespace pas::power
