// Energy-delay metrics (Brooks et al. [3] in the paper) and the
// "sweet spot" search the paper motivates in §2: pick the system
// configuration (N, f) optimizing delay, energy, EDP or ED²P.
#pragma once

#include <string>
#include <vector>

namespace pas::power {

/// One evaluated system configuration.
struct MetricPoint {
  int nodes = 0;
  double frequency_mhz = 0.0;
  double time_s = 0.0;
  double energy_j = 0.0;

  double edp() const { return energy_j * time_s; }
  double ed2p() const { return energy_j * time_s * time_s; }

  std::string to_string() const;
};

enum class Objective { kDelay, kEnergy, kEnergyDelay, kEnergyDelaySquared };

const char* objective_name(Objective o);

/// Value of `p` under objective `o` (smaller is better).
double objective_value(const MetricPoint& p, Objective o);

/// Returns the best point under `o`; throws std::invalid_argument on an
/// empty set.
MetricPoint best(const std::vector<MetricPoint>& points, Objective o);

/// Ranks all points ascending by objective value.
std::vector<MetricPoint> ranked(std::vector<MetricPoint> points, Objective o);

}  // namespace pas::power
