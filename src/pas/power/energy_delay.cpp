#include "pas/power/energy_delay.hpp"

#include <algorithm>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::power {

std::string MetricPoint::to_string() const {
  return pas::util::strf(
      "N=%d f=%.0fMHz: T=%.3fs E=%.1fJ EDP=%.1f ED2P=%.1f", nodes,
      frequency_mhz, time_s, energy_j, edp(), ed2p());
}

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kDelay:
      return "delay";
    case Objective::kEnergy:
      return "energy";
    case Objective::kEnergyDelay:
      return "energy-delay (EDP)";
    case Objective::kEnergyDelaySquared:
      return "energy-delay^2 (ED2P)";
  }
  return "?";
}

double objective_value(const MetricPoint& p, Objective o) {
  switch (o) {
    case Objective::kDelay:
      return p.time_s;
    case Objective::kEnergy:
      return p.energy_j;
    case Objective::kEnergyDelay:
      return p.edp();
    case Objective::kEnergyDelaySquared:
      return p.ed2p();
  }
  return p.time_s;
}

MetricPoint best(const std::vector<MetricPoint>& points, Objective o) {
  if (points.empty())
    throw std::invalid_argument("best(): empty point set");
  return *std::min_element(points.begin(), points.end(),
                           [o](const MetricPoint& a, const MetricPoint& b) {
                             return objective_value(a, o) <
                                    objective_value(b, o);
                           });
}

std::vector<MetricPoint> ranked(std::vector<MetricPoint> points, Objective o) {
  std::stable_sort(points.begin(), points.end(),
                   [o](const MetricPoint& a, const MetricPoint& b) {
                     return objective_value(a, o) < objective_value(b, o);
                   });
  return points;
}

}  // namespace pas::power
