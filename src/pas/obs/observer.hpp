// Observer — the per-invocation observability session.
//
// One Observer collects everything a bench run wants to explain about
// itself: the deterministic per-point report rows a sweep produces,
// the harvested virtual-time traces of fresh runs, and (via the
// process-wide metrics registry) counters and histograms. At the end
// of the run, export_all() writes every configured artifact through
// the obs::Exporter interface:
//
//   run_report.json     structured sweep report   (--metrics)
//   metrics.csv         stable registry rows      (--metrics)
//   metrics_volatile.csv wall-clock diagnostics   (--metrics)
//   trace.json          Chrome trace, all points  (--trace)
//   power_timeline.csv  per-rank P(t) sampler     (--trace)
//
// Determinism contract (DESIGN.md §8): every artifact except
// metrics_volatile.csv is a pure function of the sweep's virtual-time
// results, so the bytes are identical at any --jobs. Point slots are
// reserved in grid order by begin_sweep() and filled by whichever
// worker finishes the point, so no sorting of racy data is ever
// needed.
//
// A null Observer (the default everywhere) means observability is
// off: the sweep layer skips collection entirely and the only residue
// is the registry's relaxed atomic counters.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pas/obs/metrics.hpp"
#include "pas/obs/span.hpp"
#include "pas/obs/write_result.hpp"
#include "pas/power/energy_meter.hpp"

namespace pas::util {
class Cli;
}

namespace pas::obs {

class Exporter;

struct ObsOptions {
  bool trace = false;    ///< collect + export spans and the power timeline
  bool metrics = false;  ///< export the report and the registry
  std::string dir = "pasim_obs";
  int timeline_samples = 64;  ///< per-run sample count of the P(t) CSV

  /// `--trace [dir]` / `--metrics [dir]` (a value on either flag sets
  /// the shared output directory; default `pasim_obs`).
  static ObsOptions from_cli(const util::Cli& cli);
};

/// One operating point of a registered sweep grid.
struct GridPoint {
  int nodes = 0;
  double frequency_mhz = 0.0;
  double comm_dvfs_mhz = 0.0;
};

/// The deterministic per-point report row (every field derives from
/// the canonical RunRecord, which is bit-identical at any --jobs).
struct ReportPoint {
  std::string kernel;
  int nodes = 0;
  double frequency_mhz = 0.0;
  double comm_dvfs_mhz = 0.0;
  std::string status = "ok";
  bool verified = false;
  bool from_cache = false;
  int attempts = 1;
  double seconds = 0.0;
  double mean_overhead_s = 0.0;
  double mean_cpu_s = 0.0;
  double mean_memory_s = 0.0;
  double send_retries = 0.0;
  /// Sampled estimation (DESIGN.md §14): set when the record is an
  /// extrapolated estimate. Sampled rows carry their 95% confidence
  /// intervals in the export; exact rows omit the fields entirely, so
  /// exact-mode artifacts are byte-identical to pre-sampling builds.
  bool sampled = false;
  int total_iters = 0;
  int sampled_iters = 0;
  double ci_seconds = 0.0;
  double ci_energy_j = 0.0;
  double energy_cpu_j = 0.0;
  double energy_memory_j = 0.0;
  double energy_network_j = 0.0;
  double energy_idle_j = 0.0;
  double energy_total_j() const {
    return energy_cpu_j + energy_memory_j + energy_network_j + energy_idle_j;
  }
};

class Observer {
 public:
  explicit Observer(ObsOptions opts);
  ~Observer();

  /// Null when neither --trace nor --metrics was given.
  static std::shared_ptr<Observer> from_cli(const util::Cli& cli);

  const ObsOptions& options() const { return opts_; }
  bool tracing() const { return opts_.trace; }
  bool metrics_enabled() const { return opts_.metrics; }

  /// The power model pricing the P(t) timeline (SweepExecutor sets it
  /// from its own model at construction).
  void set_power_model(const power::PowerModel& model);
  const power::EnergyMeter& meter() const { return meter_; }

  /// Registers a sweep and reserves one slot (and one trace track) per
  /// grid point. Returns the sweep id; slots are addressed by
  /// (sweep, index-in-grid), which keeps every artifact in grid order
  /// no matter which worker finishes first.
  int begin_sweep(std::string kernel, std::vector<GridPoint> grid);

  void record_point(int sweep, int index, ReportPoint point);

  /// The harvested trace of a fresh, successful simulation of
  /// (sweep, index). `trace.track` is filled in here.
  void record_run_trace(int sweep, int index, RunTrace trace);

  /// Track id of (sweep, index) — stable, assigned at begin_sweep.
  int track_of(int sweep, int index) const;

  struct PointSlot {
    bool have_point = false;
    ReportPoint point;
    bool have_trace = false;
    RunTrace trace;
  };
  struct SweepScope {
    std::string kernel;
    std::vector<GridPoint> grid;
    int track_base = 0;
    std::vector<PointSlot> slots;
  };

  /// Snapshot views. Safe to call concurrently with collection, but
  /// artifacts are only meaningful once the sweeps have drained.
  std::vector<SweepScope> sweeps() const;

  /// All spans in canonical order: per track, the point-level span
  /// first (node -1), then harvested events by (node, start, ...).
  std::vector<Span> spans() const;

  /// The structured run report (schema pasim-run-report/1).
  std::string run_report_json() const;

  /// Registers an extra exporter on top of the configured defaults.
  void add_exporter(std::unique_ptr<Exporter> exporter);

  /// Creates options().dir and runs every exporter; one WriteResult
  /// per artifact (a failed directory creation yields a single
  /// failure entry).
  std::vector<WriteResult> export_all();

  /// Seconds since this observer was constructed (wall clock; feeds
  /// the volatile span stamps).
  double wall_now_s() const;

 private:
  ObsOptions opts_;
  power::EnergyMeter meter_;
  mutable std::mutex mutex_;
  std::vector<SweepScope> sweeps_;
  int next_track_ = 0;
  std::vector<std::unique_ptr<Exporter>> exporters_;
  const long long epoch_ns_;
};

/// Convenience for bench/example main()s: export_all() on a possibly-
/// null observer, one "obs: wrote ..." line per artifact on stdout,
/// failures on stderr. Returns false if any artifact failed to write.
/// A null observer is a successful no-op.
bool export_and_report(const std::shared_ptr<Observer>& observer);

}  // namespace pas::obs
