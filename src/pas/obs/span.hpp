// Span model of the observability layer.
//
// A sweep produces one *track* per operating point (the Chrome-trace
// "process"); within a track, rank activity intervals, rank-program
// spans, DVFS-transition markers and fault markers (all harvested from
// the run's sim::Tracer) sit on one row per node, plus a point-level
// span on row -1 covering the whole run. Spans carry virtual-time
// extents — the deterministic coordinate every artifact is written in
// — and a wall-clock collection stamp that is diagnostics-only and
// never exported into deterministic artifacts (DESIGN.md §8).
#pragma once

#include <string>
#include <vector>

#include "pas/sim/operating_point.hpp"
#include "pas/sim/trace.hpp"

namespace pas::obs {

struct Span {
  int track = 0;  ///< sweep-point track (Chrome pid)
  int node = -1;  ///< rank (Chrome tid); -1 = point-level row
  double virt_start_s = 0.0;
  double virt_dur_s = 0.0;
  std::string category;
  std::string name;
  bool instant = false;
  /// Wall-clock stamp (seconds since the observer's epoch) taken when
  /// the span was collected. Volatile; excluded from exports.
  double wall_s = 0.0;
};

/// The harvested trace of one successfully simulated sweep point.
struct RunTrace {
  int track = 0;
  int nranks = 0;
  double frequency_mhz = 0.0;
  sim::OperatingPoint op;  ///< the run's static DVFS point
  double makespan_s = 0.0;
  /// Virtual-time events in canonical order (sim::sort_events).
  std::vector<sim::TraceEvent> events;
  double wall_s = 0.0;  ///< collection stamp; volatile
};

}  // namespace pas::obs
