// Per-rank power/energy timeline sampler.
//
// Walks one run's virtual-time trace events and integrates, for every
// fixed-width sample interval, how long each rank spent computing,
// stalled on memory, communicating and idle — then prices each
// interval with power::EnergyMeter at the run's operating point. The
// result is P(t) per rank: where the watts go as the paper's ON/OFF-
// chip workload split shifts with frequency and node count.
//
// Deterministic: input events are virtual-time exact and the sample
// grid is derived from the run's makespan, so the timeline is
// bit-identical at any --jobs.
#pragma once

#include <vector>

#include "pas/obs/span.hpp"
#include "pas/power/energy_meter.hpp"

namespace pas::obs {

struct PowerSample {
  int track = 0;
  int node = 0;
  double t_s = 0.0;  ///< interval start (virtual time)
  double dt_s = 0.0;
  double cpu_w = 0.0;
  double memory_w = 0.0;
  double network_w = 0.0;
  double idle_w = 0.0;
  double total_w() const { return cpu_w + memory_w + network_w + idle_w; }
  double energy_j() const { return total_w() * dt_s; }
};

/// Samples `run` on a grid of `samples` equal intervals covering
/// [0, makespan]. Trace time not covered by an activity event is
/// billed as idle (a rank that finished early idles until the
/// makespan, exactly as EnergyMeter pads aggregate profiles). Rows
/// come out in (node, t) order.
std::vector<PowerSample> sample_power_timeline(const power::EnergyMeter& meter,
                                               const RunTrace& run,
                                               int samples);

}  // namespace pas::obs
