#include "pas/obs/power_timeline.hpp"

#include <algorithm>

namespace pas::obs {

std::vector<PowerSample> sample_power_timeline(const power::EnergyMeter& meter,
                                               const RunTrace& run,
                                               int samples) {
  std::vector<PowerSample> out;
  if (samples < 1 || run.nranks < 1 || run.makespan_s <= 0.0) return out;
  const double dt = run.makespan_s / static_cast<double>(samples);
  out.reserve(static_cast<std::size_t>(run.nranks) *
              static_cast<std::size_t>(samples));

  for (int node = 0; node < run.nranks; ++node) {
    // Per-interval activity seconds for this rank. Marker events and
    // category spans (rank program, dvfs, fault) carry no activity
    // extent of their own — only the plain activity intervals recorded
    // by compute/send/recv do.
    std::vector<power::ActivityProfile> bins(
        static_cast<std::size_t>(samples));
    for (const sim::TraceEvent& e : run.events) {
      if (e.node != node || e.instant || !e.category.empty()) continue;
      const double end = e.start_s + e.duration_s;
      int first = static_cast<int>(e.start_s / dt);
      first = std::clamp(first, 0, samples - 1);
      for (int k = first; k < samples; ++k) {
        const double bin_start = static_cast<double>(k) * dt;
        if (bin_start >= end) break;
        const double overlap =
            std::min(end, bin_start + dt) - std::max(e.start_s, bin_start);
        if (overlap <= 0.0) continue;
        power::ActivityProfile& bin = bins[static_cast<std::size_t>(k)];
        switch (e.activity) {
          case sim::Activity::kCpu: bin.cpu_s += overlap; break;
          case sim::Activity::kMemory: bin.memory_s += overlap; break;
          case sim::Activity::kNetwork: bin.network_s += overlap; break;
          case sim::Activity::kIdle: bin.idle_s += overlap; break;
        }
      }
    }
    for (int k = 0; k < samples; ++k) {
      power::ActivityProfile bin = bins[static_cast<std::size_t>(k)];
      // Uncovered time in the interval is idle (finished-early slack,
      // or untraced waits).
      bin.idle_s += std::max(0.0, dt - bin.total());
      const power::EnergyBreakdown e =
          meter.measure_node(bin, run.op, /*makespan=*/dt);
      PowerSample s;
      s.track = run.track;
      s.node = node;
      s.t_s = static_cast<double>(k) * dt;
      s.dt_s = dt;
      s.cpu_w = e.cpu_j / dt;
      s.memory_w = e.memory_j / dt;
      s.network_w = e.network_j / dt;
      s.idle_w = e.idle_j / dt;
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace pas::obs
