#include "pas/obs/exporter.hpp"

#include <memory>
#include <string>
#include <vector>

#include "pas/obs/metrics.hpp"
#include "pas/obs/observer.hpp"
#include "pas/obs/power_timeline.hpp"
#include "pas/sim/trace.hpp"
#include "pas/util/format.hpp"

namespace pas::obs {
namespace {

std::string join_path(const std::string& dir, const char* file) {
  if (dir.empty()) return file;
  return dir.back() == '/' ? dir + file : dir + "/" + file;
}

class RunReportExporter final : public Exporter {
 public:
  const char* name() const override { return "run_report"; }
  WriteResult write(const Observer& obs, const std::string& dir) override {
    return write_text_file(join_path(dir, "run_report.json"),
                           obs.run_report_json());
  }
};

class ChromeTraceExporter final : public Exporter {
 public:
  const char* name() const override { return "chrome_trace"; }
  WriteResult write(const Observer& obs, const std::string& dir) override {
    std::string out = "[\n";
    bool first = true;
    auto emit = [&](const std::string& line) {
      if (!first) out += ",\n";
      first = false;
      out += line;
    };
    // One Chrome "process" per sweep point, named after the point.
    for (const Observer::SweepScope& scope : obs.sweeps()) {
      for (std::size_t i = 0; i < scope.grid.size(); ++i) {
        const GridPoint& g = scope.grid[i];
        std::string pname = util::strf("%s n=%d f=%.0f MHz",
                                       scope.kernel.c_str(), g.nodes,
                                       g.frequency_mhz);
        if (g.comm_dvfs_mhz > 0.0)
          pname += util::strf(" comm=%.0f MHz", g.comm_dvfs_mhz);
        emit(util::strf(
            R"({"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}})",
            scope.track_base + static_cast<int>(i),
            // pname is strf-built from plain fields; nothing to escape.
            pname.c_str()));
      }
    }
    for (const Span& s : obs.spans()) {
      sim::TraceEvent e;
      e.node = s.node;
      e.start_s = s.virt_start_s;
      e.duration_s = s.virt_dur_s;
      e.category = s.category;
      e.label = s.name;
      e.instant = s.instant;
      emit(sim::chrome_event_json(e, /*pid=*/s.track, /*tid=*/s.node));
    }
    out += "\n]\n";
    return write_text_file(join_path(dir, "trace.json"), out);
  }
};

class MetricsCsvExporter final : public Exporter {
 public:
  explicit MetricsCsvExporter(Stability max_stability, const char* file,
                              const char* name)
      : max_stability_(max_stability), file_(file), name_(name) {}
  const char* name() const override { return name_; }
  WriteResult write(const Observer&, const std::string& dir) override {
    return write_text_file(join_path(dir, file_),
                           registry().to_csv(max_stability_));
  }

 private:
  const Stability max_stability_;
  const char* const file_;
  const char* const name_;
};

class PowerTimelineExporter final : public Exporter {
 public:
  const char* name() const override { return "power_timeline"; }
  WriteResult write(const Observer& obs, const std::string& dir) override {
    std::string out =
        "track,node,t_s,cpu_w,memory_w,network_w,idle_w,total_w\n";
    const int samples = obs.options().timeline_samples;
    for (const Observer::SweepScope& scope : obs.sweeps()) {
      for (const Observer::PointSlot& slot : scope.slots) {
        if (!slot.have_trace) continue;
        for (const PowerSample& s :
             sample_power_timeline(obs.meter(), slot.trace, samples)) {
          out += util::strf("%d,%d,", s.track, s.node);
          out += util::strf("%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n", s.t_s,
                            s.cpu_w, s.memory_w, s.network_w, s.idle_w,
                            s.total_w());
        }
      }
    }
    return write_text_file(join_path(dir, "power_timeline.csv"), out);
  }
};

}  // namespace

std::unique_ptr<Exporter> make_run_report_exporter() {
  return std::make_unique<RunReportExporter>();
}

std::unique_ptr<Exporter> make_chrome_trace_exporter() {
  return std::make_unique<ChromeTraceExporter>();
}

std::unique_ptr<Exporter> make_metrics_csv_exporter() {
  return std::make_unique<MetricsCsvExporter>(Stability::kStable,
                                              "metrics.csv", "metrics_csv");
}

std::unique_ptr<Exporter> make_volatile_metrics_csv_exporter() {
  return std::make_unique<MetricsCsvExporter>(
      Stability::kVolatile, "metrics_volatile.csv", "metrics_volatile_csv");
}

std::unique_ptr<Exporter> make_power_timeline_exporter() {
  return std::make_unique<PowerTimelineExporter>();
}

}  // namespace pas::obs
