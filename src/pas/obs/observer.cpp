#include "pas/obs/observer.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "pas/obs/exporter.hpp"
#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"

namespace pas::obs {
namespace {

long long steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

/// Canonical double spelling for deterministic artifacts: %.17g round-
/// trips the exact bit pattern, so equal inputs give equal bytes.
std::string jnum(double v) { return util::strf("%.17g", v); }

const char* jbool(bool b) { return b ? "true" : "false"; }

}  // namespace

ObsOptions ObsOptions::from_cli(const util::Cli& cli) {
  ObsOptions o;
  o.trace = cli.has("trace");
  o.metrics = cli.has("metrics");
  // Either flag may carry the shared output directory; if both do,
  // --metrics wins (they should normally agree).
  std::string dir = cli.get("trace", "");
  const std::string mdir = cli.get("metrics", "");
  if (!mdir.empty()) dir = mdir;
  if (!dir.empty()) o.dir = dir;
  return o;
}

Observer::Observer(ObsOptions opts)
    : opts_(std::move(opts)),
      meter_(power::PowerModel()),
      epoch_ns_(steady_ns()) {
  exporters_.push_back(make_run_report_exporter());
  if (opts_.trace) {
    exporters_.push_back(make_chrome_trace_exporter());
    exporters_.push_back(make_power_timeline_exporter());
  }
  if (opts_.metrics) {
    exporters_.push_back(make_metrics_csv_exporter());
    exporters_.push_back(make_volatile_metrics_csv_exporter());
  }
}

Observer::~Observer() = default;

std::shared_ptr<Observer> Observer::from_cli(const util::Cli& cli) {
  ObsOptions o = ObsOptions::from_cli(cli);
  if (!o.trace && !o.metrics) return nullptr;
  return std::make_shared<Observer>(std::move(o));
}

void Observer::set_power_model(const power::PowerModel& model) {
  std::lock_guard<std::mutex> lock(mutex_);
  meter_ = power::EnergyMeter(model);
}

int Observer::begin_sweep(std::string kernel, std::vector<GridPoint> grid) {
  std::lock_guard<std::mutex> lock(mutex_);
  SweepScope scope;
  scope.kernel = std::move(kernel);
  scope.track_base = next_track_;
  scope.slots.resize(grid.size());
  scope.grid = std::move(grid);
  next_track_ += static_cast<int>(scope.grid.size());
  sweeps_.push_back(std::move(scope));
  return static_cast<int>(sweeps_.size()) - 1;
}

void Observer::record_point(int sweep, int index, ReportPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointSlot& slot = sweeps_.at(static_cast<std::size_t>(sweep))
                        .slots.at(static_cast<std::size_t>(index));
  slot.point = std::move(point);
  slot.have_point = true;
}

void Observer::record_run_trace(int sweep, int index, RunTrace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  SweepScope& scope = sweeps_.at(static_cast<std::size_t>(sweep));
  trace.track = scope.track_base + index;
  sim::sort_events(trace.events);
  PointSlot& slot = scope.slots.at(static_cast<std::size_t>(index));
  slot.trace = std::move(trace);
  slot.have_trace = true;
}

int Observer::track_of(int sweep, int index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweeps_.at(static_cast<std::size_t>(sweep)).track_base + index;
}

std::vector<Observer::SweepScope> Observer::sweeps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweeps_;
}

std::vector<Span> Observer::spans() const {
  std::vector<Span> out;
  for (const SweepScope& scope : sweeps()) {
    for (std::size_t i = 0; i < scope.slots.size(); ++i) {
      const PointSlot& slot = scope.slots[i];
      if (!slot.have_point) continue;
      const ReportPoint& p = slot.point;
      const int track = scope.track_base + static_cast<int>(i);

      Span top;
      top.track = track;
      top.node = -1;
      top.virt_start_s = 0.0;
      top.virt_dur_s = p.seconds;
      top.category = "point";
      top.name = util::strf("%s n=%d f=%.0f MHz", scope.kernel.c_str(),
                            p.nodes, p.frequency_mhz);
      if (p.comm_dvfs_mhz > 0.0)
        top.name += util::strf(" comm=%.0f MHz", p.comm_dvfs_mhz);
      if (p.from_cache) top.name += " [cached]";
      out.push_back(std::move(top));

      if (p.status != "ok") {
        Span mark;
        mark.track = track;
        mark.node = -1;
        mark.virt_start_s = p.seconds;
        mark.category = "fault";
        mark.name = util::strf("failed: %s after %d attempt%s",
                               p.status.c_str(), p.attempts,
                               p.attempts == 1 ? "" : "s");
        mark.instant = true;
        out.push_back(std::move(mark));
      }

      if (!slot.have_trace) continue;
      for (const sim::TraceEvent& e : slot.trace.events) {
        Span s;
        s.track = track;
        s.node = e.node;
        s.virt_start_s = e.start_s;
        s.virt_dur_s = e.duration_s;
        s.category =
            e.category.empty() ? sim::activity_name(e.activity) : e.category;
        s.name = e.label;
        s.instant = e.instant;
        s.wall_s = slot.trace.wall_s;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

std::string Observer::run_report_json() const {
  const std::vector<SweepScope> scopes = sweeps();

  std::string points;
  std::size_t n_points = 0, n_ok = 0, n_failed = 0, n_cached = 0;
  long long run_retries = 0;
  double send_retries = 0.0, energy_total = 0.0;

  for (std::size_t s = 0; s < scopes.size(); ++s) {
    const SweepScope& scope = scopes[s];
    for (std::size_t i = 0; i < scope.slots.size(); ++i) {
      const PointSlot& slot = scope.slots[i];
      if (!slot.have_point) continue;
      const ReportPoint& p = slot.point;
      ++n_points;
      if (p.status == "ok") ++n_ok; else ++n_failed;
      if (p.from_cache) ++n_cached;
      run_retries += p.attempts - 1;
      send_retries += p.send_retries;
      energy_total += p.energy_total_j();

      if (!points.empty()) points += ",\n";
      points += "    {";
      points += util::strf("\"sweep\":%zu,\"index\":%zu,", s, i);
      points += "\"kernel\":" + jstr(p.kernel) + ",";
      points += util::strf("\"nodes\":%d,", p.nodes);
      points += "\"frequency_mhz\":" + jnum(p.frequency_mhz) + ",";
      points += "\"comm_dvfs_mhz\":" + jnum(p.comm_dvfs_mhz) + ",";
      points += "\"status\":" + jstr(p.status) + ",";
      points += util::strf("\"verified\":%s,", jbool(p.verified));
      points += util::strf("\"from_cache\":%s,", jbool(p.from_cache));
      points += util::strf("\"attempts\":%d,", p.attempts);
      points += "\"seconds\":" + jnum(p.seconds) + ",";
      points += "\"mean_overhead_s\":" + jnum(p.mean_overhead_s) + ",";
      points += "\"mean_cpu_s\":" + jnum(p.mean_cpu_s) + ",";
      points += "\"mean_memory_s\":" + jnum(p.mean_memory_s) + ",";
      points += "\"send_retries\":" + jnum(p.send_retries) + ",";
      // Sampled rows only: estimates declare themselves and carry their
      // confidence intervals; exact rows stay byte-identical to
      // pre-sampling reports.
      if (p.sampled) {
        points += "\"sampled\":true,";
        points += util::strf("\"total_iters\":%d,", p.total_iters);
        points += util::strf("\"sampled_iters\":%d,", p.sampled_iters);
        points += "\"ci_seconds\":" + jnum(p.ci_seconds) + ",";
        points += "\"ci_energy_j\":" + jnum(p.ci_energy_j) + ",";
      }
      points += "\"energy_j\":{";
      points += "\"cpu\":" + jnum(p.energy_cpu_j) + ",";
      points += "\"memory\":" + jnum(p.energy_memory_j) + ",";
      points += "\"network\":" + jnum(p.energy_network_j) + ",";
      points += "\"idle\":" + jnum(p.energy_idle_j) + ",";
      points += "\"total\":" + jnum(p.energy_total_j());
      points += "}}";
    }
  }

  std::string out = "{\n";
  out += "  \"schema\": \"pasim-run-report/1\",\n";
  out += "  \"sweeps\": [\n";
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    if (s) out += ",\n";
    out += util::strf("    {\"id\":%zu,\"kernel\":%s,\"points\":%zu}", s,
                      jstr(scopes[s].kernel).c_str(), scopes[s].grid.size());
  }
  out += "\n  ],\n";
  out += "  \"points\": [\n" + points + "\n  ],\n";
  out += "  \"summary\": {";
  out += util::strf("\"points\":%zu,\"ok\":%zu,\"failed\":%zu,\"cached\":%zu,",
                    n_points, n_ok, n_failed, n_cached);
  out += util::strf("\"run_retries\":%lld,", run_retries);
  out += "\"send_retries\":" + jnum(send_retries) + ",";
  out += "\"energy_total_j\":" + jnum(energy_total);
  out += "},\n";
  out += "  \"metrics\": [\n";
  const std::vector<MetricRow> rows = registry().rows(Stability::kStable);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) out += ",\n";
    out += util::strf("    {\"name\":%s,\"kind\":%s,\"value\":%s}",
                      jstr(rows[i].name).c_str(), jstr(rows[i].kind).c_str(),
                      rows[i].value.c_str());
  }
  out += "\n  ]\n";
  out += "}\n";
  return out;
}

void Observer::add_exporter(std::unique_ptr<Exporter> exporter) {
  std::lock_guard<std::mutex> lock(mutex_);
  exporters_.push_back(std::move(exporter));
}

std::vector<WriteResult> Observer::export_all() {
  std::vector<WriteResult> results;
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  if (ec) {
    WriteResult r;
    r.path = opts_.dir;
    r.error = "create_directories: " + ec.message();
    results.push_back(std::move(r));
    return results;
  }
  // Exporters only read; the list itself is stable by export time.
  for (const std::unique_ptr<Exporter>& e : exporters_)
    results.push_back(e->write(*this, opts_.dir));
  return results;
}

double Observer::wall_now_s() const {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-9;
}

bool export_and_report(const std::shared_ptr<Observer>& observer) {
  if (!observer) return true;
  bool ok = true;
  for (const WriteResult& r : observer->export_all()) {
    if (r.ok()) {
      std::printf("obs: wrote %s (%zu bytes)\n", r.path.c_str(), r.bytes);
    } else {
      std::fprintf(stderr, "obs: FAILED %s\n", r.to_string().c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace pas::obs
