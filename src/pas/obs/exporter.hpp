// The single export surface of the observability layer.
//
// Every artifact — the structured run report, the Chrome trace, the
// metrics CSVs, the power timeline — is produced by an Exporter that
// reads an Observer snapshot and writes one file into the output
// directory, reporting a WriteResult. Benches call
// Observer::export_all() once at the end; custom sinks slot in via
// Observer::add_exporter().
#pragma once

#include <memory>
#include <string>

#include "pas/obs/write_result.hpp"

namespace pas::obs {

class Observer;

class Exporter {
 public:
  virtual ~Exporter() = default;

  /// Short identifier ("run_report", "chrome_trace", ...).
  virtual const char* name() const = 0;

  /// Writes this exporter's artifact into `dir` (which exists).
  virtual WriteResult write(const Observer& obs, const std::string& dir) = 0;
};

/// run_report.json — schema pasim-run-report/1 (sweeps, per-point
/// records, summary, stable metrics). Deterministic.
std::unique_ptr<Exporter> make_run_report_exporter();

/// trace.json — Chrome trace-event JSON; pid = sweep-point track,
/// tid = node (-1 is the point-level row). Deterministic.
std::unique_ptr<Exporter> make_chrome_trace_exporter();

/// metrics.csv — stable registry rows only. Deterministic.
std::unique_ptr<Exporter> make_metrics_csv_exporter();

/// metrics_volatile.csv — every registry row, including wall-clock
/// diagnostics. NOT deterministic across --jobs; never golden-tested.
std::unique_ptr<Exporter> make_volatile_metrics_csv_exporter();

/// power_timeline.csv — sampled per-rank P(t) for every traced run.
/// Deterministic.
std::unique_ptr<Exporter> make_power_timeline_exporter();

}  // namespace pas::obs
