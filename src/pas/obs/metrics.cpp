#include "pas/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::obs {

const char* stability_name(Stability s) {
  return s == Stability::kStable ? "stable" : "volatile";
}

namespace {

// 20 geometric buckets per decade starting at 1e-6: index i covers
// [1e-6 * 10^(i/20), 1e-6 * 10^((i+1)/20)).
int bucket_index(double x) {
  if (!(x > 1e-6)) return 0;
  const int i = static_cast<int>(20.0 * (std::log10(x) + 6.0));
  return std::clamp(i, 0, Histogram::kBuckets - 1);
}

double bucket_upper_bound(int i) {
  return 1e-6 * std::pow(10.0, (i + 1) / 20.0);
}

}  // namespace

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (snap_.count == 0) {
    snap_.min = x;
    snap_.max = x;
  } else {
    snap_.min = std::min(snap_.min, x);
    snap_.max = std::max(snap_.max, x);
  }
  ++snap_.count;
  snap_.sum += x;
  ++buckets_[bucket_index(x)];
}

double Histogram::percentile_locked(double p) const {
  if (snap_.count == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(snap_.count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank)
      return std::clamp(bucket_upper_bound(i), snap_.min, snap_.max);
  }
  return snap_.max;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s = snap_;
  s.p50 = percentile_locked(0.50);
  s.p90 = percentile_locked(0.90);
  s.p99 = percentile_locked(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  snap_ = Snapshot{};
  for (std::uint64_t& b : buckets_) b = 0;
}

Registry::Entry& Registry::entry(const std::string& name, const char* kind,
                                 Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.stability = stability;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name + "' already registered as a " +
                           it->second.kind + ", requested as a " + kind);
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, Stability stability) {
  Entry& e = entry(name, "counter", stability);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, Stability stability) {
  Entry& e = entry(name, "gauge", stability);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, Stability stability) {
  Entry& e = entry(name, "histogram", stability);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

std::vector<MetricRow> Registry::rows(Stability max_stability) const {
  std::vector<MetricRow> out;
  std::lock_guard<std::mutex> lock(mutex_);
  // std::map iterates in name order, so the rows are already sorted.
  for (const auto& [name, e] : entries_) {
    if (max_stability == Stability::kStable &&
        e.stability != Stability::kStable)
      continue;
    auto row = [&](const std::string& n, std::string value) {
      out.push_back(MetricRow{n, e.kind, e.stability, std::move(value)});
    };
    if (e.counter) {
      row(name, util::strf("%" PRIu64, e.counter->value()));
    } else if (e.gauge) {
      row(name, util::strf("%.17g", e.gauge->value()));
    } else if (e.histogram) {
      const Histogram::Snapshot s = e.histogram->snapshot();
      row(name + ".count", util::strf("%" PRIu64, s.count));
      row(name + ".sum", util::strf("%.17g", s.sum));
      row(name + ".min", util::strf("%.17g", s.min));
      row(name + ".max", util::strf("%.17g", s.max));
      row(name + ".p50", util::strf("%.17g", s.p50));
      row(name + ".p90", util::strf("%.17g", s.p90));
      row(name + ".p99", util::strf("%.17g", s.p99));
    }
  }
  return out;
}

std::string Registry::to_csv(Stability max_stability) const {
  std::string out = "metric,kind,stability,value\n";
  for (const MetricRow& r : rows(max_stability)) {
    out += r.name;
    out += ',';
    out += r.kind;
    out += ',';
    out += stability_name(r.stability);
    out += ',';
    out += r.value;
    out += '\n';
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

std::string sweep_counters_summary() {
  std::string out, ci;
  const auto append = [&out](const char* label, const std::string& value) {
    if (value == "0") return;
    if (!out.empty()) out += ", ";
    out += label;
    out += ' ';
    out += value;
  };
  bool sampled = false;
  for (const MetricRow& r : registry().rows(Stability::kStable)) {
    if (r.name == "sweep.points_repriced") {
      append("repriced", r.value);
    } else if (r.name == "sweep.points_sampled") {
      sampled = r.value != "0";
      append("sampled", r.value);
    } else if (r.name == "sweep.points_warmstarted") {
      append("warm-started", r.value);
    } else if (r.name == "sampling.ci_halfwidth_max") {
      ci = r.value;
    }
  }
  if (sampled && !ci.empty())
    out += util::strf(", max CI half-width %ss", ci.c_str());
  if (!out.empty()) out = "sweep points: " + out;
  return out;
}

}  // namespace pas::obs
