// WriteResult — the common outcome type of every artifact writer
// (CSV tables, Chrome traces, run reports). Replaces the old
// bool-plus-log-line convention so callers can no longer drop an I/O
// failure silently: the result carries the path, the bytes written and
// the error text, and converts to bool for quick checks.
//
// Header-only on purpose: pas_util (the bottom layer) returns
// WriteResult from TextTable::write_csv, so this header must not pull
// in any pas library.
#pragma once

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>

namespace pas::obs {

struct WriteResult {
  std::string path;
  std::size_t bytes = 0;
  std::string error;  ///< empty = success

  bool ok() const { return error.empty(); }
  explicit operator bool() const { return ok(); }

  /// "wrote <path> (<bytes> bytes)" or "FAILED to write <path>: <error>".
  std::string to_string() const {
    if (!ok()) return "FAILED to write " + path + ": " + error;
    return "wrote " + path + " (" + std::to_string(bytes) + " bytes)";
  }
};

/// Writes `content` to `path` (binary, whole-file). Never throws; the
/// outcome — including the errno text of an open or write failure —
/// is in the returned WriteResult.
inline WriteResult write_text_file(const std::string& path,
                                   std::string_view content) {
  WriteResult r;
  r.path = path;
  errno = 0;
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    r.error = errno != 0 ? std::strerror(errno) : "cannot open";
    return r;
  }
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  f.flush();
  if (!f) {
    r.error = errno != 0 ? std::strerror(errno) : "write failed";
    return r;
  }
  r.bytes = content.size();
  return r;
}

}  // namespace pas::obs
