// WriteResult — the common outcome type of every artifact writer
// (CSV tables, Chrome traces, run reports). Replaces the old
// bool-plus-log-line convention so callers can no longer drop an I/O
// failure silently: the result carries the path, the bytes written and
// the error text, and converts to bool for quick checks.
//
// Header-only on purpose: pas_util (the bottom layer) returns
// WriteResult from TextTable::write_csv, so this header must not pull
// in any pas library above util (pas/util/fs.hpp provides the atomic
// write primitive and lives in pas_util itself).
#pragma once

#include <cstring>
#include <string>
#include <string_view>

#include "pas/util/fs.hpp"

namespace pas::obs {

struct WriteResult {
  std::string path;
  std::size_t bytes = 0;
  std::string error;  ///< empty = success

  bool ok() const { return error.empty(); }
  explicit operator bool() const { return ok(); }

  /// "wrote <path> (<bytes> bytes)" or "FAILED to write <path>: <error>".
  std::string to_string() const {
    if (!ok()) return "FAILED to write " + path + ": " + error;
    return "wrote " + path + " (" + std::to_string(bytes) + " bytes)";
  }
};

/// Writes `content` to `path` (binary, whole-file) crash-atomically:
/// temp file + fsync + rename (util::atomic_write_file), so a killed
/// run leaves either the previous artifact or the complete new one,
/// never a truncated mix. Never throws; the outcome — including the
/// errno text of a failed step — is in the returned WriteResult.
inline WriteResult write_text_file(const std::string& path,
                                   std::string_view content) {
  WriteResult r;
  r.path = path;
  if (const int err = pas::util::atomic_write_file(path, content)) {
    r.error = std::strerror(err);
    return r;
  }
  r.bytes = content.size();
  return r;
}

}  // namespace pas::obs
