// Process-wide metrics registry.
//
// Counters, gauges and histograms are registered once by name (a mutex
// protects the name table) and then updated lock-free: the idiomatic
// call site is
//
//   static obs::Counter& drops =
//       obs::registry().counter("fault.message_drops");
//   drops.add();
//
// so hot paths pay one relaxed atomic increment and never a lock.
//
// Every metric carries a Stability tag that decides whether it may
// appear in exported artifacts:
//
//   * kStable   — derived from virtual-time-deterministic data (the
//     canonical RunRecords of a sweep). Identical at any --jobs; these
//     are what metrics.csv and run_report.json contain.
//   * kVolatile — wall-clock or schedule dependent (per-point wall
//     time, live cache hit counts, watchdog latches). Diagnostics
//     only; exporters keep them out of the deterministic artifacts
//     (see DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pas::obs {

enum class Stability {
  kStable = 0,   ///< deterministic at any --jobs; exported
  kVolatile = 1  ///< wall-clock / schedule dependent; diagnostics only
};

const char* stability_name(Stability s);

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value. Lock-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { v_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> v_{0.0};
};

/// Count / sum / min / max of observed samples plus a fixed geometric
/// bucket array for percentile estimates (per-point wall times,
/// request latencies). observe() takes a short histogram-local lock —
/// it is meant for per-run events, not per-message hot paths.
///
/// Buckets: 20 per decade over [1e-6, 1e3) (sub-microsecond samples
/// land in the first bucket, anything above 1000 in the last), so a
/// percentile estimate carries at most one bucket (~12% relative)
/// of error — plenty for latency reporting, constant memory.
class Histogram {
 public:
  // 9 decades x 20 buckets per decade.
  static constexpr int kBuckets = 180;

  void observe(double x);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double mean() const {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;

 private:
  friend class Registry;
  void reset();
  /// Rank-based estimate from the bucket array; caller holds mutex_.
  double percentile_locked(double p) const;
  mutable std::mutex mutex_;
  Snapshot snap_;
  std::uint64_t buckets_[kBuckets] = {};
};

/// One exported row of the registry (histograms expand to seven rows:
/// .count/.sum/.min/.max/.p50/.p90/.p99).
struct MetricRow {
  std::string name;
  std::string kind;  ///< "counter", "gauge" or "histogram"
  Stability stability = Stability::kVolatile;
  std::string value;  ///< canonical spelling (%llu / %.17g)
};

class Registry {
 public:
  /// Registers (first call) or finds (later calls) a metric. The
  /// returned reference stays valid for the process lifetime. A name
  /// re-registered as a different kind throws std::logic_error; the
  /// stability of the first registration wins.
  Counter& counter(const std::string& name,
                   Stability stability = Stability::kVolatile);
  Gauge& gauge(const std::string& name,
               Stability stability = Stability::kVolatile);
  Histogram& histogram(const std::string& name,
                       Stability stability = Stability::kVolatile);

  /// Deterministic snapshot: rows sorted by name. `max_stability`
  /// filters: kStable returns only stable rows (the artifact set),
  /// kVolatile returns everything.
  std::vector<MetricRow> rows(Stability max_stability) const;

  /// "metric,kind,stability,value\n..." over rows(max_stability), sorted.
  std::string to_csv(Stability max_stability) const;

  /// Zeroes every value, keeping registrations. For tests that need a
  /// clean process-wide slate (determinism golden runs).
  void reset();

 private:
  struct Entry {
    std::string kind;
    Stability stability = Stability::kVolatile;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, const char* kind, Stability stability);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// The process-wide registry.
Registry& registry();

/// One-line bench-footer summary of the sweep engine's stable
/// acceleration counters — repriced / sampled / warm-started points and
/// the maximum sampled CI half-width (DESIGN.md §10, §14). Reads the
/// registry without registering anything, so rows only appear for
/// features that actually ran; empty when none of them did.
std::string sweep_counters_summary();

}  // namespace pas::obs
