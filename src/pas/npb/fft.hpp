// In-place iterative radix-2 complex FFT (Cooley-Tukey, decimation in
// time) used by the FT kernel. Power-of-two lengths only.
#pragma once

#include <complex>
#include <cstddef>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

namespace pas::npb {

using Complex = std::complex<double>;

inline bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Precomputed twiddle factors for a fixed length (shared across rows).
class FftPlan {
 public:
  explicit FftPlan(std::size_t n) : n_(n) {
    if (!is_pow2(n)) throw std::invalid_argument("FftPlan: n must be 2^k");
    twiddles_.reserve(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double theta =
          -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
      twiddles_.emplace_back(std::cos(theta), std::sin(theta));
    }
  }

  std::size_t length() const { return n_; }

  /// Forward transform (sign -1), in place.
  void forward(std::span<Complex> data) const { transform(data, false); }

  /// Inverse transform including the 1/n scaling, in place.
  void inverse(std::span<Complex> data) const {
    transform(data, true);
    const double inv = 1.0 / static_cast<double>(n_);
    for (Complex& c : data) c *= inv;
  }

  /// log2(n) — the number of butterfly stages.
  std::size_t stages() const {
    std::size_t s = 0;
    for (std::size_t m = n_; m > 1; m >>= 1) ++s;
    return s;
  }

 private:
  void transform(std::span<Complex> data, bool invert) const {
    if (data.size() != n_) throw std::invalid_argument("FFT: bad length");
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(data[i], data[j]);
    }
    // Butterflies.
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      const std::size_t step = n_ / len;
      for (std::size_t i = 0; i < n_; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          Complex w = twiddles_[k * step];
          if (invert) w = std::conj(w);
          const Complex u = data[i + k];
          const Complex v = data[i + k + len / 2] * w;
          data[i + k] = u + v;
          data[i + k + len / 2] = u - v;
        }
      }
    }
  }

  std::size_t n_;
  std::vector<Complex> twiddles_;
};

}  // namespace pas::npb
