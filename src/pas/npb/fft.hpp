// In-place iterative radix-2 complex FFT (Cooley-Tukey, decimation in
// time) used by the FT kernel. Power-of-two lengths only.
//
// The plan caches everything derivable from the length alone: the
// bit-reversal swap list, the stage count, and both twiddle tables
// (forward and conjugated) so the butterfly loops carry no per-call
// setup and no `invert ?` branch. The butterflies are written as
// explicit real/imaginary arithmetic in exactly the evaluation order
// of std::complex operator* / operator+ — same expressions, same
// results bit for bit, but visible to the vectorizer as plain double
// loops. Do not "simplify" the w = 1 + 0i stage away: dropping the
// multiply changes the sign of zero on zero inputs.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pas::npb {

using Complex = std::complex<double>;

inline bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Precomputed twiddle factors for a fixed length (shared across rows).
class FftPlan {
 public:
  explicit FftPlan(std::size_t n) : n_(n) {
    if (!is_pow2(n)) throw std::invalid_argument("FftPlan: n must be 2^k");
    for (std::size_t m = n_; m > 1; m >>= 1) ++stages_;
    tw_re_.reserve(n / 2);
    tw_im_.reserve(n / 2);
    tw_im_conj_.reserve(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double theta =
          -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
      tw_re_.push_back(std::cos(theta));
      tw_im_.push_back(std::sin(theta));
      tw_im_conj_.push_back(-std::sin(theta));
    }
    // Bit-reversal permutation as a cached swap list: the index pairs
    // depend only on n, so compute them once instead of re-deriving
    // the reversed counter on every transform.
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j)
        rev_swaps_.emplace_back(static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(j));
    }
  }

  std::size_t length() const { return n_; }

  /// Forward transform (sign -1), in place.
  void forward(std::span<Complex> data) const {
    check_length(data.size());
    transform(reinterpret_cast<double*>(data.data()), 1, tw_im_.data());
  }

  /// Inverse transform including the 1/n scaling, in place.
  void inverse(std::span<Complex> data) const {
    check_length(data.size());
    double* d = reinterpret_cast<double*>(data.data());
    transform(d, 1, tw_im_conj_.data());
    scale(d, 1);
  }

  /// Batched forward transform over `width` independent columns stored
  /// interleaved: element r of column c lives at data[r * width + c].
  /// Each column sees exactly the arithmetic of forward() — the lanes
  /// never mix — but the inner loops walk contiguous memory, which is
  /// how fft_y tiles strided columns through a scratch buffer.
  void forward_batch(Complex* data, std::size_t width) const {
    transform(reinterpret_cast<double*>(data), width, tw_im_.data());
  }

  /// Batched inverse transform including the 1/n scaling.
  void inverse_batch(Complex* data, std::size_t width) const {
    double* d = reinterpret_cast<double*>(data);
    transform(d, width, tw_im_conj_.data());
    scale(d, width);
  }

  /// log2(n) — the number of butterfly stages (cached at construction).
  std::size_t stages() const { return stages_; }

 private:
  void check_length(std::size_t got) const {
    if (got != n_) throw std::invalid_argument("FFT: bad length");
  }

  /// Core butterfly sweep over `width` interleaved columns; `tw_im`
  /// selects the forward or conjugated twiddle table.
  void transform(double* d, std::size_t width, const double* tw_im) const {
    const double* tw_re = tw_re_.data();
    // Bit-reversal permutation: swap whole rows of `width` complexes.
    for (const auto& [i, j] : rev_swaps_) {
      double* a = d + 2 * static_cast<std::size_t>(i) * width;
      double* b = d + 2 * static_cast<std::size_t>(j) * width;
      for (std::size_t c = 0; c < 2 * width; ++c) std::swap(a[c], b[c]);
    }
    // Butterflies. v = x * w expanded in std::complex evaluation
    // order: (xr*wr - xi*wi, xr*wi + xi*wr).
    for (std::size_t len = 2, step = n_ >> 1; len <= n_; len <<= 1, step >>= 1) {
      const std::size_t half = len >> 1;
      for (std::size_t i = 0; i < n_; i += len) {
        for (std::size_t k = 0; k < half; ++k) {
          const double wr = tw_re[k * step];
          const double wi = tw_im[k * step];
          double* lo = d + 2 * (i + k) * width;
          double* hi = d + 2 * (i + k + half) * width;
          for (std::size_t c = 0; c < 2 * width; c += 2) {
            const double ur = lo[c];
            const double ui = lo[c + 1];
            const double xr = hi[c];
            const double xi = hi[c + 1];
            const double vr = xr * wr - xi * wi;
            const double vi = xr * wi + xi * wr;
            lo[c] = ur + vr;
            lo[c + 1] = ui + vi;
            hi[c] = ur - vr;
            hi[c + 1] = ui - vi;
          }
        }
      }
    }
  }

  void scale(double* d, std::size_t width) const {
    const double inv = 1.0 / static_cast<double>(n_);
    for (std::size_t c = 0; c < 2 * n_ * width; ++c) d[c] *= inv;
  }

  std::size_t n_;
  std::size_t stages_ = 0;
  std::vector<double> tw_re_;
  std::vector<double> tw_im_;
  std::vector<double> tw_im_conj_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rev_swaps_;
};

}  // namespace pas::npb
