// EP — the NPB "embarrassingly parallel" kernel.
//
// Generates 2*n uniform deviates with the NPB LCG, forms Gaussian pairs
// by Marsaglia acceptance-rejection, accumulates the sums of the
// deviates and the counts of pairs per square annulus (NPB's q table).
// Each rank skips ahead in the shared stream, so the global result is
// independent of the rank count up to floating-point summation order.
//
// Behavioural class (paper §4.2): computation-bound, tiny memory
// footprint, a single small allreduce — speedup is nearly N * f/f0.
#pragma once

#include <cstdint>

#include "pas/npb/kernel.hpp"

namespace pas::npb {

struct EpConfig {
  /// log2 of the number of Gaussian-pair trials (NPB's M). 2^24 makes
  /// the final allreduce negligible, as on the paper's class-A runs.
  int log2_pairs = 24;
  std::uint64_t seed = 271828183ULL;
  /// Trials processed per charged block; sized so the scratch buffer
  /// stays L1-resident (the kernel's defining property).
  int batch_pairs = 1024;

  std::uint64_t pairs() const { return 1ULL << log2_pairs; }
};

class EpKernel final : public Kernel {
 public:
  explicit EpKernel(EpConfig cfg = {});

  std::string name() const override { return "EP"; }
  std::string signature() const override;

  /// Control flow never reads the virtual clock and uses no timeouts:
  /// eligible for the frequency-collapse fast path.
  bool frequency_invariant_control_flow() const override { return true; }

  /// Result values (rank 0): "sx", "sy" (deviate sums), "q0".."q9"
  /// (annulus counts), "accepted". Verification recomputes a reference
  /// on rank 0 sequentially at construction-time parameters.
  KernelResult run(mpi::Comm& comm) const override;

  /// One iteration = one charged batch on the widest rank (rank 0 gets
  /// the remainder trials, so its batch count is the maximum; narrower
  /// ranks run empty iterations past their slice to keep boundaries
  /// aligned). No prefix_signature: EP's slice cache already collapses
  /// repeat grid points, so checkpoint prefix-sharing buys nothing.
  int iteration_count(int nranks) const override;
  KernelResult run_ctl(mpi::Comm& comm,
                       const IterationCtl& ctl) const override;

  const EpConfig& config() const { return cfg_; }

  /// Sequential reference (same arithmetic, single stream), used by
  /// verification and tests.
  struct Reference {
    double sx = 0.0;
    double sy = 0.0;
    double q[10] = {};
    double accepted = 0.0;
  };
  static Reference reference(const EpConfig& cfg);

 private:
  EpConfig cfg_;
};

}  // namespace pas::npb
