#include "pas/npb/lu.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

// Point-to-point channel tags. Matching is FIFO per (source, tag), so a
// single tag per logical channel keeps per-plane messages ordered.
constexpr int kTagFaceEW = 1;
constexpr int kTagFaceNS = 2;
constexpr int kTagLowerWE = 3;
constexpr int kTagLowerNS = 4;
constexpr int kTagUpperEW = 5;
constexpr int kTagUpperNS = 6;
constexpr int kTagResidEW = 7;
constexpr int kTagResidNS = 8;

/// Instruction charges per updated point.
constexpr double kStencilRefs = 11.0;
constexpr double kStreamRefs = 2.0;
constexpr double kRegOps = 12.0;

struct Tile {
  int n;             ///< global interior points per dimension
  int px, py;        ///< processor grid
  int pi, pj;        ///< my coordinates
  int tx, ty;        ///< interior tile extent in x and y
  int X, Y, Z;       ///< padded local extents (tx+2, ty+2, n+2)

  std::size_t idx(int i, int j, int k) const {
    return (static_cast<std::size_t>(i) * Y + j) * Z + k;
  }
  int rank_of(int qi, int qj) const { return qi * py + qj; }
  int west() const { return rank_of(pi - 1, pj); }
  int east() const { return rank_of(pi + 1, pj); }
  int north() const { return rank_of(pi, pj - 1); }
  int south() const { return rank_of(pi, pj + 1); }
  bool has_west() const { return pi > 0; }
  bool has_east() const { return pi < px - 1; }
  bool has_north() const { return pj > 0; }
  bool has_south() const { return pj < py - 1; }
};

/// Charges the stencil work of one k-plane of the tile.
void charge_plane(mpi::Comm& comm, const Tile& t, std::size_t array_bytes) {
  const double pts = static_cast<double>(t.tx) * t.ty;
  // Stencil lines: ~9 rows of the tile stay hot in L1 across the plane.
  charged_compute(comm, kStencilRefs * pts,
                  sim::AccessPattern{
                      .working_set_bytes =
                          static_cast<std::size_t>(9 * (t.tx + 2)) * 8,
                      .stride_bytes = 8,
                      .temporal_reuse = 2.0},
                  kRegOps * pts);
  // Plane streaming: first touches come from deeper in the hierarchy.
  charged_compute(comm, kStreamRefs * pts,
                  sim::AccessPattern{.working_set_bytes = array_bytes,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0});
}

mpi::Payload pack_x_column(const Tile& t, const std::vector<double>& u, int i) {
  mpi::Payload out;
  out.reserve(static_cast<std::size_t>(t.ty) * t.n);
  for (int j = 1; j <= t.ty; ++j)
    for (int k = 1; k <= t.n; ++k) out.push_back(u[t.idx(i, j, k)]);
  return out;
}

void unpack_x_column(const Tile& t, std::vector<double>& u, int i,
                     const mpi::Payload& data) {
  std::size_t p = 0;
  for (int j = 1; j <= t.ty; ++j)
    for (int k = 1; k <= t.n; ++k) u[t.idx(i, j, k)] = data[p++];
}

mpi::Payload pack_y_row(const Tile& t, const std::vector<double>& u, int j) {
  mpi::Payload out;
  out.reserve(static_cast<std::size_t>(t.tx) * t.n);
  for (int i = 1; i <= t.tx; ++i)
    for (int k = 1; k <= t.n; ++k) out.push_back(u[t.idx(i, j, k)]);
  return out;
}

void unpack_y_row(const Tile& t, std::vector<double>& u, int j,
                  const mpi::Payload& data) {
  std::size_t p = 0;
  for (int i = 1; i <= t.tx; ++i)
    for (int k = 1; k <= t.n; ++k) u[t.idx(i, j, k)] = data[p++];
}

}  // namespace

ProcGrid lu_proc_grid(int nranks) {
  if (nranks <= 0 || (nranks & (nranks - 1)) != 0)
    throw std::invalid_argument("LU: rank count must be a power of two");
  int bits = 0;
  for (int v = nranks; v > 1; v >>= 1) ++bits;
  ProcGrid g;
  g.px = 1 << ((bits + 1) / 2);
  g.py = 1 << (bits / 2);
  return g;
}

std::string LuKernel::signature() const {
  return pas::util::strf("LU(n=%d,iters=%d,omega=%.17g)", cfg_.n,
                         cfg_.iterations, cfg_.omega);
}

std::string LuKernel::prefix_signature() const {
  return pas::util::strf("LU(n=%d,omega=%.17g)", cfg_.n, cfg_.omega);
}

std::unique_ptr<Kernel> LuKernel::with_iterations(int iterations) const {
  LuConfig cfg = cfg_;
  cfg.iterations = iterations;
  return std::make_unique<LuKernel>(cfg);
}

LuKernel::LuKernel(LuConfig cfg) : cfg_(cfg) {
  if (cfg_.n < 4) throw std::invalid_argument("LU: n too small");
  if (cfg_.iterations < 1) throw std::invalid_argument("LU: iterations >= 1");
}

KernelResult LuKernel::run(mpi::Comm& comm) const { return run_ctl(comm, {}); }

KernelResult LuKernel::run_ctl(mpi::Comm& comm,
                               const IterationCtl& ctl) const {
  const ProcGrid grid = lu_proc_grid(comm.size());
  Tile t;
  t.n = cfg_.n;
  t.px = grid.px;
  t.py = grid.py;
  t.pi = comm.rank() / grid.py;
  t.pj = comm.rank() % grid.py;
  if (cfg_.n % grid.px != 0 || cfg_.n % grid.py != 0)
    throw std::invalid_argument(pas::util::strf(
        "LU: grid %dx%d must divide n=%d", grid.px, grid.py, cfg_.n));
  t.tx = cfg_.n / grid.px;
  t.ty = cfg_.n / grid.py;
  t.X = t.tx + 2;
  t.Y = t.ty + 2;
  t.Z = cfg_.n + 2;

  const double h = 1.0 / static_cast<double>(cfg_.n + 1);
  const double h2 = h * h;
  const double omega = cfg_.omega;
  const double pi = std::numbers::pi;

  const std::size_t local = static_cast<std::size_t>(t.X) * t.Y * t.Z;
  const std::size_t array_bytes = local * sizeof(double);
  std::vector<double> u(local, 0.0);
  std::vector<double> rhs(local, 0.0);

  // sin(pi * g h) is a pure 1D function of the global index g; tabulate
  // each axis once with the very expressions the point loops evaluated,
  // so every entry is bit-identical to the in-loop call it replaces —
  // and the products below hoist only left-associative prefixes, which
  // keeps the operation sequence (and therefore every bit) unchanged.
  std::vector<double> sin_x(static_cast<std::size_t>(t.tx) + 1, 0.0);
  for (int i = 1; i <= t.tx; ++i) {
    const double x = static_cast<double>(t.pi * t.tx + i) * h;
    sin_x[static_cast<std::size_t>(i)] = std::sin(pi * x);
  }
  std::vector<double> sin_y(static_cast<std::size_t>(t.ty) + 1, 0.0);
  for (int j = 1; j <= t.ty; ++j) {
    const double y = static_cast<double>(t.pj * t.ty + j) * h;
    sin_y[static_cast<std::size_t>(j)] = std::sin(pi * y);
  }
  std::vector<double> sin_z(static_cast<std::size_t>(t.n) + 1, 0.0);
  for (int k = 1; k <= t.n; ++k) {
    const double z = static_cast<double>(k) * h;
    sin_z[static_cast<std::size_t>(k)] = std::sin(pi * z);
  }

  // Right-hand side: f = 3 pi^2 sin(pi x) sin(pi y) sin(pi z), whose
  // exact solution is u = sin sin sin.
  for (int i = 1; i <= t.tx; ++i) {
    const double fx = 3.0 * pi * pi * sin_x[static_cast<std::size_t>(i)];
    for (int j = 1; j <= t.ty; ++j) {
      const double fxy = fx * sin_y[static_cast<std::size_t>(j)];
      for (int k = 1; k <= t.n; ++k)
        rhs[t.idx(i, j, k)] = fxy * sin_z[static_cast<std::size_t>(k)];
    }
  }
  if (ctl.start_iter == 0) {
    charged_compute(comm,
                    2.0 * static_cast<double>(cfg_.n) * t.tx * t.ty,
                    sim::AccessPattern{.working_set_bytes = array_bytes,
                                       .stride_bytes = 8,
                                       .temporal_reuse = 1.0},
                    30.0 * static_cast<double>(cfg_.n) * t.tx * t.ty);
  }

  auto residual_rms = [&]() -> double {
    // Refresh west/north ghosts with post-sweep values (east/south
    // ghosts were filled by the upper pipeline or the face exchange).
    if (t.has_east()) comm.send(t.east(), kTagResidEW, pack_x_column(t, u, t.tx));
    if (t.has_south()) comm.send(t.south(), kTagResidNS, pack_y_row(t, u, t.ty));
    if (t.has_west()) unpack_x_column(t, u, 0, comm.recv(t.west(), kTagResidEW));
    if (t.has_north()) unpack_y_row(t, u, 0, comm.recv(t.north(), kTagResidNS));

    double sumsq = 0.0;
    for (int i = 1; i <= t.tx; ++i) {
      for (int j = 1; j <= t.ty; ++j) {
        for (int k = 1; k <= t.n; ++k) {
          const double lap =
              (6.0 * u[t.idx(i, j, k)] - u[t.idx(i - 1, j, k)] -
               u[t.idx(i + 1, j, k)] - u[t.idx(i, j - 1, k)] -
               u[t.idx(i, j + 1, k)] - u[t.idx(i, j, k - 1)] -
               u[t.idx(i, j, k + 1)]) /
              h2;
          const double r = rhs[t.idx(i, j, k)] - lap;
          sumsq += r * r;
        }
      }
    }
    for (int k = 1; k <= t.n; ++k) charge_plane(comm, t, array_bytes);
    const double total = comm.allreduce_sum(sumsq);
    return std::sqrt(total / static_cast<double>(cfg_.interior_points()));
  };

  KernelResult result;
  result.name = name();
  std::vector<double> residuals;
  if (ctl.start_iter == 0) {
    residuals.push_back(residual_rms());
  } else {
    if (ctl.load == nullptr)
      throw std::logic_error("LU: resume requires checkpoint blobs");
    sim::BlobReader in(
        (*ctl.load)[static_cast<std::size_t>(comm.rank())]);
    long long iter = 0, nres = 0;
    if (!in.get_int(&iter) || iter != ctl.start_iter)
      throw std::runtime_error("LU: checkpoint boundary mismatch");
    if (!in.get_int(&nres) || nres != ctl.start_iter + 1)
      throw std::runtime_error("LU: malformed checkpoint blob");
    residuals.assign(static_cast<std::size_t>(nres), 0.0);
    if (!in.get_doubles(residuals.data(), residuals.size()) ||
        !in.get_doubles(u.data(), u.size()))
      throw std::runtime_error("LU: truncated checkpoint blob");
  }
  for (std::size_t i = 0; i < residuals.size(); ++i)
    result.values[pas::util::strf("residual_%d", static_cast<int>(i))] =
        residuals[i];

  if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, ctl.start_iter);

  for (int iter = ctl.start_iter + 1; iter <= cfg_.iterations; ++iter) {
    if (!ctl.detailed(iter)) continue;
    // --- ghost exchange: old east/south values for the lower sweep ----
    if (t.has_west()) comm.send(t.west(), kTagFaceEW, pack_x_column(t, u, 1));
    if (t.has_north()) comm.send(t.north(), kTagFaceNS, pack_y_row(t, u, 1));
    if (t.has_east())
      unpack_x_column(t, u, t.tx + 1, comm.recv(t.east(), kTagFaceEW));
    if (t.has_south())
      unpack_y_row(t, u, t.ty + 1, comm.recv(t.south(), kTagFaceNS));

    // --- lower sweep: ascending, pipelined on west/north ---------------
    for (int k = 1; k <= t.n; ++k) {
      if (t.has_west()) {
        const mpi::Payload col = comm.recv(t.west(), kTagLowerWE);
        for (int j = 1; j <= t.ty; ++j) u[t.idx(0, j, k)] = col[static_cast<std::size_t>(j - 1)];
      }
      if (t.has_north()) {
        const mpi::Payload row = comm.recv(t.north(), kTagLowerNS);
        for (int i = 1; i <= t.tx; ++i) u[t.idx(i, 0, k)] = row[static_cast<std::size_t>(i - 1)];
      }
      // i outer / j inner: within a fixed-k plane the j stride is Z
      // doubles vs Y*Z for i, so this order walks memory ~Y times
      // denser. A point reads already-updated (i-1,j) and (i,j-1) in
      // either nesting, so the Gauss-Seidel values are unchanged.
      for (int i = 1; i <= t.tx; ++i) {
        for (int j = 1; j <= t.ty; ++j) {
          const double gs =
              (u[t.idx(i - 1, j, k)] + u[t.idx(i + 1, j, k)] +
               u[t.idx(i, j - 1, k)] + u[t.idx(i, j + 1, k)] +
               u[t.idx(i, j, k - 1)] + u[t.idx(i, j, k + 1)] +
               h2 * rhs[t.idx(i, j, k)]) /
              6.0;
          u[t.idx(i, j, k)] =
              (1.0 - omega) * u[t.idx(i, j, k)] + omega * gs;
        }
      }
      charge_plane(comm, t, array_bytes);
      if (t.has_east()) {
        mpi::Payload col(static_cast<std::size_t>(t.ty));
        for (int j = 1; j <= t.ty; ++j) col[static_cast<std::size_t>(j - 1)] = u[t.idx(t.tx, j, k)];
        comm.send(t.east(), kTagLowerWE, std::move(col));
      }
      if (t.has_south()) {
        mpi::Payload row(static_cast<std::size_t>(t.tx));
        for (int i = 1; i <= t.tx; ++i) row[static_cast<std::size_t>(i - 1)] = u[t.idx(i, t.ty, k)];
        comm.send(t.south(), kTagLowerNS, std::move(row));
      }
    }

    // --- upper sweep: descending, pipelined on east/south --------------
    for (int k = t.n; k >= 1; --k) {
      if (t.has_east()) {
        const mpi::Payload col = comm.recv(t.east(), kTagUpperEW);
        for (int j = 1; j <= t.ty; ++j) u[t.idx(t.tx + 1, j, k)] = col[static_cast<std::size_t>(j - 1)];
      }
      if (t.has_south()) {
        const mpi::Payload row = comm.recv(t.south(), kTagUpperNS);
        for (int i = 1; i <= t.tx; ++i) u[t.idx(i, t.ty + 1, k)] = row[static_cast<std::size_t>(i - 1)];
      }
      // Mirror of the lower sweep: descending reads already-updated
      // (i+1,j) and (i,j+1) under either nesting.
      for (int i = t.tx; i >= 1; --i) {
        for (int j = t.ty; j >= 1; --j) {
          const double gs =
              (u[t.idx(i - 1, j, k)] + u[t.idx(i + 1, j, k)] +
               u[t.idx(i, j - 1, k)] + u[t.idx(i, j + 1, k)] +
               u[t.idx(i, j, k - 1)] + u[t.idx(i, j, k + 1)] +
               h2 * rhs[t.idx(i, j, k)]) /
              6.0;
          u[t.idx(i, j, k)] =
              (1.0 - omega) * u[t.idx(i, j, k)] + omega * gs;
        }
      }
      charge_plane(comm, t, array_bytes);
      if (t.has_west()) {
        mpi::Payload col(static_cast<std::size_t>(t.ty));
        for (int j = 1; j <= t.ty; ++j) col[static_cast<std::size_t>(j - 1)] = u[t.idx(1, j, k)];
        comm.send(t.west(), kTagUpperEW, std::move(col));
      }
      if (t.has_north()) {
        mpi::Payload row(static_cast<std::size_t>(t.tx));
        for (int i = 1; i <= t.tx; ++i) row[static_cast<std::size_t>(i - 1)] = u[t.idx(i, 1, k)];
        comm.send(t.north(), kTagUpperNS, std::move(row));
      }
    }

    residuals.push_back(residual_rms());
    result.values[pas::util::strf("residual_%d", iter)] = residuals.back();

    if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, iter);
    if (iter == ctl.stop_at) {
      sim::BlobWriter out;
      out.put_int(iter);
      out.put_int(static_cast<long long>(residuals.size()));
      out.put_doubles(residuals.data(), residuals.size());
      out.put_doubles(u.data(), u.size());
      (*ctl.save)[static_cast<std::size_t>(comm.rank())] = out.take();
      result.note = pas::util::strf("LU truncated at iteration %d", iter);
      return result;
    }
  }

  // Deviation from the exact solution sin(pi x) sin(pi y) sin(pi z).
  double err_inf = 0.0;
  for (int i = 1; i <= t.tx; ++i) {
    for (int j = 1; j <= t.ty; ++j) {
      const double exy = sin_x[static_cast<std::size_t>(i)] *
                         sin_y[static_cast<std::size_t>(j)];
      for (int k = 1; k <= t.n; ++k) {
        const double exact = exy * sin_z[static_cast<std::size_t>(k)];
        err_inf = std::fmax(err_inf, std::fabs(u[t.idx(i, j, k)] - exact));
      }
    }
  }
  result.values["error_inf"] = comm.allreduce_max(err_inf);

  if (comm.rank() == 0 && ctl.sample_period > 1) {
    // The detailed subset is a genuine consecutive-SSOR sequence, but
    // shorter than cfg_.iterations; exactness is checked by the
    // executor's --verify-sampling re-runs, not here.
    result.verified = true;
    result.note = pas::util::strf(
        "LU sampled estimate (%d of %d iterations detailed)",
        static_cast<int>(residuals.size()) - 1, cfg_.iterations);
    return result;
  }
  if (comm.rank() == 0) {
    bool monotone = true;
    for (std::size_t i = 1; i < residuals.size(); ++i)
      monotone = monotone && residuals[i] < residuals[i - 1];
    // SSOR contracts the residual by a per-iteration factor well below
    // 0.95 at sensible omega; require at least that much progress.
    const bool converging =
        residuals.back() <
        residuals.front() * std::pow(0.95, cfg_.iterations);
    result.verified = monotone && converging;
    if (result.verified) {
      result.note = pas::util::strf("residual %.3g -> %.3g over %d iters",
                                    residuals.front(), residuals.back(),
                                    cfg_.iterations);
    } else {
      result.note = pas::util::strf(
          "weak convergence: monotone=%d, residual %.3g -> %.3g",
          monotone ? 1 : 0, residuals.front(), residuals.back());
    }
  }
  return result;
}

}  // namespace pas::npb
