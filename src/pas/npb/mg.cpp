#include "pas/npb/mg.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

constexpr int kTagHaloUp = 31;
constexpr int kTagHaloDown = 32;

using Vec = std::vector<double>;

/// One level of the z-slab hierarchy.
struct Level {
  int n;   ///< interior points per dimension at this level
  int lz;  ///< local interior z-planes
  int z0;  ///< first global interior z-plane

  std::size_t size() const {
    return static_cast<std::size_t>(lz + 2) * (n + 2) * (n + 2);
  }
  std::size_t idx(int z, int y, int x) const {
    return (static_cast<std::size_t>(z + 1) * (n + 2) +
            static_cast<std::size_t>(y + 1)) *
               (n + 2) +
           static_cast<std::size_t>(x + 1);
  }
};

struct Hierarchy {
  int rank = 0;
  int nranks = 1;
  std::vector<Level> levels;
  std::vector<Vec> u;    ///< solution / correction per level
  std::vector<Vec> rhs;  ///< right-hand side / restricted residual
  std::vector<Vec> tmp;  ///< scratch (Jacobi ping buffer, residual)
};

void charge_level_pass(mpi::Comm& comm, const Level& lv, double refs_per_pt,
                       double reg_per_pt) {
  const double pts = static_cast<double>(lv.n) * lv.n * lv.lz;
  charged_compute(comm, refs_per_pt * pts,
                  sim::AccessPattern{
                      .working_set_bytes =
                          static_cast<std::size_t>(3 * (lv.n + 2)) * 8,
                      .stride_bytes = 8,
                      .temporal_reuse = 2.0},
                  reg_per_pt * pts);
  charged_compute(comm, 2.0 * pts,
                  sim::AccessPattern{.working_set_bytes = lv.size() * 8,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0});
}

void halo_exchange(mpi::Comm& comm, const Hierarchy& h, const Level& lv,
                   Vec& v) {
  auto pack = [&](int z) {
    mpi::Payload out;
    out.reserve(static_cast<std::size_t>(lv.n) * lv.n);
    for (int y = 0; y < lv.n; ++y)
      for (int x = 0; x < lv.n; ++x) out.push_back(v[lv.idx(z, y, x)]);
    return out;
  };
  auto unpack = [&](int z, const mpi::Payload& data) {
    std::size_t i = 0;
    for (int y = 0; y < lv.n; ++y)
      for (int x = 0; x < lv.n; ++x) v[lv.idx(z, y, x)] = data[i++];
  };
  const bool down = h.rank > 0;
  const bool up = h.rank + 1 < h.nranks;
  if (up) comm.send(h.rank + 1, kTagHaloUp, pack(lv.lz - 1));
  if (down) comm.send(h.rank - 1, kTagHaloDown, pack(0));
  if (down) unpack(-1, comm.recv(h.rank - 1, kTagHaloUp));
  if (up) unpack(lv.lz, comm.recv(h.rank + 1, kTagHaloDown));
}

double stencil(const Level& lv, const Vec& v, int z, int y, int x) {
  return 6.0 * v[lv.idx(z, y, x)] - v[lv.idx(z - 1, y, x)] -
         v[lv.idx(z + 1, y, x)] - v[lv.idx(z, y - 1, x)] -
         v[lv.idx(z, y + 1, x)] - v[lv.idx(z, y, x - 1)] -
         v[lv.idx(z, y, x + 1)];
}

/// Weighted-Jacobi smoothing sweeps on level `l`.
void smooth(mpi::Comm& comm, Hierarchy& h, int l, int sweeps, double w) {
  const Level& lv = h.levels[static_cast<std::size_t>(l)];
  Vec& u = h.u[static_cast<std::size_t>(l)];
  Vec& next = h.tmp[static_cast<std::size_t>(l)];
  const Vec& f = h.rhs[static_cast<std::size_t>(l)];
  for (int s = 0; s < sweeps; ++s) {
    halo_exchange(comm, h, lv, u);
    for (int z = 0; z < lv.lz; ++z) {
      for (int y = 0; y < lv.n; ++y) {
        for (int x = 0; x < lv.n; ++x) {
          const double residual = f[lv.idx(z, y, x)] - stencil(lv, u, z, y, x);
          next[lv.idx(z, y, x)] = u[lv.idx(z, y, x)] + w * residual / 6.0;
        }
      }
    }
    for (int z = 0; z < lv.lz; ++z)
      for (int y = 0; y < lv.n; ++y)
        for (int x = 0; x < lv.n; ++x)
          u[lv.idx(z, y, x)] = next[lv.idx(z, y, x)];
    charge_level_pass(comm, lv, 10.0, 10.0);
  }
}

/// Residual r = f - A u on level `l`, into h.tmp[l].
void residual(mpi::Comm& comm, Hierarchy& h, int l) {
  const Level& lv = h.levels[static_cast<std::size_t>(l)];
  Vec& u = h.u[static_cast<std::size_t>(l)];
  const Vec& f = h.rhs[static_cast<std::size_t>(l)];
  Vec& r = h.tmp[static_cast<std::size_t>(l)];
  halo_exchange(comm, h, lv, u);
  for (int z = 0; z < lv.lz; ++z)
    for (int y = 0; y < lv.n; ++y)
      for (int x = 0; x < lv.n; ++x)
        r[lv.idx(z, y, x)] = f[lv.idx(z, y, x)] - stencil(lv, u, z, y, x);
  charge_level_pass(comm, lv, 9.0, 8.0);
}

/// Restrict h.tmp[l] (fine residual) into h.rhs[l+1] by 3-D full
/// weighting centred on the coincident vertex (fine 2j+1 sits on
/// coarse j); zero h.u[l+1].
void restrict_to_coarse(mpi::Comm& comm, Hierarchy& h, int l) {
  const Level& fine = h.levels[static_cast<std::size_t>(l)];
  const Level& coarse = h.levels[static_cast<std::size_t>(l + 1)];
  Vec& r = h.tmp[static_cast<std::size_t>(l)];
  Vec& fc = h.rhs[static_cast<std::size_t>(l + 1)];
  Vec& uc = h.u[static_cast<std::size_t>(l + 1)];
  std::fill(uc.begin(), uc.end(), 0.0);
  halo_exchange(comm, h, fine, r);  // FW needs the neighbour plane

  static constexpr double w1[3] = {0.25, 0.5, 0.25};
  for (int z = 0; z < coarse.lz; ++z) {
    for (int y = 0; y < coarse.n; ++y) {
      for (int x = 0; x < coarse.n; ++x) {
        double sum = 0.0;
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx)
              sum += w1[dz + 1] * w1[dy + 1] * w1[dx + 1] *
                     r[fine.idx(2 * z + 1 + dz, 2 * y + 1 + dy,
                                2 * x + 1 + dx)];
        // Rescale: coarsening doubles h, and the unscaled 7-point
        // operator picks up a factor 4 per level.
        fc[coarse.idx(z, y, x)] = 4.0 * sum;
      }
    }
  }
  charge_level_pass(comm, fine, 3.5, 3.0);
}

/// Prolongate the coarse correction h.u[l+1] onto h.u[l] by trilinear
/// interpolation (fine 2j+1 coincides with coarse j; fine 2j averages
/// coarse j-1 and j) and add.
void prolongate_and_correct(mpi::Comm& comm, Hierarchy& h, int l) {
  const Level& fine = h.levels[static_cast<std::size_t>(l)];
  const Level& coarse = h.levels[static_cast<std::size_t>(l + 1)];
  Vec& uf = h.u[static_cast<std::size_t>(l)];
  Vec& uc = h.u[static_cast<std::size_t>(l + 1)];
  halo_exchange(comm, h, coarse, uc);  // interpolation straddles slabs

  auto accumulate = [&](int zf, int yf, int xf) {
    double value = 0.0;
    const int zc = (zf - 1) / 2, yc = (yf - 1) / 2, xc = (xf - 1) / 2;
    const bool ze = (zf % 2) == 0, ye = (yf % 2) == 0, xe = (xf % 2) == 0;
    for (int dz = 0; dz <= (ze ? 1 : 0); ++dz) {
      const double wz = ze ? 0.5 : 1.0;
      for (int dy = 0; dy <= (ye ? 1 : 0); ++dy) {
        const double wy = ye ? 0.5 : 1.0;
        for (int dx = 0; dx <= (xe ? 1 : 0); ++dx) {
          const double wx = xe ? 0.5 : 1.0;
          // For even fine indices the parents are (c, c+1) where
          // c = zf/2 - 1; for odd they coincide with index (zf-1)/2.
          const int pz = ze ? zf / 2 - 1 + dz : zc;
          const int py = ye ? yf / 2 - 1 + dy : yc;
          const int px = xe ? xf / 2 - 1 + dx : xc;
          value += wz * wy * wx * uc[coarse.idx(pz, py, px)];
        }
      }
    }
    return value;
  };
  for (int z = 0; z < fine.lz; ++z)
    for (int y = 0; y < fine.n; ++y)
      for (int x = 0; x < fine.n; ++x)
        uf[fine.idx(z, y, x)] += accumulate(z, y, x);
  charge_level_pass(comm, fine, 4.0, 4.0);
}

}  // namespace

std::string MgKernel::signature() const {
  return pas::util::strf(
      "MG(n=%d,levels=%d,cycles=%d,pre=%d,post=%d,coarse=%d,w=%.17g)", cfg_.n,
      cfg_.levels, cfg_.cycles, cfg_.pre_smooth, cfg_.post_smooth,
      cfg_.coarse_smooth, cfg_.jacobi_weight);
}

MgKernel::MgKernel(MgConfig cfg) : cfg_(cfg) {
  if (cfg_.n < 4 || (cfg_.n & (cfg_.n - 1)) != 0)
    throw std::invalid_argument("MG: n must be a power of two >= 4");
  if (cfg_.levels < 1 || cfg_.n >> (cfg_.levels - 1) < 2)
    throw std::invalid_argument("MG: too many levels for this grid");
  if (cfg_.cycles < 1) throw std::invalid_argument("MG: cycles >= 1");
}

std::string MgKernel::prefix_signature() const {
  return pas::util::strf("MG(n=%d,levels=%d,pre=%d,post=%d,coarse=%d,w=%.17g)",
                         cfg_.n, cfg_.levels, cfg_.pre_smooth,
                         cfg_.post_smooth, cfg_.coarse_smooth,
                         cfg_.jacobi_weight);
}

std::unique_ptr<Kernel> MgKernel::with_iterations(int iterations) const {
  MgConfig cfg = cfg_;
  cfg.cycles = iterations;
  return std::make_unique<MgKernel>(cfg);
}

KernelResult MgKernel::run(mpi::Comm& comm) const { return run_ctl(comm, {}); }

KernelResult MgKernel::run_ctl(mpi::Comm& comm,
                               const IterationCtl& ctl) const {
  Hierarchy h;
  h.rank = comm.rank();
  h.nranks = comm.size();
  const int coarsest_n = cfg_.n >> (cfg_.levels - 1);
  if (coarsest_n % h.nranks != 0)
    throw std::invalid_argument(pas::util::strf(
        "MG: %d ranks must divide the coarsest grid (%d planes)", h.nranks,
        coarsest_n));

  for (int l = 0; l < cfg_.levels; ++l) {
    Level lv;
    lv.n = cfg_.n >> l;
    lv.lz = lv.n / h.nranks;
    lv.z0 = h.rank * lv.lz;
    h.levels.push_back(lv);
    h.u.emplace_back(lv.size(), 0.0);
    h.rhs.emplace_back(lv.size(), 0.0);
    h.tmp.emplace_back(lv.size(), 0.0);
  }

  // Fine-level right-hand side from the exact solution
  // sin(pi x) sin(pi y) sin(pi z) through the unscaled operator.
  const Level& fine = h.levels[0];
  const double pi = std::numbers::pi;
  const double hh = 1.0 / static_cast<double>(cfg_.n + 1);
  auto exact = [&](int gx, int gy, int gz) {
    return std::sin(pi * (gx + 1) * hh) * std::sin(pi * (gy + 1) * hh) *
           std::sin(pi * (gz + 1) * hh);
  };
  {
    Vec ustar(fine.size(), 0.0);
    for (int z = -1; z <= fine.lz; ++z) {
      const int gz = fine.z0 + z;
      if (gz < 0 || gz >= cfg_.n) continue;
      for (int y = 0; y < fine.n; ++y)
        for (int x = 0; x < fine.n; ++x)
          ustar[fine.idx(z, y, x)] = exact(x, y, gz);
    }
    for (int z = 0; z < fine.lz; ++z)
      for (int y = 0; y < fine.n; ++y)
        for (int x = 0; x < fine.n; ++x)
          h.rhs[0][fine.idx(z, y, x)] = stencil(fine, ustar, z, y, x);
    // A resumed rank rebuilds the (deterministic) rhs for free — its
    // setup charge is inside the restored clock already.
    if (ctl.start_iter == 0) charge_level_pass(comm, fine, 9.0, 12.0);
  }

  auto residual_norm = [&]() {
    residual(comm, h, 0);
    double sumsq = 0.0;
    for (int z = 0; z < fine.lz; ++z)
      for (int y = 0; y < fine.n; ++y)
        for (int x = 0; x < fine.n; ++x) {
          const double r = h.tmp[0][fine.idx(z, y, x)];
          sumsq += r * r;
        }
    return std::sqrt(comm.allreduce_sum(sumsq));
  };

  KernelResult result;
  result.name = name();
  std::vector<double> norms;
  if (ctl.start_iter == 0) {
    norms.push_back(residual_norm());
  } else {
    if (ctl.load == nullptr)
      throw std::logic_error("MG: resume requires checkpoint blobs");
    sim::BlobReader in(
        (*ctl.load)[static_cast<std::size_t>(comm.rank())]);
    long long cycle = 0, nn = 0;
    if (!in.get_int(&cycle) || cycle != ctl.start_iter)
      throw std::runtime_error("MG: checkpoint boundary mismatch");
    if (!in.get_int(&nn) || nn != ctl.start_iter + 1)
      throw std::runtime_error("MG: malformed checkpoint blob");
    norms.assign(static_cast<std::size_t>(nn), 0.0);
    if (!in.get_doubles(norms.data(), norms.size()) ||
        !in.get_doubles(h.u[0].data(), h.u[0].size()))
      throw std::runtime_error("MG: truncated checkpoint blob");
  }
  for (std::size_t i = 0; i < norms.size(); ++i)
    result.values[pas::util::strf("residual_%d", static_cast<int>(i))] =
        norms[i];

  if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, ctl.start_iter);

  for (int cycle = ctl.start_iter + 1; cycle <= cfg_.cycles; ++cycle) {
    if (!ctl.detailed(cycle)) continue;
    // Down-sweep.
    for (int l = 0; l + 1 < cfg_.levels; ++l) {
      smooth(comm, h, l, cfg_.pre_smooth, cfg_.jacobi_weight);
      residual(comm, h, l);
      restrict_to_coarse(comm, h, l);
    }
    smooth(comm, h, cfg_.levels - 1, cfg_.coarse_smooth, cfg_.jacobi_weight);
    // Up-sweep.
    for (int l = cfg_.levels - 2; l >= 0; --l) {
      prolongate_and_correct(comm, h, l);
      smooth(comm, h, l, cfg_.post_smooth, cfg_.jacobi_weight);
    }
    norms.push_back(residual_norm());
    result.values[pas::util::strf("residual_%d", cycle)] = norms.back();

    if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, cycle);
    if (cycle == ctl.stop_at) {
      sim::BlobWriter out;
      out.put_int(cycle);
      out.put_int(static_cast<long long>(norms.size()));
      out.put_doubles(norms.data(), norms.size());
      out.put_doubles(h.u[0].data(), h.u[0].size());
      (*ctl.save)[static_cast<std::size_t>(comm.rank())] = out.take();
      result.note = pas::util::strf("MG truncated at cycle %d", cycle);
      return result;
    }
  }

  if (comm.rank() == 0 && ctl.sample_period > 1) {
    result.verified = true;
    result.note = pas::util::strf(
        "MG sampled estimate (%d of %d cycles detailed)",
        static_cast<int>(norms.size()) - 1, cfg_.cycles);
    return result;
  }
  if (comm.rank() == 0) {
    bool monotone = true;
    for (std::size_t i = 1; i < norms.size(); ++i)
      monotone = monotone && norms[i] < norms[i - 1];
    const bool converged = norms.back() < 0.5 * norms.front();
    result.verified = monotone && converged;
    result.note = pas::util::strf(
        "MG residual %.3g -> %.3g over %d V-cycles (monotone=%d)",
        norms.front(), norms.back(), cfg_.cycles, monotone ? 1 : 0);
  }
  return result;
}

}  // namespace pas::npb
