#include "pas/npb/ep.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <mutex>
#include <tuple>
#include <vector>

#include "pas/npb/npb_rng.hpp"
#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

/// Per-trial instruction budget (two LCG steps, the acceptance test and
/// — for accepted pairs — two log/sqrt transforms), expressed as
/// register-only work plus a handful of L1 buffer references.
constexpr double kRegOpsPerTrial = 38.0;
constexpr double kDataRefsPerTrial = 6.0;

struct Accumulator {
  double sx = 0.0;
  double sy = 0.0;
  double q[10] = {};
  double accepted = 0.0;
};

/// Processes trials [first, first+count) of the global stream.
void run_slice(std::uint64_t seed, std::uint64_t first, std::uint64_t count,
               Accumulator& acc) {
  NpbRng rng = NpbRng::at(seed, 2 * first);
  for (std::uint64_t t = 0; t < count; ++t) {
    const double u1 = rng.next();
    const double u2 = rng.next();
    const double x = 2.0 * u1 - 1.0;
    const double y = 2.0 * u2 - 1.0;
    const double r2 = x * x + y * y;
    if (r2 > 1.0 || r2 == 0.0) continue;
    const double factor = std::sqrt(-2.0 * std::log(r2) / r2);
    const double gx = x * factor;
    const double gy = y * factor;
    acc.sx += gx;
    acc.sy += gy;
    acc.accepted += 1.0;
    const double mag = std::fmax(std::fabs(gx), std::fabs(gy));
    const int bin = static_cast<int>(mag);
    if (bin >= 0 && bin < 10) acc.q[bin] += 1.0;
  }
}

/// A slice's accumulator is a pure function of (seed, first, count),
/// and the identical slice recurs at every (N, f) point of a sweep
/// that keeps N fixed — cache it the way reference() caches the
/// sequential run. Values are immutable once inserted (std::map nodes
/// are stable), so returned references stay valid without the lock.
/// The caller still issues its per-batch charges: virtual time is
/// priced the same whether the trials were replayed or recalled.
/// Slices above this size are composed from boundary-aligned sub-chunk
/// accumulators, so the block distributions of *different* rank counts
/// share one set of cached chunks (rank boundaries at any N ≥ 1 are
/// chunk-aligned whenever the problem is, which the paper-scale 2^24
/// grid is at every N in the sweep) — a sweep then prices the trial
/// stream once, not once per N. Gated well above the golden-test
/// configurations (2^12/2^14 pairs): small slices still accumulate
/// left-to-right in one pass, bit-identical to the original code.
constexpr std::uint64_t kChunkPairs = std::uint64_t{1} << 20;

const Accumulator& cached_slice(std::uint64_t seed, std::uint64_t first,
                                std::uint64_t count) {
  static std::mutex mutex;
  static std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
                  Accumulator>
      cache;
  const auto key = std::make_tuple(seed, first, count);
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  Accumulator acc;
  if (count > kChunkPairs) {
    // Compose from aligned chunks, ascending. accepted and q[] are
    // integer counts far below 2^53 — exact under any association; the
    // deviate sums sx/sy reassociate, which run()'s verification
    // tolerance already bounds by the trial count (the allreduce tree
    // reassociates them anyway).
    const std::uint64_t end = first + count;
    std::uint64_t pos = first;
    while (pos < end) {
      const std::uint64_t boundary = (pos / kChunkPairs + 1) * kChunkPairs;
      const std::uint64_t n = std::min(end, boundary) - pos;
      const Accumulator& part = cached_slice(seed, pos, n);
      acc.sx += part.sx;
      acc.sy += part.sy;
      acc.accepted += part.accepted;
      for (int i = 0; i < 10; ++i) acc.q[i] += part.q[i];
      pos += n;
    }
  } else {
    run_slice(seed, first, count, acc);
  }
  std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(key, acc).first->second;
}

}  // namespace

EpKernel::EpKernel(EpConfig cfg) : cfg_(cfg) {}

std::string EpKernel::signature() const {
  return pas::util::strf("EP(m=%d,seed=%llu,batch=%d)", cfg_.log2_pairs,
                         static_cast<unsigned long long>(cfg_.seed),
                         cfg_.batch_pairs);
}

EpKernel::Reference EpKernel::reference(const EpConfig& cfg) {
  // The sequential reference is as expensive as the whole run; cache it
  // per configuration so sweeps pay it once.
  static std::mutex mutex;
  static std::map<std::pair<std::uint64_t, int>, Reference> cache;
  const std::pair<std::uint64_t, int> key{cfg.seed, cfg.log2_pairs};
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  const Accumulator& acc = cached_slice(cfg.seed, 0, cfg.pairs());
  Reference ref;
  ref.sx = acc.sx;
  ref.sy = acc.sy;
  ref.accepted = acc.accepted;
  for (int i = 0; i < 10; ++i) ref.q[i] = acc.q[i];
  std::lock_guard<std::mutex> lock(mutex);
  cache.emplace(key, ref);
  return ref;
}

int EpKernel::iteration_count(int nranks) const {
  const std::uint64_t total = cfg_.pairs();
  const auto n = static_cast<std::uint64_t>(nranks);
  // Rank 0 always holds a remainder trial when one exists, so its
  // slice — ceil(total / nranks) — is the widest.
  const std::uint64_t widest = total / n + (total % n != 0 ? 1 : 0);
  const auto batch = static_cast<std::uint64_t>(cfg_.batch_pairs);
  return static_cast<int>((widest + batch - 1) / batch);
}

KernelResult EpKernel::run(mpi::Comm& comm) const {
  return run_ctl(comm, IterationCtl{});
}

KernelResult EpKernel::run_ctl(mpi::Comm& comm,
                               const IterationCtl& ctl) const {
  const std::uint64_t total = cfg_.pairs();
  const auto nranks = static_cast<std::uint64_t>(comm.size());
  const auto rank = static_cast<std::uint64_t>(comm.rank());
  // Block distribution; the remainder goes to the low ranks.
  const std::uint64_t base = total / nranks;
  const std::uint64_t extra = total % nranks;
  const std::uint64_t mine = base + (rank < extra ? 1 : 0);
  const std::uint64_t first = rank * base + std::min<std::uint64_t>(rank, extra);

  if (ctl.load != nullptr) {
    // The accumulator is a pure function of (seed, first, count): the
    // blob only carries the batch index, everything else is recomputed.
    sim::BlobReader r((*ctl.load)[static_cast<std::size_t>(rank)]);
    long long it = 0;
    if (!r.get_int(&it) || it != ctl.start_iter)
      throw std::runtime_error("EP: checkpoint blob mismatch");
  }

  const auto batch = static_cast<std::uint64_t>(cfg_.batch_pairs);
  const int total_batches = iteration_count(comm.size());
  if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, ctl.start_iter);
  // Scratch stays within a couple of KB: L1-resident, high reuse.
  const sim::AccessPattern pattern{
      .working_set_bytes = static_cast<std::size_t>(cfg_.batch_pairs) * 16,
      .stride_bytes = 8,
      .temporal_reuse = 3.0};
  for (int it = ctl.start_iter + 1; it <= total_batches; ++it) {
    if (!ctl.detailed(it)) continue;
    const std::uint64_t done = static_cast<std::uint64_t>(it - 1) * batch;
    if (done < mine) {
      const std::uint64_t n = std::min(batch, mine - done);
      charged_compute(comm, kDataRefsPerTrial * static_cast<double>(n),
                      pattern, kRegOpsPerTrial * static_cast<double>(n));
    }
    if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, it);
    if (it == ctl.stop_at) {
      if (ctl.save != nullptr) {
        sim::BlobWriter w;
        w.put_int(it);
        (*ctl.save)[static_cast<std::size_t>(rank)] = w.take();
      }
      KernelResult partial;
      partial.name = name();
      partial.note = pas::util::strf("EP truncated at batch %d", it);
      return partial;
    }
  }

  // Whole-slice accumulation in one pass is bit-identical to the old
  // per-batch accumulation (same trial order, same running sums), and
  // the slice cache collapses repeat grid points to a map lookup.
  // Skipped batches in sampled mode change the charges, never the
  // values: EP's results stay exact under sampling.
  const Accumulator& acc = cached_slice(cfg_.seed, first, mine);

  // One small allreduce: sums, counts, acceptance — 13 doubles.
  std::vector<double> packed{acc.sx, acc.sy, acc.accepted};
  for (int i = 0; i < 10; ++i) packed.push_back(acc.q[i]);
  packed = comm.allreduce_sum(std::move(packed));

  KernelResult result;
  result.name = name();
  result.values["sx"] = packed[0];
  result.values["sy"] = packed[1];
  result.values["accepted"] = packed[2];
  for (int i = 0; i < 10; ++i)
    result.values[pas::util::strf("q%d", i)] = packed[static_cast<std::size_t>(3 + i)];

  if (comm.rank() == 0) {
    const Reference ref = reference(cfg_);
    // The deviate sums are reassociated by the reduction tree; bound
    // the reordering error by the number of summands, not the (heavily
    // cancelled) sum magnitude.
    const double tol = 1e-8 * std::fmax(1.0, ref.accepted);
    bool ok = std::fabs(packed[0] - ref.sx) <= tol &&
              std::fabs(packed[1] - ref.sy) <= tol &&
              packed[2] == ref.accepted;
    for (int i = 0; ok && i < 10; ++i)
      ok = packed[static_cast<std::size_t>(3 + i)] == ref.q[i];
    result.verified = ok;
    result.note = ok ? "matches sequential reference"
                     : pas::util::strf("sx %.12g vs ref %.12g", packed[0], ref.sx);
  }
  return result;
}

}  // namespace pas::npb
