#include "pas/npb/ft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "pas/npb/npb_rng.hpp"
#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

/// Instruction-charging constants per element per butterfly stage.
constexpr double kButterflyRefs = 2.0;
constexpr double kButterflyRegOps = 5.0;

struct Slabs {
  int nx, ny, nz, nranks, rank;
  int lz;  ///< z-planes per rank (layout A: [z_loc][y][x], x fastest)
  int lx;  ///< x-planes per rank (layout B: [x_loc][y][z], z fastest)

  std::size_t a_size() const {
    return static_cast<std::size_t>(lz) * ny * nx;
  }
  std::size_t b_size() const {
    return static_cast<std::size_t>(lx) * ny * nz;
  }
  std::size_t a_index(int z_loc, int y, int x) const {
    return (static_cast<std::size_t>(z_loc) * ny + y) * nx + x;
  }
  std::size_t b_index(int x_loc, int y, int z) const {
    return (static_cast<std::size_t>(x_loc) * ny + y) * nz + z;
  }
};

double log2d(int n) { return std::log2(static_cast<double>(n)); }

/// Charges one directional FFT pass over `elems` local elements of
/// length-`len` rows: a streaming first-touch over the slab plus
/// cache-resident butterfly work.
void charge_fft_pass(mpi::Comm& comm, std::size_t elems, int len,
                     std::size_t slab_bytes) {
  const double n = static_cast<double>(elems);
  const double stages = log2d(len);
  charged_compute(comm, 2.0 * n,
                  sim::AccessPattern{.working_set_bytes = slab_bytes,
                                     .stride_bytes = 16,
                                     .temporal_reuse = 1.0});
  charged_compute(
      comm, kButterflyRefs * n * std::max(0.0, stages - 1.0),
      sim::AccessPattern{.working_set_bytes =
                             static_cast<std::size_t>(len) * sizeof(Complex),
                         .stride_bytes = 16,
                         .temporal_reuse = stages},
      kButterflyRegOps * n * stages);
}

/// Charges a streaming pass (pack/unpack/evolve/copy) of `refs`
/// references over the slab.
void charge_stream(mpi::Comm& comm, double refs, std::size_t slab_bytes,
                   double reg_ops = 0.0) {
  charged_compute(comm, refs,
                  sim::AccessPattern{.working_set_bytes = slab_bytes,
                                     .stride_bytes = 16,
                                     .temporal_reuse = 1.0},
                  reg_ops);
}

/// x-direction FFTs (layout A, contiguous rows).
void fft_x(mpi::Comm& comm, const Slabs& s, const FftPlan& plan,
           std::vector<Complex>& a, bool forward) {
  for (int z = 0; z < s.lz; ++z) {
    for (int y = 0; y < s.ny; ++y) {
      std::span<Complex> row(&a[s.a_index(z, y, 0)],
                             static_cast<std::size_t>(s.nx));
      forward ? plan.forward(row) : plan.inverse(row);
    }
  }
  charge_fft_pass(comm, a.size(), s.nx, a.size() * sizeof(Complex));
}

/// y-direction FFTs (layout A, stride-nx columns). Tiles of adjacent
/// columns move through a contiguous scratch buffer: the gather and
/// scatter copy whole runs of complexes per y-row instead of one
/// element per column, and the batched plan runs the tile's columns
/// side by side (identical per-column arithmetic — lanes never mix).
void fft_y(mpi::Comm& comm, const Slabs& s, const FftPlan& plan,
           std::vector<Complex>& a, bool forward) {
  constexpr int kTile = 16;
  std::vector<Complex> scratch(static_cast<std::size_t>(s.ny) * kTile);
  for (int z = 0; z < s.lz; ++z) {
    for (int x0 = 0; x0 < s.nx; x0 += kTile) {
      const auto width = static_cast<std::size_t>(std::min(kTile, s.nx - x0));
      for (int y = 0; y < s.ny; ++y) {
        const Complex* src = &a[s.a_index(z, y, x0)];
        std::copy(src, src + width, &scratch[static_cast<std::size_t>(y) * width]);
      }
      forward ? plan.forward_batch(scratch.data(), width)
              : plan.inverse_batch(scratch.data(), width);
      for (int y = 0; y < s.ny; ++y) {
        const Complex* src = &scratch[static_cast<std::size_t>(y) * width];
        std::copy(src, src + width, &a[s.a_index(z, y, x0)]);
      }
    }
  }
  charge_fft_pass(comm, a.size(), s.ny, a.size() * sizeof(Complex));
  // Extra gather/scatter traffic for the strided walk.
  charge_stream(comm, 2.0 * static_cast<double>(a.size()),
                a.size() * sizeof(Complex));
}

/// z-direction FFTs (layout B, contiguous rows).
void fft_z(mpi::Comm& comm, const Slabs& s, const FftPlan& plan,
           std::vector<Complex>& b, bool forward) {
  for (int x = 0; x < s.lx; ++x) {
    for (int y = 0; y < s.ny; ++y) {
      std::span<Complex> row(&b[s.b_index(x, y, 0)],
                             static_cast<std::size_t>(s.nz));
      forward ? plan.forward(row) : plan.inverse(row);
    }
  }
  charge_fft_pass(comm, b.size(), s.nz, b.size() * sizeof(Complex));
}

/// Global transpose, layout A (z-slabs) -> layout B (x-slabs).
std::vector<Complex> transpose_a_to_b(mpi::Comm& comm, const Slabs& s,
                                      const std::vector<Complex>& a) {
  const int nranks = s.nranks;
  std::vector<mpi::Payload> blocks(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mpi::Payload& blk = blocks[static_cast<std::size_t>(r)];
    blk.reserve(static_cast<std::size_t>(s.lx) * s.ny * s.lz * 2);
    for (int xr = 0; xr < s.lx; ++xr) {
      const int x = r * s.lx + xr;
      for (int y = 0; y < s.ny; ++y) {
        for (int z = 0; z < s.lz; ++z) {
          const Complex& c = a[s.a_index(z, y, x)];
          blk.push_back(c.real());
          blk.push_back(c.imag());
        }
      }
    }
  }
  charge_stream(comm, 2.0 * static_cast<double>(a.size()),
                a.size() * sizeof(Complex),
                static_cast<double>(a.size()));

  std::vector<mpi::Payload> recv = comm.alltoall(std::move(blocks));

  std::vector<Complex> b(s.b_size());
  for (int src = 0; src < nranks; ++src) {
    const mpi::Payload& blk = recv[static_cast<std::size_t>(src)];
    std::size_t i = 0;
    for (int xr = 0; xr < s.lx; ++xr) {
      for (int y = 0; y < s.ny; ++y) {
        for (int zr = 0; zr < s.lz; ++zr) {
          const int z = src * s.lz + zr;
          b[s.b_index(xr, y, z)] = Complex(blk[i], blk[i + 1]);
          i += 2;
        }
      }
    }
  }
  charge_stream(comm, 2.0 * static_cast<double>(b.size()),
                b.size() * sizeof(Complex),
                static_cast<double>(b.size()));
  return b;
}

/// Global transpose, layout B (x-slabs) -> layout A (z-slabs).
std::vector<Complex> transpose_b_to_a(mpi::Comm& comm, const Slabs& s,
                                      const std::vector<Complex>& b) {
  const int nranks = s.nranks;
  std::vector<mpi::Payload> blocks(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mpi::Payload& blk = blocks[static_cast<std::size_t>(r)];
    blk.reserve(static_cast<std::size_t>(s.lz) * s.ny * s.lx * 2);
    for (int zr = 0; zr < s.lz; ++zr) {
      const int z = r * s.lz + zr;
      for (int y = 0; y < s.ny; ++y) {
        for (int xl = 0; xl < s.lx; ++xl) {
          const Complex& c = b[s.b_index(xl, y, z)];
          blk.push_back(c.real());
          blk.push_back(c.imag());
        }
      }
    }
  }
  charge_stream(comm, 2.0 * static_cast<double>(b.size()),
                b.size() * sizeof(Complex),
                static_cast<double>(b.size()));

  std::vector<mpi::Payload> recv = comm.alltoall(std::move(blocks));

  std::vector<Complex> a(s.a_size());
  for (int src = 0; src < nranks; ++src) {
    const mpi::Payload& blk = recv[static_cast<std::size_t>(src)];
    std::size_t i = 0;
    for (int zr = 0; zr < s.lz; ++zr) {
      for (int y = 0; y < s.ny; ++y) {
        for (int xl = 0; xl < s.lx; ++xl) {
          const int x = src * s.lx + xl;
          a[s.a_index(zr, y, x)] = Complex(blk[i], blk[i + 1]);
          i += 2;
        }
      }
    }
  }
  charge_stream(comm, 2.0 * static_cast<double>(a.size()),
                a.size() * sizeof(Complex),
                static_cast<double>(a.size()));
  return a;
}

/// Forward 3-D FFT: layout A in, layout B out (consumes `a`).
std::vector<Complex> forward3d(mpi::Comm& comm, const Slabs& s,
                               const FftPlan& px, const FftPlan& py,
                               const FftPlan& pz, std::vector<Complex> a) {
  fft_x(comm, s, px, a, /*forward=*/true);
  fft_y(comm, s, py, a, /*forward=*/true);
  std::vector<Complex> b = transpose_a_to_b(comm, s, a);
  fft_z(comm, s, pz, b, /*forward=*/true);
  return b;
}

/// Inverse 3-D FFT: layout B in, layout A out (consumes `b`).
std::vector<Complex> inverse3d(mpi::Comm& comm, const Slabs& s,
                               const FftPlan& px, const FftPlan& py,
                               const FftPlan& pz, std::vector<Complex> b) {
  fft_z(comm, s, pz, b, /*forward=*/false);
  std::vector<Complex> a = transpose_b_to_a(comm, s, b);
  fft_y(comm, s, py, a, /*forward=*/false);
  fft_x(comm, s, px, a, /*forward=*/false);
  return a;
}

/// Signed spectral index ("frequency") for position i of length n.
double freq(int i, int n) {
  return static_cast<double>(i <= n / 2 ? i : i - n);
}

}  // namespace

std::string FtKernel::signature() const {
  return pas::util::strf("FT(nx=%d,ny=%d,nz=%d,niter=%d,seed=%llu,alpha=%.17g,rt=%d)",
                         cfg_.nx, cfg_.ny, cfg_.nz, cfg_.niter,
                         static_cast<unsigned long long>(cfg_.seed),
                         cfg_.alpha, cfg_.roundtrip_check ? 1 : 0);
}

FtKernel::FtKernel(FtConfig cfg) : cfg_(cfg) {
  if (!is_pow2(static_cast<std::size_t>(cfg_.nx)) ||
      !is_pow2(static_cast<std::size_t>(cfg_.ny)) ||
      !is_pow2(static_cast<std::size_t>(cfg_.nz)))
    throw std::invalid_argument("FT: grid dims must be powers of two");
  if (cfg_.niter < 1) throw std::invalid_argument("FT: niter >= 1");
}

std::string FtKernel::prefix_signature() const {
  return pas::util::strf("FT(nx=%d,ny=%d,nz=%d,seed=%llu,alpha=%.17g,rt=%d)",
                         cfg_.nx, cfg_.ny, cfg_.nz,
                         static_cast<unsigned long long>(cfg_.seed),
                         cfg_.alpha, cfg_.roundtrip_check ? 1 : 0);
}

std::unique_ptr<Kernel> FtKernel::with_iterations(int iterations) const {
  FtConfig cfg = cfg_;
  cfg.niter = iterations;
  return std::make_unique<FtKernel>(cfg);
}

KernelResult FtKernel::run(mpi::Comm& comm) const { return run_ctl(comm, {}); }

KernelResult FtKernel::run_ctl(mpi::Comm& comm,
                               const IterationCtl& ctl) const {
  Slabs s;
  s.nx = cfg_.nx;
  s.ny = cfg_.ny;
  s.nz = cfg_.nz;
  s.nranks = comm.size();
  s.rank = comm.rank();
  if (s.nz % s.nranks != 0 || s.nx % s.nranks != 0)
    throw std::invalid_argument(pas::util::strf(
        "FT: %d ranks must divide nx=%d and nz=%d", s.nranks, s.nx, s.nz));
  s.lz = s.nz / s.nranks;
  s.lx = s.nx / s.nranks;

  const FftPlan px(static_cast<std::size_t>(s.nx));
  const FftPlan py(static_cast<std::size_t>(s.ny));
  const FftPlan pz(static_cast<std::size_t>(s.nz));

  KernelResult result;
  result.name = name();
  std::vector<Complex> u1;
  std::vector<double> checksums;  ///< (re, im) pairs, iteration order

  if (ctl.start_iter == 0) {
    // --- initialize u0 with the NPB stream, by global row -------------
    std::vector<Complex> u0(s.a_size());
    for (int z = 0; z < s.lz; ++z) {
      const int gz = s.rank * s.lz + z;
      for (int y = 0; y < s.ny; ++y) {
        const std::uint64_t row_start =
            (static_cast<std::uint64_t>(gz) * s.ny + static_cast<std::uint64_t>(y)) *
            static_cast<std::uint64_t>(s.nx);
        NpbRng rng = NpbRng::at(cfg_.seed, 2 * row_start);
        for (int x = 0; x < s.nx; ++x) {
          const double re = rng.next();
          const double im = rng.next();
          u0[s.a_index(z, y, x)] = Complex(re, im);
        }
      }
    }
    charge_stream(comm, 2.0 * static_cast<double>(u0.size()),
                  u0.size() * sizeof(Complex),
                  10.0 * static_cast<double>(u0.size()));

    // --- forward 3-D FFT ----------------------------------------------
    u1 = forward3d(comm, s, px, py, pz, std::vector<Complex>(u0));

    // --- distributed round-trip check ---------------------------------
    if (cfg_.roundtrip_check) {
      std::vector<Complex> back =
          inverse3d(comm, s, px, py, pz, std::vector<Complex>(u1));
      double local_err = 0.0;
      for (std::size_t i = 0; i < u0.size(); ++i)
        local_err = std::fmax(local_err, std::abs(back[i] - u0[i]));
      const double err = comm.allreduce_max(local_err);
      result.values["roundtrip_err"] = err;
      result.verified = err < 1e-9;
      result.note = result.verified
                        ? "inverse(forward(u0)) == u0"
                        : pas::util::strf("roundtrip error %.3g", err);
    } else {
      result.verified = true;
      result.note = "roundtrip check disabled";
    }
  } else {
    if (ctl.load == nullptr)
      throw std::logic_error("FT: resume requires checkpoint blobs");
    sim::BlobReader in(
        (*ctl.load)[static_cast<std::size_t>(comm.rank())]);
    long long iter = 0, verified = 0, nchecks = 0;
    if (!in.get_int(&iter) || iter != ctl.start_iter)
      throw std::runtime_error("FT: checkpoint boundary mismatch");
    if (!in.get_int(&verified))
      throw std::runtime_error("FT: malformed checkpoint blob");
    result.verified = verified != 0;
    if (cfg_.roundtrip_check) {
      double err = 0.0;
      if (!in.get_double(&err))
        throw std::runtime_error("FT: malformed checkpoint blob");
      result.values["roundtrip_err"] = err;
      result.note = result.verified
                        ? "inverse(forward(u0)) == u0"
                        : pas::util::strf("roundtrip error %.3g", err);
    } else {
      result.note = "roundtrip check disabled";
    }
    if (!in.get_int(&nchecks) || nchecks != 2 * ctl.start_iter)
      throw std::runtime_error("FT: malformed checkpoint blob");
    checksums.assign(static_cast<std::size_t>(nchecks), 0.0);
    u1.assign(s.b_size(), Complex(0.0, 0.0));
    if (!in.get_doubles(checksums.data(), checksums.size()) ||
        !in.get_doubles(reinterpret_cast<double*>(u1.data()),
                        2 * u1.size()))
      throw std::runtime_error("FT: truncated checkpoint blob");
  }

  for (std::size_t i = 0; i + 1 < checksums.size(); i += 2) {
    const int t = static_cast<int>(i / 2) + 1;
    result.values[pas::util::strf("checksum_re_%d", t)] = checksums[i];
    result.values[pas::util::strf("checksum_im_%d", t)] = checksums[i + 1];
  }

  if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, ctl.start_iter);

  // --- time stepping ----------------------------------------------------
  const double pi2 = std::numbers::pi * std::numbers::pi;
  for (int t = ctl.start_iter + 1; t <= cfg_.niter; ++t) {
    if (!ctl.detailed(t)) continue;
    // Evolve in Fourier space (layout B).
    std::vector<Complex> w(u1.size());
    for (int xl = 0; xl < s.lx; ++xl) {
      const double kx = freq(s.rank * s.lx + xl, s.nx);
      for (int y = 0; y < s.ny; ++y) {
        const double ky = freq(y, s.ny);
        for (int z = 0; z < s.nz; ++z) {
          const double kz = freq(z, s.nz);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const double decay =
              std::exp(-4.0 * cfg_.alpha * pi2 * k2 * static_cast<double>(t));
          w[s.b_index(xl, y, z)] = u1[s.b_index(xl, y, z)] * decay;
        }
      }
    }
    charge_stream(comm, 2.0 * static_cast<double>(w.size()),
                  w.size() * sizeof(Complex),
                  8.0 * static_cast<double>(w.size()));

    std::vector<Complex> x1 = inverse3d(comm, s, px, py, pz, std::move(w));

    // Checksum over 1024 pseudo-random grid points (NPB idiom).
    Complex local_sum(0.0, 0.0);
    for (int j = 1; j <= 1024; ++j) {
      const int q = (5 * j) % s.nx;
      const int r = (3 * j) % s.ny;
      const int gz = j % s.nz;
      if (gz / s.lz == s.rank)
        local_sum += x1[s.a_index(gz % s.lz, r, q)];
    }
    std::vector<double> sum =
        comm.allreduce_sum(std::vector<double>{local_sum.real(), local_sum.imag()});
    result.values[pas::util::strf("checksum_re_%d", t)] = sum[0];
    result.values[pas::util::strf("checksum_im_%d", t)] = sum[1];
    checksums.push_back(sum[0]);
    checksums.push_back(sum[1]);

    if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, t);
    if (t == ctl.stop_at) {
      sim::BlobWriter out;
      out.put_int(t);
      out.put_int(result.verified ? 1 : 0);
      if (cfg_.roundtrip_check) out.put_double(result.values["roundtrip_err"]);
      out.put_int(static_cast<long long>(checksums.size()));
      out.put_doubles(checksums.data(), checksums.size());
      out.put_doubles(reinterpret_cast<const double*>(u1.data()),
                      2 * u1.size());
      (*ctl.save)[static_cast<std::size_t>(comm.rank())] = out.take();
      result.note = pas::util::strf("FT truncated at step %d", t);
      return result;
    }
  }

  return result;
}

}  // namespace pas::npb
