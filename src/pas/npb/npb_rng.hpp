// The NAS Parallel Benchmarks linear congruential generator:
//
//   x_{k+1} = a * x_k  mod 2^46,   a = 5^13,   randlc = x * 2^-46
//
// with O(log n) skip-ahead (a^n mod 2^46 by binary exponentiation) so
// each rank can jump directly to its slice of the global stream — the
// property EP relies on to stay embarrassingly parallel.
#pragma once

#include <cstdint>

namespace pas::npb {

class NpbRng {
 public:
  static constexpr std::uint64_t kMultiplier = 1220703125ULL;  // 5^13
  static constexpr std::uint64_t kModMask = (1ULL << 46) - 1;
  static constexpr double kScale = 1.0 / static_cast<double>(1ULL << 46);

  explicit NpbRng(std::uint64_t seed = 271828183ULL)
      : state_(seed & kModMask) {}

  /// Next uniform deviate in (0, 1) — NPB's randlc.
  double next() {
    state_ = mul_mod(kMultiplier, state_);
    return static_cast<double>(state_) * kScale;
  }

  std::uint64_t state() const { return state_; }

  /// Advances the stream by `n` steps in O(log n).
  void skip(std::uint64_t n) {
    state_ = mul_mod(pow_mod(kMultiplier, n), state_);
  }

  /// A generator positioned `n` steps after `seed` (NPB's vranlc
  /// partitioning idiom).
  static NpbRng at(std::uint64_t seed, std::uint64_t n) {
    NpbRng rng(seed);
    rng.skip(n);
    return rng;
  }

 private:
  /// (a * b) mod 2^46 without overflow.
  static std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) & kModMask);
  }

  /// a^n mod 2^46.
  static std::uint64_t pow_mod(std::uint64_t a, std::uint64_t n) {
    std::uint64_t result = 1;
    std::uint64_t base = a & kModMask;
    while (n > 0) {
      if (n & 1) result = mul_mod(result, base);
      base = mul_mod(base, base);
      n >>= 1;
    }
    return result;
  }

  std::uint64_t state_;
};

}  // namespace pas::npb
