// LU — an SSOR iterative solver in the mould of NPB LU (paper §5.2's
// fine-grain parameterization case study).
//
// Solves -laplace(u) = f on an n^3 interior grid (Dirichlet boundary,
// f chosen so the exact solution is sin(pi x) sin(pi y) sin(pi z))
// with symmetric successive over-relaxation. The domain is decomposed
// on a 2-D processor grid over (x, y); each SSOR iteration performs
//
//   * a ghost-face exchange (old east/south values),
//   * a lower sweep: k-planes ascending, pipelined 2-D wavefront over
//     tiles — every plane waits for the west/north boundary columns of
//     the same plane (the paper's "limited parallelism"),
//   * an upper sweep: the mirror-image pipeline, descending,
//   * a residual evaluation with an allreduce.
//
// Behavioural class: regular neighbour communication with small
// latency-bound messages whose size halves as the processor grid
// refines (the paper's 310-doubles-at-2-nodes / 155-at-4 observation),
// cache-friendly stencil compute (ON-chip dominant, Table 5).
#pragma once

#include "pas/npb/kernel.hpp"

namespace pas::npb {

struct LuConfig {
  /// Interior points per dimension. Must be divisible by the processor
  /// grid (up to 4 per dimension for N <= 16).
  int n = 96;
  int iterations = 8;
  /// SSOR relaxation factor; 1.7 is near-optimal for the default grid.
  double omega = 1.7;

  std::size_t interior_points() const {
    return static_cast<std::size_t>(n) * n * n;
  }
};

/// Processor-grid factorization used by LU: near-square, Px >= Py,
/// Px * Py = nranks (powers of two).
struct ProcGrid {
  int px = 1;
  int py = 1;
};
ProcGrid lu_proc_grid(int nranks);

class LuKernel final : public Kernel {
 public:
  explicit LuKernel(LuConfig cfg = {});

  std::string name() const override { return "LU"; }
  std::string signature() const override;

  /// Control flow never reads the virtual clock and uses no timeouts:
  /// eligible for the frequency-collapse fast path.
  bool frequency_invariant_control_flow() const override { return true; }

  /// Result values: "residual_0" (initial RMS residual),
  /// "residual_<i>" after iteration i (1-based), "error_inf" (max
  /// deviation from the exact solution). Verification: the residual
  /// decreases monotonically and substantially.
  KernelResult run(mpi::Comm& comm) const override;

  int iteration_count(int nranks) const override {
    (void)nranks;
    return cfg_.iterations;
  }
  std::string prefix_signature() const override;
  std::unique_ptr<Kernel> with_iterations(int iterations) const override;
  KernelResult run_ctl(mpi::Comm& comm,
                       const IterationCtl& ctl) const override;

  const LuConfig& config() const { return cfg_; }

 private:
  LuConfig cfg_;
};

}  // namespace pas::npb
