#include "pas/npb/npb_rng.hpp"

// Header-only implementation; this TU anchors the library archive.
namespace pas::npb {}
