#include "pas/npb/cg.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

constexpr int kTagHaloUp = 21;    // toward higher z
constexpr int kTagHaloDown = 22;  // toward lower z

/// Slab geometry: z-planes [z0, z0+lz) of an n^3 grid, padded by one
/// ghost layer in every direction.
struct Slab {
  int n;        ///< interior points per dimension
  int lz;       ///< local interior z-planes
  int z0;       ///< first global interior z-plane (0-based)
  int rank, nranks;

  int stride_y() const { return n + 2; }
  int stride_z() const { return (n + 2) * (n + 2); }
  std::size_t size() const {
    return static_cast<std::size_t>(lz + 2) * stride_z();
  }
  /// Local index; z in [-1, lz], y/x in [-1, n].
  std::size_t idx(int z, int y, int x) const {
    return (static_cast<std::size_t>(z + 1) * (n + 2) +
            static_cast<std::size_t>(y + 1)) *
               (n + 2) +
           static_cast<std::size_t>(x + 1);
  }
};

using Vec = std::vector<double>;

/// Charges one stencil pass over the slab.
void charge_stencil(mpi::Comm& comm, const Slab& s) {
  const double pts = static_cast<double>(s.n) * s.n * s.lz;
  charged_compute(comm, 8.0 * pts,
                  sim::AccessPattern{
                      .working_set_bytes =
                          static_cast<std::size_t>(3 * (s.n + 2)) * 8,
                      .stride_bytes = 8,
                      .temporal_reuse = 2.0},
                  8.0 * pts);
  charged_compute(comm, 2.0 * pts,
                  sim::AccessPattern{.working_set_bytes = s.size() * 8,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0});
}

/// Charges one streaming vector pass (dot / axpy).
void charge_vector_pass(mpi::Comm& comm, const Slab& s, double refs_per_pt,
                        double reg_per_pt) {
  const double pts = static_cast<double>(s.n) * s.n * s.lz;
  charged_compute(comm, refs_per_pt * pts,
                  sim::AccessPattern{.working_set_bytes = s.size() * 8,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0},
                  reg_per_pt * pts);
}

/// Exchanges ghost planes of `v` with the z-neighbours.
void halo_exchange(mpi::Comm& comm, const Slab& s, Vec& v) {
  auto pack_plane = [&](int z) {
    mpi::Payload out;
    out.reserve(static_cast<std::size_t>(s.n) * s.n);
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x) out.push_back(v[s.idx(z, y, x)]);
    return out;
  };
  auto unpack_plane = [&](int z, const mpi::Payload& data) {
    std::size_t i = 0;
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x) v[s.idx(z, y, x)] = data[i++];
  };
  const bool has_down = s.rank > 0;
  const bool has_up = s.rank + 1 < s.nranks;
  if (has_up) comm.send(s.rank + 1, kTagHaloUp, pack_plane(s.lz - 1));
  if (has_down) comm.send(s.rank - 1, kTagHaloDown, pack_plane(0));
  if (has_down) unpack_plane(-1, comm.recv(s.rank - 1, kTagHaloUp));
  if (has_up) unpack_plane(s.lz, comm.recv(s.rank + 1, kTagHaloDown));
}

/// q = A v with A the (unscaled) 7-point Laplacian, Dirichlet zero
/// boundary (ghosts outside the global domain stay 0).
void matvec(mpi::Comm& comm, const Slab& s, Vec& v, Vec& q) {
  halo_exchange(comm, s, v);
  for (int z = 0; z < s.lz; ++z) {
    for (int y = 0; y < s.n; ++y) {
      for (int x = 0; x < s.n; ++x) {
        q[s.idx(z, y, x)] =
            6.0 * v[s.idx(z, y, x)] - v[s.idx(z - 1, y, x)] -
            v[s.idx(z + 1, y, x)] - v[s.idx(z, y - 1, x)] -
            v[s.idx(z, y + 1, x)] - v[s.idx(z, y, x - 1)] -
            v[s.idx(z, y, x + 1)];
      }
    }
  }
  charge_stencil(comm, s);
}

/// Local (unsummed) dot product over the interior.
double local_dot(const Slab& s, const Vec& a, const Vec& b) {
  double sum = 0.0;
  for (int z = 0; z < s.lz; ++z)
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x)
        sum += a[s.idx(z, y, x)] * b[s.idx(z, y, x)];
  return sum;
}

}  // namespace

std::string CgKernel::signature() const {
  return pas::util::strf("CG(n=%d,iters=%d)", cfg_.n, cfg_.iterations);
}

std::string CgKernel::prefix_signature() const {
  return pas::util::strf("CG(n=%d)", cfg_.n);
}

std::unique_ptr<Kernel> CgKernel::with_iterations(int iterations) const {
  CgConfig cfg = cfg_;
  cfg.iterations = iterations;
  return std::make_unique<CgKernel>(cfg);
}

CgKernel::CgKernel(CgConfig cfg) : cfg_(cfg) {
  if (cfg_.n < 2) throw std::invalid_argument("CG: n too small");
  if (cfg_.iterations < 1) throw std::invalid_argument("CG: iterations >= 1");
}

KernelResult CgKernel::run(mpi::Comm& comm) const { return run_ctl(comm, {}); }

KernelResult CgKernel::run_ctl(mpi::Comm& comm,
                               const IterationCtl& ctl) const {
  Slab s;
  s.n = cfg_.n;
  s.nranks = comm.size();
  s.rank = comm.rank();
  if (cfg_.n % s.nranks != 0)
    throw std::invalid_argument(pas::util::strf(
        "CG: %d ranks must divide n=%d", s.nranks, cfg_.n));
  s.lz = cfg_.n / s.nranks;
  s.z0 = s.rank * s.lz;

  const double pi = std::numbers::pi;
  const double h = 1.0 / static_cast<double>(cfg_.n + 1);
  auto exact = [&](int gx, int gy, int gz) {
    return std::sin(pi * (gx + 1) * h) * std::sin(pi * (gy + 1) * h) *
           std::sin(pi * (gz + 1) * h);
  };

  // Manufacture u* from the analytic solution (ghosts analytic). Pure
  // local math, charged as part of the cold-start setup below; a
  // resumed rank rebuilds it for free (its charge is inside the
  // restored clock already).
  Vec ustar(s.size(), 0.0);
  for (int z = -1; z <= s.lz; ++z) {
    const int gz = s.z0 + z;
    if (gz < 0 || gz >= cfg_.n) continue;
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x)
        ustar[s.idx(z, y, x)] = exact(x, y, gz);
  }

  Vec x, r, p, q(s.size(), 0.0);
  double rho = 0.0;
  std::vector<double> residuals;

  KernelResult result;
  result.name = name();

  if (ctl.start_iter == 0) {
    // Manufacture b = A u*, then CG with x0 = 0: r = b, p = r.
    Vec b(s.size(), 0.0);
    for (int z = 0; z < s.lz; ++z) {
      for (int y = 0; y < s.n; ++y) {
        for (int x2 = 0; x2 < s.n; ++x2) {
          b[s.idx(z, y, x2)] =
              6.0 * ustar[s.idx(z, y, x2)] - ustar[s.idx(z - 1, y, x2)] -
              ustar[s.idx(z + 1, y, x2)] - ustar[s.idx(z, y - 1, x2)] -
              ustar[s.idx(z, y + 1, x2)] - ustar[s.idx(z, y, x2 - 1)] -
              ustar[s.idx(z, y, x2 + 1)];
        }
      }
    }
    charge_stencil(comm, s);

    x.assign(s.size(), 0.0);
    r = b;
    p = r;

    rho = comm.allreduce_sum(local_dot(s, r, r));
    charge_vector_pass(comm, s, 2.0, 2.0);
    residuals.push_back(std::sqrt(rho));
  } else {
    if (ctl.load == nullptr)
      throw std::logic_error("CG: resume requires checkpoint blobs");
    sim::BlobReader in(
        (*ctl.load)[static_cast<std::size_t>(comm.rank())]);
    long long iter = 0, nres = 0;
    if (!in.get_int(&iter) || iter != ctl.start_iter)
      throw std::runtime_error("CG: checkpoint boundary mismatch");
    if (!in.get_double(&rho) || !in.get_int(&nres) ||
        nres != ctl.start_iter + 1)
      throw std::runtime_error("CG: malformed checkpoint blob");
    residuals.assign(static_cast<std::size_t>(nres), 0.0);
    x.assign(s.size(), 0.0);
    r.assign(s.size(), 0.0);
    p.assign(s.size(), 0.0);
    if (!in.get_doubles(residuals.data(), residuals.size()) ||
        !in.get_doubles(x.data(), x.size()) ||
        !in.get_doubles(r.data(), r.size()) ||
        !in.get_doubles(p.data(), p.size()))
      throw std::runtime_error("CG: truncated checkpoint blob");
  }

  for (std::size_t i = 0; i < residuals.size(); ++i)
    result.values[pas::util::strf("residual_%d", static_cast<int>(i))] =
        residuals[i];

  if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, ctl.start_iter);

  for (int it = ctl.start_iter + 1; it <= cfg_.iterations; ++it) {
    if (!ctl.detailed(it)) continue;
    matvec(comm, s, p, q);
    const double pq = comm.allreduce_sum(local_dot(s, p, q));
    charge_vector_pass(comm, s, 2.0, 2.0);
    const double alpha = rho / pq;
    for (int z = 0; z < s.lz; ++z) {
      for (int y = 0; y < s.n; ++y) {
        for (int x2 = 0; x2 < s.n; ++x2) {
          const std::size_t i = s.idx(z, y, x2);
          x[i] += alpha * p[i];
          r[i] -= alpha * q[i];
        }
      }
    }
    charge_vector_pass(comm, s, 4.0, 4.0);
    const double rho_new = comm.allreduce_sum(local_dot(s, r, r));
    charge_vector_pass(comm, s, 2.0, 2.0);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (int z = 0; z < s.lz; ++z)
      for (int y = 0; y < s.n; ++y)
        for (int x2 = 0; x2 < s.n; ++x2) {
          const std::size_t i = s.idx(z, y, x2);
          p[i] = r[i] + beta * p[i];
        }
    charge_vector_pass(comm, s, 3.0, 2.0);

    residuals.push_back(std::sqrt(rho));
    result.values[pas::util::strf("residual_%d", it)] = residuals.back();

    if (ctl.probe != nullptr) comm.sample_boundary(*ctl.probe, it);
    if (it == ctl.stop_at) {
      sim::BlobWriter out;
      out.put_int(it);
      out.put_double(rho);
      out.put_int(static_cast<long long>(residuals.size()));
      out.put_doubles(residuals.data(), residuals.size());
      out.put_doubles(x.data(), x.size());
      out.put_doubles(r.data(), r.size());
      out.put_doubles(p.data(), p.size());
      (*ctl.save)[static_cast<std::size_t>(comm.rank())] = out.take();
      result.note = pas::util::strf("CG truncated at iteration %d", it);
      return result;
    }
  }

  double err_inf = 0.0;
  for (int z = 0; z < s.lz; ++z)
    for (int y = 0; y < s.n; ++y)
      for (int x2 = 0; x2 < s.n; ++x2)
        err_inf = std::fmax(
            err_inf, std::fabs(x[s.idx(z, y, x2)] - ustar[s.idx(z, y, x2)]));
  result.values["error_inf"] = comm.allreduce_max(err_inf);

  if (comm.rank() == 0) {
    if (ctl.sample_period > 1) {
      // A sampled run executes a compressed (but genuine) CG sequence;
      // its outputs are estimates, verified exactness is checked by
      // the executor's --verify-sampling exact re-runs instead.
      result.verified = true;
      result.note = pas::util::strf(
          "CG sampled estimate (%d of %d iterations detailed)",
          static_cast<int>(residuals.size()) - 1, cfg_.iterations);
    } else {
      const bool converged = residuals.back() < 0.5 * residuals.front();
      result.verified = converged;
      result.note = pas::util::strf("CG residual %.3g -> %.3g over %d iters",
                                    residuals.front(), residuals.back(),
                                    cfg_.iterations);
    }
  }
  return result;
}

}  // namespace pas::npb
