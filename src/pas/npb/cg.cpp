#include "pas/npb/cg.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "pas/util/format.hpp"

namespace pas::npb {
namespace {

constexpr int kTagHaloUp = 21;    // toward higher z
constexpr int kTagHaloDown = 22;  // toward lower z

/// Slab geometry: z-planes [z0, z0+lz) of an n^3 grid, padded by one
/// ghost layer in every direction.
struct Slab {
  int n;        ///< interior points per dimension
  int lz;       ///< local interior z-planes
  int z0;       ///< first global interior z-plane (0-based)
  int rank, nranks;

  int stride_y() const { return n + 2; }
  int stride_z() const { return (n + 2) * (n + 2); }
  std::size_t size() const {
    return static_cast<std::size_t>(lz + 2) * stride_z();
  }
  /// Local index; z in [-1, lz], y/x in [-1, n].
  std::size_t idx(int z, int y, int x) const {
    return (static_cast<std::size_t>(z + 1) * (n + 2) +
            static_cast<std::size_t>(y + 1)) *
               (n + 2) +
           static_cast<std::size_t>(x + 1);
  }
};

using Vec = std::vector<double>;

/// Charges one stencil pass over the slab.
void charge_stencil(mpi::Comm& comm, const Slab& s) {
  const double pts = static_cast<double>(s.n) * s.n * s.lz;
  charged_compute(comm, 8.0 * pts,
                  sim::AccessPattern{
                      .working_set_bytes =
                          static_cast<std::size_t>(3 * (s.n + 2)) * 8,
                      .stride_bytes = 8,
                      .temporal_reuse = 2.0},
                  8.0 * pts);
  charged_compute(comm, 2.0 * pts,
                  sim::AccessPattern{.working_set_bytes = s.size() * 8,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0});
}

/// Charges one streaming vector pass (dot / axpy).
void charge_vector_pass(mpi::Comm& comm, const Slab& s, double refs_per_pt,
                        double reg_per_pt) {
  const double pts = static_cast<double>(s.n) * s.n * s.lz;
  charged_compute(comm, refs_per_pt * pts,
                  sim::AccessPattern{.working_set_bytes = s.size() * 8,
                                     .stride_bytes = 8,
                                     .temporal_reuse = 1.0},
                  reg_per_pt * pts);
}

/// Exchanges ghost planes of `v` with the z-neighbours.
void halo_exchange(mpi::Comm& comm, const Slab& s, Vec& v) {
  auto pack_plane = [&](int z) {
    mpi::Payload out;
    out.reserve(static_cast<std::size_t>(s.n) * s.n);
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x) out.push_back(v[s.idx(z, y, x)]);
    return out;
  };
  auto unpack_plane = [&](int z, const mpi::Payload& data) {
    std::size_t i = 0;
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x) v[s.idx(z, y, x)] = data[i++];
  };
  const bool has_down = s.rank > 0;
  const bool has_up = s.rank + 1 < s.nranks;
  if (has_up) comm.send(s.rank + 1, kTagHaloUp, pack_plane(s.lz - 1));
  if (has_down) comm.send(s.rank - 1, kTagHaloDown, pack_plane(0));
  if (has_down) unpack_plane(-1, comm.recv(s.rank - 1, kTagHaloUp));
  if (has_up) unpack_plane(s.lz, comm.recv(s.rank + 1, kTagHaloDown));
}

/// q = A v with A the (unscaled) 7-point Laplacian, Dirichlet zero
/// boundary (ghosts outside the global domain stay 0).
void matvec(mpi::Comm& comm, const Slab& s, Vec& v, Vec& q) {
  halo_exchange(comm, s, v);
  for (int z = 0; z < s.lz; ++z) {
    for (int y = 0; y < s.n; ++y) {
      for (int x = 0; x < s.n; ++x) {
        q[s.idx(z, y, x)] =
            6.0 * v[s.idx(z, y, x)] - v[s.idx(z - 1, y, x)] -
            v[s.idx(z + 1, y, x)] - v[s.idx(z, y - 1, x)] -
            v[s.idx(z, y + 1, x)] - v[s.idx(z, y, x - 1)] -
            v[s.idx(z, y, x + 1)];
      }
    }
  }
  charge_stencil(comm, s);
}

/// Local (unsummed) dot product over the interior.
double local_dot(const Slab& s, const Vec& a, const Vec& b) {
  double sum = 0.0;
  for (int z = 0; z < s.lz; ++z)
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x)
        sum += a[s.idx(z, y, x)] * b[s.idx(z, y, x)];
  return sum;
}

}  // namespace

std::string CgKernel::signature() const {
  return pas::util::strf("CG(n=%d,iters=%d)", cfg_.n, cfg_.iterations);
}

CgKernel::CgKernel(CgConfig cfg) : cfg_(cfg) {
  if (cfg_.n < 2) throw std::invalid_argument("CG: n too small");
  if (cfg_.iterations < 1) throw std::invalid_argument("CG: iterations >= 1");
}

KernelResult CgKernel::run(mpi::Comm& comm) const {
  Slab s;
  s.n = cfg_.n;
  s.nranks = comm.size();
  s.rank = comm.rank();
  if (cfg_.n % s.nranks != 0)
    throw std::invalid_argument(pas::util::strf(
        "CG: %d ranks must divide n=%d", s.nranks, cfg_.n));
  s.lz = cfg_.n / s.nranks;
  s.z0 = s.rank * s.lz;

  const double pi = std::numbers::pi;
  const double h = 1.0 / static_cast<double>(cfg_.n + 1);
  auto exact = [&](int gx, int gy, int gz) {
    return std::sin(pi * (gx + 1) * h) * std::sin(pi * (gy + 1) * h) *
           std::sin(pi * (gz + 1) * h);
  };

  // Manufacture b = A u* from the analytic solution (ghosts analytic).
  Vec ustar(s.size(), 0.0);
  for (int z = -1; z <= s.lz; ++z) {
    const int gz = s.z0 + z;
    if (gz < 0 || gz >= cfg_.n) continue;
    for (int y = 0; y < s.n; ++y)
      for (int x = 0; x < s.n; ++x)
        ustar[s.idx(z, y, x)] = exact(x, y, gz);
  }
  Vec b(s.size(), 0.0);
  for (int z = 0; z < s.lz; ++z) {
    for (int y = 0; y < s.n; ++y) {
      for (int x = 0; x < s.n; ++x) {
        b[s.idx(z, y, x)] =
            6.0 * ustar[s.idx(z, y, x)] - ustar[s.idx(z - 1, y, x)] -
            ustar[s.idx(z + 1, y, x)] - ustar[s.idx(z, y - 1, x)] -
            ustar[s.idx(z, y + 1, x)] - ustar[s.idx(z, y, x - 1)] -
            ustar[s.idx(z, y, x + 1)];
      }
    }
  }
  charge_stencil(comm, s);

  // CG with x0 = 0: r = b, p = r.
  Vec x(s.size(), 0.0);
  Vec r = b;
  Vec p = r;
  Vec q(s.size(), 0.0);

  double rho = comm.allreduce_sum(local_dot(s, r, r));
  charge_vector_pass(comm, s, 2.0, 2.0);

  KernelResult result;
  result.name = name();
  std::vector<double> residuals{std::sqrt(rho)};
  result.values["residual_0"] = residuals[0];

  for (int it = 1; it <= cfg_.iterations; ++it) {
    matvec(comm, s, p, q);
    const double pq = comm.allreduce_sum(local_dot(s, p, q));
    charge_vector_pass(comm, s, 2.0, 2.0);
    const double alpha = rho / pq;
    for (int z = 0; z < s.lz; ++z) {
      for (int y = 0; y < s.n; ++y) {
        for (int x2 = 0; x2 < s.n; ++x2) {
          const std::size_t i = s.idx(z, y, x2);
          x[i] += alpha * p[i];
          r[i] -= alpha * q[i];
        }
      }
    }
    charge_vector_pass(comm, s, 4.0, 4.0);
    const double rho_new = comm.allreduce_sum(local_dot(s, r, r));
    charge_vector_pass(comm, s, 2.0, 2.0);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (int z = 0; z < s.lz; ++z)
      for (int y = 0; y < s.n; ++y)
        for (int x2 = 0; x2 < s.n; ++x2) {
          const std::size_t i = s.idx(z, y, x2);
          p[i] = r[i] + beta * p[i];
        }
    charge_vector_pass(comm, s, 3.0, 2.0);

    residuals.push_back(std::sqrt(rho));
    result.values[pas::util::strf("residual_%d", it)] = residuals.back();
  }

  double err_inf = 0.0;
  for (int z = 0; z < s.lz; ++z)
    for (int y = 0; y < s.n; ++y)
      for (int x2 = 0; x2 < s.n; ++x2)
        err_inf = std::fmax(
            err_inf, std::fabs(x[s.idx(z, y, x2)] - ustar[s.idx(z, y, x2)]));
  result.values["error_inf"] = comm.allreduce_max(err_inf);

  if (comm.rank() == 0) {
    const bool converged = residuals.back() < 0.5 * residuals.front();
    result.verified = converged;
    result.note = pas::util::strf("CG residual %.3g -> %.3g over %d iters",
                                  residuals.front(), residuals.back(),
                                  cfg_.iterations);
  }
  return result;
}

}  // namespace pas::npb
