// MG — a geometric-multigrid kernel in the mould of NPB MG.
//
// V-cycles for the 7-point Laplacian on an n^3 grid: weighted-Jacobi
// smoothing, residual restriction (8-cell averaging) down a fixed
// level hierarchy, coarse-grid smoothing, piecewise-constant
// prolongation with correction back up. The grid is decomposed in
// z-slabs at every level; each smoothing step performs a ghost-plane
// halo exchange whose message size *quarters* per level
// ((n/2^l)^2 doubles) — the variable-message-size communication class
// the other kernels lack.
//
// The level count is fixed in the configuration (not derived from the
// rank count), so the arithmetic — and therefore the residual
// sequence — is identical for every processor count.
//
// Not part of the paper's evaluation; included, like CG, to broaden
// the workload classes available to the model.
#pragma once

#include "pas/npb/kernel.hpp"

namespace pas::npb {

struct MgConfig {
  /// Fine-grid interior points per dimension (power of two).
  int n = 64;
  /// Grid levels (fine + coarser); every rank needs at least one
  /// z-plane at the coarsest level: n / 2^(levels-1) >= ranks.
  int levels = 3;
  int cycles = 4;
  int pre_smooth = 2;
  int post_smooth = 2;
  /// The hierarchy is depth-limited (every rank keeps a plane at the
  /// coarsest level), so the coarsest grid is solved by brute-force
  /// smoothing rather than recursion.
  int coarse_smooth = 40;
  double jacobi_weight = 0.8;
};

class MgKernel final : public Kernel {
 public:
  explicit MgKernel(MgConfig cfg = {});

  std::string name() const override { return "MG"; }
  std::string signature() const override;

  /// Control flow never reads the virtual clock and uses no timeouts:
  /// eligible for the frequency-collapse fast path.
  bool frequency_invariant_control_flow() const override { return true; }

  /// Result values: "residual_0", "residual_<c>" after each V-cycle.
  /// Verification: substantial, monotone residual reduction.
  KernelResult run(mpi::Comm& comm) const override;

  int iteration_count(int nranks) const override {
    (void)nranks;
    return cfg_.cycles;
  }
  std::string prefix_signature() const override;
  std::unique_ptr<Kernel> with_iterations(int iterations) const override;
  KernelResult run_ctl(mpi::Comm& comm,
                       const IterationCtl& ctl) const override;

  const MgConfig& config() const { return cfg_; }

 private:
  MgConfig cfg_;
};

}  // namespace pas::npb
