#include "pas/npb/kernel.hpp"

#include <stdexcept>

namespace pas::npb {

KernelResult Kernel::run_ctl(mpi::Comm& comm, const IterationCtl& ctl) const {
  if (!ctl.trivial())
    throw std::logic_error(name() + ": kernel has no iteration hooks");
  return run(comm);
}

double KernelResult::value(const std::string& key) const {
  auto it = values.find(key);
  if (it == values.end())
    throw std::out_of_range("KernelResult: no value named " + key);
  return it->second;
}

void charged_compute(mpi::Comm& comm, double data_refs,
                     const sim::AccessPattern& pattern, double reg_ops) {
  const sim::LevelMix mix = sim::classify(comm.cpu().memory(), pattern);
  comm.compute(sim::InstructionMix::from_level_mix(data_refs, mix, reg_ops));
}

}  // namespace pas::npb
