// CG — a conjugate-gradient kernel in the mould of NPB CG.
//
// Solves A u = b for the SPD 7-point Laplacian stencil matrix on an
// n^3 grid, with b manufactured from a known exact solution. The grid
// is decomposed in z-slabs; every iteration performs
//
//   * one matrix-vector product (ghost-plane halo exchange with the
//     two z-neighbours, then a local stencil apply),
//   * two inner products (latency-bound allreduces), and
//   * three vector updates.
//
// Behavioural class: unlike FT (bandwidth-bound all-to-all) and LU
// (pipelined wavefront), CG's overhead is dominated by small
// log(N)-deep collectives — the latency-bound end of the spectrum.
// Not part of the paper's evaluation; included as the suite's third
// communication class for model validation beyond the paper.
#pragma once

#include "pas/npb/kernel.hpp"

namespace pas::npb {

struct CgConfig {
  /// Interior grid points per dimension; the rank count must divide n.
  int n = 64;
  int iterations = 40;
};

class CgKernel final : public Kernel {
 public:
  explicit CgKernel(CgConfig cfg = {});

  std::string name() const override { return "CG"; }
  std::string signature() const override;

  /// Control flow never reads the virtual clock and uses no timeouts:
  /// eligible for the frequency-collapse fast path.
  bool frequency_invariant_control_flow() const override { return true; }

  /// Result values: "residual_0" (initial), "residual_<i>" after each
  /// iteration (1-based), "error_inf" (deviation from the exact
  /// solution). Verification: substantial residual reduction.
  KernelResult run(mpi::Comm& comm) const override;

  int iteration_count(int nranks) const override {
    (void)nranks;
    return cfg_.iterations;
  }
  std::string prefix_signature() const override;
  std::unique_ptr<Kernel> with_iterations(int iterations) const override;
  KernelResult run_ctl(mpi::Comm& comm,
                       const IterationCtl& ctl) const override;

  const CgConfig& config() const { return cfg_; }

 private:
  CgConfig cfg_;
};

}  // namespace pas::npb
