// FT — the NPB 3-D FFT PDE kernel (paper §4.3's communication-bound
// class).
//
// Solves du/dt = alpha * nabla^2 u spectrally on an nx*ny*nz periodic
// grid: one forward 3-D FFT, then per iteration an evolution in Fourier
// space followed by an inverse 3-D FFT and a checksum. The grid is
// decomposed in z-slabs; each 3-D FFT performs local x- and y-direction
// transforms, a global transpose to x-slabs (personalized all-to-all —
// the phase that dominates parallel overhead), and local z-direction
// transforms.
//
// Behavioural class: large memory footprint (the slab streams through
// the cache hierarchy, so OFF-chip time is significant and the
// frequency speedup is sub-linear) and all-to-all dominated overhead
// (speedup dips from 1 to 2 ranks, then climbs sub-linearly).
#pragma once

#include <cstdint>

#include "pas/npb/fft.hpp"
#include "pas/npb/kernel.hpp"

namespace pas::npb {

struct FtConfig {
  int nx = 64;
  int ny = 64;
  int nz = 64;
  int niter = 3;
  std::uint64_t seed = 314159265ULL;
  double alpha = 1e-6;
  /// Verify the distributed machinery by an inverse(forward(u0)) == u0
  /// round trip before iterating (costs one extra 3-D FFT).
  bool roundtrip_check = true;

  std::size_t grid_points() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
};

class FtKernel final : public Kernel {
 public:
  explicit FtKernel(FtConfig cfg = {});

  std::string name() const override { return "FT"; }
  std::string signature() const override;

  /// Control flow never reads the virtual clock and uses no timeouts:
  /// eligible for the frequency-collapse fast path.
  bool frequency_invariant_control_flow() const override { return true; }

  /// Result values: "checksum_re_<t>", "checksum_im_<t>" for each
  /// iteration t (1-based), and "roundtrip_err" when enabled.
  /// Requires comm.size() to divide both nz and nx.
  KernelResult run(mpi::Comm& comm) const override;

  int iteration_count(int nranks) const override {
    (void)nranks;
    return cfg_.niter;
  }
  std::string prefix_signature() const override;
  std::unique_ptr<Kernel> with_iterations(int iterations) const override;
  KernelResult run_ctl(mpi::Comm& comm,
                       const IterationCtl& ctl) const override;

  const FtConfig& config() const { return cfg_; }

 private:
  FtConfig cfg_;
};

}  // namespace pas::npb
