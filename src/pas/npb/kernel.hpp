// Common kernel interface for the NPB-like workloads.
//
// Kernels perform *real* computation (random-number streams, FFTs,
// SSOR sweeps) so results are verifiable, and charge their work to the
// simulated node through charged_compute(): each block of real work is
// described by its data-reference count, its access pattern (working
// set / stride / reuse — classified onto the memory hierarchy), and
// its register-only instruction count. Virtual time, counters and the
// paper's ON-/OFF-chip decomposition all flow from these charges.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "pas/mpi/communicator.hpp"
#include "pas/sim/memory_hierarchy.hpp"

namespace pas::npb {

struct KernelResult {
  std::string name;
  bool verified = false;
  std::string note;
  /// Named scalar outputs (checksums, residuals, counts...).
  std::map<std::string, double> values;

  double value(const std::string& key) const;
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;

  /// Canonical identity of this kernel instance: the name plus every
  /// configuration parameter that affects its computation or
  /// communication. Two kernels with equal signatures must produce
  /// bit-identical runs — the run cache (pas/analysis/run_cache.hpp)
  /// keys on this string.
  virtual std::string signature() const = 0;

  /// True when this kernel's control flow is independent of virtual
  /// time: it never reads the clock, uses no receive timeouts, and
  /// issues the identical sequence of compute blocks and messages at
  /// every DVFS point. Declaring true opts the kernel into the sweep
  /// executor's frequency-collapse fast path, which simulates one
  /// frequency per (size, N) column and re-prices the rest from the
  /// charged-work ledger (DESIGN.md §10). The default keeps unknown
  /// kernels on full simulation.
  virtual bool frequency_invariant_control_flow() const { return false; }

  /// Executes this rank's part of the kernel. Every rank returns a
  /// result; rank 0's carries the verification verdict.
  virtual KernelResult run(mpi::Comm& comm) const = 0;
};

/// Charges `data_refs` data-referencing instructions with access
/// pattern `pattern` plus `reg_ops` register-only instructions to the
/// rank's node, advancing its virtual clock.
void charged_compute(mpi::Comm& comm, double data_refs,
                     const sim::AccessPattern& pattern, double reg_ops = 0.0);

}  // namespace pas::npb
