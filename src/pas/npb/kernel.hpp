// Common kernel interface for the NPB-like workloads.
//
// Kernels perform *real* computation (random-number streams, FFTs,
// SSOR sweeps) so results are verifiable, and charge their work to the
// simulated node through charged_compute(): each block of real work is
// described by its data-reference count, its access pattern (working
// set / stride / reuse — classified onto the memory hierarchy), and
// its register-only instruction count. Virtual time, counters and the
// paper's ON-/OFF-chip decomposition all flow from these charges.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pas/mpi/communicator.hpp"
#include "pas/sim/checkpoint.hpp"
#include "pas/sim/memory_hierarchy.hpp"
#include "pas/sim/sampling.hpp"

namespace pas::npb {

struct KernelResult {
  std::string name;
  bool verified = false;
  std::string note;
  /// Named scalar outputs (checksums, residuals, counts...).
  std::map<std::string, double> values;

  double value(const std::string& key) const;
};

/// Per-rank opaque kernel state, indexed by rank (sim::BlobWriter /
/// sim::BlobReader round-trip doubles bit-exactly).
using CheckpointBlobs = std::vector<std::string>;

/// Iteration-level execution control for checkpointing and sampled
/// estimation (DESIGN.md §14). Default-constructed = the plain exact
/// run. Iterations are 1-based; `start_iter` names the last completed
/// iteration of the restored prefix (0 = from scratch).
struct IterationCtl {
  int start_iter = 0;  ///< resume after this boundary (0 = cold start)
  /// Per-rank kernel blobs of the checkpoint being resumed; required
  /// when start_iter > 0.
  const CheckpointBlobs* load = nullptr;
  /// Truncate: return a partial result right after completing this
  /// iteration (0 = run to completion).
  int stop_at = 0;
  /// When truncating, each rank serializes its kernel state here
  /// (pre-sized by the caller, one slot per rank).
  CheckpointBlobs* save = nullptr;
  /// Systematic sampling: execute the first `warmup_iters` iterations
  /// after start_iter in detail, then every `sample_period`-th; skip
  /// the rest entirely. 0 = every iteration (exact).
  int sample_period = 0;
  int warmup_iters = 0;
  /// Boundary-snapshot sink; each rank records at every detailed
  /// iteration boundary (plus the start_iter baseline).
  sim::SampleProbe* probe = nullptr;

  bool trivial() const {
    return start_iter == 0 && stop_at == 0 && sample_period <= 1 &&
           probe == nullptr;
  }

  /// Is 1-based iteration `it` executed in detail under this plan?
  /// Shared by every kernel so all ranks (and the estimator) agree.
  bool detailed(int it) const {
    if (sample_period <= 1) return true;
    const int r = it - start_iter;
    if (r <= warmup_iters) return true;
    return (r - warmup_iters - 1) % sample_period == 0;
  }
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;

  /// Canonical identity of this kernel instance: the name plus every
  /// configuration parameter that affects its computation or
  /// communication. Two kernels with equal signatures must produce
  /// bit-identical runs — the run cache (pas/analysis/run_cache.hpp)
  /// keys on this string.
  virtual std::string signature() const = 0;

  /// True when this kernel's control flow is independent of virtual
  /// time: it never reads the clock, uses no receive timeouts, and
  /// issues the identical sequence of compute blocks and messages at
  /// every DVFS point. Declaring true opts the kernel into the sweep
  /// executor's frequency-collapse fast path, which simulates one
  /// frequency per (size, N) column and re-prices the rest from the
  /// charged-work ledger (DESIGN.md §10). The default keeps unknown
  /// kernels on full simulation.
  virtual bool frequency_invariant_control_flow() const { return false; }

  /// Executes this rank's part of the kernel. Every rank returns a
  /// result; rank 0's carries the verification verdict.
  virtual KernelResult run(mpi::Comm& comm) const = 0;

  // ---- iteration-level control (checkpointing + sampling) -------------
  /// Number of top-level iterations this kernel runs at `nranks` ranks,
  /// or 0 when the kernel has no iteration hooks (run_ctl then only
  /// accepts a trivial IterationCtl).
  virtual int iteration_count(int nranks) const {
    (void)nranks;
    return 0;
  }

  /// Identity of the *iteration-boundary prefix*: like signature() but
  /// with the total iteration count struck out, so runs of the same
  /// configuration differing only in how many iterations they execute
  /// share checkpoints up to the common boundary. Empty = no prefix
  /// sharing (checkpoints then key on the full signature).
  virtual std::string prefix_signature() const { return {}; }

  /// A copy of this kernel with the top-level iteration count replaced
  /// (the sweep-level `iterations` override), or nullptr when the
  /// kernel does not support it.
  virtual std::unique_ptr<Kernel> with_iterations(int iterations) const {
    (void)iterations;
    return nullptr;
  }

  /// run() under an IterationCtl plan: resume from a checkpoint blob,
  /// truncate at a boundary (serializing state), and/or execute only
  /// the sampled subset of iterations. A trivial ctl must be exactly
  /// run(); kernels without iteration hooks reject non-trivial plans.
  virtual KernelResult run_ctl(mpi::Comm& comm, const IterationCtl& ctl) const;
};

/// Charges `data_refs` data-referencing instructions with access
/// pattern `pattern` plus `reg_ops` register-only instructions to the
/// rank's node, advancing its virtual clock.
void charged_compute(mpi::Comm& comm, double data_refs,
                     const sim::AccessPattern& pattern, double reg_ops = 0.0);

}  // namespace pas::npb
