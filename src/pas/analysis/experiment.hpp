// Experiment orchestration shared by the bench binaries: the paper's
// configuration grid, kernel factories, and the glue that turns
// substrate measurements (counters, MemBench, MsgBench, profiled runs)
// into fully parameterized SP / FP predictors.
#pragma once

#include <memory>
#include <string>

#include "pas/analysis/run_matrix.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/core/fine_grain_param.hpp"
#include "pas/core/simplified_param.hpp"
#include "pas/counters/counter_set.hpp"
#include "pas/npb/cg.hpp"
#include "pas/npb/ep.hpp"
#include "pas/npb/ft.hpp"
#include "pas/npb/lu.hpp"
#include "pas/npb/mg.hpp"
#include "pas/tools/membench.hpp"
#include "pas/tools/msgbench.hpp"

namespace pas::analysis {

class SweepExecutor;

/// The paper's experimental grid (§4.1): 16 Pentium-M nodes, N in
/// {1, 2, 4, 8, 16}, f in {600..1400} MHz, base (1 node, 600 MHz).
struct ExperimentEnv {
  sim::ClusterConfig cluster = sim::ClusterConfig::paper_testbed();
  std::vector<int> nodes{1, 2, 4, 8, 16};
  std::vector<int> parallel_nodes{2, 4, 8, 16};
  std::vector<double> freqs_mhz{600.0, 800.0, 1000.0, 1200.0, 1400.0};
  double base_f_mhz = 600.0;

  static ExperimentEnv paper();
  /// Reduced grid (N <= 4, 3 frequencies) for quick runs and tests.
  static ExperimentEnv small();
};

/// "EP", "FT", "LU", "CG" or "MG" at the given scale (the Scale enum
/// lives in pas/analysis/sweep_spec.hpp); throws std::invalid_argument
/// for unknown names.
std::unique_ptr<npb::Kernel> make_kernel(const std::string& name, Scale scale);

/// The spec's kernel at the spec's scale.
std::unique_ptr<npb::Kernel> make_spec_kernel(const SweepSpec& spec);

/// Expands a spec document into the environment the bench binaries
/// consume: the scale's preset grid with the spec's axis overrides
/// applied (parallel_nodes = the node counts > 1, base_f_mhz = the
/// smallest frequency — the default grids keep the paper's 600 MHz
/// base point).
ExperimentEnv env_for_spec(const SweepSpec& spec);

/// Adapters between substrate outputs and core-model inputs (the core
/// library deliberately does not link against counters/tools).
core::LevelWorkload to_level_workload(
    const counters::WorkloadDecomposition& d);
core::LevelSeconds to_level_seconds(const tools::LevelTimes& t);

/// §5.1: measures T_1(f) for every frequency and T_N(f0) for every
/// node count, and returns the ready SP predictor.
core::SimplifiedParameterization parameterize_simplified(
    const npb::Kernel& kernel, const ExperimentEnv& env);

/// §5.2: counter-derived workload distribution (1-processor run),
/// MemBench level times per frequency, and per-node-count
/// communication profiles priced by MsgBench. Returns the ready FP
/// predictor.
core::FineGrainParameterization parameterize_fine_grain(
    const npb::Kernel& kernel, const ExperimentEnv& env);

/// The counter measurement of §5.2 step 1 on its own: runs the kernel
/// on one processor and returns the PAPI-style event set.
counters::CounterSet measure_counters(const npb::Kernel& kernel,
                                      const ExperimentEnv& env);

/// Executor-backed variants: identical results to the serial functions
/// above, but profiling runs go through `exec` — concurrent across the
/// pool and memoized, so operating points a sweep already simulated
/// (e.g. the (1, f) column and the (N, f0) row of the full grid) are
/// cache hits instead of re-runs. `exec` must have been built from
/// `env.cluster` with the default power model.
core::SimplifiedParameterization parameterize_simplified(
    const npb::Kernel& kernel, const ExperimentEnv& env, SweepExecutor& exec);
core::FineGrainParameterization parameterize_fine_grain(
    const npb::Kernel& kernel, const ExperimentEnv& env, SweepExecutor& exec);
counters::CounterSet measure_counters(const npb::Kernel& kernel,
                                      const ExperimentEnv& env,
                                      SweepExecutor& exec);

}  // namespace pas::analysis
