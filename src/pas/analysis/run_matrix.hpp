// RunMatrix — executes a kernel across the (processor count, frequency)
// configuration grid and collects what the paper's measurement
// apparatus would: execution times, per-rank overhead time, node
// energy, and communication profiles.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "pas/core/measurement.hpp"
#include "pas/mpi/runtime.hpp"
#include "pas/npb/kernel.hpp"
#include "pas/power/energy_meter.hpp"

namespace pas::analysis {

/// How one run ended. Everything except kOk is a fault-induced abort
/// recorded by the fail-soft sweep path (see SweepExecutor).
enum class RunStatus {
  kOk = 0,
  kDeadlock,     ///< mpi::DeadlockError (watchdog)
  kNodeFailure,  ///< fault::NodeFailedError
  kMessageLoss,  ///< fault::MessageLossError (retries exhausted)
  kTimeout,      ///< mpi::TimeoutError, or an isolated worker's deadline
  kCrashed,      ///< isolated worker died (signal/OOM); supervisor-synthesized
};

const char* run_status_name(RunStatus status);

/// Everything measured about one run.
struct RunRecord {
  int nodes = 0;
  double frequency_mhz = 0.0;
  double seconds = 0.0;          ///< T_N(w, f): the makespan
  double mean_overhead_s = 0.0;  ///< mean per-rank network time
  double mean_cpu_s = 0.0;       ///< mean per-rank ON-chip time
  double mean_memory_s = 0.0;    ///< mean per-rank OFF-chip time
  bool verified = false;
  power::EnergyBreakdown energy;
  double messages_per_rank = 0.0;
  double doubles_per_message = 0.0;
  sim::InstructionMix executed_per_rank;  ///< mean executed mix
  RunStatus status = RunStatus::kOk;
  std::string error;         ///< diagnostic text of a failed run
  int attempts = 1;          ///< simulation attempts (sweep retries + 1)
  double send_retries = 0.0; ///< fault-injected resends, summed over ranks

  // ---- sampled estimation (DESIGN.md §14) ---------------------------
  // Sampled records are statistical estimates, never byte-compared:
  // `seconds`, the per-rank activity means and the energy breakdown are
  // extrapolated from the detailed subset, with 95% half-widths below.
  bool sampled = false;
  int total_iters = 0;    ///< full iteration count being estimated
  int sampled_iters = 0;  ///< post-warm-start iterations executed in detail
  double ci_seconds = 0.0;
  double ci_energy_j = 0.0;

  bool failed() const { return status != RunStatus::kOk; }
};

struct MatrixResult {
  std::vector<RunRecord> records;
  core::TimingMatrix times;

  /// Appends a record and feeds the timing matrix + lookup index.
  /// Failed records join `records` (and the index) but are kept out of
  /// the timing matrix — model fits must not see fault aborts as data.
  void add(RunRecord record);

  /// Records with a non-kOk status.
  std::vector<const RunRecord*> failed_points() const;

  /// O(1) via a (nodes, frequency) hash index; the index is rebuilt
  /// lazily if `records` was appended to directly. Not safe to call
  /// concurrently with modifications.
  const RunRecord& at(int nodes, double frequency_mhz) const;

 private:
  static long long grid_key(int nodes, double frequency_mhz) {
    // Frequency keyed to 0.1 MHz, same convention as core::TimingMatrix.
    const long fkey = static_cast<long>(frequency_mhz * 10.0 + 0.5);
    return (static_cast<long long>(nodes) << 32) | static_cast<long long>(fkey);
  }
  mutable std::unordered_map<long long, std::size_t> index_;
};

/// Converts a run report into per-node activity profiles for the
/// energy meter.
std::vector<power::ActivityProfile> activity_profiles(
    const mpi::RunResult& result);

/// Iteration-level execution plan for one run segment (DESIGN.md §14).
/// Default-constructed = the plain exact run; run_one is exactly
/// run_segment with a default SegmentOptions.
struct SegmentOptions {
  /// Warm-start: continue from this mid-run state (its `boundary` is
  /// the last completed iteration). Null = cold start.
  const sim::Checkpoint* resume = nullptr;
  /// Truncate after this iteration boundary (0 = run to completion),
  /// filling `capture` with the simulator + kernel state at the cut.
  int stop_at = 0;
  sim::Checkpoint* capture = nullptr;
  /// >1 enables SMARTS-style sampled estimation: only the detailed
  /// subset of iterations executes and the record becomes a scaled
  /// estimate carrying confidence intervals (RunRecord::sampled).
  int sample_period = 0;
  int warmup_iters = 0;
};

class RunMatrix {
 public:
  explicit RunMatrix(sim::ClusterConfig cluster,
                     power::PowerModel power = power::PowerModel());

  const sim::ClusterConfig& cluster() const { return cluster_; }
  const power::PowerModel& power() const { return meter_.model(); }

  /// The underlying runtime's event sink. Enable before run_one to
  /// collect per-rank activity events; SweepExecutor uses this to
  /// harvest per-point traces for the obs layer.
  sim::Tracer& tracer() { return runtime_.tracer(); }

  /// The underlying runtime's charged-work recorder. Arm (begin) before
  /// run_one and harvest (take) after it to capture a replayable
  /// ledger; SweepExecutor's frequency-collapse fast path records one
  /// per (kernel, N) column (DESIGN.md §10).
  sim::WorkLedgerRecorder& ledger_recorder() {
    return runtime_.ledger_recorder();
  }

  /// One configuration. `comm_dvfs_mhz` != 0 enables communication-
  /// phase DVFS at that operating point (paper §1 / refs [14, 15]).
  /// `fault_attempt` salts the run's FaultPlan (sweep-level retries);
  /// fault-induced aborts propagate as exceptions for the executor's
  /// fail-soft path to classify.
  RunRecord run_one(const npb::Kernel& kernel, int nodes,
                    double frequency_mhz, double comm_dvfs_mhz = 0.0,
                    int fault_attempt = 0);

  /// run_one under a segment plan: warm-start from a checkpoint,
  /// truncate-and-capture at a boundary, and/or execute only a sampled
  /// subset of iterations. A default `seg` reproduces run_one exactly.
  /// Non-trivial plans require a kernel with iteration hooks
  /// (iteration_count(nodes) > 0).
  RunRecord run_segment(const npb::Kernel& kernel, int nodes,
                        double frequency_mhz, double comm_dvfs_mhz,
                        int fault_attempt, const SegmentOptions& seg);

  /// The full grid.
  MatrixResult sweep(const npb::Kernel& kernel,
                     const std::vector<int>& node_counts,
                     const std::vector<double>& freqs_mhz,
                     double comm_dvfs_mhz = 0.0);

 private:
  sim::ClusterConfig cluster_;
  power::EnergyMeter meter_;
  /// Persistent across run_one calls: every run starts from a reset
  /// cluster, so reuse only amortizes rank-thread and cluster setup.
  mpi::Runtime runtime_;
};

}  // namespace pas::analysis
