// SweepJournal — the write-ahead journal behind `--resume` and the
// `--isolate` supervisor (DESIGN.md §12).
//
// One append-only file records every point a sweep has finished
// (successfully OR fail-soft), keyed by the point's RunCache content
// hash key. Each record is framed, checksummed and fsync'd before
// append() returns, so after a SIGKILL at ANY instruction the journal
// holds a prefix of the completed points plus at most one torn tail
// frame — which repair_tail() truncates away. A resumed sweep replays
// the journal instead of the simulator and converges to byte-identical
// artifacts.
//
// On-disk format (validated by scripts/check_journal_schema.py):
//
//   pasim-sweep-journal v1\n
//   J <payload_bytes> <fnv1a_hex_16>\n<payload>      (repeated)
//
// with payload:
//
//   key <cache key>\n
//   status <RunStatus int>\n
//   error <bytes>\n<raw error text>\n
//   <RunCache::encode_record bytes>
//   end\n
//
// The journal is also the supervisor's IPC: isolated workers append to
// the shared file (O_APPEND single-write() frames never interleave;
// an advisory flock serializes them anyway) and the parent harvests
// their results with refresh(). The journal deliberately stores failed
// records — they are deterministic outcomes a resume must not re-roll —
// but supervisor-synthesized crash records are NEVER journaled: a
// crash is an environmental accident, and a resume should retry the
// point for real.
//
// Torture hooks: set_crash_after_appends(n) SIGKILLs the process right
// after the n-th successful append (the journaled point survives, the
// rest of the sweep dies — the resume test's crash point), and
// set_crash_mid_append(n) kills mid-write of the n-th frame, leaving
// exactly the torn tail repair_tail() must handle. Both also read
// $PASIM_CRASH_AFTER_APPENDS / $PASIM_CRASH_MID_APPEND at first use so
// the shell-level harness can arm them in a child process.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "pas/analysis/run_matrix.hpp"

namespace pas::analysis {

class SweepJournal {
 public:
  /// `resume` false: any existing journal at `path` is discarded and a
  /// fresh one (magic line only) is published atomically. `resume`
  /// true: existing records are loaded (tolerating — and truncating —
  /// a torn tail) and find() serves them.
  SweepJournal(std::string path, bool resume);

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// The journaled record of `key`, if that point already completed.
  std::optional<RunRecord> find(const std::string& key) const;

  /// Journals one completed point: frame + checksum + fsync before
  /// returning. Idempotent per key. Fail-soft on I/O errors (ENOSPC):
  /// logs once, returns false, and the sweep carries on — a sweep
  /// without a journal is degraded, not dead.
  bool append(const std::string& key, const RunRecord& record);

  /// Incrementally parses frames appended by other processes since the
  /// last load/refresh (the supervisor's harvest step). Returns the
  /// number of new records. Stops at the first torn/corrupt frame.
  std::size_t refresh();

  /// Truncates a torn/corrupt tail (under the journal flock) so later
  /// appends are reachable by every reader. Call only while no writer
  /// is live — the ctor does on resume, and the supervisor does after
  /// reaping a dead worker.
  void repair_tail();

  std::size_t entries() const;
  const std::string& path() const { return path_; }

  /// SIGKILL the process immediately after the n-th successful append
  /// from now (n >= 1); n <= 0 disarms. Process-wide.
  static void set_crash_after_appends(long n);
  /// SIGKILL the process halfway through writing the n-th frame from
  /// now (n >= 1), leaving a torn tail; n <= 0 disarms. Process-wide.
  static void set_crash_mid_append(long n);

 private:
  std::size_t refresh_locked();

  std::string path_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RunRecord> records_;
  std::size_t read_offset_ = 0;  ///< end of the last good frame
  bool write_failed_ = false;    ///< first failure already logged
};

}  // namespace pas::analysis
