// Internals shared by the scalar Repricer and the batch SoA engine.
// Both replay the same ledgers through the same matching discipline, so
// the channel identity must be one definition — a divergence here would
// let the two engines pair sends and receives differently and silently
// break the bit-identity contract (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::analysis::detail {

/// Widest rank id that fits the packed channel key below.
inline constexpr int kMaxReplayRanks = 0xffff;

/// Exact-match channel id: sends and receives pair FIFO per
/// (src, dst, tag), mirroring the mailbox's matching discipline. All
/// three fields are masked to their bit windows symmetrically — src and
/// dst to 16 bits, tag to 32 — and replay entry points reject ledgers
/// with more than kMaxReplayRanks ranks, so distinct channels can never
/// alias.
inline std::uint64_t channel_key(int src, int dst, int tag) {
  return ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) &
           0xffff)
          << 48) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) &
           0xffff)
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

/// Guard used by every replay entry point before any channel key is
/// formed. Throws std::logic_error on a rank count the key cannot
/// represent.
inline void check_replay_rank_count(const char* engine, int nranks) {
  if (nranks > kMaxReplayRanks)
    throw std::logic_error(pas::util::strf(
        "%s: %d ranks exceeds the %d-rank replay limit (channel keys "
        "pack ranks into 16 bits)",
        engine, nranks, kMaxReplayRanks));
}

}  // namespace pas::analysis::detail
