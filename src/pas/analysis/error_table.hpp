// Paper-style prediction-error matrices (Tables 1, 3 and 7): rows are
// processor counts, columns are frequencies, entries are
// |measured - predicted| / measured.
#pragma once

#include <functional>
#include <vector>

#include "pas/core/measurement.hpp"
#include "pas/util/table.hpp"

namespace pas::analysis {

/// predicted value at (nodes, frequency_mhz).
using Predictor = std::function<double(int nodes, double f_mhz)>;

struct ErrorTable {
  std::vector<int> nodes;
  std::vector<double> freqs_mhz;
  /// errors[row][col]: relative error at (nodes[row], freqs[col]).
  std::vector<std::vector<double>> errors;

  double max_error() const;
  double mean_error() const;
  double at(int nodes_value, double f_mhz) const;

  /// Renders like the paper: one row per node count, "x.y%" entries.
  util::TextTable render(const std::string& title) const;
};

/// Compares predicted speedup (relative to (base_nodes, base_f))
/// against measured speedup from the timing matrix.
ErrorTable speedup_error_table(const core::TimingMatrix& measured,
                               const Predictor& predicted_speedup,
                               const std::vector<int>& nodes,
                               const std::vector<double>& freqs_mhz,
                               int base_nodes, double base_f_mhz);

/// Compares predicted execution time against measured time.
ErrorTable time_error_table(const core::TimingMatrix& measured,
                            const Predictor& predicted_time,
                            const std::vector<int>& nodes,
                            const std::vector<double>& freqs_mhz);

}  // namespace pas::analysis
