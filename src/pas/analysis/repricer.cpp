#include "pas/analysis/repricer.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "pas/analysis/replay_detail.hpp"
#include "pas/mpi/communicator.hpp"
#include "pas/sim/network.hpp"
#include "pas/util/format.hpp"

namespace pas::analysis {

namespace {

/// The fields of an in-flight message that receiver-side completion
/// needs (Comm::complete_recv reads nothing else).
struct FlightMsg {
  std::size_t bytes = 0;
  double at_switch = 0.0;
  double rx_ser_s = 0.0;
};

/// One rank's replay state: a real NodeState (so spend/spend_until and
/// per-point attribution are the simulator's own code), plus the
/// Comm-side fields the op stream re-drives.
struct RankState {
  explicit RankState(const sim::ClusterConfig& cfg) : node(cfg) {}

  sim::NodeState node;
  double rx_busy = 0.0;  ///< receiver-port busy-until (complete_recv)
  double comm_dvfs_mhz = 0.0;
  bool in_comm_phase = false;
  double app_mhz = 0.0;
  /// tx_end per nonblocking send, indexed by isend ordinal (nonblocking
  /// sends appear in the op stream in posting order).
  std::vector<double> nb_tx_end;
  mpi::CommStats stats;
  std::size_t next = 0;  ///< next op index in the rank's stream
};

using detail::channel_key;

/// Mirrors Comm::enter_comm_phase (fault jitter is zero on the fast
/// path — ledgers are only recorded with faults disarmed).
void enter_comm_phase(RankState& rs, int rank, const sim::ClusterConfig& cfg,
                      sim::Tracer* tracer) {
  if (rs.comm_dvfs_mhz <= 0.0 || rs.in_comm_phase) return;
  rs.app_mhz = rs.node.cpu.current().frequency_mhz();
  rs.in_comm_phase = true;
  if (sim::NodeState::fkey(rs.app_mhz) ==
      sim::NodeState::fkey(rs.comm_dvfs_mhz))
    return;  // already at the comm point: nothing to switch
  rs.node.spend(cfg.dvfs_transition_s, sim::Activity::kCpu);
  rs.node.cpu.set_frequency_mhz(rs.comm_dvfs_mhz);
  if (tracer)
    tracer->record_marker(rank, rs.node.clock.now(), "dvfs",
                          pas::util::strf("dvfs %.0f->%.0f MHz", rs.app_mhz,
                                          rs.comm_dvfs_mhz));
}

/// Mirrors Comm::exit_comm_phase.
void exit_comm_phase(RankState& rs, int rank, const sim::ClusterConfig& cfg,
                     sim::Tracer* tracer) {
  if (!rs.in_comm_phase) return;
  rs.in_comm_phase = false;
  if (sim::NodeState::fkey(rs.node.cpu.current().frequency_mhz()) ==
      sim::NodeState::fkey(rs.app_mhz))
    return;
  const double from_mhz = rs.node.cpu.current().frequency_mhz();
  rs.node.cpu.set_frequency_mhz(rs.app_mhz);
  rs.node.spend(cfg.dvfs_transition_s, sim::Activity::kCpu);
  if (tracer)
    tracer->record_marker(rank, rs.node.clock.now(), "dvfs",
                          pas::util::strf("dvfs %.0f->%.0f MHz", from_mhz,
                                          rs.app_mhz));
}

}  // namespace

Repricer::Repricer(sim::ClusterConfig cluster, power::PowerModel power)
    : cluster_(std::move(cluster)), meter_(std::move(power)) {}

RunRecord Repricer::reprice(const sim::WorkLedger& ledger,
                            double frequency_mhz, sim::Tracer* tracer) const {
  if (!ledger.replayable)
    throw std::logic_error(pas::util::strf(
        "Repricer: ledger is not replayable (%s)",
        ledger.decline_reason.empty() ? "no reason recorded"
                                      : ledger.decline_reason.c_str()));
  const int n = ledger.nranks;
  if (n < 1 || ledger.rank_spans.size() != static_cast<std::size_t>(n))
    throw std::logic_error("Repricer: malformed ledger");
  detail::check_replay_rank_count("Repricer", n);

  // The same fabric code the live run books transfers through; replay
  // is single-threaded so its mutex never contends.
  sim::NetworkFabric fabric(n, cluster_.network);
  const sim::NetworkConfig& net = fabric.config();

  std::vector<std::unique_ptr<RankState>> ranks;
  ranks.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto rs = std::make_unique<RankState>(cluster_);
    // Runtime::run: reset cluster, then set every node to the run's
    // static operating point (throws out_of_range like the live path).
    rs->node.cpu.set_frequency_mhz(frequency_mhz);
    ranks.push_back(std::move(rs));
  }

  std::unordered_map<std::uint64_t, std::deque<FlightMsg>> channels;

  // Executes the op at rs.next; returns false when it is a receive
  // blocked on an empty channel.
  const auto step = [&](int rank, RankState& rs) -> bool {
    const sim::WorkOp& op = ledger.rank_ops(rank)[rs.next];
    switch (op.kind) {
      case sim::WorkOp::Kind::kCompute: {
        exit_comm_phase(rs, rank, cluster_, tracer);
        const double t0 = rs.node.clock.now();
        const sim::CpuModel::TimeSplit split = rs.node.cpu.time_split(op.mix);
        rs.node.spend(split.on_chip_s, sim::Activity::kCpu);
        rs.node.spend(split.off_chip_s, sim::Activity::kMemory);
        rs.node.executed += op.mix;
        if (tracer) {
          tracer->record(rank, t0, split.on_chip_s, sim::Activity::kCpu,
                         "compute");
          if (split.off_chip_s > 0.0)
            tracer->record(rank, t0 + split.on_chip_s, split.off_chip_s,
                           sim::Activity::kMemory, "compute mem");
        }
        break;
      }
      case sim::WorkOp::Kind::kRawSeconds: {
        exit_comm_phase(rs, rank, cluster_, tracer);
        rs.node.spend(op.seconds, op.activity);
        break;
      }
      case sim::WorkOp::Kind::kCommDvfs: {
        if (op.mhz == 0.0) exit_comm_phase(rs, rank, cluster_, tracer);
        rs.comm_dvfs_mhz = op.mhz;
        break;
      }
      case sim::WorkOp::Kind::kSend: {
        const double trace_t0 = rs.node.clock.now();
        enter_comm_phase(rs, rank, cluster_, tracer);
        const double o_send =
            net.cpu_overhead_s(op.bytes, rs.node.cpu.frequency_hz());
        rs.node.spend(o_send, sim::Activity::kNetwork);
        const sim::NetworkFabric::Transfer t =
            fabric.transfer(rank, op.peer, op.bytes, rs.node.clock.now());
        if (op.blocking)
          rs.node.spend_until(t.tx_end, sim::Activity::kNetwork);
        else
          rs.nb_tx_end.push_back(t.tx_end);
        FlightMsg msg;
        msg.bytes = op.bytes;
        msg.at_switch = t.at_switch;
        msg.rx_ser_s = t.rx_ser_s;
        channels[channel_key(rank, op.peer, op.tag)].push_back(msg);
        ++rs.stats.messages_sent;
        rs.stats.bytes_sent += op.bytes;
        if (tracer)
          tracer->record(rank, trace_t0, rs.node.clock.now() - trace_t0,
                         sim::Activity::kNetwork,
                         pas::util::strf("send->%d tag %d (%zuB)", op.peer,
                                         op.tag, op.bytes));
        break;
      }
      case sim::WorkOp::Kind::kSendWait: {
        if (op.ordinal < 0 ||
            static_cast<std::size_t>(op.ordinal) >= rs.nb_tx_end.size())
          throw std::logic_error(pas::util::strf(
              "Repricer: rank %d waits on unknown isend ordinal %d", rank,
              op.ordinal));
        rs.node.spend_until(rs.nb_tx_end[static_cast<std::size_t>(op.ordinal)],
                            sim::Activity::kNetwork);
        break;
      }
      case sim::WorkOp::Kind::kRecv: {
        auto it = channels.find(channel_key(op.peer, rank, op.tag));
        if (it == channels.end() || it->second.empty()) return false;
        const FlightMsg msg = it->second.front();
        it->second.pop_front();
        enter_comm_phase(rs, rank, cluster_, tracer);
        double arrival = msg.at_switch + msg.rx_ser_s;
        if (net.model_port_contention && op.peer != rank) {
          const double rx_begin = std::max(msg.at_switch, rs.rx_busy);
          arrival = rx_begin + msg.rx_ser_s;
          rs.rx_busy = arrival;
        }
        const double trace_t0 = rs.node.clock.now();
        rs.node.spend_until(arrival, sim::Activity::kNetwork);
        const double o_recv =
            net.cpu_overhead_s(msg.bytes, rs.node.cpu.frequency_hz());
        rs.node.spend(o_recv, sim::Activity::kNetwork);
        ++rs.stats.messages_received;
        rs.stats.bytes_received += msg.bytes;
        if (tracer)
          tracer->record(rank, trace_t0, rs.node.clock.now() - trace_t0,
                         sim::Activity::kNetwork,
                         pas::util::strf("recv<-%d tag %d (%zuB)", op.peer,
                                         op.tag, msg.bytes));
        break;
      }
    }
    ++rs.next;
    return true;
  };

  // Round-robin: advance each rank until it blocks; a full pass with no
  // progress while work remains means the op streams are inconsistent.
  bool all_done = false;
  while (!all_done) {
    bool progress = false;
    all_done = true;
    for (int r = 0; r < n; ++r) {
      RankState& rs = *ranks[static_cast<std::size_t>(r)];
      const std::size_t count = ledger.rank_size(r);
      while (rs.next < count && step(r, rs)) progress = true;
      if (rs.next < count) all_done = false;
    }
    if (!all_done && !progress) {
      for (int r = 0; r < n; ++r) {
        const RankState& rs = *ranks[static_cast<std::size_t>(r)];
        if (rs.next >= ledger.rank_size(r)) continue;
        const sim::WorkOp& op = ledger.rank_ops(r)[rs.next];
        throw std::logic_error(pas::util::strf(
            "Repricer: replay stalled — rank %d blocked on recv<-%d tag %d "
            "with no matching send in the ledger",
            r, op.peer, op.tag));
      }
    }
  }
  for (const auto& [key, queue] : channels) {
    (void)key;
    if (!queue.empty())
      throw std::logic_error(
          "Repricer: ledger left undelivered messages after replay");
  }

  // Record assembly: mirrors RunMatrix::run_one field by field, in the
  // same summation order (Runtime::run reports ranks in rank order).
  RunRecord rec;
  rec.nodes = n;
  rec.frequency_mhz = frequency_mhz;
  for (int r = 0; r < n; ++r)
    rec.seconds = std::max(
        rec.seconds, ranks[static_cast<std::size_t>(r)]->node.clock.now());
  rec.verified = ledger.verified;
  const double nranks = static_cast<double>(n);
  double total_network = 0.0;
  double total_cpu = 0.0;
  double total_memory = 0.0;
  for (int r = 0; r < n; ++r) {
    const sim::VirtualClock& clock =
        ranks[static_cast<std::size_t>(r)]->node.clock;
    total_cpu += clock.seconds_in(sim::Activity::kCpu);
    total_memory += clock.seconds_in(sim::Activity::kMemory);
    total_network += clock.seconds_in(sim::Activity::kNetwork);
  }
  rec.mean_overhead_s = total_network / nranks;
  rec.mean_cpu_s = total_cpu / nranks;
  rec.mean_memory_s = total_memory / nranks;

  for (int r = 0; r < n; ++r) {
    const sim::NodeState& node = ranks[static_cast<std::size_t>(r)]->node;
    std::vector<power::FrequencySlice> slices;
    slices.reserve(node.activity_by_fkey.size());
    for (const auto& [fkey, seconds] : node.activity_by_fkey) {
      power::FrequencySlice slice;
      slice.frequency_mhz = static_cast<double>(fkey) / 10.0;
      slice.activity.cpu_s =
          seconds[static_cast<std::size_t>(sim::Activity::kCpu)];
      slice.activity.memory_s =
          seconds[static_cast<std::size_t>(sim::Activity::kMemory)];
      slice.activity.network_s =
          seconds[static_cast<std::size_t>(sim::Activity::kNetwork)];
      slice.activity.idle_s =
          seconds[static_cast<std::size_t>(sim::Activity::kIdle)];
      slices.push_back(slice);
    }
    rec.energy += meter_.measure_node_slices(
        slices, cluster_.operating_points, rec.seconds, frequency_mhz);
  }

  double messages = 0.0;
  double doubles = 0.0;
  for (int r = 0; r < n; ++r) {
    const mpi::CommStats& stats = ranks[static_cast<std::size_t>(r)]->stats;
    messages += static_cast<double>(stats.messages_sent);
    doubles += stats.avg_doubles_per_message();
    rec.send_retries += static_cast<double>(stats.sends_retried);
  }
  rec.messages_per_rank = messages / nranks;
  rec.doubles_per_message = doubles / nranks;

  for (int r = 0; r < n; ++r)
    rec.executed_per_rank += ranks[static_cast<std::size_t>(r)]->node.executed;
  rec.executed_per_rank = rec.executed_per_rank * (1.0 / nranks);

  if (tracer) {
    for (int r = 0; r < n; ++r)
      tracer->record_span(r, 0.0,
                          ranks[static_cast<std::size_t>(r)]->node.clock.now(),
                          "rank", pas::util::strf("rank %zu",
                                                  static_cast<std::size_t>(r)));
  }
  return rec;
}

}  // namespace pas::analysis
