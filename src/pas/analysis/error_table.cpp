#include "pas/analysis/error_table.hpp"

#include <cmath>
#include <stdexcept>

#include "pas/util/format.hpp"
#include "pas/util/stats.hpp"

namespace pas::analysis {
namespace {

ErrorTable build(const std::vector<int>& nodes,
                 const std::vector<double>& freqs_mhz,
                 const std::function<double(int, double)>& error_at) {
  ErrorTable t;
  t.nodes = nodes;
  t.freqs_mhz = freqs_mhz;
  t.errors.reserve(nodes.size());
  for (int n : nodes) {
    std::vector<double> row;
    row.reserve(freqs_mhz.size());
    for (double f : freqs_mhz) row.push_back(error_at(n, f));
    t.errors.push_back(std::move(row));
  }
  return t;
}

}  // namespace

double ErrorTable::max_error() const {
  double m = 0.0;
  for (const auto& row : errors)
    for (double e : row) m = std::fmax(m, e);
  return m;
}

double ErrorTable::mean_error() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& row : errors) {
    for (double e : row) {
      sum += e;
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

double ErrorTable::at(int nodes_value, double f_mhz) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] != nodes_value) continue;
    for (std::size_t j = 0; j < freqs_mhz.size(); ++j) {
      if (std::fabs(freqs_mhz[j] - f_mhz) < 0.5) return errors[i][j];
    }
  }
  throw std::out_of_range(pas::util::strf("ErrorTable: no entry (%d, %.0f)",
                                          nodes_value, f_mhz));
}

util::TextTable ErrorTable::render(const std::string& title) const {
  util::TextTable t(title);
  std::vector<std::string> header{"N"};
  for (double f : freqs_mhz) header.push_back(util::strf("%.0f MHz", f));
  t.set_header(std::move(header));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<std::string> row{util::strf("%d", nodes[i])};
    for (double e : errors[i]) row.push_back(util::percent(e, 1));
    t.add_row(std::move(row));
  }
  return t;
}

ErrorTable speedup_error_table(const core::TimingMatrix& measured,
                               const Predictor& predicted_speedup,
                               const std::vector<int>& nodes,
                               const std::vector<double>& freqs_mhz,
                               int base_nodes, double base_f_mhz) {
  return build(nodes, freqs_mhz, [&](int n, double f) {
    const double m = measured.speedup(n, f, base_nodes, base_f_mhz);
    return util::relative_error(m, predicted_speedup(n, f));
  });
}

ErrorTable time_error_table(const core::TimingMatrix& measured,
                            const Predictor& predicted_time,
                            const std::vector<int>& nodes,
                            const std::vector<double>& freqs_mhz) {
  return build(nodes, freqs_mhz, [&](int n, double f) {
    return util::relative_error(measured.at(n, f), predicted_time(n, f));
  });
}

}  // namespace pas::analysis
