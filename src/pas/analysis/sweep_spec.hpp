// SweepSpec — the one canonical description of a sweep, shared by
// every bench CLI, the offline SweepExecutor and the pasim_serve wire
// protocol (DESIGN.md §13).
//
// A spec has two halves:
//
//   * The *document* half — kernel, scale, grid axes, sweep options,
//     optional fault injection — round-trips through a strictly
//     validated, schema-versioned JSON form (`to_json`/`from_json`).
//     This is what `--spec FILE` loads, what pasim_client submits,
//     and what scripts/check_spec_schema.py validates from first
//     principles.
//   * The *process-local* half — cluster override, power model,
//     observer sinks — configures one executor in this process and is
//     never serialized (a server supplies its own).
//
// Resolution: the document names things ("FT", "small", an empty
// nodes list meaning "the scale's default grid") and the resolved_*()
// helpers expand them against the paper presets, so a spec with only
// {"version":1} is already a complete, runnable description of the
// default EP sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pas/fault/fault.hpp"
#include "pas/obs/observer.hpp"
#include "pas/power/power_model.hpp"
#include "pas/sim/cluster.hpp"

namespace pas::util {
class Cli;
class Json;
}  // namespace pas::util

namespace pas::analysis {

/// Problem-size presets.
enum class Scale {
  kPaper,  ///< full evaluation sizes
  kSmall,  ///< unit/integration-test sizes
};

struct SweepOptions {
  /// Concurrent grid points; <= 0 means "use the machine"
  /// (ThreadPool::default_jobs).
  int jobs = 0;
  /// Directory for the persistent run cache; empty = in-memory only.
  std::string cache_dir;
  /// Disables memoization entirely (every point re-simulates).
  bool use_cache = true;
  /// Per-point retries of *transient* fault aborts (message loss, node
  /// failure, ...) before the point is recorded as failed. Each retry
  /// replays an attempt-salted FaultPlan, so retrying stays
  /// deterministic. Only consulted when the cluster's fault injection
  /// is enabled.
  int run_retries = 1;
  /// Cross-checks the frequency-collapse fast path: every repriced
  /// point is additionally re-simulated in full and the two RunRecords
  /// must be identical in every cached byte (RunCache::encode_record);
  /// any difference aborts the sweep with std::runtime_error.
  bool verify_replay = false;
  /// Write-ahead sweep journal (DESIGN.md §12): every completed point
  /// — successful or fail-soft — is framed, checksummed and fsync'd to
  /// this file before the sweep moves on. Empty = no journal.
  std::string journal_path;
  /// Load the journal instead of truncating it: already-journaled
  /// points are skipped (except under tracing, where they re-simulate
  /// so trace.json stays byte-identical) and counted in the stable
  /// `sweep.points_resumed` metric.
  bool resume = false;
  /// Supervisor mode: each sweep column runs in a forked child process
  /// with a wall-clock deadline; crashes/OOM kills/timeouts cost the
  /// column (fail-soft kCrashed/kTimeout records after bounded
  /// exponential-backoff retries), never the sweep. Implies a journal
  /// (it is the supervisor's IPC). Incompatible with tracing.
  bool isolate = false;
  double isolate_timeout_s = 300.0;  ///< per-child wall-clock deadline
  int isolate_retries = 1;           ///< re-forks per crashed column
  /// Disk-cache size cap in bytes; > 0 enables LRU eviction after
  /// stores (see RunCache). 0 = unbounded.
  std::uint64_t cache_cap_bytes = 0;
  /// SMARTS-style sampled estimation (DESIGN.md §14, schema v2): only
  /// a systematic subset of kernel iterations simulates in detail and
  /// each point's record becomes an extrapolated estimate carrying
  /// 95% confidence intervals. Opt-in; exact simulation is the
  /// default. Incompatible with verify_replay (a sampled record is an
  /// estimate — byte-comparing it against a full simulation is a
  /// category error; sampled accuracy is checked by verify_sampling).
  bool sampling = false;
  /// Every `sample_period`-th iteration simulates in detail after a
  /// window of `warmup_iters` detailed iterations. Only consulted when
  /// `sampling` is on.
  int sample_period = 10;
  int warmup_iters = 2;
  /// Re-simulates this fraction of sampled points exactly (selected by
  /// key hash, so deterministic) and requires each exact makespan to
  /// fall within the sampled estimate's confidence interval; any
  /// violation aborts the sweep. 0 disables; > 0 requires sampling.
  double verify_sampling = 0.0;
  /// Checkpoint warm-starts (schema v2): store mid-run simulator state
  /// in the run cache at iteration boundaries and warm-start points
  /// that share a prefix (same kernel prefix identity, deeper
  /// iteration count) from the deepest stored checkpoint. Requires
  /// use_cache (checkpoints live in the run cache).
  bool checkpoints = false;

  /// Bench/example configuration: `--jobs N` (default: $PASIM_JOBS,
  /// then hardware concurrency), `--cache [dir]` (default dir
  /// `.pasim_cache`; or $PASIM_CACHE_DIR), `--no-cache`,
  /// `--retries N`, `--verify-replay`, `--journal [file]` (default
  /// `pasim_sweep.journal`), `--resume`, `--isolate`,
  /// `--isolate-timeout S`, `--isolate-retries N`, `--cache-cap MB`,
  /// `--sampling`, `--sample-period N`, `--warmup-iters N`,
  /// `--verify-sampling FRAC`, `--checkpoints`.
  /// `--resume`/`--isolate` imply the default journal path when
  /// `--journal` is absent. Throws std::invalid_argument for
  /// `--jobs < 1`, `--retries < 0`, a $PASIM_JOBS that is not a
  /// positive integer, a $PASIM_CACHE_DIR that is set but empty —
  /// environment values obey the same rules as the flags they stand in
  /// for — `--verify-replay` combined with `--no-cache` (disabling
  /// the cache would silently drop the verification pass's record
  /// comparison baseline), `--isolate-timeout <= 0`,
  /// `--isolate-retries < 0`, `--cache-cap` without a disk cache,
  /// `--sample-period < 2`, `--warmup-iters < 0`, `--verify-sampling`
  /// outside (0, 1] or without `--sampling`, `--sampling` combined
  /// with `--verify-replay`, or `--checkpoints` with `--no-cache`.
  static SweepOptions from_cli(const util::Cli& cli);

  /// from_cli layered over `base` (typically options loaded from a
  /// --spec file): a flag wins over its environment variable, which
  /// wins over the base value, which wins over the built-in default.
  /// The merged result obeys all of from_cli's validation rules.
  static SweepOptions apply_cli(const util::Cli& cli, SweepOptions base);

  /// The options object of the spec JSON document. Defaulted fields
  /// are still emitted, so dumps are self-describing and canonical.
  util::Json to_json() const;
  /// Strict inverse: unknown keys, wrong types and out-of-range
  /// values throw std::invalid_argument naming the field.
  static SweepOptions from_json(const util::Json& j);
};

/// Everything that configures a SweepExecutor.
struct SweepSpec {
  /// JSON document schema version emitted by to_json. from_json also
  /// accepts version 1 documents — v1 predates sampled estimation and
  /// checkpoint warm-starts, so a v1 document using any v2 field
  /// (iterations; options.sampling, sample_period, warmup_iters,
  /// verify_sampling, checkpoints) is rejected.
  static constexpr int kSchemaVersion = 2;

  // --- The serializable document (schema v2) -------------------------
  /// "EP", "FT", "LU", "CG" or "MG".
  std::string kernel = "EP";
  /// Problem-size preset: "paper" (16 nodes, full grid) or "small".
  std::string scale = "paper";
  /// Node-count axis; empty = the scale's default grid.
  std::vector<int> nodes;
  /// Frequency axis in MHz; empty = the scale's default grid.
  std::vector<double> freqs_mhz;
  /// != 0 enables communication-phase DVFS at that operating point.
  double comm_dvfs_mhz = 0.0;
  /// Overrides the kernel's top-level iteration count (schema v2);
  /// 0 keeps the scale preset's count. Rejected for kernels without
  /// iteration hooks (resolved at kernel construction).
  int iterations = 0;
  SweepOptions options;
  /// When set, replaces cluster.fault (convenient for fault-rate
  /// sweeps that share one base cluster).
  std::optional<fault::FaultConfig> fault;

  // --- Process-local state, never serialized -------------------------
  /// Cluster override; empty = the scale's preset testbed
  /// (paper_testbed(16) or paper_testbed(4)).
  std::optional<sim::ClusterConfig> cluster;
  power::PowerModel power;
  /// Observability sinks; null (the default) disables collection
  /// entirely (see pas/obs/observer.hpp).
  std::shared_ptr<obs::Observer> observer;

  // --- Resolution -----------------------------------------------------
  /// Throws std::invalid_argument on an unknown scale or kernel name.
  Scale resolved_scale() const;
  sim::ClusterConfig resolved_cluster() const;
  std::vector<int> resolved_nodes() const;
  std::vector<double> resolved_freqs() const;
  /// The speedup base frequency: the smallest resolved frequency (600
  /// MHz on the default grids, matching the paper's base point).
  double base_f_mhz() const;

  /// Checks the document half (kernel/scale names, positive axes);
  /// throws std::invalid_argument with the offending field.
  void validate() const;

  // --- JSON round-trip ------------------------------------------------
  /// Canonical document: every document field is emitted (fault only
  /// when set), keys in schema order, so to_json(from_json(d)).dump()
  /// is a byte-stable fixpoint.
  util::Json to_json() const;
  /// Strict parse: requires "version" 1 or 2, rejects unknown keys at
  /// every nesting level (v2 fields count as unknown in a v1
  /// document), type-checks every field.
  static SweepSpec from_json(const util::Json& j);
  /// from_json over Json::parse.
  static SweepSpec parse(const std::string& text);
  /// Reads and parses a spec file; errors mention the path.
  static SweepSpec load(const std::string& path);

  /// The bench/example entry point: starts from `--spec FILE` when
  /// given (else an all-defaults spec), then lets flags override the
  /// document — `--small`, `--kernel K`, `--nodes LIST`,
  /// `--freqs LIST`, `--comm-dvfs MHZ`, `--iterations N`,
  /// `--faults RATE`,
  /// `--fault-seed N` (`--faults 0` clears an inherited fault block),
  /// and every SweepOptions flag via apply_cli. The observer is also
  /// wired from the CLI (`--trace`/`--metrics`).
  static SweepSpec from_cli(const util::Cli& cli);

  /// Every option name from_cli consumes (spec, axes, SweepOptions,
  /// faults, observer), for Cli::check_usage — binaries append their
  /// own flags:
  ///
  ///   auto known = analysis::SweepSpec::cli_option_names();
  ///   known.insert(known.end(), {"csv", "out"});
  ///   cli.check_usage(known);
  static std::vector<std::string> cli_option_names();
};

}  // namespace pas::analysis
