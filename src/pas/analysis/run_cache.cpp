#include "pas/analysis/run_cache.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include "pas/obs/metrics.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {
namespace {

constexpr const char* kRunHeader = "pasim-run-cache v5";
constexpr const char* kLedgerHeader = "pasim-run-ledger v5";
constexpr const char* kCkptHeader = "pasim-run-ckpt v5";

// Live cache traffic is schedule-dependent (duplicate points racing in
// one batch resolve as hit-vs-miss by timing), so these are volatile
// diagnostics, never part of deterministic artifacts.
obs::Counter& hit_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.hits");
  return c;
}
obs::Counter& miss_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.misses");
  return c;
}

// Quarantines ARE stable: they count actual bad files found on disk
// (racing readers settle by who wins the rename), not schedule noise —
// the torture harness asserts on this through metrics.csv.
obs::Counter& quarantine_counter() {
  static obs::Counter& c = obs::registry().counter(
      "runcache.quarantined", obs::Stability::kStable);
  return c;
}

// %.17g identifies a binary64 uniquely; used for *key* strings (human-
// greppable). Record payloads use %a for guaranteed bit-exact parsing.
std::string d17(double x) { return pas::util::strf("%.17g", x); }

void put(std::ostream& out, const char* field, double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  out << field << ' ' << buf << '\n';
}

bool get(std::istream& in, const char* field, double* x) {
  std::string name, value;
  if (!(in >> name >> value) || name != field) return false;
  char* end = nullptr;
  *x = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// One disk entry, parsed up to (but not through) its payload.
struct EntryView {
  enum class State { kMissing, kCollision, kCorrupt, kOk };
  State state = State::kMissing;
  std::string payload;
};

/// Loads and validates a v4 entry: header line, `key <key>` line,
/// `sum <16-hex fnv1a(payload)>` line, payload. The collision check
/// runs before the checksum: a well-formed entry holding a *different*
/// key is an fnv1a filename collision, not corruption — leave it alone
/// and miss. Anything else malformed (old v3 headers included) is
/// corrupt and gets quarantined by the caller.
EntryView load_entry(const std::string& path, const char* header,
                     const std::string& key, const char* key_prefix) {
  EntryView v;
  const std::optional<std::string> bytes = util::read_file(path);
  if (!bytes) return v;  // kMissing
  v.state = EntryView::State::kCorrupt;
  const std::string& s = *bytes;
  const std::size_t nl1 = s.find('\n');
  if (nl1 == std::string::npos) return v;
  const std::size_t nl2 = s.find('\n', nl1 + 1);
  if (nl2 == std::string::npos) return v;
  const std::size_t nl3 = s.find('\n', nl2 + 1);
  if (nl3 == std::string::npos) return v;
  if (s.compare(0, nl1, header) != 0) return v;
  const std::string key_line = s.substr(nl1 + 1, nl2 - nl1 - 1);
  if (key_line != "key " + key) {
    if (key_line.rfind(key_prefix, 0) == 0)
      v.state = EntryView::State::kCollision;
    return v;
  }
  const std::string sum_line = s.substr(nl2 + 1, nl3 - nl2 - 1);
  if (sum_line.rfind("sum ", 0) != 0) return v;
  char* end = nullptr;
  const std::uint64_t expect =
      std::strtoull(sum_line.c_str() + 4, &end, 16);
  if (end == nullptr || *end != '\0') return v;
  v.payload = s.substr(nl3 + 1);
  if (util::fnv1a(v.payload) != expect) {
    v.payload.clear();
    return v;  // bit rot or torn write: checksum caught it
  }
  v.state = EntryView::State::kOk;
  return v;
}

void quarantine(const std::string& path, const char* what) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".bad", ec);
  // Count only the winning rename: concurrent readers of one bad file
  // must produce one quarantine, or the stable metric would be racy.
  if (!ec) {
    quarantine_counter().add();
    util::fsync_parent_dir(path);
  }
  pas::util::log_warn(
      "run cache: corrupt " + std::string(what) + " " + path +
      (ec ? " (quarantine failed: " + ec.message() + ")"
          : " quarantined to " + path + ".bad") +
      "; treating as a miss");
}

/// Read hits refresh the entry's LRU position. Best-effort: an mtime
/// we cannot touch only makes eviction less accurate, never wrong.
void touch(const std::string& path) {
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
}

}  // namespace

std::string cluster_signature(const sim::ClusterConfig& c) {
  std::ostringstream out;
  out << "nodes=" << c.num_nodes;
  out << ";cpu=" << d17(c.cpu.reg_cpi) << ',' << d17(c.cpu.l1_cpi) << ','
      << d17(c.cpu.l2_cpi) << ',' << d17(c.cpu.issue_overhead_cpi);
  const auto cache_sig = [&](const sim::CacheConfig& l) {
    return pas::util::strf("%zu/%zu/%zu/%s", l.capacity_bytes, l.line_bytes,
                           l.associativity, d17(l.access_cycles).c_str());
  };
  out << ";l1=" << cache_sig(c.memory.l1) << ";l2=" << cache_sig(c.memory.l2);
  out << ";dram=" << d17(c.memory.dram_latency_s) << ','
      << (c.memory.bus_slowdown_at_low_freq ? 1 : 0) << ','
      << d17(c.memory.slow_dram_latency_s) << ','
      << d17(c.memory.bus_slowdown_threshold_hz);
  out << ";opts=";
  for (const sim::OperatingPoint& p : c.operating_points.points())
    out << d17(p.frequency_hz) << '@' << d17(p.voltage_v) << ',';
  out << ";net=" << d17(c.network.bandwidth_bps) << ','
      << d17(c.network.switch_latency_s) << ','
      << d17(c.network.per_message_cpu_cycles) << ','
      << d17(c.network.cpu_cycles_per_byte) << ','
      << (c.network.model_port_contention ? 1 : 0);
  out << ";dvfs_tr=" << d17(c.dvfs_transition_s);
  out << ";fault=" << c.fault.signature();
  return out.str();
}

std::string power_signature(const power::PowerModel& power) {
  const power::PowerModelConfig& p = power.config();
  return pas::util::strf(
      "ceff=%s;leak=%s;base=%s;mem=%s;net=%s;netf=%s;idlef=%s",
      d17(p.c_eff_farad).c_str(), d17(p.leakage_w_per_v).c_str(),
      d17(p.base_w).c_str(), d17(p.memory_active_w).c_str(),
      d17(p.network_active_w).c_str(), d17(p.network_cpu_factor).c_str(),
      d17(p.idle_cpu_factor).c_str());
}

RunCache::RunCache(std::string dir, std::uint64_t cap_bytes)
    : dir_(std::move(dir)), cap_bytes_(cap_bytes) {}

std::string RunCache::key(const npb::Kernel& kernel,
                          const sim::ClusterConfig& cluster,
                          const power::PowerModel& power, int nodes,
                          double frequency_mhz, double comm_dvfs_mhz) {
  return pas::util::strf(
      "v5|%s|%s|%s|N=%d|f=%s|comm=%s", kernel.signature().c_str(),
      cluster_signature(cluster).c_str(), power_signature(power).c_str(),
      nodes, d17(frequency_mhz).c_str(), d17(comm_dvfs_mhz).c_str());
}

std::string RunCache::sampled_key_suffix(int sample_period, int warmup_iters) {
  return pas::util::strf("|sampled(p=%d,w=%d)", sample_period, warmup_iters);
}

std::string RunCache::ledger_key(const npb::Kernel& kernel,
                                 const sim::ClusterConfig& cluster, int nodes,
                                 double comm_dvfs_mhz) {
  return pas::util::strf("ledger-v5|%s|%s|N=%d|comm=%s",
                         kernel.signature().c_str(),
                         cluster_signature(cluster).c_str(), nodes,
                         d17(comm_dvfs_mhz).c_str());
}

std::string RunCache::checkpoint_key(const npb::Kernel& kernel,
                                     const sim::ClusterConfig& cluster,
                                     int nodes, double frequency_mhz,
                                     double comm_dvfs_mhz) {
  return pas::util::strf("ckpt-v5|%s|%s|N=%d|f=%s|comm=%s",
                         kernel.prefix_signature().c_str(),
                         cluster_signature(cluster).c_str(), nodes,
                         d17(frequency_mhz).c_str(),
                         d17(comm_dvfs_mhz).c_str());
}

std::string RunCache::path_for(const std::string& key) const {
  return (std::filesystem::path(dir_) /
          pas::util::strf("%016" PRIx64 ".run", util::fnv1a(key)))
      .string();
}

std::string RunCache::ledger_path_for(const std::string& key) const {
  return (std::filesystem::path(dir_) /
          pas::util::strf("%016" PRIx64 ".ledger", util::fnv1a(key)))
      .string();
}

std::string RunCache::ckpt_path_for(const std::string& key,
                                    int boundary) const {
  // One file per (prefix identity, boundary): the boundary rides in the
  // name so lookup can enumerate a prefix's boundaries without opening
  // every file.
  return (std::filesystem::path(dir_) /
          pas::util::strf("%016" PRIx64 "_b%d.ckpt", util::fnv1a(key),
                          boundary))
      .string();
}

std::string RunCache::encode_record(const RunRecord& record) {
  std::ostringstream out;
  out << "nodes " << record.nodes << '\n';
  put(out, "frequency_mhz", record.frequency_mhz);
  put(out, "seconds", record.seconds);
  put(out, "mean_overhead_s", record.mean_overhead_s);
  put(out, "mean_cpu_s", record.mean_cpu_s);
  put(out, "mean_memory_s", record.mean_memory_s);
  put(out, "verified", record.verified ? 1.0 : 0.0);
  put(out, "energy_cpu_j", record.energy.cpu_j);
  put(out, "energy_memory_j", record.energy.memory_j);
  put(out, "energy_network_j", record.energy.network_j);
  put(out, "energy_idle_j", record.energy.idle_j);
  put(out, "messages_per_rank", record.messages_per_rank);
  put(out, "doubles_per_message", record.doubles_per_message);
  put(out, "exec_reg", record.executed_per_rank.reg_ops);
  put(out, "exec_l1", record.executed_per_rank.l1_ops);
  put(out, "exec_l2", record.executed_per_rank.l2_ops);
  put(out, "exec_mem", record.executed_per_rank.mem_ops);
  put(out, "attempts", static_cast<double>(record.attempts));
  put(out, "send_retries", record.send_retries);
  put(out, "sampled", record.sampled ? 1.0 : 0.0);
  put(out, "total_iters", static_cast<double>(record.total_iters));
  put(out, "sampled_iters", static_cast<double>(record.sampled_iters));
  put(out, "ci_seconds", record.ci_seconds);
  put(out, "ci_energy_j", record.ci_energy_j);
  return out.str();
}

bool RunCache::decode_record(std::istream& in, RunRecord* rec) {
  int n = 0;
  std::string name;
  if (!(in >> name >> n) || name != "nodes") return false;
  rec->nodes = n;
  double verified = 0.0;
  double attempts = 1.0;
  const bool ok =
      get(in, "frequency_mhz", &rec->frequency_mhz) &&
      get(in, "seconds", &rec->seconds) &&
      get(in, "mean_overhead_s", &rec->mean_overhead_s) &&
      get(in, "mean_cpu_s", &rec->mean_cpu_s) &&
      get(in, "mean_memory_s", &rec->mean_memory_s) &&
      get(in, "verified", &verified) &&
      get(in, "energy_cpu_j", &rec->energy.cpu_j) &&
      get(in, "energy_memory_j", &rec->energy.memory_j) &&
      get(in, "energy_network_j", &rec->energy.network_j) &&
      get(in, "energy_idle_j", &rec->energy.idle_j) &&
      get(in, "messages_per_rank", &rec->messages_per_rank) &&
      get(in, "doubles_per_message", &rec->doubles_per_message) &&
      get(in, "exec_reg", &rec->executed_per_rank.reg_ops) &&
      get(in, "exec_l1", &rec->executed_per_rank.l1_ops) &&
      get(in, "exec_l2", &rec->executed_per_rank.l2_ops) &&
      get(in, "exec_mem", &rec->executed_per_rank.mem_ops) &&
      get(in, "attempts", &attempts) &&
      get(in, "send_retries", &rec->send_retries);
  if (!ok) return false;
  double sampled = 0.0;
  double total_iters = 0.0;
  double sampled_iters = 0.0;
  if (!get(in, "sampled", &sampled) ||
      !get(in, "total_iters", &total_iters) ||
      !get(in, "sampled_iters", &sampled_iters) ||
      !get(in, "ci_seconds", &rec->ci_seconds) ||
      !get(in, "ci_energy_j", &rec->ci_energy_j))
    return false;
  rec->sampled = sampled != 0.0;
  rec->total_iters = static_cast<int>(total_iters);
  rec->sampled_iters = static_cast<int>(sampled_iters);
  rec->verified = verified != 0.0;
  rec->attempts = static_cast<int>(attempts);
  return true;
}

std::optional<RunRecord> RunCache::lookup(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++hits_;
      hit_counter().add();
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = path_for(key);
    const EntryView v = load_entry(path, kRunHeader, key, "key v");
    if (v.state == EntryView::State::kOk) {
      std::istringstream in(v.payload);
      RunRecord rec;
      if (decode_record(in, &rec)) {
        touch(path);
        std::lock_guard<std::mutex> lock(mutex_);
        memory_.emplace(key, rec);
        ++hits_;
        hit_counter().add();
        return rec;
      }
      quarantine(path, "entry");
    } else if (v.state == EntryView::State::kCorrupt) {
      quarantine(path, "entry");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  miss_counter().add();
  return std::nullopt;
}

void RunCache::publish(const std::string& path, const std::string& key,
                       const std::string& header,
                       const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    pas::util::log_warn("run cache: cannot create " + dir_ + ": " +
                        ec.message());
    return;
  }
  std::string content;
  content.reserve(header.size() + key.size() + payload.size() + 32);
  content += header;
  content += "\nkey ";
  content += key;
  content += pas::util::strf("\nsum %016" PRIx64 "\n",
                             util::fnv1a(payload));
  content += payload;
  if (const int err = util::atomic_write_file(path, content)) {
    pas::util::log_warn("run cache: cannot write " + path + ": " +
                        std::strerror(err));
    return;
  }
  maybe_evict();
}

void RunCache::store(const std::string& key, const RunRecord& record) {
  // Failed runs are never cached: a retry with different settings (or
  // a fixed kernel) must re-simulate the point.
  if (record.failed()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.emplace(key, record);
    ++stores_;
    static obs::Counter& stored = obs::registry().counter("runcache.stores");
    stored.add();
  }
  if (dir_.empty()) return;
  publish(path_for(key), key, kRunHeader, encode_record(record));
}

void RunCache::maybe_evict() {
  if (cap_bytes_ == 0) return;
  // Cross-process exclusion: only one evictor scans at a time. flock
  // dies with its holder, so a SIGKILLed evictor leaves no stale lock.
  const util::FileLock lock =
      util::FileLock::acquire((std::filesystem::path(dir_) / ".lock").string());
  if (!lock.held()) return;
  struct File {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
  };
  std::vector<File> files;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string ext = de.path().extension().string();
    if (ext != ".run" && ext != ".ledger" && ext != ".ckpt" && ext != ".bad")
      continue;
    File f;
    f.path = de.path();
    f.mtime = de.last_write_time(ec);
    f.size = de.file_size(ec);
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total <= cap_bytes_) return;
  std::sort(files.begin(), files.end(), [](const File& a, const File& b) {
    // mtime, then name: a total order even when timestamps collide.
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.native() < b.path.native();
  });
  static obs::Counter& evicted = obs::registry().counter("runcache.evicted");
  for (const File& f : files) {
    if (total <= cap_bytes_) break;
    if (std::filesystem::remove(f.path, ec) && !ec) {
      total -= f.size;
      evicted.add();
    }
  }
}

namespace {

obs::Counter& ledger_hit_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ledger_hits");
  return c;
}
obs::Counter& ledger_miss_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ledger_misses");
  return c;
}

/// One op per line, first token selecting the kind. Doubles are %a so
/// a loaded ledger replays bit-identically to the freshly recorded one.
void put_op(std::ostream& out, const sim::WorkOp& op) {
  char a[64], b[64], c[64], d[64];
  switch (op.kind) {
    case sim::WorkOp::Kind::kCompute:
      std::snprintf(a, sizeof a, "%a", op.mix.reg_ops);
      std::snprintf(b, sizeof b, "%a", op.mix.l1_ops);
      std::snprintf(c, sizeof c, "%a", op.mix.l2_ops);
      std::snprintf(d, sizeof d, "%a", op.mix.mem_ops);
      out << "C " << a << ' ' << b << ' ' << c << ' ' << d << '\n';
      break;
    case sim::WorkOp::Kind::kRawSeconds:
      std::snprintf(a, sizeof a, "%a", op.seconds);
      out << "T " << a << ' ' << static_cast<int>(op.activity) << '\n';
      break;
    case sim::WorkOp::Kind::kSend:
      out << "S " << op.peer << ' ' << op.tag << ' ' << op.bytes << ' '
          << (op.blocking ? 1 : 0) << '\n';
      break;
    case sim::WorkOp::Kind::kSendWait:
      out << "W " << op.ordinal << '\n';
      break;
    case sim::WorkOp::Kind::kRecv:
      out << "R " << op.peer << ' ' << op.tag << '\n';
      break;
    case sim::WorkOp::Kind::kCommDvfs:
      std::snprintf(a, sizeof a, "%a", op.mhz);
      out << "D " << a << '\n';
      break;
  }
}

bool get_hexdouble(std::istream& in, double* x) {
  std::string value;
  if (!(in >> value)) return false;
  char* end = nullptr;
  *x = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool get_op(std::istream& in, sim::WorkOp* op) {
  std::string kind;
  if (!(in >> kind) || kind.size() != 1) return false;
  switch (kind[0]) {
    case 'C': {
      sim::InstructionMix mix;
      if (!get_hexdouble(in, &mix.reg_ops) || !get_hexdouble(in, &mix.l1_ops) ||
          !get_hexdouble(in, &mix.l2_ops) || !get_hexdouble(in, &mix.mem_ops))
        return false;
      *op = sim::WorkOp::compute(mix);
      return true;
    }
    case 'T': {
      double s = 0.0;
      int act = 0;
      if (!get_hexdouble(in, &s) || !(in >> act) || act < 0 ||
          act >= static_cast<int>(sim::kNumActivities))
        return false;
      *op = sim::WorkOp::raw_seconds(s, static_cast<sim::Activity>(act));
      return true;
    }
    case 'S': {
      int dst = 0, tag = 0, blocking = 0;
      std::size_t bytes = 0;
      if (!(in >> dst >> tag >> bytes >> blocking)) return false;
      *op = sim::WorkOp::send(dst, tag, bytes, blocking != 0);
      return true;
    }
    case 'W': {
      int ordinal = 0;
      if (!(in >> ordinal)) return false;
      *op = sim::WorkOp::send_wait(ordinal);
      return true;
    }
    case 'R': {
      int src = 0, tag = 0;
      if (!(in >> src >> tag)) return false;
      *op = sim::WorkOp::recv(src, tag);
      return true;
    }
    case 'D': {
      double mhz = 0.0;
      if (!get_hexdouble(in, &mhz)) return false;
      *op = sim::WorkOp::comm_dvfs(mhz);
      return true;
    }
    default:
      return false;
  }
}

/// Ledger payload parse (everything after the `sum` line). A truncated
/// file fails an op parse mid-span and the whole ledger is rejected
/// (then quarantined by the caller) — though v4's checksum catches
/// truncation before we ever get here.
bool decode_ledger_payload(std::istream& in, sim::WorkLedger* ledger) {
  std::string name;
  int nranks = 0;
  double verified = 0.0;
  if (!(in >> name >> nranks) || name != "nranks" || nranks < 1) return false;
  if (!(in >> name) || name != "comm_dvfs" ||
      !get_hexdouble(in, &ledger->comm_dvfs_mhz))
    return false;
  if (!(in >> name) || name != "verified" || !get_hexdouble(in, &verified))
    return false;
  ledger->nranks = nranks;
  ledger->verified = verified != 0.0;
  ledger->rank_spans.assign(static_cast<std::size_t>(nranks), {});
  for (int r = 0; r < nranks; ++r) {
    int rank = -1;
    std::size_t nops = 0;
    if (!(in >> name >> rank >> nops) || name != "rank" || rank != r)
      return false;
    auto& span = ledger->rank_spans[static_cast<std::size_t>(r)];
    span.offset = ledger->arena.size();
    span.count = nops;
    ledger->arena.resize(span.offset + nops);
    for (std::size_t i = 0; i < nops; ++i) {
      if (!get_op(in, &ledger->arena[span.offset + i])) return false;
    }
  }
  if (!(in >> name) || name != "end") return false;
  return true;
}

std::string encode_ledger_payload(const sim::WorkLedger& ledger) {
  std::ostringstream out;
  out << "nranks " << ledger.nranks << '\n';
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", ledger.comm_dvfs_mhz);
  out << "comm_dvfs " << buf << '\n';
  out << "verified " << (ledger.verified ? 1 : 0) << '\n';
  for (int r = 0; r < ledger.nranks; ++r) {
    const std::size_t nops = ledger.rank_size(r);
    out << "rank " << r << ' ' << nops << '\n';
    const sim::WorkOp* ops = ledger.rank_ops(r);
    for (std::size_t i = 0; i < nops; ++i) put_op(out, ops[i]);
  }
  out << "end\n";
  return out.str();
}

}  // namespace

std::string RunCache::encode_ledger(const sim::WorkLedger& ledger) {
  return encode_ledger_payload(ledger);
}

bool RunCache::decode_ledger(std::istream& in, sim::WorkLedger* ledger) {
  return decode_ledger_payload(in, ledger);
}

std::shared_ptr<const sim::WorkLedger> RunCache::lookup_ledger(
    const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = ledgers_.find(key);
    if (it != ledgers_.end()) {
      ledger_hit_counter().add();
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = ledger_path_for(key);
    const EntryView v = load_entry(path, kLedgerHeader, key, "key ledger-v");
    if (v.state == EntryView::State::kOk) {
      std::istringstream in(v.payload);
      auto ledger = std::make_shared<sim::WorkLedger>();
      if (decode_ledger_payload(in, ledger.get())) {
        touch(path);
        std::shared_ptr<const sim::WorkLedger> shared = std::move(ledger);
        std::lock_guard<std::mutex> lock(mutex_);
        ledgers_.emplace(key, shared);
        ledger_hit_counter().add();
        return shared;
      }
      quarantine(path, "ledger");
    } else if (v.state == EntryView::State::kCorrupt) {
      quarantine(path, "ledger");
    }
  }
  ledger_miss_counter().add();
  return nullptr;
}

std::shared_ptr<const sim::WorkLedger> RunCache::store_ledger(
    const std::string& key, sim::WorkLedger ledger) {
  if (!ledger.replayable || ledger.nranks < 1) return nullptr;
  auto shared =
      std::make_shared<const sim::WorkLedger>(std::move(ledger));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ledgers_.emplace(key, shared);
    static obs::Counter& stored =
        obs::registry().counter("runcache.ledger_stores");
    stored.add();
  }
  if (dir_.empty()) return shared;
  publish(ledger_path_for(key), key, kLedgerHeader,
          encode_ledger_payload(*shared));
  return shared;
}

namespace {

obs::Counter& ckpt_hit_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ckpt_hits");
  return c;
}
obs::Counter& ckpt_miss_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ckpt_misses");
  return c;
}

}  // namespace

std::shared_ptr<const sim::Checkpoint> RunCache::lookup_checkpoint(
    const std::string& key, int max_boundary) {
  // Candidate boundaries, deepest first: the in-memory map plus every
  // on-disk file whose name carries this key's hash.
  std::map<int, bool> on_disk;  // boundary -> (unused)
  if (!dir_.empty()) {
    const std::string prefix =
        pas::util::strf("%016" PRIx64 "_b", util::fnv1a(key));
    std::error_code ec;
    for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
      if (de.path().extension() != ".ckpt") continue;
      const std::string name = de.path().filename().string();
      if (name.rfind(prefix, 0) != 0) continue;
      char* end = nullptr;
      const long b = std::strtol(name.c_str() + prefix.size(), &end, 10);
      if (end == nullptr || std::strcmp(end, ".ckpt") != 0) continue;
      if (b > 0 && b <= max_boundary) on_disk.emplace(static_cast<int>(b), true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = checkpoints_.find(key);
    if (it != checkpoints_.end()) {
      for (const auto& [b, ckpt] : it->second) {
        if (b <= max_boundary) on_disk.emplace(b, true);
      }
    }
  }
  for (auto bi = on_disk.rbegin(); bi != on_disk.rend(); ++bi) {
    const int boundary = bi->first;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = checkpoints_.find(key);
      if (it != checkpoints_.end()) {
        const auto ci = it->second.find(boundary);
        if (ci != it->second.end()) {
          ckpt_hit_counter().add();
          return ci->second;
        }
      }
    }
    const std::string path = ckpt_path_for(key, boundary);
    const EntryView v = load_entry(path, kCkptHeader, key, "key ckpt-v");
    if (v.state == EntryView::State::kOk) {
      auto ckpt = std::make_shared<sim::Checkpoint>();
      if (sim::Checkpoint::decode(v.payload, ckpt.get()) &&
          ckpt->boundary == boundary) {
        touch(path);
        std::shared_ptr<const sim::Checkpoint> shared = std::move(ckpt);
        std::lock_guard<std::mutex> lock(mutex_);
        checkpoints_[key].emplace(boundary, shared);
        ckpt_hit_counter().add();
        return shared;
      }
      quarantine(path, "checkpoint");
    } else if (v.state == EntryView::State::kCorrupt) {
      quarantine(path, "checkpoint");
    }
    // kMissing / kCollision / just quarantined: try the next-deepest.
  }
  ckpt_miss_counter().add();
  return nullptr;
}

std::shared_ptr<const sim::Checkpoint> RunCache::store_checkpoint(
    const std::string& key, sim::Checkpoint ckpt) {
  if (ckpt.boundary < 1 || ckpt.nranks < 1) return nullptr;
  const int boundary = ckpt.boundary;
  auto shared = std::make_shared<const sim::Checkpoint>(std::move(ckpt));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    checkpoints_[key].emplace(boundary, shared);
    static obs::Counter& stored =
        obs::registry().counter("runcache.ckpt_stores");
    stored.add();
  }
  if (dir_.empty()) return shared;
  publish(ckpt_path_for(key, boundary), key, kCkptHeader, shared->encode());
  return shared;
}

std::uint64_t RunCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t RunCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t RunCache::stores() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}

std::string RunCache::stats_string() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string where =
      dir_.empty() ? " (in-memory)" : " (dir: " + dir_ + ")";
  return pas::util::strf("%" PRIu64 " hits / %" PRIu64 " misses%s", hits_,
                         misses_, where.c_str());
}

}  // namespace pas::analysis
