#include "pas/analysis/run_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pas/obs/metrics.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {
namespace {

// Live cache traffic is schedule-dependent (duplicate points racing in
// one batch resolve as hit-vs-miss by timing), so these are volatile
// diagnostics, never part of deterministic artifacts.
obs::Counter& hit_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.hits");
  return c;
}
obs::Counter& miss_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.misses");
  return c;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

// %.17g identifies a binary64 uniquely; used for *key* strings (human-
// greppable). Record payloads use %a for guaranteed bit-exact parsing.
std::string d17(double x) { return pas::util::strf("%.17g", x); }

void put(std::ostream& out, const char* field, double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  out << field << ' ' << buf << '\n';
}

bool get(std::istream& in, const char* field, double* x) {
  std::string name, value;
  if (!(in >> name >> value) || name != field) return false;
  char* end = nullptr;
  *x = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string cluster_signature(const sim::ClusterConfig& c) {
  std::ostringstream out;
  out << "nodes=" << c.num_nodes;
  out << ";cpu=" << d17(c.cpu.reg_cpi) << ',' << d17(c.cpu.l1_cpi) << ','
      << d17(c.cpu.l2_cpi) << ',' << d17(c.cpu.issue_overhead_cpi);
  const auto cache_sig = [&](const sim::CacheConfig& l) {
    return pas::util::strf("%zu/%zu/%zu/%s", l.capacity_bytes, l.line_bytes,
                           l.associativity, d17(l.access_cycles).c_str());
  };
  out << ";l1=" << cache_sig(c.memory.l1) << ";l2=" << cache_sig(c.memory.l2);
  out << ";dram=" << d17(c.memory.dram_latency_s) << ','
      << (c.memory.bus_slowdown_at_low_freq ? 1 : 0) << ','
      << d17(c.memory.slow_dram_latency_s) << ','
      << d17(c.memory.bus_slowdown_threshold_hz);
  out << ";opts=";
  for (const sim::OperatingPoint& p : c.operating_points.points())
    out << d17(p.frequency_hz) << '@' << d17(p.voltage_v) << ',';
  out << ";net=" << d17(c.network.bandwidth_bps) << ','
      << d17(c.network.switch_latency_s) << ','
      << d17(c.network.per_message_cpu_cycles) << ','
      << d17(c.network.cpu_cycles_per_byte) << ','
      << (c.network.model_port_contention ? 1 : 0);
  out << ";dvfs_tr=" << d17(c.dvfs_transition_s);
  out << ";fault=" << c.fault.signature();
  return out.str();
}

std::string power_signature(const power::PowerModel& power) {
  const power::PowerModelConfig& p = power.config();
  return pas::util::strf(
      "ceff=%s;leak=%s;base=%s;mem=%s;net=%s;netf=%s;idlef=%s",
      d17(p.c_eff_farad).c_str(), d17(p.leakage_w_per_v).c_str(),
      d17(p.base_w).c_str(), d17(p.memory_active_w).c_str(),
      d17(p.network_active_w).c_str(), d17(p.network_cpu_factor).c_str(),
      d17(p.idle_cpu_factor).c_str());
}

RunCache::RunCache(std::string dir) : dir_(std::move(dir)) {}

std::string RunCache::key(const npb::Kernel& kernel,
                          const sim::ClusterConfig& cluster,
                          const power::PowerModel& power, int nodes,
                          double frequency_mhz, double comm_dvfs_mhz) {
  return pas::util::strf(
      "v3|%s|%s|%s|N=%d|f=%s|comm=%s", kernel.signature().c_str(),
      cluster_signature(cluster).c_str(), power_signature(power).c_str(),
      nodes, d17(frequency_mhz).c_str(), d17(comm_dvfs_mhz).c_str());
}

std::string RunCache::ledger_key(const npb::Kernel& kernel,
                                 const sim::ClusterConfig& cluster, int nodes,
                                 double comm_dvfs_mhz) {
  return pas::util::strf("ledger-v3|%s|%s|N=%d|comm=%s",
                         kernel.signature().c_str(),
                         cluster_signature(cluster).c_str(), nodes,
                         d17(comm_dvfs_mhz).c_str());
}

std::string RunCache::path_for(const std::string& key) const {
  return (std::filesystem::path(dir_) /
          pas::util::strf("%016" PRIx64 ".run", fnv1a(key)))
      .string();
}

std::string RunCache::ledger_path_for(const std::string& key) const {
  return (std::filesystem::path(dir_) /
          pas::util::strf("%016" PRIx64 ".ledger", fnv1a(key)))
      .string();
}

std::string RunCache::encode_record(const RunRecord& record) {
  std::ostringstream out;
  out << "nodes " << record.nodes << '\n';
  put(out, "frequency_mhz", record.frequency_mhz);
  put(out, "seconds", record.seconds);
  put(out, "mean_overhead_s", record.mean_overhead_s);
  put(out, "mean_cpu_s", record.mean_cpu_s);
  put(out, "mean_memory_s", record.mean_memory_s);
  put(out, "verified", record.verified ? 1.0 : 0.0);
  put(out, "energy_cpu_j", record.energy.cpu_j);
  put(out, "energy_memory_j", record.energy.memory_j);
  put(out, "energy_network_j", record.energy.network_j);
  put(out, "energy_idle_j", record.energy.idle_j);
  put(out, "messages_per_rank", record.messages_per_rank);
  put(out, "doubles_per_message", record.doubles_per_message);
  put(out, "exec_reg", record.executed_per_rank.reg_ops);
  put(out, "exec_l1", record.executed_per_rank.l1_ops);
  put(out, "exec_l2", record.executed_per_rank.l2_ops);
  put(out, "exec_mem", record.executed_per_rank.mem_ops);
  put(out, "attempts", static_cast<double>(record.attempts));
  put(out, "send_retries", record.send_retries);
  return out.str();
}

std::optional<RunRecord> RunCache::lookup(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++hits_;
      hit_counter().add();
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = path_for(key);
    bool present = false;
    bool collision = false;
    {
      std::ifstream in(path);
      present = static_cast<bool>(in);
      if (in) {
        std::string header, stored_key;
        std::getline(in, header);
        std::getline(in, stored_key);
        // A valid file holding a *different* key is an fnv1a filename
        // collision, not corruption: leave it alone and miss.
        collision =
            header == "pasim-run-cache v3" && stored_key != "key " + key &&
            stored_key.rfind("key v", 0) == 0;
        RunRecord rec;
        double verified = 0.0;
        double attempts = 1.0;
        const bool ok =
            header == "pasim-run-cache v3" && stored_key == "key " + key &&
            [&] {
              int n = 0;
              std::string name;
              if (!(in >> name >> n) || name != "nodes") return false;
              rec.nodes = n;
              return get(in, "frequency_mhz", &rec.frequency_mhz) &&
                     get(in, "seconds", &rec.seconds) &&
                     get(in, "mean_overhead_s", &rec.mean_overhead_s) &&
                     get(in, "mean_cpu_s", &rec.mean_cpu_s) &&
                     get(in, "mean_memory_s", &rec.mean_memory_s) &&
                     get(in, "verified", &verified) &&
                     get(in, "energy_cpu_j", &rec.energy.cpu_j) &&
                     get(in, "energy_memory_j", &rec.energy.memory_j) &&
                     get(in, "energy_network_j", &rec.energy.network_j) &&
                     get(in, "energy_idle_j", &rec.energy.idle_j) &&
                     get(in, "messages_per_rank", &rec.messages_per_rank) &&
                     get(in, "doubles_per_message", &rec.doubles_per_message) &&
                     get(in, "exec_reg", &rec.executed_per_rank.reg_ops) &&
                     get(in, "exec_l1", &rec.executed_per_rank.l1_ops) &&
                     get(in, "exec_l2", &rec.executed_per_rank.l2_ops) &&
                     get(in, "exec_mem", &rec.executed_per_rank.mem_ops) &&
                     get(in, "attempts", &attempts) &&
                     get(in, "send_retries", &rec.send_retries);
            }();
        if (ok) {
          rec.verified = verified != 0.0;
          rec.attempts = static_cast<int>(attempts);
          std::lock_guard<std::mutex> lock(mutex_);
          memory_.emplace(key, rec);
          ++hits_;
          hit_counter().add();
          return rec;
        }
      }
    }
    if (present && !collision) {
      // Corrupt / truncated / old-format entry: quarantine it so the
      // bad bytes never count as a hit again, and treat as a miss.
      static obs::Counter& quarantined =
          obs::registry().counter("runcache.quarantined");
      quarantined.add();
      std::error_code ec;
      std::filesystem::rename(path, path + ".bad", ec);
      pas::util::log_warn(
          "run cache: corrupt entry " + path +
          (ec ? " (quarantine failed: " + ec.message() + ")"
              : " quarantined to " + path + ".bad") +
          "; treating as a miss");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  miss_counter().add();
  return std::nullopt;
}

void RunCache::store(const std::string& key, const RunRecord& record) {
  // Failed runs are never cached: a retry with different settings (or
  // a fixed kernel) must re-simulate the point.
  if (record.failed()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.emplace(key, record);
    ++stores_;
    static obs::Counter& stored = obs::registry().counter("runcache.stores");
    stored.add();
  }
  if (dir_.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    pas::util::log_warn("run cache: cannot create " + dir_ + ": " +
                        ec.message());
    return;
  }
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      pas::util::log_warn("run cache: cannot write " + tmp);
      return;
    }
    out << "pasim-run-cache v3\n";
    out << "key " << key << '\n';
    out << encode_record(record);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) pas::util::log_warn("run cache: cannot rename " + tmp);
}

namespace {

obs::Counter& ledger_hit_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ledger_hits");
  return c;
}
obs::Counter& ledger_miss_counter() {
  static obs::Counter& c = obs::registry().counter("runcache.ledger_misses");
  return c;
}

/// One op per line, first token selecting the kind. Doubles are %a so
/// a loaded ledger replays bit-identically to the freshly recorded one.
void put_op(std::ostream& out, const sim::WorkOp& op) {
  char a[64], b[64], c[64], d[64];
  switch (op.kind) {
    case sim::WorkOp::Kind::kCompute:
      std::snprintf(a, sizeof a, "%a", op.mix.reg_ops);
      std::snprintf(b, sizeof b, "%a", op.mix.l1_ops);
      std::snprintf(c, sizeof c, "%a", op.mix.l2_ops);
      std::snprintf(d, sizeof d, "%a", op.mix.mem_ops);
      out << "C " << a << ' ' << b << ' ' << c << ' ' << d << '\n';
      break;
    case sim::WorkOp::Kind::kRawSeconds:
      std::snprintf(a, sizeof a, "%a", op.seconds);
      out << "T " << a << ' ' << static_cast<int>(op.activity) << '\n';
      break;
    case sim::WorkOp::Kind::kSend:
      out << "S " << op.peer << ' ' << op.tag << ' ' << op.bytes << ' '
          << (op.blocking ? 1 : 0) << '\n';
      break;
    case sim::WorkOp::Kind::kSendWait:
      out << "W " << op.ordinal << '\n';
      break;
    case sim::WorkOp::Kind::kRecv:
      out << "R " << op.peer << ' ' << op.tag << '\n';
      break;
    case sim::WorkOp::Kind::kCommDvfs:
      std::snprintf(a, sizeof a, "%a", op.mhz);
      out << "D " << a << '\n';
      break;
  }
}

bool get_hexdouble(std::istream& in, double* x) {
  std::string value;
  if (!(in >> value)) return false;
  char* end = nullptr;
  *x = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool get_op(std::istream& in, sim::WorkOp* op) {
  std::string kind;
  if (!(in >> kind) || kind.size() != 1) return false;
  switch (kind[0]) {
    case 'C': {
      sim::InstructionMix mix;
      if (!get_hexdouble(in, &mix.reg_ops) || !get_hexdouble(in, &mix.l1_ops) ||
          !get_hexdouble(in, &mix.l2_ops) || !get_hexdouble(in, &mix.mem_ops))
        return false;
      *op = sim::WorkOp::compute(mix);
      return true;
    }
    case 'T': {
      double s = 0.0;
      int act = 0;
      if (!get_hexdouble(in, &s) || !(in >> act) || act < 0 ||
          act >= static_cast<int>(sim::kNumActivities))
        return false;
      *op = sim::WorkOp::raw_seconds(s, static_cast<sim::Activity>(act));
      return true;
    }
    case 'S': {
      int dst = 0, tag = 0, blocking = 0;
      std::size_t bytes = 0;
      if (!(in >> dst >> tag >> bytes >> blocking)) return false;
      *op = sim::WorkOp::send(dst, tag, bytes, blocking != 0);
      return true;
    }
    case 'W': {
      int ordinal = 0;
      if (!(in >> ordinal)) return false;
      *op = sim::WorkOp::send_wait(ordinal);
      return true;
    }
    case 'R': {
      int src = 0, tag = 0;
      if (!(in >> src >> tag)) return false;
      *op = sim::WorkOp::recv(src, tag);
      return true;
    }
    case 'D': {
      double mhz = 0.0;
      if (!get_hexdouble(in, &mhz)) return false;
      *op = sim::WorkOp::comm_dvfs(mhz);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::shared_ptr<const sim::WorkLedger> RunCache::lookup_ledger(
    const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = ledgers_.find(key);
    if (it != ledgers_.end()) {
      ledger_hit_counter().add();
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = ledger_path_for(key);
    bool present = false;
    bool collision = false;
    {
      std::ifstream in(path);
      present = static_cast<bool>(in);
      if (in) {
        std::string header, stored_key;
        std::getline(in, header);
        std::getline(in, stored_key);
        collision = header == "pasim-run-ledger v3" &&
                    stored_key != "key " + key &&
                    stored_key.rfind("key ledger-v", 0) == 0;
        auto ledger = std::make_shared<sim::WorkLedger>();
        const bool ok =
            header == "pasim-run-ledger v3" && stored_key == "key " + key &&
            [&] {
              std::string name;
              int nranks = 0;
              double verified = 0.0;
              if (!(in >> name >> nranks) || name != "nranks" || nranks < 1)
                return false;
              if (!(in >> name) || name != "comm_dvfs" ||
                  !get_hexdouble(in, &ledger->comm_dvfs_mhz))
                return false;
              if (!(in >> name) || name != "verified" ||
                  !get_hexdouble(in, &verified))
                return false;
              ledger->nranks = nranks;
              ledger->verified = verified != 0.0;
              ledger->rank_spans.assign(static_cast<std::size_t>(nranks), {});
              for (int r = 0; r < nranks; ++r) {
                int rank = -1;
                std::size_t nops = 0;
                if (!(in >> name >> rank >> nops) || name != "rank" ||
                    rank != r)
                  return false;
                // The per-rank streams land back to back in the arena;
                // a truncated file fails an op parse mid-span and the
                // whole ledger is rejected (then quarantined below).
                auto& span = ledger->rank_spans[static_cast<std::size_t>(r)];
                span.offset = ledger->arena.size();
                span.count = nops;
                ledger->arena.resize(span.offset + nops);
                for (std::size_t i = 0; i < nops; ++i) {
                  if (!get_op(in, &ledger->arena[span.offset + i]))
                    return false;
                }
              }
              if (!(in >> name) || name != "end") return false;
              return true;
            }();
        if (ok) {
          std::shared_ptr<const sim::WorkLedger> shared = std::move(ledger);
          std::lock_guard<std::mutex> lock(mutex_);
          ledgers_.emplace(key, shared);
          ledger_hit_counter().add();
          return shared;
        }
      }
    }
    if (present && !collision) {
      static obs::Counter& quarantined =
          obs::registry().counter("runcache.quarantined");
      quarantined.add();
      std::error_code ec;
      std::filesystem::rename(path, path + ".bad", ec);
      pas::util::log_warn(
          "run cache: corrupt ledger " + path +
          (ec ? " (quarantine failed: " + ec.message() + ")"
              : " quarantined to " + path + ".bad") +
          "; treating as a miss");
    }
  }
  ledger_miss_counter().add();
  return nullptr;
}

std::shared_ptr<const sim::WorkLedger> RunCache::store_ledger(
    const std::string& key, sim::WorkLedger ledger) {
  if (!ledger.replayable || ledger.nranks < 1) return nullptr;
  auto shared =
      std::make_shared<const sim::WorkLedger>(std::move(ledger));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ledgers_.emplace(key, shared);
    static obs::Counter& stored =
        obs::registry().counter("runcache.ledger_stores");
    stored.add();
  }
  if (dir_.empty()) return shared;

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    pas::util::log_warn("run cache: cannot create " + dir_ + ": " +
                        ec.message());
    return shared;
  }
  const std::string path = ledger_path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      pas::util::log_warn("run cache: cannot write " + tmp);
      return shared;
    }
    out << "pasim-run-ledger v3\n";
    out << "key " << key << '\n';
    out << "nranks " << shared->nranks << '\n';
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", shared->comm_dvfs_mhz);
    out << "comm_dvfs " << buf << '\n';
    out << "verified " << (shared->verified ? 1 : 0) << '\n';
    for (int r = 0; r < shared->nranks; ++r) {
      const std::size_t nops = shared->rank_size(r);
      out << "rank " << r << ' ' << nops << '\n';
      const sim::WorkOp* ops = shared->rank_ops(r);
      for (std::size_t i = 0; i < nops; ++i) put_op(out, ops[i]);
    }
    out << "end\n";
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) pas::util::log_warn("run cache: cannot rename " + tmp);
  return shared;
}

std::uint64_t RunCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t RunCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t RunCache::stores() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}

std::string RunCache::stats_string() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string where =
      dir_.empty() ? " (in-memory)" : " (dir: " + dir_ + ")";
  return pas::util::strf("%" PRIu64 " hits / %" PRIu64 " misses%s", hits_,
                         misses_, where.c_str());
}

}  // namespace pas::analysis
