// SweepExecutor — the concurrent, memoized sweep engine.
//
// The evaluation is a grid of independent simulated runs: every run
// owns a private Runtime/Cluster and starts from reset state, so runs
// are embarrassingly parallel (the paper's own point about degree of
// parallelism, applied to our harness). The executor fans the grid out
// over a fixed worker pool while keeping results deterministic:
//
//   * MatrixResult.records stays in grid order (nodes-major, frequency
//     minor, exactly as the serial RunMatrix produces it), and
//   * every record is bit-identical to the serial path — concurrency
//     changes only wall-clock time, never virtual time (DESIGN.md §6).
//
// A RunCache (in-memory, optionally disk-backed) memoizes records by
// the canonical operating-point key, so parameterization passes and
// repeated bench invocations stop re-simulating identical points.
//
// On top of both sits the frequency-collapse fast path (DESIGN.md
// §10): when a kernel declares frequency_invariant_control_flow() and
// fault injection is off, only the first frequency of each (kernel, N,
// comm-DVFS) column is simulated — the run records a charged-work
// ledger and every remaining frequency of the column is re-priced
// analytically by analysis::Repricer, bit-identical to a full run.
// SweepOptions::verify_replay re-simulates every repriced point and
// hard-fails on any byte difference.
//
// For the axes repricing cannot collapse (node counts, iteration
// depths), DESIGN.md §14 adds two opt-in accelerations: checkpoint
// warm-starts (exact — points sharing an iteration-boundary prefix
// resume from the deepest stored sim::Checkpoint instead of
// re-simulating it) and SMARTS-style sampled estimation (approximate —
// only a systematic subset of iterations simulates in detail and each
// record becomes an extrapolated estimate carrying 95% confidence
// intervals, cross-checked by SweepOptions::verify_sampling). Both off
// by default; exact sweeps are untouched.
//
// The API is spec-shaped: everything that configures an executor lives
// in SweepSpec (pas/analysis/sweep_spec.hpp — kernel/scale/grid
// document plus process-local cluster, power model, fault override and
// observability sinks) and everything that describes one grid lives in
// SweepRequest, consumed by the run() entry points:
//
//   analysis::SweepSpec spec = analysis::SweepSpec::from_cli(cli);
//   analysis::SweepExecutor exec(spec);
//   analysis::MatrixResult m = exec.run();   // the spec's own grid
//   // or, for an explicit grid:
//   analysis::MatrixResult m = exec.run({&kernel, nodes, freqs_mhz});
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/run_matrix.hpp"
#include "pas/analysis/sweep_journal.hpp"
#include "pas/analysis/sweep_spec.hpp"
#include "pas/fault/fault.hpp"
#include "pas/obs/observer.hpp"
#include "pas/util/thread_pool.hpp"

namespace pas::analysis {

/// One sweep grid: the kernel crossed with node counts and
/// frequencies (nodes-major, frequency-minor order).
struct SweepRequest {
  const npb::Kernel* kernel = nullptr;
  std::vector<int> node_counts;
  std::vector<double> freqs_mhz;
  /// != 0 enables communication-phase DVFS at that operating point.
  double comm_dvfs_mhz = 0.0;
};

class SweepExecutor {
 public:
  explicit SweepExecutor(SweepSpec spec);

  /// The spec this executor was built from (document fields intact,
  /// so a server can re-derive the grid it is answering for).
  const SweepSpec& spec() const { return spec_; }

  int jobs() const { return pool_.max_threads(); }
  RunCache& cache() { return cache_; }
  const RunCache& cache() const { return cache_; }
  /// The write-ahead journal, when one is configured; null otherwise.
  SweepJournal* journal() { return journal_.get(); }
  const sim::ClusterConfig& cluster() const { return cluster_; }
  const std::shared_ptr<obs::Observer>& observer() const { return observer_; }

  /// One operating point of the grid.
  struct Point {
    int nodes = 0;
    double frequency_mhz = 0.0;
    double comm_dvfs_mhz = 0.0;
  };

  /// Runs the request's grid concurrently and returns records in grid
  /// order, bit-identical to the serial path.
  ///
  /// Fail-soft: a run aborted by fault injection or the deadlock
  /// watchdog is retried (`run_retries`, transient faults only) and
  /// then recorded with its failure status — the sweep continues.
  /// Non-fault exceptions (bad configuration, programming errors)
  /// still propagate after all points drain. Logs a summary of failed
  /// points, if any.
  MatrixResult run(const SweepRequest& request);

  /// Runs the spec's own grid: the document's kernel at its scale,
  /// crossed with resolved_nodes() × resolved_freqs() at
  /// comm_dvfs_mhz. This is what a `--spec FILE` run and a server
  /// worker both execute, so "the same spec" means the same sweep
  /// everywhere.
  MatrixResult run();

  /// Cache-aware equivalent of RunMatrix::run_one. Not reported to the
  /// observer (single probes are not sweep points).
  RunRecord run_one(const npb::Kernel& kernel, int nodes,
                    double frequency_mhz, double comm_dvfs_mhz = 0.0);

  /// Runs `points` concurrently; the result vector matches `points`
  /// index-for-index. Reported to the observer as one sweep.
  std::vector<RunRecord> run_points(const npb::Kernel& kernel,
                                    const std::vector<Point>& points);

 private:
  class MatrixLease;
  /// Observer coordinates of the point being run (sweep id + index);
  /// null when the point is not reported.
  struct ObsCtx {
    int sweep = -1;
    int index = -1;
  };
  /// Shared state of one (kernel, N, comm-DVFS) column on the fast
  /// path: the charged-work ledger its first simulated frequency
  /// recorded, for the remaining frequencies to re-price from. Owned by
  /// exactly one column task, so no locking.
  struct ColumnState {
    std::shared_ptr<const sim::WorkLedger> ledger;
    /// Ledger cache already consulted (miss is definitive this sweep).
    bool cache_checked = false;
    /// Recording declined (timing-dependent construct observed): the
    /// rest of the column simulates in full, without re-recording.
    bool recording_declined = false;
  };
  RunRecord run_point(const npb::Kernel& kernel, const Point& p,
                      const ObsCtx* ctx, ColumnState* col = nullptr);
  /// Runs one fast-path column: cached and first-simulated points are
  /// handled in grid order, then every remaining frequency is priced by
  /// ONE BatchRepricer pass (DESIGN.md §11). $PASIM_SCALAR_REPRICE=1
  /// falls back to per-point scalar repricing (the reference engine) —
  /// tier1.sh diffs the two paths' artifacts byte-for-byte.
  void run_column(const npb::Kernel& kernel, const std::vector<Point>& points,
                  const std::vector<std::size_t>& members,
                  const ObsCtx* ctx_of, ColumnState& col,
                  std::vector<RunRecord>& records);
  /// Per-point observer accounting (wall histogram, stable counters,
  /// report point), shared by the scalar and batched paths. `resumed`
  /// marks a point served from the sweep journal (never also
  /// from_cache/repriced).
  void note_point(const npb::Kernel& kernel, const Point& p, const ObsCtx* ctx,
                  const RunRecord& rec, bool from_cache, bool repriced,
                  bool resumed, double elapsed_s);
  /// The --isolate supervisor: forks one child per unresolved column
  /// (sliding window of `jobs` live children, wall-clock deadlines,
  /// bounded exponential-backoff re-forks), harvests results through
  /// the shared journal, and synthesizes fail-soft kCrashed/kTimeout
  /// records for columns that never complete. Runs on the calling
  /// thread only — forking from pool workers is not fork-safe.
  void run_points_isolated(const npb::Kernel& kernel,
                           const std::vector<Point>& points,
                           const ObsCtx* ctx_of,
                           std::vector<RunRecord>& records);
  /// Stable replay counters. Totals are engine-independent by
  /// construction: the scalar path adds one lane per repriced point,
  /// the batched path adds all of a column's lanes at once.
  void note_repriced_lanes(const ObsCtx* ctx, std::size_t lanes,
                           std::size_t ops);
  void note_ledger_resolved(const ObsCtx* ctx, const sim::WorkLedger& ledger);
  /// `seg` selects RunMatrix::run_segment (checkpoint resume/capture,
  /// sampled iteration plans, DESIGN.md §14) instead of run_one; never
  /// combined with `ledger_out` (a partial or sampled segment must not
  /// record a replayable ledger).
  RunRecord simulate_failsoft(const npb::Kernel& kernel, const Point& p,
                              const ObsCtx* ctx,
                              sim::WorkLedger* ledger_out = nullptr,
                              const SegmentOptions* seg = nullptr);
  /// Simulates one point with sampling / checkpoint warm-starts applied
  /// (DESIGN.md §14); plain simulate_failsoft when neither feature
  /// applies to this point. `key` is the point's cache key ("" when
  /// caching and journaling are both off).
  RunRecord simulate_point(const npb::Kernel& kernel, const Point& p,
                           const ObsCtx* ctx, const std::string& key);
  /// --verify-sampling: a deterministic key-hash-selected fraction of
  /// sampled points is re-simulated exactly; the exact makespan must
  /// fall within the estimate's 95% confidence interval or the sweep
  /// aborts with std::runtime_error.
  void maybe_verify_sampling(const npb::Kernel& kernel, const Point& p,
                             const std::string& key, const RunRecord& rec);
  /// The record cache / journal key of one point. Sampled records are
  /// estimates and are keyed apart from exact records (a
  /// "|sampled(p=..,w=..)" suffix), so the two populations can never
  /// satisfy each other's lookups.
  std::string point_key(const npb::Kernel& kernel, const Point& p) const;
  /// Replays `ledger` at p.frequency_mhz (with the trace harvest and
  /// verification pass when configured).
  RunRecord reprice_point(const npb::Kernel& kernel, const Point& p,
                          const sim::WorkLedger& ledger, const ObsCtx* ctx);
  /// The exactness gate: true when every point of this sweep may use
  /// the charged-work fast path.
  bool fast_path_eligible(const npb::Kernel& kernel) const;

  SweepSpec spec_;
  sim::ClusterConfig cluster_;
  power::PowerModel power_;
  util::ThreadPool pool_;
  RunCache cache_;
  bool use_cache_;
  int run_retries_;
  bool verify_replay_;
  /// SMARTS-style sampled estimation + checkpoint warm-starts
  /// (DESIGN.md §14), mirrored out of spec_.options.
  bool sampling_;
  int sample_period_;
  int warmup_iters_;
  double verify_sampling_;
  bool checkpoints_;
  /// $PASIM_SCALAR_REPRICE: force per-point scalar repricing.
  bool scalar_reprice_;
  /// Write-ahead journal behind --resume/--isolate; null when not
  /// configured.
  std::unique_ptr<SweepJournal> journal_;
  bool isolate_;
  double isolate_timeout_s_;
  int isolate_retries_;
  std::shared_ptr<obs::Observer> observer_;
  /// RunMatrix instances (each with its own Runtime + rank pool) are
  /// leased per task and reused, so a sweep touches at most `jobs`
  /// simulated clusters however large the grid is.
  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<RunMatrix>> matrices_;
  std::vector<RunMatrix*> free_matrices_;
};

}  // namespace pas::analysis
