// SweepExecutor — the concurrent, memoized sweep engine.
//
// The evaluation is a grid of independent simulated runs: every run
// owns a private Runtime/Cluster and starts from reset state, so runs
// are embarrassingly parallel (the paper's own point about degree of
// parallelism, applied to our harness). The executor fans the grid out
// over a fixed worker pool while keeping results deterministic:
//
//   * MatrixResult.records stays in grid order (nodes-major, frequency
//     minor, exactly as RunMatrix::sweep produces it), and
//   * every record is bit-identical to the serial path — concurrency
//     changes only wall-clock time, never virtual time (DESIGN.md §6).
//
// A RunCache (in-memory, optionally disk-backed) memoizes records by
// the canonical operating-point key, so parameterization passes and
// repeated bench invocations stop re-simulating identical points.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/run_matrix.hpp"
#include "pas/util/thread_pool.hpp"

namespace pas::util {
class Cli;
}

namespace pas::analysis {

struct SweepOptions {
  /// Concurrent grid points; <= 0 means "use the machine"
  /// (ThreadPool::default_jobs).
  int jobs = 0;
  /// Directory for the persistent run cache; empty = in-memory only.
  std::string cache_dir;
  /// Disables memoization entirely (every point re-simulates).
  bool use_cache = true;
  /// Per-point retries of *transient* fault aborts (message loss, node
  /// failure, ...) before the point is recorded as failed. Each retry
  /// replays an attempt-salted FaultPlan, so retrying stays
  /// deterministic. Only consulted when the cluster's fault injection
  /// is enabled.
  int run_retries = 1;

  /// Bench/example configuration: `--jobs N` (default: $PASIM_JOBS,
  /// then hardware concurrency), `--cache [dir]` (default dir
  /// `.pasim_cache`; or $PASIM_CACHE_DIR), `--no-cache`,
  /// `--retries N`. Throws std::invalid_argument for `--jobs < 1` or
  /// `--retries < 0`.
  static SweepOptions from_cli(const util::Cli& cli);
};

class SweepExecutor {
 public:
  explicit SweepExecutor(sim::ClusterConfig cluster,
                         power::PowerModel power = power::PowerModel(),
                         SweepOptions options = SweepOptions());

  int jobs() const { return pool_.max_threads(); }
  RunCache& cache() { return cache_; }
  const RunCache& cache() const { return cache_; }
  const sim::ClusterConfig& cluster() const { return cluster_; }

  /// One operating point of the grid.
  struct Point {
    int nodes = 0;
    double frequency_mhz = 0.0;
    double comm_dvfs_mhz = 0.0;
  };

  /// Cache-aware equivalent of RunMatrix::run_one.
  RunRecord run_one(const npb::Kernel& kernel, int nodes,
                    double frequency_mhz, double comm_dvfs_mhz = 0.0);

  /// Runs `points` concurrently; the result vector matches `points`
  /// index-for-index.
  ///
  /// Fail-soft: a run aborted by fault injection or the deadlock
  /// watchdog is retried (`run_retries`, transient faults only) and
  /// then recorded with its failure status — the sweep continues.
  /// Non-fault exceptions (bad configuration, programming errors)
  /// still propagate after all points drain.
  std::vector<RunRecord> run_points(const npb::Kernel& kernel,
                                    const std::vector<Point>& points);

  /// Parallel, memoized drop-in for RunMatrix::sweep: same grid order,
  /// bit-identical records. Logs a summary of failed points, if any.
  MatrixResult sweep(const npb::Kernel& kernel,
                     const std::vector<int>& node_counts,
                     const std::vector<double>& freqs_mhz,
                     double comm_dvfs_mhz = 0.0);

 private:
  class MatrixLease;
  RunRecord run_point(const npb::Kernel& kernel, const Point& p);
  RunRecord simulate_failsoft(const npb::Kernel& kernel, const Point& p);

  sim::ClusterConfig cluster_;
  power::PowerModel power_;
  util::ThreadPool pool_;
  RunCache cache_;
  bool use_cache_;
  int run_retries_;
  /// RunMatrix instances (each with its own Runtime + rank pool) are
  /// leased per task and reused, so a sweep touches at most `jobs`
  /// simulated clusters however large the grid is.
  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<RunMatrix>> matrices_;
  std::vector<RunMatrix*> free_matrices_;
};

}  // namespace pas::analysis
