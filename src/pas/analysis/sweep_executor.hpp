// SweepExecutor — the concurrent, memoized sweep engine.
//
// The evaluation is a grid of independent simulated runs: every run
// owns a private Runtime/Cluster and starts from reset state, so runs
// are embarrassingly parallel (the paper's own point about degree of
// parallelism, applied to our harness). The executor fans the grid out
// over a fixed worker pool while keeping results deterministic:
//
//   * MatrixResult.records stays in grid order (nodes-major, frequency
//     minor, exactly as the serial RunMatrix produces it), and
//   * every record is bit-identical to the serial path — concurrency
//     changes only wall-clock time, never virtual time (DESIGN.md §6).
//
// A RunCache (in-memory, optionally disk-backed) memoizes records by
// the canonical operating-point key, so parameterization passes and
// repeated bench invocations stop re-simulating identical points.
//
// On top of both sits the frequency-collapse fast path (DESIGN.md
// §10): when a kernel declares frequency_invariant_control_flow() and
// fault injection is off, only the first frequency of each (kernel, N,
// comm-DVFS) column is simulated — the run records a charged-work
// ledger and every remaining frequency of the column is re-priced
// analytically by analysis::Repricer, bit-identical to a full run.
// SweepOptions::verify_replay re-simulates every repriced point and
// hard-fails on any byte difference.
//
// The API is spec-shaped: everything that configures an executor lives
// in SweepSpec (cluster, power model, optional fault override, sweep
// options, observability sinks) and everything that describes one grid
// lives in SweepRequest, consumed by the single run() entry point:
//
//   analysis::SweepSpec spec;
//   spec.cluster = env.cluster;
//   spec.options = analysis::SweepOptions::from_cli(cli);
//   spec.observer = obs::Observer::from_cli(cli);
//   analysis::SweepExecutor exec(spec);
//   analysis::MatrixResult m = exec.run({&kernel, env.nodes, env.freqs_mhz});
//
// The positional constructor and sweep() survive as deprecated shims
// for one release; new code should not use them.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pas/analysis/run_cache.hpp"
#include "pas/analysis/run_matrix.hpp"
#include "pas/analysis/sweep_journal.hpp"
#include "pas/fault/fault.hpp"
#include "pas/obs/observer.hpp"
#include "pas/util/thread_pool.hpp"

namespace pas::util {
class Cli;
}

namespace pas::analysis {

struct SweepOptions {
  /// Concurrent grid points; <= 0 means "use the machine"
  /// (ThreadPool::default_jobs).
  int jobs = 0;
  /// Directory for the persistent run cache; empty = in-memory only.
  std::string cache_dir;
  /// Disables memoization entirely (every point re-simulates).
  bool use_cache = true;
  /// Per-point retries of *transient* fault aborts (message loss, node
  /// failure, ...) before the point is recorded as failed. Each retry
  /// replays an attempt-salted FaultPlan, so retrying stays
  /// deterministic. Only consulted when the cluster's fault injection
  /// is enabled.
  int run_retries = 1;
  /// Cross-checks the frequency-collapse fast path: every repriced
  /// point is additionally re-simulated in full and the two RunRecords
  /// must be identical in every cached byte (RunCache::encode_record);
  /// any difference aborts the sweep with std::runtime_error.
  bool verify_replay = false;
  /// Write-ahead sweep journal (DESIGN.md §12): every completed point
  /// — successful or fail-soft — is framed, checksummed and fsync'd to
  /// this file before the sweep moves on. Empty = no journal.
  std::string journal_path;
  /// Load the journal instead of truncating it: already-journaled
  /// points are skipped (except under tracing, where they re-simulate
  /// so trace.json stays byte-identical) and counted in the stable
  /// `sweep.points_resumed` metric.
  bool resume = false;
  /// Supervisor mode: each sweep column runs in a forked child process
  /// with a wall-clock deadline; crashes/OOM kills/timeouts cost the
  /// column (fail-soft kCrashed/kTimeout records after bounded
  /// exponential-backoff retries), never the sweep. Implies a journal
  /// (it is the supervisor's IPC). Incompatible with tracing.
  bool isolate = false;
  double isolate_timeout_s = 300.0;  ///< per-child wall-clock deadline
  int isolate_retries = 1;           ///< re-forks per crashed column
  /// Disk-cache size cap in bytes; > 0 enables LRU eviction after
  /// stores (see RunCache). 0 = unbounded.
  std::uint64_t cache_cap_bytes = 0;

  /// Bench/example configuration: `--jobs N` (default: $PASIM_JOBS,
  /// then hardware concurrency), `--cache [dir]` (default dir
  /// `.pasim_cache`; or $PASIM_CACHE_DIR), `--no-cache`,
  /// `--retries N`, `--verify-replay`, `--journal [file]` (default
  /// `pasim_sweep.journal`), `--resume`, `--isolate`,
  /// `--isolate-timeout S`, `--isolate-retries N`, `--cache-cap MB`.
  /// `--resume`/`--isolate` imply the default journal path when
  /// `--journal` is absent. Throws std::invalid_argument for
  /// `--jobs < 1`, `--retries < 0`, a $PASIM_JOBS that is not a
  /// positive integer, a $PASIM_CACHE_DIR that is set but empty —
  /// environment values obey the same rules as the flags they stand in
  /// for — `--verify-replay` combined with `--no-cache` (disabling
  /// the cache would silently drop the verification pass's record
  /// comparison baseline), `--isolate-timeout <= 0`,
  /// `--isolate-retries < 0`, or `--cache-cap` without a disk cache.
  static SweepOptions from_cli(const util::Cli& cli);
};

/// Everything that configures a SweepExecutor.
struct SweepSpec {
  sim::ClusterConfig cluster;
  power::PowerModel power;
  /// When set, replaces cluster.fault (convenient for fault-rate
  /// sweeps that share one base cluster).
  std::optional<fault::FaultConfig> fault;
  SweepOptions options;
  /// Observability sinks; null (the default) disables collection
  /// entirely (see pas/obs/observer.hpp).
  std::shared_ptr<obs::Observer> observer;
};

/// One sweep grid: the kernel crossed with node counts and
/// frequencies (nodes-major, frequency-minor order).
struct SweepRequest {
  const npb::Kernel* kernel = nullptr;
  std::vector<int> node_counts;
  std::vector<double> freqs_mhz;
  /// != 0 enables communication-phase DVFS at that operating point.
  double comm_dvfs_mhz = 0.0;
};

class SweepExecutor {
 public:
  explicit SweepExecutor(SweepSpec spec);

  /// Deprecated positional form; use SweepExecutor(SweepSpec).
  explicit SweepExecutor(sim::ClusterConfig cluster,
                         power::PowerModel power = power::PowerModel(),
                         SweepOptions options = SweepOptions());

  int jobs() const { return pool_.max_threads(); }
  RunCache& cache() { return cache_; }
  const RunCache& cache() const { return cache_; }
  /// The write-ahead journal, when one is configured; null otherwise.
  SweepJournal* journal() { return journal_.get(); }
  const sim::ClusterConfig& cluster() const { return cluster_; }
  const std::shared_ptr<obs::Observer>& observer() const { return observer_; }

  /// One operating point of the grid.
  struct Point {
    int nodes = 0;
    double frequency_mhz = 0.0;
    double comm_dvfs_mhz = 0.0;
  };

  /// Runs the request's grid concurrently and returns records in grid
  /// order, bit-identical to the serial path.
  ///
  /// Fail-soft: a run aborted by fault injection or the deadlock
  /// watchdog is retried (`run_retries`, transient faults only) and
  /// then recorded with its failure status — the sweep continues.
  /// Non-fault exceptions (bad configuration, programming errors)
  /// still propagate after all points drain. Logs a summary of failed
  /// points, if any.
  MatrixResult run(const SweepRequest& request);

  /// Cache-aware equivalent of RunMatrix::run_one. Not reported to the
  /// observer (single probes are not sweep points).
  RunRecord run_one(const npb::Kernel& kernel, int nodes,
                    double frequency_mhz, double comm_dvfs_mhz = 0.0);

  /// Runs `points` concurrently; the result vector matches `points`
  /// index-for-index. Reported to the observer as one sweep.
  std::vector<RunRecord> run_points(const npb::Kernel& kernel,
                                    const std::vector<Point>& points);

  /// Deprecated positional form of run(); kept for one release.
  MatrixResult sweep(const npb::Kernel& kernel,
                     const std::vector<int>& node_counts,
                     const std::vector<double>& freqs_mhz,
                     double comm_dvfs_mhz = 0.0);

 private:
  class MatrixLease;
  /// Observer coordinates of the point being run (sweep id + index);
  /// null when the point is not reported.
  struct ObsCtx {
    int sweep = -1;
    int index = -1;
  };
  /// Shared state of one (kernel, N, comm-DVFS) column on the fast
  /// path: the charged-work ledger its first simulated frequency
  /// recorded, for the remaining frequencies to re-price from. Owned by
  /// exactly one column task, so no locking.
  struct ColumnState {
    std::shared_ptr<const sim::WorkLedger> ledger;
    /// Ledger cache already consulted (miss is definitive this sweep).
    bool cache_checked = false;
    /// Recording declined (timing-dependent construct observed): the
    /// rest of the column simulates in full, without re-recording.
    bool recording_declined = false;
  };
  RunRecord run_point(const npb::Kernel& kernel, const Point& p,
                      const ObsCtx* ctx, ColumnState* col = nullptr);
  /// Runs one fast-path column: cached and first-simulated points are
  /// handled in grid order, then every remaining frequency is priced by
  /// ONE BatchRepricer pass (DESIGN.md §11). $PASIM_SCALAR_REPRICE=1
  /// falls back to per-point scalar repricing (the reference engine) —
  /// tier1.sh diffs the two paths' artifacts byte-for-byte.
  void run_column(const npb::Kernel& kernel, const std::vector<Point>& points,
                  const std::vector<std::size_t>& members,
                  const ObsCtx* ctx_of, ColumnState& col,
                  std::vector<RunRecord>& records);
  /// Per-point observer accounting (wall histogram, stable counters,
  /// report point), shared by the scalar and batched paths. `resumed`
  /// marks a point served from the sweep journal (never also
  /// from_cache/repriced).
  void note_point(const npb::Kernel& kernel, const Point& p, const ObsCtx* ctx,
                  const RunRecord& rec, bool from_cache, bool repriced,
                  bool resumed, double elapsed_s);
  /// The --isolate supervisor: forks one child per unresolved column
  /// (sliding window of `jobs` live children, wall-clock deadlines,
  /// bounded exponential-backoff re-forks), harvests results through
  /// the shared journal, and synthesizes fail-soft kCrashed/kTimeout
  /// records for columns that never complete. Runs on the calling
  /// thread only — forking from pool workers is not fork-safe.
  void run_points_isolated(const npb::Kernel& kernel,
                           const std::vector<Point>& points,
                           const ObsCtx* ctx_of,
                           std::vector<RunRecord>& records);
  /// Stable replay counters. Totals are engine-independent by
  /// construction: the scalar path adds one lane per repriced point,
  /// the batched path adds all of a column's lanes at once.
  void note_repriced_lanes(const ObsCtx* ctx, std::size_t lanes,
                           std::size_t ops);
  void note_ledger_resolved(const ObsCtx* ctx, const sim::WorkLedger& ledger);
  RunRecord simulate_failsoft(const npb::Kernel& kernel, const Point& p,
                              const ObsCtx* ctx,
                              sim::WorkLedger* ledger_out = nullptr);
  /// Replays `ledger` at p.frequency_mhz (with the trace harvest and
  /// verification pass when configured).
  RunRecord reprice_point(const npb::Kernel& kernel, const Point& p,
                          const sim::WorkLedger& ledger, const ObsCtx* ctx);
  /// The exactness gate: true when every point of this sweep may use
  /// the charged-work fast path.
  bool fast_path_eligible(const npb::Kernel& kernel) const;

  sim::ClusterConfig cluster_;
  power::PowerModel power_;
  util::ThreadPool pool_;
  RunCache cache_;
  bool use_cache_;
  int run_retries_;
  bool verify_replay_;
  /// $PASIM_SCALAR_REPRICE: force per-point scalar repricing.
  bool scalar_reprice_;
  /// Write-ahead journal behind --resume/--isolate; null when not
  /// configured.
  std::unique_ptr<SweepJournal> journal_;
  bool isolate_;
  double isolate_timeout_s_;
  int isolate_retries_;
  std::shared_ptr<obs::Observer> observer_;
  /// RunMatrix instances (each with its own Runtime + rank pool) are
  /// leased per task and reused, so a sweep touches at most `jobs`
  /// simulated clusters however large the grid is.
  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<RunMatrix>> matrices_;
  std::vector<RunMatrix*> free_matrices_;
};

}  // namespace pas::analysis
