// Run-result cache for the sweep engine.
//
// A simulated run is a pure function of (kernel configuration, cluster
// configuration, power model, rank count, DVFS point, comm-DVFS point)
// — Runtime::run starts from a reset cluster, so nothing else can leak
// in. The cache keys on a canonical string spelling out every one of
// those parameters (doubles printed with 17 significant digits, which
// identifies a binary64 uniquely) and stores the resulting RunRecord.
//
// With a directory the cache also persists across processes: the table
// and figure benches stop re-simulating operating points full_report
// already covered. Records are serialized with hex floats (%a), so a
// cache hit returns a RunRecord bit-identical to the fresh run that
// produced it — REPORT.md and the CSVs are byte-identical either way.
// Unreadable or colliding entries are treated as misses; corrupt or
// truncated files are additionally quarantined to `<file>.bad` (with a
// logged warning) so garbage can never satisfy a later lookup. Failed
// runs (RunRecord::failed()) are never stored.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "pas/analysis/run_matrix.hpp"

namespace pas::analysis {

/// Canonical spelling of every cluster parameter that affects a run
/// (node count, CPU CPIs, cache geometry, DRAM latencies, operating
/// points, network cost model, DVFS transition cost).
std::string cluster_signature(const sim::ClusterConfig& cluster);

/// Canonical spelling of the power model (affects RunRecord::energy).
std::string power_signature(const power::PowerModel& power);

class RunCache {
 public:
  /// `dir` empty: in-memory only. Otherwise entries are also written to
  /// `dir` (created on first store) and looked up there on miss.
  explicit RunCache(std::string dir = "");

  /// The canonical cache key of one operating point.
  static std::string key(const npb::Kernel& kernel,
                         const sim::ClusterConfig& cluster,
                         const power::PowerModel& power, int nodes,
                         double frequency_mhz, double comm_dvfs_mhz);

  /// Thread-safe. Counts a hit or a miss.
  std::optional<RunRecord> lookup(const std::string& key);

  /// Thread-safe. Records the result in memory and, if configured, on
  /// disk (atomically: write-to-temp + rename).
  void store(const std::string& key, const RunRecord& record);

  const std::string& dir() const { return dir_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t stores() const;

  std::string stats_string() const;

 private:
  std::string path_for(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RunRecord> memory_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace pas::analysis
