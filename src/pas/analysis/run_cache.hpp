// Run-result cache for the sweep engine.
//
// A simulated run is a pure function of (kernel configuration, cluster
// configuration, power model, rank count, DVFS point, comm-DVFS point)
// — Runtime::run starts from a reset cluster, so nothing else can leak
// in. The cache keys on a canonical string spelling out every one of
// those parameters (doubles printed with 17 significant digits, which
// identifies a binary64 uniquely) and stores the resulting RunRecord.
//
// With a directory the cache also persists across processes: the table
// and figure benches stop re-simulating operating points full_report
// already covered. Records are serialized with hex floats (%a), so a
// cache hit returns a RunRecord bit-identical to the fresh run that
// produced it — REPORT.md and the CSVs are byte-identical either way.
//
// Hardened on-disk format (v4, DESIGN.md §12): every entry is published
// atomically (temp + fsync + rename via util::atomic_write_file) and
// carries an fnv1a checksum of its payload, verified on every disk
// read. Unreadable or colliding entries are treated as misses; corrupt,
// truncated or checksum-mismatched files are additionally quarantined
// to `<file>.bad` (rename + directory fsync, counted in the stable
// `runcache.quarantined` metric) so garbage can never satisfy a later
// lookup. Multi-process sharing of one directory is safe by
// construction — publishes are atomic renames of per-process temp
// files and both processes compute identical bytes for identical keys;
// the only cross-process mutual exclusion needed is the LRU eviction
// pass, which holds an advisory flock on `<dir>/.lock` (flock dies with
// its holder, so a crashed evictor can never wedge the cache). Failed
// runs (RunRecord::failed()) are never stored.
//
// Besides RunRecords, the cache stores charged-work ledgers
// (sim::WorkLedger) keyed by the frequency-independent part of the run
// identity — kernel, cluster, rank count, comm-DVFS point, but *not*
// the operating point or power model — so the frequency-collapse fast
// path (DESIGN.md §10) can re-price a whole DVFS column from one
// simulated run, across processes.
//
// v5 adds mid-run checkpoints (sim::Checkpoint, DESIGN.md §14): `.ckpt`
// entries keyed by the kernel's *iteration-boundary prefix* identity —
// prefix_signature, cluster, rank count, operating point, comm-DVFS
// point, but not the power model (energy never feeds back into the
// simulation) and not the total iteration count (that is exactly what
// prefix sharing strikes out). One key maps to many boundaries, each
// its own file; lookup_checkpoint returns the deepest one at or below
// the caller's target so deeper sweep points warm-start from shallower
// points' prefixes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "pas/analysis/run_matrix.hpp"
#include "pas/sim/checkpoint.hpp"
#include "pas/sim/work_ledger.hpp"

namespace pas::analysis {

/// Canonical spelling of every cluster parameter that affects a run
/// (node count, CPU CPIs, cache geometry, DRAM latencies, operating
/// points, network cost model, DVFS transition cost).
std::string cluster_signature(const sim::ClusterConfig& cluster);

/// Canonical spelling of the power model (affects RunRecord::energy).
std::string power_signature(const power::PowerModel& power);

class RunCache {
 public:
  /// `dir` empty: in-memory only. Otherwise entries are also written to
  /// `dir` (created on first store) and looked up there on miss.
  /// `cap_bytes` > 0 bounds the directory: after a store pushes the
  /// total size of cache files past the cap, least-recently-used
  /// entries (by mtime; read hits touch it) are evicted until it fits.
  explicit RunCache(std::string dir = "", std::uint64_t cap_bytes = 0);

  /// The canonical cache key of one operating point.
  static std::string key(const npb::Kernel& kernel,
                         const sim::ClusterConfig& cluster,
                         const power::PowerModel& power, int nodes,
                         double frequency_mhz, double comm_dvfs_mhz);

  /// The key suffix that separates sampled estimates from exact
  /// records (DESIGN.md §14). Appended to key() by every sampled-mode
  /// consumer — SweepExecutor::point_key and the serve broker alike —
  /// so the two record populations can never satisfy each other's
  /// cache or journal lookups.
  static std::string sampled_key_suffix(int sample_period, int warmup_iters);

  /// Thread-safe. Counts a hit or a miss.
  std::optional<RunRecord> lookup(const std::string& key);

  /// Thread-safe. Records the result in memory and, if configured, on
  /// disk (atomically: temp + fsync + rename).
  void store(const std::string& key, const RunRecord& record);

  /// The canonical serialized form of a record — the exact bytes
  /// store() persists (hex-float fields). --verify-replay compares a
  /// repriced record against a fresh simulation through this encoding,
  /// so "equal" means equal in every field the cache round-trips.
  static std::string encode_record(const RunRecord& record);

  /// Parses exactly what encode_record produced (the sweep journal
  /// embeds record payloads in this encoding too). False on any
  /// malformed or truncated field; `record` is unspecified then.
  static bool decode_record(std::istream& in, RunRecord* record);

  /// Ledger key: the frequency-independent slice of the run identity.
  /// Deliberately excludes the operating point (that is what replay
  /// varies) and the power model (energy is priced at replay time).
  static std::string ledger_key(const npb::Kernel& kernel,
                                const sim::ClusterConfig& cluster, int nodes,
                                double comm_dvfs_mhz);

  /// Thread-safe ledger lookup (memory, then disk). Ledgers are shared
  /// immutably: concurrent column tasks re-price from one instance.
  std::shared_ptr<const sim::WorkLedger> lookup_ledger(
      const std::string& key);

  /// Thread-safe. Stores a replayable ledger (non-replayable ledgers
  /// are dropped — there is nothing to replay) and returns the shared
  /// instance. Disk writes are atomic like store().
  std::shared_ptr<const sim::WorkLedger> store_ledger(
      const std::string& key, sim::WorkLedger ledger);

  /// The canonical serialized ledger payload — the exact bytes
  /// store_ledger persists after the entry header. The serve CAS tier
  /// (DESIGN.md §15) ships ledgers between brokers in this encoding.
  static std::string encode_ledger(const sim::WorkLedger& ledger);

  /// Parses exactly what encode_ledger produced. False on any
  /// malformed or truncated field; `ledger` is unspecified then.
  static bool decode_ledger(std::istream& in, sim::WorkLedger* ledger);

  /// Checkpoint key: the iteration-boundary prefix identity. Uses the
  /// kernel's prefix_signature() (empty = the kernel opted out of
  /// prefix sharing; callers must not store checkpoints then) and the
  /// full operating point — simulator state depends on the DVFS points
  /// but never on the power model.
  static std::string checkpoint_key(const npb::Kernel& kernel,
                                    const sim::ClusterConfig& cluster,
                                    int nodes, double frequency_mhz,
                                    double comm_dvfs_mhz);

  /// Thread-safe. The deepest stored checkpoint for `key` with
  /// boundary <= max_boundary (memory first, then disk, deepest first;
  /// corrupt files are quarantined and the next-deepest is tried).
  /// Null when nothing usable is stored.
  std::shared_ptr<const sim::Checkpoint> lookup_checkpoint(
      const std::string& key, int max_boundary);

  /// Thread-safe. Stores one boundary's checkpoint (atomic disk write,
  /// like store()) and returns the shared instance.
  std::shared_ptr<const sim::Checkpoint> store_checkpoint(
      const std::string& key, sim::Checkpoint ckpt);

  const std::string& dir() const { return dir_; }
  std::uint64_t cap_bytes() const { return cap_bytes_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t stores() const;

  std::string stats_string() const;

 private:
  std::string path_for(const std::string& key) const;
  std::string ledger_path_for(const std::string& key) const;
  std::string ckpt_path_for(const std::string& key, int boundary) const;
  /// Publishes one v4 entry (header + key + checksum + payload) via
  /// util::atomic_write_file, then runs the eviction pass if capped.
  void publish(const std::string& path, const std::string& key,
               const std::string& header, const std::string& payload);
  void maybe_evict();

  std::string dir_;
  std::uint64_t cap_bytes_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RunRecord> memory_;
  std::unordered_map<std::string, std::shared_ptr<const sim::WorkLedger>>
      ledgers_;
  /// key -> boundary -> checkpoint (ordered so "deepest <= max" is a
  /// map scan from the upper bound).
  std::unordered_map<std::string,
                     std::map<int, std::shared_ptr<const sim::Checkpoint>>>
      checkpoints_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace pas::analysis
