// Run-result cache for the sweep engine.
//
// A simulated run is a pure function of (kernel configuration, cluster
// configuration, power model, rank count, DVFS point, comm-DVFS point)
// — Runtime::run starts from a reset cluster, so nothing else can leak
// in. The cache keys on a canonical string spelling out every one of
// those parameters (doubles printed with 17 significant digits, which
// identifies a binary64 uniquely) and stores the resulting RunRecord.
//
// With a directory the cache also persists across processes: the table
// and figure benches stop re-simulating operating points full_report
// already covered. Records are serialized with hex floats (%a), so a
// cache hit returns a RunRecord bit-identical to the fresh run that
// produced it — REPORT.md and the CSVs are byte-identical either way.
// Unreadable or colliding entries are treated as misses; corrupt or
// truncated files are additionally quarantined to `<file>.bad` (with a
// logged warning) so garbage can never satisfy a later lookup. Failed
// runs (RunRecord::failed()) are never stored.
//
// Besides RunRecords, the cache stores charged-work ledgers
// (sim::WorkLedger) keyed by the frequency-independent part of the run
// identity — kernel, cluster, rank count, comm-DVFS point, but *not*
// the operating point or power model — so the frequency-collapse fast
// path (DESIGN.md §10) can re-price a whole DVFS column from one
// simulated run, across processes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "pas/analysis/run_matrix.hpp"
#include "pas/sim/work_ledger.hpp"

namespace pas::analysis {

/// Canonical spelling of every cluster parameter that affects a run
/// (node count, CPU CPIs, cache geometry, DRAM latencies, operating
/// points, network cost model, DVFS transition cost).
std::string cluster_signature(const sim::ClusterConfig& cluster);

/// Canonical spelling of the power model (affects RunRecord::energy).
std::string power_signature(const power::PowerModel& power);

class RunCache {
 public:
  /// `dir` empty: in-memory only. Otherwise entries are also written to
  /// `dir` (created on first store) and looked up there on miss.
  explicit RunCache(std::string dir = "");

  /// The canonical cache key of one operating point.
  static std::string key(const npb::Kernel& kernel,
                         const sim::ClusterConfig& cluster,
                         const power::PowerModel& power, int nodes,
                         double frequency_mhz, double comm_dvfs_mhz);

  /// Thread-safe. Counts a hit or a miss.
  std::optional<RunRecord> lookup(const std::string& key);

  /// Thread-safe. Records the result in memory and, if configured, on
  /// disk (atomically: write-to-temp + rename).
  void store(const std::string& key, const RunRecord& record);

  /// The canonical serialized form of a record — the exact bytes
  /// store() persists (hex-float fields). --verify-replay compares a
  /// repriced record against a fresh simulation through this encoding,
  /// so "equal" means equal in every field the cache round-trips.
  static std::string encode_record(const RunRecord& record);

  /// Ledger key: the frequency-independent slice of the run identity.
  /// Deliberately excludes the operating point (that is what replay
  /// varies) and the power model (energy is priced at replay time).
  static std::string ledger_key(const npb::Kernel& kernel,
                                const sim::ClusterConfig& cluster, int nodes,
                                double comm_dvfs_mhz);

  /// Thread-safe ledger lookup (memory, then disk). Ledgers are shared
  /// immutably: concurrent column tasks re-price from one instance.
  std::shared_ptr<const sim::WorkLedger> lookup_ledger(
      const std::string& key);

  /// Thread-safe. Stores a replayable ledger (non-replayable ledgers
  /// are dropped — there is nothing to replay) and returns the shared
  /// instance. Disk writes are atomic like store().
  std::shared_ptr<const sim::WorkLedger> store_ledger(
      const std::string& key, sim::WorkLedger ledger);

  const std::string& dir() const { return dir_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t stores() const;

  std::string stats_string() const;

 private:
  std::string path_for(const std::string& key) const;
  std::string ledger_path_for(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RunRecord> memory_;
  std::unordered_map<std::string, std::shared_ptr<const sim::WorkLedger>>
      ledgers_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace pas::analysis
