#include "pas/analysis/batch_repricer.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "pas/analysis/replay_detail.hpp"
#include "pas/mpi/communicator.hpp"
#include "pas/sim/network.hpp"
#include "pas/util/format.hpp"

namespace pas::analysis {
namespace {

using detail::channel_key;

constexpr std::size_t kActs = sim::kNumActivities;

/// Per-lane (operating-point) constants, resolved once per reprice.
/// f_hz and sec_per_mem reproduce CpuModel::frequency_hz() and
/// CpuModel::seconds_per_mem_op() at perf_scale 1.0 (replay never runs
/// with faults armed): the * 1.0 and / 1.0 are bit-exact identities,
/// so hoisting them per lane changes nothing.
struct LaneConst {
  double in_mhz = 0.0;   ///< the caller's frequency, echoed into records
  double app_mhz = 0.0;  ///< nominal table frequency (current().frequency_mhz())
  long fkey_app = 0;
  double f_hz = 0.0;
  double sec_per_mem = 0.0;
};

/// Frequency-invariant per-rank replay state, shared by all lanes: the
/// op cursor, message statistics, executed instruction mixes and the
/// comm-phase machine's control state. That these are lane-invariant is
/// the core batching fact — a receive blocks on an empty channel at
/// every frequency or at none, so one schedule drives all lanes.
struct RankShared {
  std::size_t next = 0;
  sim::InstructionMix executed;
  mpi::CommStats stats;
  bool in_phase = false;
  double comm_raw_mhz = 0.0;  ///< last kCommDvfs value (0 = disabled)
  /// Comm operating point of the active phase (valid while any lane is
  /// switched): nominal frequency, its fkey, clock rate and activity
  /// slot. Lane-invariant because the comm point is a property of the
  /// run, not of the lane.
  double comm_nominal_mhz = 0.0;
  long comm_fkey = 0;
  double comm_f_hz = 0.0;
  int comm_slot = 0;
  /// tx_end per nonblocking send, [ordinal * lanes + lane].
  std::vector<double> nb_tx_end;
};

}  // namespace

BatchRepricer::BatchRepricer(sim::ClusterConfig cluster,
                             power::PowerModel power)
    : cluster_(std::move(cluster)), meter_(std::move(power)) {}

std::vector<RunRecord> BatchRepricer::reprice(
    const sim::WorkLedger& ledger, const std::vector<double>& freqs_mhz,
    const std::vector<sim::Tracer*>& tracers) const {
  if (!ledger.replayable)
    throw std::logic_error(pas::util::strf(
        "BatchRepricer: ledger is not replayable (%s)",
        ledger.decline_reason.empty() ? "no reason recorded"
                                      : ledger.decline_reason.c_str()));
  const int n = ledger.nranks;
  if (n < 1 || ledger.rank_spans.size() != static_cast<std::size_t>(n))
    throw std::logic_error("BatchRepricer: malformed ledger");
  detail::check_replay_rank_count("BatchRepricer", n);
  const std::size_t F = freqs_mhz.size();
  if (F == 0) return {};
  if (!tracers.empty() && tracers.size() != F)
    throw std::invalid_argument(
        "BatchRepricer: tracers must be index-aligned with freqs_mhz");

  const sim::NetworkConfig& net = cluster_.network;
  const sim::CpuModel cpu(cluster_.cpu, cluster_.memory,
                          cluster_.operating_points);

  std::vector<LaneConst> lane(F);
  for (std::size_t l = 0; l < F; ++l) {
    // at_mhz throws out_of_range for an unknown point, exactly like the
    // scalar path's set_frequency_mhz.
    const sim::OperatingPoint& op =
        cluster_.operating_points.at_mhz(freqs_mhz[l]);
    lane[l].in_mhz = freqs_mhz[l];
    lane[l].app_mhz = op.frequency_mhz();
    lane[l].fkey_app = sim::NodeState::fkey(lane[l].app_mhz);
    lane[l].f_hz = op.frequency_hz * 1.0;
    lane[l].sec_per_mem = cluster_.memory.dram_latency(lane[l].f_hz) / 1.0;
  }

  // Activity slots: slot 0 is the lane's own (app) operating point;
  // comm-phase points claim further slots as phases resolve them. The
  // pre-scan bounds the slot count so the SoA buckets are allocated
  // once. (slot_fkey[0] is per-lane — lane[l].fkey_app — the shared
  // entries start at 1.)
  std::size_t max_slots = 1;
  {
    std::vector<double> raw_seen;
    for (const sim::WorkOp& op : ledger.arena) {
      if (op.kind != sim::WorkOp::Kind::kCommDvfs || op.mhz <= 0.0) continue;
      if (std::find(raw_seen.begin(), raw_seen.end(), op.mhz) ==
          raw_seen.end())
        raw_seen.push_back(op.mhz);
    }
    max_slots += raw_seen.size();
  }
  const std::size_t S = max_slots;
  std::vector<long> slot_fkey(S, 0);
  std::size_t slots_in_use = 1;
  std::unordered_map<long, int> slot_of_fkey;

  // SoA lane state, [rank * F + lane]. Buckets mirror NodeState: `now`
  // and `tot` are the VirtualClock (now_ / by_activity_), the per-slot
  // buckets are activity_by_fkey — both updated on every spend, in the
  // same order, so the running sums are bit-identical.
  const std::size_t NL = static_cast<std::size_t>(n) * F;
  std::vector<double> now(NL, 0.0);
  std::vector<double> tot(NL * kActs, 0.0);
  std::vector<double> slot_act(NL * S * kActs, 0.0);
  std::vector<unsigned char> slot_used(NL * S, 0);
  std::vector<double> rx_busy(NL, 0.0);
  std::vector<double> tx_busy(NL, 0.0);
  std::vector<double> cur_fhz(NL, 0.0);
  std::vector<int> cur_slot(NL, 0);
  std::vector<unsigned char> switched(NL, 0);
  for (int r = 0; r < n; ++r)
    for (std::size_t l = 0; l < F; ++l)
      cur_fhz[static_cast<std::size_t>(r) * F + l] = lane[l].f_hz;

  std::vector<RankShared> rank(static_cast<std::size_t>(n));

  // In-flight messages: matching (the queue discipline) is shared, the
  // booked switch-forwarding time is per lane.
  std::vector<std::size_t> flight_bytes;
  std::vector<double> flight_rx_ser;
  std::vector<double> flight_at_switch;  // [msg_id * F + lane]
  std::unordered_map<std::uint64_t, std::deque<std::uint32_t>> channels;

  const auto tracer_of = [&](std::size_t l) -> sim::Tracer* {
    return tracers.empty() ? nullptr : tracers[l];
  };

  /// NodeState::spend, against lane-local buckets.
  const auto spend = [&](std::size_t idx, int slot, double dt,
                         sim::Activity act) {
    if (dt <= 0.0) return;
    const auto a = static_cast<std::size_t>(act);
    now[idx] += dt;
    tot[idx * kActs + a] += dt;
    slot_act[(idx * S + static_cast<std::size_t>(slot)) * kActs + a] += dt;
    slot_used[idx * S + static_cast<std::size_t>(slot)] = 1;
  };
  const auto spend_until = [&](std::size_t idx, int slot, double t,
                               sim::Activity act) {
    spend(idx, slot, t - now[idx], act);
  };

  /// Mirrors Comm::enter_comm_phase / the scalar engine's copy. The
  /// phase flag flips once (shared); whether a lane switches points —
  /// and therefore pays the transition — depends on its own fkey.
  const auto enter_comm_phase = [&](int r) {
    RankShared& rs = rank[static_cast<std::size_t>(r)];
    if (rs.comm_raw_mhz <= 0.0 || rs.in_phase) return;
    rs.in_phase = true;
    const long fkey_raw = sim::NodeState::fkey(rs.comm_raw_mhz);
    bool resolved = false;
    for (std::size_t l = 0; l < F; ++l) {
      if (lane[l].fkey_app == fkey_raw) continue;  // already at the point
      if (!resolved) {
        // Resolved lazily — only a switching lane consults the table,
        // exactly when the scalar path's set_frequency_mhz would.
        const sim::OperatingPoint& cop =
            cluster_.operating_points.at_mhz(rs.comm_raw_mhz);
        rs.comm_nominal_mhz = cop.frequency_mhz();
        rs.comm_fkey = sim::NodeState::fkey(rs.comm_nominal_mhz);
        rs.comm_f_hz = cop.frequency_hz * 1.0;
        const auto [it, inserted] =
            slot_of_fkey.emplace(rs.comm_fkey, slots_in_use);
        if (inserted) {
          slot_fkey[slots_in_use] = rs.comm_fkey;
          ++slots_in_use;
        }
        rs.comm_slot = it->second;
        resolved = true;
      }
      const std::size_t idx = static_cast<std::size_t>(r) * F + l;
      // Transition charged before the switch: attributed at the app
      // point, like the scalar path.
      spend(idx, 0, cluster_.dvfs_transition_s, sim::Activity::kCpu);
      cur_fhz[idx] = rs.comm_f_hz;
      cur_slot[idx] = rs.comm_slot;
      switched[idx] = 1;
      if (sim::Tracer* t = tracer_of(l))
        t->record_marker(r, now[idx], "dvfs",
                         pas::util::strf("dvfs %.0f->%.0f MHz",
                                         lane[l].app_mhz, rs.comm_raw_mhz));
    }
  };

  const auto exit_comm_phase = [&](int r) {
    RankShared& rs = rank[static_cast<std::size_t>(r)];
    if (!rs.in_phase) return;
    rs.in_phase = false;
    for (std::size_t l = 0; l < F; ++l) {
      const std::size_t idx = static_cast<std::size_t>(r) * F + l;
      if (!switched[idx]) continue;
      const double from_mhz = rs.comm_nominal_mhz;
      // Switch back first, then charge: the transition is attributed at
      // the app point, like the scalar path.
      cur_fhz[idx] = lane[l].f_hz;
      cur_slot[idx] = 0;
      switched[idx] = 0;
      spend(idx, 0, cluster_.dvfs_transition_s, sim::Activity::kCpu);
      if (sim::Tracer* t = tracer_of(l))
        t->record_marker(r, now[idx], "dvfs",
                         pas::util::strf("dvfs %.0f->%.0f MHz", from_mhz,
                                         lane[l].app_mhz));
    }
  };

  // Executes the op at rs.next for every lane; returns false when it is
  // a receive blocked on an empty channel (at every frequency alike).
  const auto step = [&](int r, RankShared& rs) -> bool {
    const sim::WorkOp& op = ledger.rank_ops(r)[rs.next];
    const std::size_t base = static_cast<std::size_t>(r) * F;
    switch (op.kind) {
      case sim::WorkOp::Kind::kCompute: {
        exit_comm_phase(r);
        // The ON-chip cycle count is frequency-invariant: priced once,
        // divided per lane (the same division time_split performs).
        const double cycles = cpu.on_chip_cycles(op.mix);
        for (std::size_t l = 0; l < F; ++l) {
          const std::size_t idx = base + l;
          const double t0 = now[idx];
          const sim::CpuModel::TimeSplit split = sim::CpuModel::split_at(
              cycles, op.mix.mem_ops, lane[l].f_hz, lane[l].sec_per_mem);
          spend(idx, 0, split.on_chip_s, sim::Activity::kCpu);
          spend(idx, 0, split.off_chip_s, sim::Activity::kMemory);
          if (sim::Tracer* t = tracer_of(l)) {
            t->record(r, t0, split.on_chip_s, sim::Activity::kCpu, "compute");
            if (split.off_chip_s > 0.0)
              t->record(r, t0 + split.on_chip_s, split.off_chip_s,
                        sim::Activity::kMemory, "compute mem");
          }
        }
        rs.executed += op.mix;
        break;
      }
      case sim::WorkOp::Kind::kRawSeconds: {
        exit_comm_phase(r);
        for (std::size_t l = 0; l < F; ++l)
          spend(base + l, 0, op.seconds, op.activity);
        break;
      }
      case sim::WorkOp::Kind::kCommDvfs: {
        if (op.mhz == 0.0) exit_comm_phase(r);
        rs.comm_raw_mhz = op.mhz;
        break;
      }
      case sim::WorkOp::Kind::kSend: {
        if (op.peer < 0 || op.peer >= n)
          throw std::logic_error(pas::util::strf(
              "BatchRepricer: rank %d sends to out-of-range peer %d", r,
              op.peer));
        // Trace start precedes the phase transition, like the scalar
        // path — capture per lane before entering.
        std::vector<double> t0s;
        if (!tracers.empty()) {
          t0s.resize(F);
          for (std::size_t l = 0; l < F; ++l) t0s[l] = now[base + l];
        }
        enter_comm_phase(r);
        // Wire serialization and the CPU-overhead numerator are
        // frequency-invariant: once per op, not once per lane.
        const double ser = net.serialization_s(op.bytes);
        const double o_num =
            net.per_message_cpu_cycles +
            net.cpu_cycles_per_byte * static_cast<double>(op.bytes);
        const std::size_t msg_id = flight_bytes.size();
        flight_bytes.push_back(op.bytes);
        flight_rx_ser.push_back(op.peer == r ? 0.0 : ser);
        flight_at_switch.resize((msg_id + 1) * F);
        if (!op.blocking)
          rs.nb_tx_end.resize(rs.nb_tx_end.size() + F);
        const std::size_t nb_base = rs.nb_tx_end.size() - F;
        for (std::size_t l = 0; l < F; ++l) {
          const std::size_t idx = base + l;
          const double o_send = o_num / cur_fhz[idx];
          spend(idx, cur_slot[idx], o_send, sim::Activity::kNetwork);
          const sim::NetworkTransfer t = sim::book_transfer(
              net, r, op.peer, ser, now[idx], tx_busy[idx]);
          if (op.blocking)
            spend_until(idx, cur_slot[idx], t.tx_end,
                        sim::Activity::kNetwork);
          else
            rs.nb_tx_end[nb_base + l] = t.tx_end;
          flight_at_switch[msg_id * F + l] = t.at_switch;
          if (sim::Tracer* tr = tracer_of(l))
            tr->record(r, t0s[l], now[idx] - t0s[l], sim::Activity::kNetwork,
                       pas::util::strf("send->%d tag %d (%zuB)", op.peer,
                                       op.tag, op.bytes));
        }
        channels[channel_key(r, op.peer, op.tag)].push_back(
            static_cast<std::uint32_t>(msg_id));
        ++rs.stats.messages_sent;
        rs.stats.bytes_sent += op.bytes;
        break;
      }
      case sim::WorkOp::Kind::kSendWait: {
        const std::size_t n_isends = rs.nb_tx_end.size() / F;
        if (op.ordinal < 0 || static_cast<std::size_t>(op.ordinal) >= n_isends)
          throw std::logic_error(pas::util::strf(
              "BatchRepricer: rank %d waits on unknown isend ordinal %d", r,
              op.ordinal));
        const std::size_t nb_base =
            static_cast<std::size_t>(op.ordinal) * F;
        for (std::size_t l = 0; l < F; ++l) {
          const std::size_t idx = base + l;
          spend_until(idx, cur_slot[idx], rs.nb_tx_end[nb_base + l],
                      sim::Activity::kNetwork);
        }
        break;
      }
      case sim::WorkOp::Kind::kRecv: {
        auto it = channels.find(channel_key(op.peer, r, op.tag));
        if (it == channels.end() || it->second.empty()) return false;
        const std::size_t msg_id = it->second.front();
        it->second.pop_front();
        enter_comm_phase(r);
        const std::size_t msg_bytes = flight_bytes[msg_id];
        const double rx_ser = flight_rx_ser[msg_id];
        const double o_num =
            net.per_message_cpu_cycles +
            net.cpu_cycles_per_byte * static_cast<double>(msg_bytes);
        const bool contend = net.model_port_contention && op.peer != r;
        for (std::size_t l = 0; l < F; ++l) {
          const std::size_t idx = base + l;
          const double at_sw = flight_at_switch[msg_id * F + l];
          double arrival = at_sw + rx_ser;
          if (contend) {
            const double rx_begin = std::max(at_sw, rx_busy[idx]);
            arrival = rx_begin + rx_ser;
            rx_busy[idx] = arrival;
          }
          const double trace_t0 = now[idx];
          spend_until(idx, cur_slot[idx], arrival, sim::Activity::kNetwork);
          const double o_recv = o_num / cur_fhz[idx];
          spend(idx, cur_slot[idx], o_recv, sim::Activity::kNetwork);
          if (sim::Tracer* tr = tracer_of(l))
            tr->record(r, trace_t0, now[idx] - trace_t0,
                       sim::Activity::kNetwork,
                       pas::util::strf("recv<-%d tag %d (%zuB)", op.peer,
                                       op.tag, msg_bytes));
        }
        ++rs.stats.messages_received;
        rs.stats.bytes_received += msg_bytes;
        break;
      }
    }
    ++rs.next;
    return true;
  };

  // Round-robin: the scalar engine's scheduler verbatim — blocking is
  // frequency-invariant, so one schedule serves every lane.
  bool all_done = false;
  while (!all_done) {
    bool progress = false;
    all_done = true;
    for (int r = 0; r < n; ++r) {
      RankShared& rs = rank[static_cast<std::size_t>(r)];
      const std::size_t count = ledger.rank_size(r);
      while (rs.next < count && step(r, rs)) progress = true;
      if (rs.next < count) all_done = false;
    }
    if (!all_done && !progress) {
      for (int r = 0; r < n; ++r) {
        const RankShared& rs = rank[static_cast<std::size_t>(r)];
        if (rs.next >= ledger.rank_size(r)) continue;
        const sim::WorkOp& op = ledger.rank_ops(r)[rs.next];
        throw std::logic_error(pas::util::strf(
            "BatchRepricer: replay stalled — rank %d blocked on recv<-%d "
            "tag %d with no matching send in the ledger",
            r, op.peer, op.tag));
      }
    }
  }
  for (const auto& [key, queue] : channels) {
    (void)key;
    if (!queue.empty())
      throw std::logic_error(
          "BatchRepricer: ledger left undelivered messages after replay");
  }

  // Record assembly: mirrors the scalar Repricer (which mirrors
  // RunMatrix::run_one) field by field and in the same summation order,
  // per lane.
  std::vector<RunRecord> records(F);
  const double nranks = static_cast<double>(n);
  for (std::size_t l = 0; l < F; ++l) {
    RunRecord& rec = records[l];
    rec.nodes = n;
    rec.frequency_mhz = lane[l].in_mhz;
    for (int r = 0; r < n; ++r)
      rec.seconds = std::max(rec.seconds, now[static_cast<std::size_t>(r) * F + l]);
    rec.verified = ledger.verified;
    double total_network = 0.0;
    double total_cpu = 0.0;
    double total_memory = 0.0;
    for (int r = 0; r < n; ++r) {
      const std::size_t idx = static_cast<std::size_t>(r) * F + l;
      total_cpu += tot[idx * kActs + static_cast<std::size_t>(sim::Activity::kCpu)];
      total_memory +=
          tot[idx * kActs + static_cast<std::size_t>(sim::Activity::kMemory)];
      total_network +=
          tot[idx * kActs + static_cast<std::size_t>(sim::Activity::kNetwork)];
    }
    rec.mean_overhead_s = total_network / nranks;
    rec.mean_cpu_s = total_cpu / nranks;
    rec.mean_memory_s = total_memory / nranks;

    for (int r = 0; r < n; ++r) {
      const std::size_t idx = static_cast<std::size_t>(r) * F + l;
      // The scalar path's activity_by_fkey map iterates fkey-ascending;
      // gather the used slots and emit them in the same order.
      struct SlotRef {
        long fkey;
        std::size_t slot;
      };
      SlotRef used[8];
      std::size_t n_used = 0;
      for (std::size_t s = 0; s < S && n_used < 8; ++s) {
        if (!slot_used[idx * S + s]) continue;
        used[n_used++] = SlotRef{s == 0 ? lane[l].fkey_app : slot_fkey[s], s};
      }
      std::sort(used, used + n_used,
                [](const SlotRef& a, const SlotRef& b) { return a.fkey < b.fkey; });
      std::vector<power::FrequencySlice> slices;
      slices.reserve(n_used);
      for (std::size_t u = 0; u < n_used; ++u) {
        const double* acts = &slot_act[(idx * S + used[u].slot) * kActs];
        power::FrequencySlice slice;
        slice.frequency_mhz = static_cast<double>(used[u].fkey) / 10.0;
        slice.activity.cpu_s = acts[static_cast<std::size_t>(sim::Activity::kCpu)];
        slice.activity.memory_s =
            acts[static_cast<std::size_t>(sim::Activity::kMemory)];
        slice.activity.network_s =
            acts[static_cast<std::size_t>(sim::Activity::kNetwork)];
        slice.activity.idle_s =
            acts[static_cast<std::size_t>(sim::Activity::kIdle)];
        slices.push_back(slice);
      }
      rec.energy += meter_.measure_node_slices(
          slices, cluster_.operating_points, rec.seconds, rec.frequency_mhz);
    }

    double messages = 0.0;
    double doubles = 0.0;
    for (int r = 0; r < n; ++r) {
      const mpi::CommStats& stats = rank[static_cast<std::size_t>(r)].stats;
      messages += static_cast<double>(stats.messages_sent);
      doubles += stats.avg_doubles_per_message();
      rec.send_retries += static_cast<double>(stats.sends_retried);
    }
    rec.messages_per_rank = messages / nranks;
    rec.doubles_per_message = doubles / nranks;

    for (int r = 0; r < n; ++r)
      rec.executed_per_rank += rank[static_cast<std::size_t>(r)].executed;
    rec.executed_per_rank = rec.executed_per_rank * (1.0 / nranks);

    if (sim::Tracer* t = tracer_of(l)) {
      for (int r = 0; r < n; ++r)
        t->record_span(r, 0.0, now[static_cast<std::size_t>(r) * F + l],
                       "rank",
                       pas::util::strf("rank %zu", static_cast<std::size_t>(r)));
    }
  }
  return records;
}

}  // namespace pas::analysis
