// SampledEstimator — SMARTS-style extrapolation for sampled runs
// (DESIGN.md §14).
//
// A sampled run executes only a systematic subset of a kernel's
// iterations (every `sample_period`-th after a detailed warming window
// of `warmup_iters`); skipped iterations execute nothing, so the run's
// measured makespan covers setup + the detailed subset + the epilogue.
// The estimator reconstructs the full-run time from the per-boundary
// snapshots a sim::SampleProbe collected:
//
//   * the cluster-level series is the max-over-ranks virtual `now` at
//     each recorded iteration boundary (the makespan is a max, so the
//     estimator extrapolates the same statistic it predicts);
//   * consecutive recorded boundaries differ by the cost of exactly
//     one detailed iteration (everything between them was skipped and
//     cost nothing), so the post-warmup deltas are i.i.d. samples of
//     the per-iteration cost;
//   * estimate = measured + mean(delta) * skipped, with a normal-
//     approximation confidence interval 1.96 * sd / sqrt(n) * skipped.
//
// The estimate is exact when iterations cost identical time (our
// kernels' steady state) and carries a CI that widens with observed
// per-iteration variance. Sampled records are estimates by contract:
// they are never byte-compared, only checked for CI coverage
// (SweepOptions::verify_sampling).
#pragma once

#include "pas/sim/sampling.hpp"

namespace pas::analysis {

struct SampledEstimate {
  /// False when the probe held too few boundaries to estimate (the
  /// caller should fall back to the measured record unchanged).
  bool valid = false;
  double seconds = 0.0;     ///< estimated full-run makespan
  double ci_seconds = 0.0;  ///< 95% half-width on `seconds`
  int total_iters = 0;      ///< full iteration count being estimated
  int sampled_iters = 0;    ///< post-warmup iterations actually run
};

/// Extrapolates a full-run makespan from one sampled run.
///
/// `total_iters` is the kernel's full iteration count for this rank
/// count, `start_iter` the warm-start boundary the run resumed from (0
/// for a cold run), `warmup_iters`/`sample_period` the sampling plan
/// the run executed, and `measured_seconds` its measured makespan.
SampledEstimate estimate_sampled_run(const sim::SampleProbe& probe,
                                     int total_iters, int start_iter,
                                     int warmup_iters, int sample_period,
                                     double measured_seconds);

}  // namespace pas::analysis
