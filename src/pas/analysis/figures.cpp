#include "pas/analysis/figures.hpp"

#include "pas/util/format.hpp"

namespace pas::analysis {

util::TextTable execution_time_table(const core::TimingMatrix& times,
                                     const std::vector<int>& nodes,
                                     const std::vector<double>& freqs_mhz,
                                     const std::string& title) {
  util::TextTable t(title);
  std::vector<std::string> header{"N \\ f"};
  for (double f : freqs_mhz) header.push_back(util::strf("%.0f MHz", f));
  t.set_header(std::move(header));
  for (int n : nodes) {
    std::vector<std::string> row{util::strf("%d", n)};
    for (double f : freqs_mhz)
      row.push_back(util::strf("%.4f s", times.at(n, f)));
    t.add_row(std::move(row));
  }
  return t;
}

util::TextTable speedup_surface(const core::TimingMatrix& times,
                                const std::vector<int>& nodes,
                                const std::vector<double>& freqs_mhz,
                                double base_f_mhz, const std::string& title) {
  util::TextTable t(title);
  std::vector<std::string> header{"N \\ f"};
  for (double f : freqs_mhz) header.push_back(util::strf("%.0f MHz", f));
  t.set_header(std::move(header));
  for (int n : nodes) {
    std::vector<std::string> row{util::strf("%d", n)};
    for (double f : freqs_mhz)
      row.push_back(util::strf("%.2f", times.speedup(n, f, 1, base_f_mhz)));
    t.add_row(std::move(row));
  }
  return t;
}

std::vector<double> speedup_row(const core::TimingMatrix& times, int nodes,
                                const std::vector<double>& freqs_mhz,
                                double base_f_mhz) {
  std::vector<double> out;
  out.reserve(freqs_mhz.size());
  for (double f : freqs_mhz)
    out.push_back(times.speedup(nodes, f, 1, base_f_mhz));
  return out;
}

std::vector<double> speedup_column(const core::TimingMatrix& times,
                                   const std::vector<int>& nodes,
                                   double f_mhz, double base_f_mhz) {
  std::vector<double> out;
  out.reserve(nodes.size());
  for (int n : nodes) out.push_back(times.speedup(n, f_mhz, 1, base_f_mhz));
  return out;
}

}  // namespace pas::analysis
