#include "pas/analysis/experiment.hpp"

#include <stdexcept>

#include "pas/analysis/sweep_executor.hpp"
#include "pas/mpi/runtime.hpp"
#include "pas/util/format.hpp"

namespace pas::analysis {

ExperimentEnv ExperimentEnv::paper() { return ExperimentEnv{}; }

ExperimentEnv ExperimentEnv::small() {
  ExperimentEnv env;
  env.cluster = sim::ClusterConfig::paper_testbed(4);
  env.nodes = {1, 2, 4};
  env.parallel_nodes = {2, 4};
  env.freqs_mhz = {600.0, 1000.0, 1400.0};
  return env;
}

std::unique_ptr<npb::Kernel> make_kernel(const std::string& name,
                                         Scale scale) {
  if (name == "EP") {
    npb::EpConfig cfg;
    if (scale == Scale::kSmall) cfg.log2_pairs = 15;
    return std::make_unique<npb::EpKernel>(cfg);
  }
  if (name == "FT") {
    npb::FtConfig cfg;
    if (scale == Scale::kSmall) {
      cfg.nx = cfg.ny = cfg.nz = 16;
      cfg.niter = 2;
    }
    return std::make_unique<npb::FtKernel>(cfg);
  }
  if (name == "LU") {
    npb::LuConfig cfg;
    if (scale == Scale::kSmall) {
      cfg.n = 16;
      cfg.iterations = 3;
    }
    return std::make_unique<npb::LuKernel>(cfg);
  }
  if (name == "CG") {
    npb::CgConfig cfg;
    if (scale == Scale::kSmall) {
      cfg.n = 16;
      cfg.iterations = 8;
    }
    return std::make_unique<npb::CgKernel>(cfg);
  }
  if (name == "MG") {
    npb::MgConfig cfg;
    if (scale == Scale::kSmall) {
      cfg.n = 16;
      cfg.levels = 2;
      cfg.cycles = 2;
    }
    return std::make_unique<npb::MgKernel>(cfg);
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

std::unique_ptr<npb::Kernel> make_spec_kernel(const SweepSpec& spec) {
  std::unique_ptr<npb::Kernel> kernel =
      make_kernel(spec.kernel, spec.resolved_scale());
  if (spec.iterations > 0) {
    std::unique_ptr<npb::Kernel> adjusted =
        kernel->with_iterations(spec.iterations);
    if (adjusted == nullptr)
      throw std::invalid_argument(pas::util::strf(
          "spec: iterations: kernel %s does not support an iteration "
          "override",
          spec.kernel.c_str()));
    kernel = std::move(adjusted);
  }
  return kernel;
}

ExperimentEnv env_for_spec(const SweepSpec& spec) {
  ExperimentEnv env = spec.resolved_scale() == Scale::kSmall
                          ? ExperimentEnv::small()
                          : ExperimentEnv::paper();
  env.cluster = spec.cluster ? *spec.cluster : spec.resolved_cluster();
  env.nodes = spec.resolved_nodes();
  env.parallel_nodes.clear();
  for (int n : env.nodes)
    if (n > 1) env.parallel_nodes.push_back(n);
  env.freqs_mhz = spec.resolved_freqs();
  env.base_f_mhz = spec.base_f_mhz();
  return env;
}

core::LevelWorkload to_level_workload(
    const counters::WorkloadDecomposition& d) {
  core::LevelWorkload w;
  w.reg_ins = d.reg_ins;
  w.l1_ins = d.l1_ins;
  w.l2_ins = d.l2_ins;
  w.mem_ins = d.mem_ins;
  return w;
}

core::LevelSeconds to_level_seconds(const tools::LevelTimes& t) {
  core::LevelSeconds s;
  s.reg_s = t.reg_s;
  s.l1_s = t.l1_s;
  s.l2_s = t.l2_s;
  s.mem_s = t.mem_s;
  return s;
}

counters::CounterSet measure_counters(const npb::Kernel& kernel,
                                      const ExperimentEnv& env) {
  mpi::Runtime runtime(env.cluster);
  const mpi::RunResult run = runtime.run(
      1, env.base_f_mhz, [&](mpi::Comm& comm) { (void)kernel.run(comm); });
  counters::CounterSet set;
  set.record_mix(run.ranks.at(0).executed);
  return set;
}

core::SimplifiedParameterization parameterize_simplified(
    const npb::Kernel& kernel, const ExperimentEnv& env) {
  core::SimplifiedParameterization sp(env.base_f_mhz);
  RunMatrix matrix(env.cluster);
  // Step 3: sequential runs at each frequency (includes the base).
  for (double f : env.freqs_mhz)
    sp.add_sequential(f, matrix.run_one(kernel, 1, f).seconds);
  // Step 1: parallel runs at the base frequency.
  for (int n : env.parallel_nodes)
    sp.add_parallel_base(n, matrix.run_one(kernel, n, env.base_f_mhz).seconds);
  return sp;
}

core::FineGrainParameterization parameterize_fine_grain(
    const npb::Kernel& kernel, const ExperimentEnv& env) {
  // Step 1: workload distribution from the counters.
  const counters::CounterSet set = measure_counters(kernel, env);
  core::FineGrainParameterization fp(to_level_workload(set.decompose()),
                                     env.base_f_mhz);

  // Step 2a: per-level seconds-per-instruction from the memory probe.
  tools::MemBench membench(
      sim::CpuModel(env.cluster.cpu, env.cluster.memory,
                    env.cluster.operating_points));
  for (double f : env.freqs_mhz)
    fp.set_level_seconds(f, to_level_seconds(membench.probe(f)));

  // Step 2b: communication profile (one profiling run per node count at
  // the base frequency) priced by the message probe per frequency.
  RunMatrix matrix(env.cluster);
  tools::MsgBench msgbench(env.cluster);
  for (int n : env.parallel_nodes) {
    const RunRecord rec = matrix.run_one(kernel, n, env.base_f_mhz);
    const auto doubles =
        static_cast<std::size_t>(std::max(1.0, rec.doubles_per_message));
    for (double f : env.freqs_mhz) {
      // One ping-pong leg prices one boundary exchange: the sender
      // blocks for its serialization and the receiver waits out the
      // store-and-forward delivery — exactly a message's share of
      // w_PO under blocking-send semantics (§5.2 step 2).
      const double per_msg = msgbench.pingpong_seconds(doubles, f);
      fp.set_comm(n, rec.messages_per_rank, f, per_msg);
    }
  }
  return fp;
}

counters::CounterSet measure_counters(const npb::Kernel& kernel,
                                      const ExperimentEnv& env,
                                      SweepExecutor& exec) {
  // The one-processor profiling run's mean executed mix *is* rank 0's
  // mix, so the cached RunRecord carries everything the counters need.
  const RunRecord rec = exec.run_one(kernel, 1, env.base_f_mhz);
  counters::CounterSet set;
  set.record_mix(rec.executed_per_rank);
  return set;
}

core::SimplifiedParameterization parameterize_simplified(
    const npb::Kernel& kernel, const ExperimentEnv& env, SweepExecutor& exec) {
  std::vector<SweepExecutor::Point> points;
  points.reserve(env.freqs_mhz.size() + env.parallel_nodes.size());
  for (double f : env.freqs_mhz)
    points.push_back(SweepExecutor::Point{1, f, 0.0});
  for (int n : env.parallel_nodes)
    points.push_back(SweepExecutor::Point{n, env.base_f_mhz, 0.0});
  const std::vector<RunRecord> recs = exec.run_points(kernel, points);

  core::SimplifiedParameterization sp(env.base_f_mhz);
  std::size_t i = 0;
  for (double f : env.freqs_mhz) sp.add_sequential(f, recs[i++].seconds);
  for (int n : env.parallel_nodes) sp.add_parallel_base(n, recs[i++].seconds);
  return sp;
}

core::FineGrainParameterization parameterize_fine_grain(
    const npb::Kernel& kernel, const ExperimentEnv& env, SweepExecutor& exec) {
  const counters::CounterSet set = measure_counters(kernel, env, exec);
  core::FineGrainParameterization fp(to_level_workload(set.decompose()),
                                     env.base_f_mhz);

  tools::MemBench membench(
      sim::CpuModel(env.cluster.cpu, env.cluster.memory,
                    env.cluster.operating_points));
  for (double f : env.freqs_mhz)
    fp.set_level_seconds(f, to_level_seconds(membench.probe(f)));

  std::vector<SweepExecutor::Point> points;
  points.reserve(env.parallel_nodes.size());
  for (int n : env.parallel_nodes)
    points.push_back(SweepExecutor::Point{n, env.base_f_mhz, 0.0});
  const std::vector<RunRecord> recs = exec.run_points(kernel, points);

  tools::MsgBench msgbench(env.cluster);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    const RunRecord& rec = recs[k];
    const auto doubles =
        static_cast<std::size_t>(std::max(1.0, rec.doubles_per_message));
    for (double f : env.freqs_mhz) {
      const double per_msg = msgbench.pingpong_seconds(doubles, f);
      fp.set_comm(env.parallel_nodes[k], rec.messages_per_rank, f, per_msg);
    }
  }
  return fp;
}

}  // namespace pas::analysis
