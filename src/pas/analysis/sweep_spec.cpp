#include "pas/analysis/sweep_spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "pas/analysis/experiment.hpp"
#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/json.hpp"

namespace pas::analysis {
namespace {

using pas::util::Json;
using pas::util::strf;

/// Environment values obey the same rules as the flags they stand in
/// for — a typo'd $PASIM_JOBS must fail loudly, not fall back to 0.
long parse_positive_env_int(const char* name, const char* value) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v < 1)
    throw std::invalid_argument(
        strf("$%s must be a positive integer (got \"%s\")", name, value));
  return v;
}

[[noreturn]] void field_error(const std::string& field,
                              const std::string& what) {
  throw std::invalid_argument(strf("spec: %s: %s", field.c_str(),
                                   what.c_str()));
}

/// Strictness backbone: every object in the document may only carry
/// keys the schema names — a typo'd "freqs_mzh" must be an error, not
/// a silently ignored axis.
void reject_unknown_keys(const Json& obj, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok)
      field_error(where.empty() ? key : where + "." + key,
                  "unknown key (check the schema in DESIGN.md §13)");
  }
}

const Json& require_object(const Json& j, const std::string& where) {
  if (!j.is_object()) field_error(where, "expected a JSON object");
  return j;
}

bool get_bool_field(const Json& obj, const std::string& where,
                    const char* key, bool def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->is_bool()) field_error(where + "." + key, "expected true or false");
  return v->as_bool();
}

double get_number_field(const Json& obj, const std::string& where,
                        const char* key, double def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) field_error(where + "." + key, "expected a number");
  return v->as_number();
}

long long get_int_field(const Json& obj, const std::string& where,
                        const char* key, long long def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->is_number() || v->as_number() != std::floor(v->as_number()))
    field_error(where + "." + key, "expected an integer");
  const double d = v->as_number();
  if (d < -9.007199254740992e15 || d > 9.007199254740992e15)
    field_error(where + "." + key, "integer out of range");
  return static_cast<long long>(d);
}

std::string get_string_field(const Json& obj, const std::string& where,
                             const char* key, const std::string& def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->is_string()) field_error(where + "." + key, "expected a string");
  return v->as_string();
}

/// FaultConfig's JSON form lives here (not in pas_fault) so the fault
/// library stays free of the JSON dependency; the schema mirrors the
/// struct field for field, all keys optional with the struct defaults.
Json fault_to_json(const fault::FaultConfig& f) {
  Json j = Json::object();
  j.set("seed", Json(static_cast<unsigned long long>(f.seed)));
  j.set("straggler_fraction", Json(f.straggler_fraction));
  j.set("straggler_slowdown", Json(f.straggler_slowdown));
  j.set("dvfs_jitter_s", Json(f.dvfs_jitter_s));
  j.set("message_delay_prob", Json(f.message_delay_prob));
  j.set("message_delay_s", Json(f.message_delay_s));
  j.set("message_drop_prob", Json(f.message_drop_prob));
  j.set("max_send_attempts", Json(f.max_send_attempts));
  j.set("retry_backoff_s", Json(f.retry_backoff_s));
  j.set("node_failure_prob", Json(f.node_failure_prob));
  j.set("node_failure_window_s", Json(f.node_failure_window_s));
  return j;
}

double get_prob_field(const Json& obj, const std::string& where,
                      const char* key, double def) {
  const double v = get_number_field(obj, where, key, def);
  if (v < 0.0 || v > 1.0)
    field_error(where + "." + key, strf("probability %g out of [0, 1]", v));
  return v;
}

double get_nonneg_field(const Json& obj, const std::string& where,
                        const char* key, double def) {
  const double v = get_number_field(obj, where, key, def);
  if (v < 0.0) field_error(where + "." + key, strf("must be >= 0 (got %g)", v));
  return v;
}

fault::FaultConfig fault_from_json(const Json& j) {
  const std::string where = "fault";
  require_object(j, where);
  reject_unknown_keys(j, where,
                      {"seed", "straggler_fraction", "straggler_slowdown",
                       "dvfs_jitter_s", "message_delay_prob",
                       "message_delay_s", "message_drop_prob",
                       "max_send_attempts", "retry_backoff_s",
                       "node_failure_prob", "node_failure_window_s"});
  fault::FaultConfig f;
  const long long seed = get_int_field(j, where, "seed",
                                       static_cast<long long>(f.seed));
  if (seed < 0) field_error("fault.seed", "must be >= 0");
  f.seed = static_cast<std::uint64_t>(seed);
  f.straggler_fraction =
      get_prob_field(j, where, "straggler_fraction", f.straggler_fraction);
  f.straggler_slowdown =
      get_prob_field(j, where, "straggler_slowdown", f.straggler_slowdown);
  f.dvfs_jitter_s = get_nonneg_field(j, where, "dvfs_jitter_s",
                                     f.dvfs_jitter_s);
  f.message_delay_prob =
      get_prob_field(j, where, "message_delay_prob", f.message_delay_prob);
  f.message_delay_s =
      get_nonneg_field(j, where, "message_delay_s", f.message_delay_s);
  f.message_drop_prob =
      get_prob_field(j, where, "message_drop_prob", f.message_drop_prob);
  const long long attempts =
      get_int_field(j, where, "max_send_attempts", f.max_send_attempts);
  if (attempts < 1) field_error("fault.max_send_attempts", "must be >= 1");
  f.max_send_attempts = static_cast<int>(attempts);
  f.retry_backoff_s =
      get_nonneg_field(j, where, "retry_backoff_s", f.retry_backoff_s);
  f.node_failure_prob =
      get_prob_field(j, where, "node_failure_prob", f.node_failure_prob);
  f.node_failure_window_s = get_nonneg_field(j, where, "node_failure_window_s",
                                             f.node_failure_window_s);
  if (f.node_failure_window_s <= 0.0)
    field_error("fault.node_failure_window_s", "must be > 0");
  return f;
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names{"EP", "FT", "LU", "CG", "MG"};
  return names;
}

}  // namespace

SweepOptions SweepOptions::from_cli(const util::Cli& cli) {
  return apply_cli(cli, SweepOptions{});
}

SweepOptions SweepOptions::apply_cli(const util::Cli& cli, SweepOptions base) {
  SweepOptions opts = std::move(base);
  if (cli.has("jobs")) {
    opts.jobs = static_cast<int>(cli.get_int("jobs", opts.jobs));
    if (opts.jobs < 1)
      throw std::invalid_argument(
          strf("--jobs must be >= 1 (got %ld)", cli.get_int("jobs", 0)));
  } else if (const char* env_jobs = std::getenv("PASIM_JOBS")) {
    // The environment only stands in when the flag is absent, and is
    // then held to the flag's rules.
    opts.jobs = static_cast<int>(parse_positive_env_int("PASIM_JOBS",
                                                        env_jobs));
  }
  opts.run_retries = static_cast<int>(cli.get_int("retries", opts.run_retries));
  if (opts.run_retries < 0)
    throw std::invalid_argument(
        strf("--retries must be >= 0 (got %d)", opts.run_retries));
  if (cli.has("cache")) {
    opts.cache_dir = cli.get("cache", "");
    if (opts.cache_dir.empty()) opts.cache_dir = ".pasim_cache";
  } else if (const char* env_dir = std::getenv("PASIM_CACHE_DIR")) {
    if (*env_dir == '\0')
      throw std::invalid_argument(
          "$PASIM_CACHE_DIR is set but empty; unset it or point it at a "
          "cache directory");
    opts.cache_dir = env_dir;
  }
  if (cli.get_bool("no-cache", !opts.use_cache)) {
    opts.use_cache = false;
    opts.cache_dir.clear();
  }
  opts.verify_replay = cli.get_bool("verify-replay", opts.verify_replay);
  if (opts.verify_replay && !opts.use_cache)
    throw std::invalid_argument(
        "--verify-replay cannot be combined with --no-cache: the "
        "verification pass compares records through the cache encoding; "
        "drop one of the two flags");
  if (cli.has("journal")) {
    opts.journal_path = cli.get("journal", "");
    if (opts.journal_path.empty()) opts.journal_path = "pasim_sweep.journal";
  }
  opts.resume = cli.get_bool("resume", opts.resume);
  opts.isolate = cli.get_bool("isolate", opts.isolate);
  // --resume and --isolate both need the journal; default its path so
  // neither flag silently no-ops without --journal.
  if ((opts.resume || opts.isolate) && opts.journal_path.empty())
    opts.journal_path = "pasim_sweep.journal";
  opts.isolate_timeout_s =
      cli.get_double("isolate-timeout", opts.isolate_timeout_s);
  if (opts.isolate_timeout_s <= 0.0)
    throw std::invalid_argument(
        strf("--isolate-timeout must be > 0 seconds (got %g)",
             opts.isolate_timeout_s));
  opts.isolate_retries =
      static_cast<int>(cli.get_int("isolate-retries", opts.isolate_retries));
  if (opts.isolate_retries < 0)
    throw std::invalid_argument(
        strf("--isolate-retries must be >= 0 (got %d)", opts.isolate_retries));
  if (cli.has("cache-cap")) {
    const long mb = cli.get_int("cache-cap", 0);
    if (mb < 1)
      throw std::invalid_argument(
          strf("--cache-cap must be >= 1 MB (got %ld)", mb));
    opts.cache_cap_bytes = static_cast<std::uint64_t>(mb) * 1024ULL * 1024ULL;
  }
  if (opts.cache_cap_bytes > 0 && opts.cache_dir.empty())
    throw std::invalid_argument(
        "--cache-cap requires a disk cache: add --cache [dir] (and drop "
        "--no-cache)");
  opts.sampling = cli.get_bool("sampling", opts.sampling);
  opts.sample_period =
      static_cast<int>(cli.get_int("sample-period", opts.sample_period));
  if (opts.sample_period < 2)
    throw std::invalid_argument(
        strf("--sample-period must be >= 2 (got %d; 1 would sample every "
             "iteration — drop --sampling for an exact run)",
             opts.sample_period));
  opts.warmup_iters =
      static_cast<int>(cli.get_int("warmup-iters", opts.warmup_iters));
  if (opts.warmup_iters < 0)
    throw std::invalid_argument(
        strf("--warmup-iters must be >= 0 (got %d)", opts.warmup_iters));
  if (cli.has("verify-sampling"))
    opts.verify_sampling =
        cli.get_double("verify-sampling", opts.verify_sampling);
  if (opts.verify_sampling < 0.0 || opts.verify_sampling > 1.0)
    throw std::invalid_argument(
        strf("--verify-sampling must be a fraction in [0, 1] (got %g)",
             opts.verify_sampling));
  if (opts.verify_sampling > 0.0 && !opts.sampling)
    throw std::invalid_argument(
        "--verify-sampling only checks sampled estimates: add --sampling");
  if (opts.sampling && opts.verify_replay)
    throw std::invalid_argument(
        "--sampling cannot be combined with --verify-replay: sampled "
        "records are estimates, never byte-compared (use "
        "--verify-sampling to check them)");
  opts.checkpoints = cli.get_bool("checkpoints", opts.checkpoints);
  if (opts.checkpoints && !opts.use_cache)
    throw std::invalid_argument(
        "--checkpoints requires the run cache (drop --no-cache): "
        "checkpoints are stored as cache entries");
  return opts;
}

util::Json SweepOptions::to_json() const {
  Json j = Json::object();
  j.set("jobs", Json(jobs));
  j.set("cache_dir", Json(cache_dir));
  j.set("use_cache", Json(use_cache));
  j.set("run_retries", Json(run_retries));
  j.set("verify_replay", Json(verify_replay));
  j.set("journal_path", Json(journal_path));
  j.set("resume", Json(resume));
  j.set("isolate", Json(isolate));
  j.set("isolate_timeout_s", Json(isolate_timeout_s));
  j.set("isolate_retries", Json(isolate_retries));
  j.set("cache_cap_bytes", Json(static_cast<unsigned long long>(
                               cache_cap_bytes)));
  j.set("sampling", Json(sampling));
  j.set("sample_period", Json(sample_period));
  j.set("warmup_iters", Json(warmup_iters));
  j.set("verify_sampling", Json(verify_sampling));
  j.set("checkpoints", Json(checkpoints));
  return j;
}

SweepOptions SweepOptions::from_json(const util::Json& j) {
  const std::string where = "options";
  require_object(j, where);
  reject_unknown_keys(j, where,
                      {"jobs", "cache_dir", "use_cache", "run_retries",
                       "verify_replay", "journal_path", "resume", "isolate",
                       "isolate_timeout_s", "isolate_retries",
                       "cache_cap_bytes", "sampling", "sample_period",
                       "warmup_iters", "verify_sampling", "checkpoints"});
  SweepOptions o;
  const long long jobs = get_int_field(j, where, "jobs", o.jobs);
  if (jobs < 0) field_error("options.jobs", "must be >= 0");
  o.jobs = static_cast<int>(jobs);
  o.cache_dir = get_string_field(j, where, "cache_dir", o.cache_dir);
  o.use_cache = get_bool_field(j, where, "use_cache", o.use_cache);
  const long long retries = get_int_field(j, where, "run_retries",
                                          o.run_retries);
  if (retries < 0) field_error("options.run_retries", "must be >= 0");
  o.run_retries = static_cast<int>(retries);
  o.verify_replay = get_bool_field(j, where, "verify_replay", o.verify_replay);
  if (o.verify_replay && !o.use_cache)
    field_error("options.verify_replay",
                "requires use_cache (the verification pass compares "
                "records through the cache encoding)");
  o.journal_path = get_string_field(j, where, "journal_path", o.journal_path);
  o.resume = get_bool_field(j, where, "resume", o.resume);
  o.isolate = get_bool_field(j, where, "isolate", o.isolate);
  if ((o.resume || o.isolate) && o.journal_path.empty())
    o.journal_path = "pasim_sweep.journal";
  o.isolate_timeout_s =
      get_number_field(j, where, "isolate_timeout_s", o.isolate_timeout_s);
  if (o.isolate_timeout_s <= 0.0)
    field_error("options.isolate_timeout_s", "must be > 0");
  const long long iso_retries =
      get_int_field(j, where, "isolate_retries", o.isolate_retries);
  if (iso_retries < 0) field_error("options.isolate_retries", "must be >= 0");
  o.isolate_retries = static_cast<int>(iso_retries);
  const long long cap = get_int_field(j, where, "cache_cap_bytes",
                                      static_cast<long long>(o.cache_cap_bytes));
  if (cap < 0) field_error("options.cache_cap_bytes", "must be >= 0");
  o.cache_cap_bytes = static_cast<std::uint64_t>(cap);
  if (o.cache_cap_bytes > 0 && o.cache_dir.empty())
    field_error("options.cache_cap_bytes",
                "requires a disk cache (set options.cache_dir)");
  o.sampling = get_bool_field(j, where, "sampling", o.sampling);
  const long long period =
      get_int_field(j, where, "sample_period", o.sample_period);
  if (period < 2) field_error("options.sample_period", "must be >= 2");
  o.sample_period = static_cast<int>(period);
  const long long warmup =
      get_int_field(j, where, "warmup_iters", o.warmup_iters);
  if (warmup < 0) field_error("options.warmup_iters", "must be >= 0");
  o.warmup_iters = static_cast<int>(warmup);
  o.verify_sampling =
      get_number_field(j, where, "verify_sampling", o.verify_sampling);
  if (o.verify_sampling < 0.0 || o.verify_sampling > 1.0)
    field_error("options.verify_sampling", "must be a fraction in [0, 1]");
  if (o.verify_sampling > 0.0 && !o.sampling)
    field_error("options.verify_sampling",
                "only checks sampled estimates (set options.sampling)");
  if (o.sampling && o.verify_replay)
    field_error("options.sampling",
                "incompatible with verify_replay: sampled records are "
                "estimates, never byte-compared (use verify_sampling)");
  o.checkpoints = get_bool_field(j, where, "checkpoints", o.checkpoints);
  if (o.checkpoints && !o.use_cache)
    field_error("options.checkpoints",
                "requires use_cache (checkpoints are cache entries)");
  return o;
}

Scale SweepSpec::resolved_scale() const {
  if (scale == "paper") return Scale::kPaper;
  if (scale == "small") return Scale::kSmall;
  field_error("scale", strf("unknown scale \"%s\" (expected \"paper\" or "
                            "\"small\")",
                            scale.c_str()));
}

sim::ClusterConfig SweepSpec::resolved_cluster() const {
  if (cluster) return *cluster;
  return resolved_scale() == Scale::kSmall
             ? sim::ClusterConfig::paper_testbed(4)
             : sim::ClusterConfig::paper_testbed();
}

std::vector<int> SweepSpec::resolved_nodes() const {
  if (!nodes.empty()) return nodes;
  return resolved_scale() == Scale::kSmall ? ExperimentEnv::small().nodes
                                           : ExperimentEnv::paper().nodes;
}

std::vector<double> SweepSpec::resolved_freqs() const {
  if (!freqs_mhz.empty()) return freqs_mhz;
  return resolved_scale() == Scale::kSmall ? ExperimentEnv::small().freqs_mhz
                                           : ExperimentEnv::paper().freqs_mhz;
}

double SweepSpec::base_f_mhz() const {
  const std::vector<double> freqs = resolved_freqs();
  double base = freqs.front();
  for (double f : freqs) base = std::min(base, f);
  return base;
}

void SweepSpec::validate() const {
  bool known = false;
  for (const std::string& k : kernel_names()) known = known || k == kernel;
  if (!known)
    field_error("kernel", strf("unknown kernel \"%s\" (expected EP, FT, LU, "
                               "CG or MG)",
                               kernel.c_str()));
  (void)resolved_scale();  // throws on a bad scale string
  for (int n : nodes)
    if (n < 1) field_error("nodes", strf("node count %d must be >= 1", n));
  for (double f : freqs_mhz)
    if (!(f > 0.0))
      field_error("freqs_mhz", strf("frequency %g must be > 0", f));
  if (comm_dvfs_mhz < 0.0)
    field_error("comm_dvfs_mhz", "must be >= 0 (0 disables comm DVFS)");
  if (iterations < 0)
    field_error("iterations",
                "must be >= 0 (0 keeps the scale preset's count)");
}

util::Json SweepSpec::to_json() const {
  validate();
  Json j = Json::object();
  j.set("version", Json(kSchemaVersion));
  j.set("kernel", Json(kernel));
  j.set("scale", Json(scale));
  Json& n = j.set("nodes", Json::array());
  for (int v : nodes) n.push_back(Json(v));
  Json& f = j.set("freqs_mhz", Json::array());
  for (double v : freqs_mhz) f.push_back(Json(v));
  j.set("comm_dvfs_mhz", Json(comm_dvfs_mhz));
  j.set("iterations", Json(iterations));
  j.set("options", options.to_json());
  if (fault) j.set("fault", fault_to_json(*fault));
  return j;
}

SweepSpec SweepSpec::from_json(const util::Json& j) {
  require_object(j, "document");
  reject_unknown_keys(j, "",
                      {"version", "kernel", "scale", "nodes", "freqs_mhz",
                       "comm_dvfs_mhz", "iterations", "options", "fault"});
  const Json* version = j.find("version");
  if (version == nullptr) field_error("version", "required field is missing");
  if (!version->is_number() || (version->as_number() != 1.0 &&
                                version->as_number() !=
                                    static_cast<double>(kSchemaVersion)))
    field_error("version",
                strf("unsupported schema version (this build accepts 1..%d)",
                     kSchemaVersion));
  if (version->as_number() == 1.0) {
    // v1 predates sampled estimation and checkpoint warm-starts: a v1
    // document naming any v2 field is mislabeled, not forward-
    // compatible — reject it the way an unknown key is rejected.
    if (j.find("iterations") != nullptr)
      field_error("iterations", "requires schema version 2");
    if (const Json* o = j.find("options")) {
      if (o->is_object()) {
        for (const char* key : {"sampling", "sample_period", "warmup_iters",
                                "verify_sampling", "checkpoints"}) {
          if (o->find(key) != nullptr)
            field_error(strf("options.%s", key), "requires schema version 2");
        }
      }
    }
  }

  SweepSpec spec;
  spec.kernel = get_string_field(j, "", "kernel", spec.kernel);
  spec.scale = get_string_field(j, "", "scale", spec.scale);
  if (const Json* n = j.find("nodes")) {
    if (!n->is_array()) field_error("nodes", "expected an array of integers");
    for (const Json& v : n->items()) {
      if (!v.is_number() || v.as_number() != std::floor(v.as_number()))
        field_error("nodes", "expected an array of integers");
      spec.nodes.push_back(static_cast<int>(v.as_number()));
    }
  }
  if (const Json* f = j.find("freqs_mhz")) {
    if (!f->is_array()) field_error("freqs_mhz", "expected an array of MHz");
    for (const Json& v : f->items()) {
      if (!v.is_number()) field_error("freqs_mhz", "expected an array of MHz");
      spec.freqs_mhz.push_back(v.as_number());
    }
  }
  spec.comm_dvfs_mhz =
      get_number_field(j, "", "comm_dvfs_mhz", spec.comm_dvfs_mhz);
  spec.iterations = static_cast<int>(
      get_int_field(j, "", "iterations", spec.iterations));
  if (const Json* o = j.find("options"))
    spec.options = SweepOptions::from_json(*o);
  if (const Json* f = j.find("fault")) spec.fault = fault_from_json(*f);
  spec.validate();
  return spec;
}

SweepSpec SweepSpec::parse(const std::string& text) {
  return from_json(Json::parse(text));
}

SweepSpec SweepSpec::load(const std::string& path) {
  const std::optional<std::string> text = util::read_file(path);
  if (!text)
    throw std::invalid_argument(
        strf("cannot read spec file \"%s\"", path.c_str()));
  try {
    return parse(*text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(strf("%s: %s", path.c_str(), e.what()));
  }
}

SweepSpec SweepSpec::from_cli(const util::Cli& cli) {
  SweepSpec spec;
  if (cli.has("spec")) {
    const std::string path = cli.get("spec", "");
    if (path.empty())
      throw std::invalid_argument("--spec needs a file path");
    spec = load(path);
  }
  if (cli.has("small"))
    spec.scale = cli.get_bool("small", false) ? "small" : "paper";
  if (cli.has("kernel")) spec.kernel = cli.get("kernel", spec.kernel);
  if (cli.has("nodes")) {
    spec.nodes.clear();
    for (long n : cli.get_int_list("nodes", {}))
      spec.nodes.push_back(static_cast<int>(n));
    if (spec.nodes.empty())
      throw std::invalid_argument("--nodes needs a comma-separated list");
  }
  if (cli.has("freqs")) {
    spec.freqs_mhz.clear();
    for (long f : cli.get_int_list("freqs", {}))
      spec.freqs_mhz.push_back(static_cast<double>(f));
    if (spec.freqs_mhz.empty())
      throw std::invalid_argument("--freqs needs a comma-separated list");
  }
  if (cli.has("comm-dvfs"))
    spec.comm_dvfs_mhz = cli.get_double("comm-dvfs", spec.comm_dvfs_mhz);
  if (cli.has("iterations"))
    spec.iterations =
        static_cast<int>(cli.get_int("iterations", spec.iterations));
  if (cli.has("faults")) {
    // --faults 0 explicitly clears a fault block inherited from --spec.
    const double rate = cli.get_double("faults", 0.0);
    if (rate == 0.0)
      spec.fault.reset();
    else
      spec.fault = fault::FaultConfig::from_cli(cli);
  } else if (cli.has("fault-seed") && spec.fault) {
    spec.fault->seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  }
  spec.options = SweepOptions::apply_cli(cli, std::move(spec.options));
  spec.observer = obs::Observer::from_cli(cli);
  spec.validate();
  return spec;
}

std::vector<std::string> SweepSpec::cli_option_names() {
  return {// the spec document and its axis overrides
          "spec", "small", "kernel", "nodes", "freqs", "comm-dvfs",
          "iterations", "faults", "fault-seed",
          // SweepOptions::apply_cli
          "jobs", "cache", "no-cache", "retries", "verify-replay", "journal",
          "resume", "isolate", "isolate-timeout", "isolate-retries",
          "cache-cap", "sampling", "sample-period", "warmup-iters",
          "verify-sampling", "checkpoints",
          // obs::Observer::from_cli
          "trace", "metrics"};
}

}  // namespace pas::analysis
