#include "pas/analysis/run_matrix.hpp"

#include <stdexcept>
#include <utility>

#include "pas/analysis/sampled_estimator.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kDeadlock: return "deadlock";
    case RunStatus::kNodeFailure: return "node-failure";
    case RunStatus::kMessageLoss: return "message-loss";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kCrashed: return "crashed";
  }
  return "?";
}

void MatrixResult::add(RunRecord record) {
  if (!record.failed())
    times.add(record.nodes, record.frequency_mhz, record.seconds);
  index_.emplace(grid_key(record.nodes, record.frequency_mhz),
                 records.size());
  records.push_back(std::move(record));
}

std::vector<const RunRecord*> MatrixResult::failed_points() const {
  std::vector<const RunRecord*> failed;
  for (const RunRecord& r : records) {
    if (r.failed()) failed.push_back(&r);
  }
  return failed;
}

const RunRecord& MatrixResult::at(int nodes, double frequency_mhz) const {
  if (index_.size() != records.size()) {
    // `records` was appended to directly; rebuild the index.
    index_.clear();
    for (std::size_t i = 0; i < records.size(); ++i)
      index_.emplace(grid_key(records[i].nodes, records[i].frequency_mhz), i);
  }
  const auto it = index_.find(grid_key(nodes, frequency_mhz));
  if (it == index_.end())
    throw std::out_of_range(pas::util::strf(
        "MatrixResult: no record at N=%d f=%.0f MHz", nodes, frequency_mhz));
  return records[it->second];
}

std::vector<power::ActivityProfile> activity_profiles(
    const mpi::RunResult& result) {
  std::vector<power::ActivityProfile> profiles;
  profiles.reserve(result.ranks.size());
  for (const mpi::RankReport& r : result.ranks) {
    power::ActivityProfile p;
    p.cpu_s = r.cpu_seconds;
    p.memory_s = r.memory_seconds;
    p.network_s = r.network_seconds;
    p.idle_s = r.idle_seconds;
    profiles.push_back(p);
  }
  return profiles;
}

RunMatrix::RunMatrix(sim::ClusterConfig cluster, power::PowerModel power)
    : cluster_(std::move(cluster)),
      meter_(std::move(power)),
      runtime_(cluster_) {}

RunRecord RunMatrix::run_one(const npb::Kernel& kernel, int nodes,
                             double frequency_mhz, double comm_dvfs_mhz,
                             int fault_attempt) {
  return run_segment(kernel, nodes, frequency_mhz, comm_dvfs_mhz,
                     fault_attempt, SegmentOptions{});
}

RunRecord RunMatrix::run_segment(const npb::Kernel& kernel, int nodes,
                                 double frequency_mhz, double comm_dvfs_mhz,
                                 int fault_attempt,
                                 const SegmentOptions& seg) {
  npb::KernelResult root_result;
  runtime_.set_fault_attempt(fault_attempt);

  npb::IterationCtl ctl;
  npb::CheckpointBlobs load_blobs;
  npb::CheckpointBlobs save_blobs;
  sim::SampleProbe probe;
  if (seg.resume != nullptr) {
    ctl.start_iter = seg.resume->boundary;
    load_blobs.reserve(seg.resume->ranks.size());
    for (const sim::RankCheckpoint& r : seg.resume->ranks)
      load_blobs.push_back(r.kernel_blob);
    ctl.load = &load_blobs;
  }
  if (seg.stop_at > 0) {
    ctl.stop_at = seg.stop_at;
    save_blobs.resize(static_cast<std::size_t>(nodes));
    ctl.save = &save_blobs;
  }
  if (seg.sample_period > 1) {
    ctl.sample_period = seg.sample_period;
    ctl.warmup_iters = seg.warmup_iters;
    probe.begin(nodes);
    ctl.probe = &probe;
  }

  const mpi::RunResult run = runtime_.run(
      nodes, frequency_mhz,
      [&](mpi::Comm& comm) {
        if (comm_dvfs_mhz != 0.0) comm.set_comm_dvfs_mhz(comm_dvfs_mhz);
        npb::KernelResult r =
            ctl.trivial() ? kernel.run(comm) : kernel.run_ctl(comm, ctl);
        if (comm.rank() == 0) root_result = std::move(r);
      },
      seg.resume, seg.capture);

  if (seg.capture != nullptr) {
    // The runtime captured the simulator state; the kernel blobs and
    // the boundary they belong to are ours to merge.
    seg.capture->boundary = seg.stop_at;
    for (std::size_t r = 0; r < save_blobs.size(); ++r)
      seg.capture->ranks[r].kernel_blob = std::move(save_blobs[r]);
  }

  RunRecord rec;
  rec.nodes = nodes;
  rec.frequency_mhz = frequency_mhz;
  rec.seconds = run.makespan;
  rec.verified = root_result.verified;
  const double n = static_cast<double>(nodes);
  rec.mean_overhead_s = run.mean_network_seconds();
  rec.mean_cpu_s = run.total_cpu_seconds() / n;
  rec.mean_memory_s = run.total_memory_seconds() / n;

  // Energy from per-operating-point slices (exact under per-phase
  // DVFS; equivalent to single-point metering without it).
  for (const mpi::RankReport& r : run.ranks) {
    std::vector<power::FrequencySlice> slices;
    slices.reserve(r.activity_by_fkey.size());
    for (const auto& [fkey, seconds] : r.activity_by_fkey) {
      power::FrequencySlice slice;
      slice.frequency_mhz = static_cast<double>(fkey) / 10.0;
      slice.activity.cpu_s =
          seconds[static_cast<std::size_t>(sim::Activity::kCpu)];
      slice.activity.memory_s =
          seconds[static_cast<std::size_t>(sim::Activity::kMemory)];
      slice.activity.network_s =
          seconds[static_cast<std::size_t>(sim::Activity::kNetwork)];
      slice.activity.idle_s =
          seconds[static_cast<std::size_t>(sim::Activity::kIdle)];
      slices.push_back(slice);
    }
    rec.energy += meter_.measure_node_slices(
        slices, cluster_.operating_points, run.makespan, frequency_mhz);
  }

  double messages = 0.0;
  double doubles = 0.0;
  for (const mpi::RankReport& r : run.ranks) {
    messages += static_cast<double>(r.comm.messages_sent);
    doubles += r.comm.avg_doubles_per_message();
    rec.send_retries += static_cast<double>(r.comm.sends_retried);
  }
  rec.messages_per_rank = messages / n;
  rec.doubles_per_message = doubles / n;

  for (const mpi::RankReport& r : run.ranks) rec.executed_per_rank += r.executed;
  rec.executed_per_rank = rec.executed_per_rank * (1.0 / n);

  if (seg.sample_period > 1) {
    // Extrapolate the sampled run to the full iteration count. The
    // extensive measurements (times, energy, messages, executed work)
    // scale by the estimated/measured makespan ratio — skipped
    // iterations would have repeated the detailed ones' behaviour,
    // which is exactly the sampling contract. Intensive ones
    // (doubles_per_message, verified) pass through.
    const SampledEstimate est = estimate_sampled_run(
        probe, kernel.iteration_count(nodes), ctl.start_iter,
        seg.warmup_iters, seg.sample_period, run.makespan);
    if (!est.valid)
      throw std::runtime_error(pas::util::strf(
          "sampled run of %s at N=%d collected no usable boundaries "
          "(period=%d, warmup=%d)",
          kernel.name().c_str(), nodes, seg.sample_period,
          seg.warmup_iters));
    const double ratio = rec.seconds > 0.0 ? est.seconds / rec.seconds : 1.0;
    rec.seconds = est.seconds;
    rec.mean_overhead_s *= ratio;
    rec.mean_cpu_s *= ratio;
    rec.mean_memory_s *= ratio;
    rec.energy.cpu_j *= ratio;
    rec.energy.memory_j *= ratio;
    rec.energy.network_j *= ratio;
    rec.energy.idle_j *= ratio;
    rec.messages_per_rank *= ratio;
    rec.executed_per_rank = rec.executed_per_rank * ratio;
    rec.sampled = true;
    rec.total_iters = est.total_iters;
    rec.sampled_iters = est.sampled_iters;
    rec.ci_seconds = est.ci_seconds;
    if (rec.seconds > 0.0)
      rec.ci_energy_j = rec.energy.total_j() * (est.ci_seconds / rec.seconds);
  }

  if (runtime_.tracer().enabled()) {
    // One program span per rank, under the detail events.
    for (std::size_t r = 0; r < run.ranks.size(); ++r)
      runtime_.tracer().record_span(
          static_cast<int>(r), 0.0, run.ranks[r].finish_time, "rank",
          pas::util::strf("rank %zu", r));
  }

  pas::util::log_info(pas::util::strf(
      "%s N=%d f=%.0fMHz: T=%.4fs, overhead=%.4fs, E=%.1fJ, verified=%d",
      kernel.name().c_str(), nodes, frequency_mhz, rec.seconds,
      rec.mean_overhead_s, rec.energy.total_j(), rec.verified ? 1 : 0));
  return rec;
}

MatrixResult RunMatrix::sweep(const npb::Kernel& kernel,
                              const std::vector<int>& node_counts,
                              const std::vector<double>& freqs_mhz,
                              double comm_dvfs_mhz) {
  MatrixResult result;
  for (int n : node_counts) {
    for (double f : freqs_mhz)
      result.add(run_one(kernel, n, f, comm_dvfs_mhz));
  }
  return result;
}

}  // namespace pas::analysis
