#include "pas/analysis/sweep_executor.hpp"

#include <cstdlib>
#include <future>
#include <stdexcept>
#include <utility>

#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {

SweepOptions SweepOptions::from_cli(const util::Cli& cli) {
  SweepOptions opts;
  const char* env_jobs = std::getenv("PASIM_JOBS");
  opts.jobs = static_cast<int>(
      cli.get_int("jobs", env_jobs != nullptr ? std::atol(env_jobs) : 0));
  if (cli.has("jobs") && opts.jobs < 1)
    throw std::invalid_argument(pas::util::strf(
        "--jobs must be >= 1 (got %ld)", cli.get_int("jobs", 0)));
  opts.run_retries = static_cast<int>(cli.get_int("retries", opts.run_retries));
  if (opts.run_retries < 0)
    throw std::invalid_argument(pas::util::strf(
        "--retries must be >= 0 (got %d)", opts.run_retries));
  if (cli.has("cache")) {
    opts.cache_dir = cli.get("cache", "");
    if (opts.cache_dir.empty()) opts.cache_dir = ".pasim_cache";
  } else if (const char* env_dir = std::getenv("PASIM_CACHE_DIR")) {
    opts.cache_dir = env_dir;
  }
  if (cli.get_bool("no-cache", false)) {
    opts.use_cache = false;
    opts.cache_dir.clear();
  }
  return opts;
}

/// RAII lease of a RunMatrix slot: taken from the free list, or created
/// when every existing instance is busy (bounded by the pool size, so
/// at most `jobs` instances ever exist).
class SweepExecutor::MatrixLease {
 public:
  explicit MatrixLease(SweepExecutor& exec) : exec_(exec) {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    if (!exec_.free_matrices_.empty()) {
      matrix_ = exec_.free_matrices_.back();
      exec_.free_matrices_.pop_back();
    } else {
      exec_.matrices_.push_back(
          std::make_unique<RunMatrix>(exec_.cluster_, exec_.power_));
      matrix_ = exec_.matrices_.back().get();
    }
  }
  ~MatrixLease() {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    exec_.free_matrices_.push_back(matrix_);
  }
  RunMatrix& operator*() { return *matrix_; }

 private:
  SweepExecutor& exec_;
  RunMatrix* matrix_ = nullptr;
};

SweepExecutor::SweepExecutor(sim::ClusterConfig cluster,
                             power::PowerModel power, SweepOptions options)
    : cluster_(std::move(cluster)),
      power_(std::move(power)),
      pool_(options.jobs > 0 ? options.jobs : util::ThreadPool::default_jobs()),
      cache_(options.cache_dir),
      use_cache_(options.use_cache),
      run_retries_(options.run_retries) {}

RunRecord SweepExecutor::simulate_failsoft(const npb::Kernel& kernel,
                                           const Point& p) {
  // Retries only make sense when fault injection is on: each attempt
  // replays a differently-salted (still deterministic) FaultPlan. A
  // deadlock in a fault-free run is a bug in the kernel body and would
  // reproduce identically, so it is recorded on the first attempt.
  const int max_attempts =
      1 + (cluster_.fault.enabled() ? std::max(0, run_retries_) : 0);
  for (int attempt = 0;; ++attempt) {
    RunStatus status;
    std::string error;
    try {
      MatrixLease lease(*this);
      RunRecord rec = (*lease).run_one(kernel, p.nodes, p.frequency_mhz,
                                       p.comm_dvfs_mhz, attempt);
      rec.attempts = attempt + 1;
      return rec;
    } catch (const fault::NodeFailedError& e) {
      status = RunStatus::kNodeFailure;
      error = e.what();
    } catch (const fault::MessageLossError& e) {
      status = RunStatus::kMessageLoss;
      error = e.what();
    } catch (const mpi::TimeoutError& e) {
      status = RunStatus::kTimeout;
      error = e.what();
    } catch (const mpi::DeadlockError& e) {
      status = RunStatus::kDeadlock;
      error = e.what();
    }
    // Fault-induced aborts are data, not bugs. Anything else (bad
    // operating point, rank-body exception, ...) propagates above.
    if (attempt + 1 < max_attempts) {
      util::log_info(util::strf(
          "%s N=%d f=%.0fMHz: %s (%s); retrying (attempt %d/%d)",
          kernel.name().c_str(), p.nodes, p.frequency_mhz,
          run_status_name(status), error.c_str(), attempt + 2, max_attempts));
      continue;
    }
    RunRecord rec;
    rec.nodes = p.nodes;
    rec.frequency_mhz = p.frequency_mhz;
    rec.status = status;
    rec.error = std::move(error);
    rec.attempts = attempt + 1;
    return rec;
  }
}

RunRecord SweepExecutor::run_point(const npb::Kernel& kernel, const Point& p) {
  if (!use_cache_) return simulate_failsoft(kernel, p);
  const std::string key = RunCache::key(kernel, cluster_, power_, p.nodes,
                                        p.frequency_mhz, p.comm_dvfs_mhz);
  if (std::optional<RunRecord> cached = cache_.lookup(key)) return *cached;
  RunRecord rec = simulate_failsoft(kernel, p);
  // Failed records are never cached: a later sweep with more retries
  // (or a fixed kernel) must get a fresh chance at the point.
  if (!rec.failed()) cache_.store(key, rec);
  return rec;
}

RunRecord SweepExecutor::run_one(const npb::Kernel& kernel, int nodes,
                                 double frequency_mhz, double comm_dvfs_mhz) {
  return run_point(kernel, Point{nodes, frequency_mhz, comm_dvfs_mhz});
}

std::vector<RunRecord> SweepExecutor::run_points(
    const npb::Kernel& kernel, const std::vector<Point>& points) {
  std::vector<RunRecord> records(points.size());
  if (points.size() <= 1 || pool_.max_threads() == 1) {
    for (std::size_t i = 0; i < points.size(); ++i)
      records[i] = run_point(kernel, points[i]);
    return records;
  }
  std::vector<std::future<void>> done;
  done.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    done.push_back(pool_.submit(
        [this, &kernel, &points, &records, i] {
          records[i] = run_point(kernel, points[i]);
        }));
  }
  // Drain every future before rethrowing so no task still references
  // the local vectors.
  std::exception_ptr first;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return records;
}

MatrixResult SweepExecutor::sweep(const npb::Kernel& kernel,
                                  const std::vector<int>& node_counts,
                                  const std::vector<double>& freqs_mhz,
                                  double comm_dvfs_mhz) {
  std::vector<Point> points;
  points.reserve(node_counts.size() * freqs_mhz.size());
  for (int n : node_counts) {
    for (double f : freqs_mhz) points.push_back(Point{n, f, comm_dvfs_mhz});
  }
  std::vector<RunRecord> records = run_points(kernel, points);
  MatrixResult result;
  for (RunRecord& rec : records) result.add(std::move(rec));
  if (const auto failed = result.failed_points(); !failed.empty()) {
    std::string detail;
    for (const RunRecord* r : failed)
      detail += util::strf(" [N=%d f=%.0f: %s]", r->nodes, r->frequency_mhz,
                           run_status_name(r->status));
    util::log_warn(util::strf(
        "%s: %zu/%zu sweep points failed under fault injection;%s excluded "
        "from the timing matrix",
        kernel.name().c_str(), failed.size(), result.records.size(),
        detail.c_str()));
  }
  return result;
}

}  // namespace pas::analysis
