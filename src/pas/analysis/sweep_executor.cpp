#include "pas/analysis/sweep_executor.hpp"

#include <csignal>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "pas/analysis/batch_repricer.hpp"
#include "pas/analysis/experiment.hpp"
#include "pas/analysis/repricer.hpp"
#include "pas/obs/metrics.hpp"
#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/log.hpp"
#include "pas/util/subprocess.hpp"

namespace pas::analysis {
namespace {

obs::ReportPoint make_report_point(const std::string& kernel,
                                   double comm_dvfs_mhz, const RunRecord& rec,
                                   bool from_cache) {
  obs::ReportPoint rp;
  rp.kernel = kernel;
  rp.nodes = rec.nodes;
  rp.frequency_mhz = rec.frequency_mhz;
  rp.comm_dvfs_mhz = comm_dvfs_mhz;
  rp.status = run_status_name(rec.status);
  rp.verified = rec.verified;
  rp.from_cache = from_cache;
  rp.attempts = rec.attempts;
  rp.seconds = rec.seconds;
  rp.mean_overhead_s = rec.mean_overhead_s;
  rp.mean_cpu_s = rec.mean_cpu_s;
  rp.mean_memory_s = rec.mean_memory_s;
  rp.send_retries = rec.send_retries;
  rp.sampled = rec.sampled;
  rp.total_iters = rec.total_iters;
  rp.sampled_iters = rec.sampled_iters;
  rp.ci_seconds = rec.ci_seconds;
  rp.ci_energy_j = rec.ci_energy_j;
  rp.energy_cpu_j = rec.energy.cpu_j;
  rp.energy_memory_j = rec.energy.memory_j;
  rp.energy_network_j = rec.energy.network_j;
  rp.energy_idle_j = rec.energy.idle_j;
  return rp;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// RAII lease of a RunMatrix slot: taken from the free list, or created
/// when every existing instance is busy (bounded by the pool size, so
/// at most `jobs` instances ever exist).
class SweepExecutor::MatrixLease {
 public:
  explicit MatrixLease(SweepExecutor& exec) : exec_(exec) {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    if (!exec_.free_matrices_.empty()) {
      matrix_ = exec_.free_matrices_.back();
      exec_.free_matrices_.pop_back();
    } else {
      exec_.matrices_.push_back(
          std::make_unique<RunMatrix>(exec_.cluster_, exec_.power_));
      matrix_ = exec_.matrices_.back().get();
    }
  }
  ~MatrixLease() {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    exec_.free_matrices_.push_back(matrix_);
  }
  RunMatrix& operator*() { return *matrix_; }

 private:
  SweepExecutor& exec_;
  RunMatrix* matrix_ = nullptr;
};

SweepExecutor::SweepExecutor(SweepSpec spec)
    : spec_(std::move(spec)),
      cluster_(spec_.cluster ? *spec_.cluster : spec_.resolved_cluster()),
      power_(spec_.power),
      pool_(spec_.options.jobs > 0 ? spec_.options.jobs
                                   : util::ThreadPool::default_jobs()),
      cache_(spec_.options.cache_dir, spec_.options.cache_cap_bytes),
      use_cache_(spec_.options.use_cache),
      run_retries_(spec_.options.run_retries),
      verify_replay_(spec_.options.verify_replay),
      sampling_(spec_.options.sampling),
      sample_period_(spec_.options.sample_period),
      warmup_iters_(spec_.options.warmup_iters),
      verify_sampling_(spec_.options.verify_sampling),
      checkpoints_(spec_.options.checkpoints),
      scalar_reprice_([] {
        const char* v = std::getenv("PASIM_SCALAR_REPRICE");
        return v != nullptr && *v != '\0' && std::string(v) != "0";
      }()),
      isolate_(spec_.options.isolate),
      isolate_timeout_s_(spec_.options.isolate_timeout_s),
      isolate_retries_(spec_.options.isolate_retries),
      observer_(spec_.observer) {
  if (spec_.fault) cluster_.fault = *spec_.fault;
  if (observer_) observer_->set_power_model(power_);
  if (isolate_ && observer_ && observer_->tracing())
    throw std::invalid_argument(
        "--isolate cannot collect traces: isolated workers report results "
        "through the journal, which carries records, not trace events; "
        "drop --trace or --isolate");
  if (!spec_.options.journal_path.empty())
    journal_ = std::make_unique<SweepJournal>(spec_.options.journal_path,
                                              spec_.options.resume);
  if (isolate_ && !journal_)
    throw std::invalid_argument(
        "SweepOptions.isolate requires journal_path: the journal is how "
        "isolated workers hand results back to the supervisor");
  // SweepOptions::from_cli/from_json enforce these too, but a spec
  // assembled in code can reach the ctor directly.
  if (sampling_ && verify_replay_)
    throw std::invalid_argument(
        "SweepOptions.sampling is incompatible with verify_replay: a "
        "sampled record is an estimate, never byte-identical to a full "
        "simulation; use verify_sampling instead");
  if (verify_sampling_ > 0.0 && !sampling_)
    throw std::invalid_argument(
        "SweepOptions.verify_sampling requires sampling: there are no "
        "sampled estimates to verify otherwise");
  if (checkpoints_ && !use_cache_)
    throw std::invalid_argument(
        "SweepOptions.checkpoints requires use_cache: checkpoints live in "
        "the run cache");
  if (sampling_ && sample_period_ < 2)
    throw std::invalid_argument(
        "SweepOptions.sample_period must be >= 2: period 1 is exact "
        "simulation");
  if (sampling_ && warmup_iters_ < 0)
    throw std::invalid_argument("SweepOptions.warmup_iters must be >= 0");
}

RunRecord SweepExecutor::simulate_failsoft(const npb::Kernel& kernel,
                                           const Point& p, const ObsCtx* ctx,
                                           sim::WorkLedger* ledger_out,
                                           const SegmentOptions* seg) {
  if (ledger_out != nullptr && seg != nullptr)
    throw std::logic_error(
        "simulate_failsoft: a segment run cannot record a charged-work "
        "ledger (partial or sampled work is not replayable)");
  // Retries only make sense when fault injection is on: each attempt
  // replays a differently-salted (still deterministic) FaultPlan. A
  // deadlock in a fault-free run is a bug in the kernel body and would
  // reproduce identically, so it is recorded on the first attempt.
  const int max_attempts =
      1 + (cluster_.fault.enabled() ? std::max(0, run_retries_) : 0);
  const bool tracing = observer_ && observer_->tracing() && ctx != nullptr;
  for (int attempt = 0;; ++attempt) {
    RunStatus status;
    std::string error;
    try {
      MatrixLease lease(*this);
      // Leased matrices are shared across points, so the tracer must
      // come back disabled and empty whatever happens; an aborted
      // attempt's partial events are wall-clock-dependent and are
      // never harvested (DESIGN.md §8).
      struct TraceGuard {
        sim::Tracer* t;
        ~TraceGuard() {
          if (t == nullptr) return;
          t->disable();
          t->clear();
        }
      } guard{tracing ? &(*lease).tracer() : nullptr};
      if (tracing) {
        (*lease).tracer().clear();
        (*lease).tracer().enable();
      }
      // Charged-work recording, same lifecycle discipline as tracing:
      // armed per attempt, harvested only from a successful run — an
      // aborted attempt's partial ledger is never replayed.
      struct RecorderGuard {
        sim::WorkLedgerRecorder* rec;
        ~RecorderGuard() {
          if (rec != nullptr) rec->abort();
        }
      } recorder{nullptr};
      if (ledger_out != nullptr) {
        (*lease).ledger_recorder().begin(p.nodes, p.comm_dvfs_mhz);
        recorder.rec = &(*lease).ledger_recorder();
      }
      RunRecord rec =
          seg != nullptr
              ? (*lease).run_segment(kernel, p.nodes, p.frequency_mhz,
                                     p.comm_dvfs_mhz, attempt, *seg)
              : (*lease).run_one(kernel, p.nodes, p.frequency_mhz,
                                 p.comm_dvfs_mhz, attempt);
      rec.attempts = attempt + 1;
      if (recorder.rec != nullptr) {
        *ledger_out = recorder.rec->take();
        recorder.rec = nullptr;
        // The verification verdict is frequency-invariant (same
        // arithmetic, same results); replayed records reuse it.
        ledger_out->verified = rec.verified;
      }
      if (tracing) {
        obs::RunTrace trace;
        trace.nranks = p.nodes;
        trace.frequency_mhz = p.frequency_mhz;
        trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
        trace.makespan_s = rec.seconds;
        trace.events = (*lease).tracer().events();
        trace.wall_s = observer_->wall_now_s();
        observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
      }
      return rec;
    } catch (const fault::NodeFailedError& e) {
      status = RunStatus::kNodeFailure;
      error = e.what();
    } catch (const fault::MessageLossError& e) {
      status = RunStatus::kMessageLoss;
      error = e.what();
    } catch (const mpi::TimeoutError& e) {
      status = RunStatus::kTimeout;
      error = e.what();
    } catch (const mpi::DeadlockError& e) {
      status = RunStatus::kDeadlock;
      error = e.what();
    }
    // Fault-induced aborts are data, not bugs. Anything else (bad
    // operating point, rank-body exception, ...) propagates above.
    if (attempt + 1 < max_attempts) {
      util::log_info(util::strf(
          "%s N=%d f=%.0fMHz: %s (%s); retrying (attempt %d/%d)",
          kernel.name().c_str(), p.nodes, p.frequency_mhz,
          run_status_name(status), error.c_str(), attempt + 2, max_attempts));
      continue;
    }
    RunRecord rec;
    rec.nodes = p.nodes;
    rec.frequency_mhz = p.frequency_mhz;
    rec.status = status;
    rec.error = std::move(error);
    rec.attempts = attempt + 1;
    return rec;
  }
}

bool SweepExecutor::fast_path_eligible(const npb::Kernel& kernel) const {
  // The exactness gate (DESIGN.md §10): the kernel must declare that
  // its control flow never depends on virtual time, and fault
  // injection perturbs every run per-frequency (jitter draws, drops,
  // straggler scaling), so armed faults always simulate in full.
  // Sampled runs never record ledgers (a subset of the work is not
  // replayable) and checkpointed runs split into segments the recorder
  // cannot observe whole, so both features route every point through
  // simulate_point instead.
  return kernel.frequency_invariant_control_flow() &&
         !cluster_.fault.enabled() && !sampling_ && !checkpoints_;
}

std::string SweepExecutor::point_key(const npb::Kernel& kernel,
                                     const Point& p) const {
  std::string key = RunCache::key(kernel, cluster_, power_, p.nodes,
                                  p.frequency_mhz, p.comm_dvfs_mhz);
  if (sampling_)
    key += RunCache::sampled_key_suffix(sample_period_, warmup_iters_);
  return key;
}

RunRecord SweepExecutor::simulate_point(const npb::Kernel& kernel,
                                        const Point& p, const ObsCtx* ctx,
                                        const std::string& key) {
  if (!sampling_ && !checkpoints_) return simulate_failsoft(kernel, p, ctx);
  const int total = kernel.iteration_count(p.nodes);
  const bool tracing_point =
      observer_ && observer_->tracing() && ctx != nullptr;
  // Checkpoints require the full prefix contract: an iteration-hooked
  // kernel with a prefix identity, no fault injection (fault plans are
  // whole-run constructs — truncating and resuming would splice two
  // different plans), and no tracing (a resumed segment cannot re-emit
  // its prefix's trace events). Ineligible points fall back to cold
  // exact runs.
  const bool can_ckpt = checkpoints_ && !cluster_.fault.enabled() &&
                        total > 0 && !kernel.prefix_signature().empty() &&
                        !tracing_point;
  std::string ckpt_key;
  std::shared_ptr<const sim::Checkpoint> warm;
  if (can_ckpt) {
    ckpt_key = RunCache::checkpoint_key(kernel, cluster_, p.nodes,
                                        p.frequency_mhz, p.comm_dvfs_mhz);
    warm = cache_.lookup_checkpoint(ckpt_key, total);
  }
  if (warm) {
    // Which points warm-start is a pure function of the grid and prior
    // cache contents — grid points never share a prefix within one
    // sweep (the key carries N and both DVFS points), so scheduling
    // cannot race a hit into existence. Stable at any --jobs.
    static obs::Counter& warmstarted = obs::registry().counter(
        "sweep.points_warmstarted", obs::Stability::kStable);
    warmstarted.add();
    util::log_info(util::strf(
        "%s N=%d f=%.0fMHz: warm-starting from checkpoint at iteration "
        "%d/%d",
        kernel.name().c_str(), p.nodes, p.frequency_mhz, warm->boundary,
        total));
  }

  if (sampling_) {
    if (total <= 0)
      throw std::invalid_argument(util::strf(
          "--sampling: kernel %s has no iteration hooks to sample",
          kernel.name().c_str()));
    SegmentOptions seg;
    seg.resume = warm.get();
    seg.sample_period = sample_period_;
    seg.warmup_iters = warmup_iters_;
    RunRecord rec = simulate_failsoft(kernel, p, ctx, nullptr, &seg);
    if (!rec.failed()) maybe_verify_sampling(kernel, p, key, rec);
    return rec;
  }

  if (!can_ckpt) return simulate_failsoft(kernel, p, ctx);

  // Exact checkpointed flow: make sure a checkpoint exists at this
  // point's full depth — running the prefix (warm-started when a
  // shallower checkpoint exists) and capturing at `total` — then resume
  // from it through the epilogue. The resumed record is bit-identical
  // to a cold run (sim::Checkpoint contract, checkpoint round-trip
  // tests), and the stored checkpoint warm-starts any deeper run that
  // shares the prefix.
  std::shared_ptr<const sim::Checkpoint> at_total =
      (warm && warm->boundary >= total) ? warm : nullptr;
  if (!at_total) {
    sim::Checkpoint cap;
    SegmentOptions seg1;
    seg1.resume = warm.get();
    seg1.stop_at = total;
    seg1.capture = &cap;
    RunRecord part = simulate_failsoft(kernel, p, ctx, nullptr, &seg1);
    if (part.failed()) return part;
    at_total = cache_.store_checkpoint(ckpt_key, std::move(cap));
  }
  SegmentOptions seg2;
  seg2.resume = at_total.get();
  return simulate_failsoft(kernel, p, ctx, nullptr, &seg2);
}

void SweepExecutor::maybe_verify_sampling(const npb::Kernel& kernel,
                                          const Point& p,
                                          const std::string& key,
                                          const RunRecord& rec) {
  if (verify_sampling_ <= 0.0 || !rec.sampled) return;
  const std::string k = key.empty() ? point_key(kernel, p) : key;
  // Deterministic subset: the key hash is a pure function of the point
  // identity, so the same points verify at any --jobs and across
  // resumes.
  const auto mod =
      static_cast<std::uint64_t>(std::llround(1.0 / verify_sampling_));
  if (mod > 1 && util::fnv1a(k) % mod != 0) return;
  const RunRecord exact = simulate_failsoft(kernel, p, nullptr);
  if (exact.failed()) {
    util::log_warn(util::strf(
        "--verify-sampling: exact re-run of %s N=%d f=%.0fMHz failed (%s); "
        "skipping the interval check for this point",
        kernel.name().c_str(), p.nodes, p.frequency_mhz,
        run_status_name(exact.status)));
    return;
  }
  // The epsilon absorbs float accumulation-order noise when the CI is
  // legitimately zero (steady-state kernels sample identical deltas).
  const double tol = rec.ci_seconds + 1e-9 * exact.seconds;
  if (std::fabs(exact.seconds - rec.seconds) > tol)
    throw std::runtime_error(util::strf(
        "--verify-sampling: exact makespan %.17g s falls outside the "
        "sampled estimate %.17g s +/- %.17g s at %s N=%d f=%.0fMHz "
        "(sampled %d/%d iterations)",
        exact.seconds, rec.seconds, rec.ci_seconds, kernel.name().c_str(),
        p.nodes, p.frequency_mhz, rec.sampled_iters, rec.total_iters));
  static obs::Counter& verified = obs::registry().counter(
      "sampling.points_verified", obs::Stability::kStable);
  verified.add();
  util::log_info(util::strf(
      "%s N=%d f=%.0fMHz: sampled estimate %.4fs +/- %.4fs covers the "
      "exact makespan %.4fs (verified)",
      kernel.name().c_str(), p.nodes, p.frequency_mhz, rec.seconds,
      rec.ci_seconds, exact.seconds));
}

RunRecord SweepExecutor::reprice_point(const npb::Kernel& kernel,
                                       const Point& p,
                                       const sim::WorkLedger& ledger,
                                       const ObsCtx* ctx) {
  const bool tracing = observer_ && observer_->tracing() && ctx != nullptr;
  const Repricer repricer(cluster_, power_);
  RunRecord rec;
  if (tracing) {
    // Replay emits the same event set a traced full run records; the
    // obs layer's canonical sort makes the export byte-identical.
    sim::Tracer tracer;
    tracer.enable();
    rec = repricer.reprice(ledger, p.frequency_mhz, &tracer);
    obs::RunTrace trace;
    trace.nranks = p.nodes;
    trace.frequency_mhz = p.frequency_mhz;
    trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
    trace.makespan_s = rec.seconds;
    trace.events = tracer.events();
    trace.wall_s = observer_->wall_now_s();
    observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
  } else {
    rec = repricer.reprice(ledger, p.frequency_mhz);
  }
  if (verify_replay_) {
    const RunRecord fresh = simulate_failsoft(kernel, p, nullptr);
    const std::string repriced_bytes = RunCache::encode_record(rec);
    const std::string simulated_bytes = RunCache::encode_record(fresh);
    if (repriced_bytes != simulated_bytes)
      throw std::runtime_error(util::strf(
          "--verify-replay: repriced record differs from full simulation "
          "at %s N=%d f=%.0fMHz\n--- repriced ---\n%s--- simulated ---\n%s",
          kernel.name().c_str(), p.nodes, p.frequency_mhz,
          repriced_bytes.c_str(), simulated_bytes.c_str()));
    static obs::Counter& verified_points =
        obs::registry().counter("sweep.points_verified");
    verified_points.add();
  }
  util::log_info(util::strf(
      "%s N=%d f=%.0fMHz: T=%.4fs, overhead=%.4fs, E=%.1fJ, verified=%d "
      "(repriced)",
      kernel.name().c_str(), p.nodes, p.frequency_mhz, rec.seconds,
      rec.mean_overhead_s, rec.energy.total_j(), rec.verified ? 1 : 0));
  note_repriced_lanes(ctx, 1, ledger.total_ops());
  return rec;
}

void SweepExecutor::note_repriced_lanes(const ObsCtx* ctx, std::size_t lanes,
                                        std::size_t ops) {
  (void)ctx;
  namespace o = pas::obs;
  // Lane totals are a function of the grid and cache contents alone —
  // the batched engine prices a column's lanes in one call, the scalar
  // engine one per point, and both sum to the same values at any
  // --jobs, so the rows are stable. Ticked with or without an observer
  // (counters are process-global and cost one relaxed add): the
  // full_report summary derives lanes-per-column from them even when
  // nothing is exported.
  static o::Counter& batch_lanes =
      o::registry().counter("repricer.batch_lanes", o::Stability::kStable);
  static o::Counter& ops_replayed =
      o::registry().counter("repricer.ops_replayed", o::Stability::kStable);
  batch_lanes.add(static_cast<std::uint64_t>(lanes));
  ops_replayed.add(static_cast<std::uint64_t>(ops));
}

void SweepExecutor::note_ledger_resolved(const ObsCtx* ctx,
                                         const sim::WorkLedger& ledger) {
  (void)ctx;
  namespace o = pas::obs;
  static o::Counter& ledger_bytes =
      o::registry().counter("repricer.ledger_bytes", o::Stability::kStable);
  static o::Counter& columns =
      o::registry().counter("repricer.columns", o::Stability::kStable);
  ledger_bytes.add(static_cast<std::uint64_t>(ledger.arena_bytes()));
  columns.add();
}

RunRecord SweepExecutor::run_point(const npb::Kernel& kernel, const Point& p,
                                   const ObsCtx* ctx, ColumnState* col) {
  const double wall_t0 = wall_seconds();
  bool from_cache = false;
  bool repriced = false;
  RunRecord rec;
  std::string key;
  if (use_cache_ || journal_ != nullptr) key = point_key(kernel, p);
  // Journaled resume: an already-completed point (successful or
  // fail-soft) is served from the journal — unless this point is being
  // traced, in which case it re-simulates (deterministically, so every
  // artifact stays byte-identical) to regenerate its trace events.
  const bool tracing_point =
      observer_ && observer_->tracing() && ctx != nullptr;
  if (journal_ && !tracing_point) {
    if (std::optional<RunRecord> done = journal_->find(key)) {
      note_point(kernel, p, ctx, *done, false, false, true,
                 wall_seconds() - wall_t0);
      return *done;
    }
  }
  if (std::optional<RunRecord> cached =
          use_cache_ ? cache_.lookup(key) : std::nullopt) {
    rec = *cached;
    from_cache = true;
  } else {
    // Fast path: re-price from the column's ledger when one exists
    // (recorded earlier in this column, or persisted by a previous
    // process).
    const sim::WorkLedger* ledger = nullptr;
    if (col != nullptr && !col->recording_declined) {
      if (!col->ledger && use_cache_ && !col->cache_checked) {
        col->cache_checked = true;
        col->ledger = cache_.lookup_ledger(RunCache::ledger_key(
            kernel, cluster_, p.nodes, p.comm_dvfs_mhz));
        if (col->ledger) note_ledger_resolved(ctx, *col->ledger);
      }
      ledger = col->ledger.get();
    }
    if (ledger != nullptr) {
      rec = reprice_point(kernel, p, *ledger, ctx);
      repriced = true;
    } else if (col != nullptr && !col->recording_declined) {
      sim::WorkLedger fresh;
      rec = simulate_failsoft(kernel, p, ctx, &fresh);
      if (rec.failed() || !fresh.replayable) {
        col->recording_declined = true;
        if (!rec.failed() && !fresh.decline_reason.empty())
          util::log_info(util::strf(
              "%s N=%d: charged-work recording declined (%s); the column "
              "simulates in full",
              kernel.name().c_str(), p.nodes, fresh.decline_reason.c_str()));
      } else if (use_cache_) {
        col->ledger = cache_.store_ledger(
            RunCache::ledger_key(kernel, cluster_, p.nodes, p.comm_dvfs_mhz),
            std::move(fresh));
        if (col->ledger) note_ledger_resolved(ctx, *col->ledger);
      } else {
        col->ledger =
            std::make_shared<const sim::WorkLedger>(std::move(fresh));
        note_ledger_resolved(ctx, *col->ledger);
      }
    } else {
      rec = simulate_point(kernel, p, ctx, key);
    }
    // Failed records are never cached: a later sweep with more retries
    // (or a fixed kernel) must get a fresh chance at the point.
    if (use_cache_ && !rec.failed()) cache_.store(key, rec);
  }
  // Journal every resolution — cache hits included, so resume works
  // with or without a cache, and failures included, because a fault
  // abort is a deterministic outcome a resume must not re-roll.
  if (journal_) journal_->append(key, rec);

  note_point(kernel, p, ctx, rec, from_cache, repriced, false,
             wall_seconds() - wall_t0);
  return rec;
}

void SweepExecutor::note_point(const npb::Kernel& kernel, const Point& p,
                               const ObsCtx* ctx, const RunRecord& rec,
                               bool from_cache, bool repriced, bool resumed,
                               double elapsed_s) {
  static obs::Histogram& point_wall =
      obs::registry().histogram("sweep.point_wall_seconds");
  point_wall.observe(elapsed_s);

  // Which points resume is fixed by the journal's contents at launch —
  // a pure function of the inputs, like the cache counters — so this is
  // stable at any --jobs. It ticks even in observer-less runs: resume
  // behaviour must stay visible to library embedders and tests.
  static obs::Counter& resumed_points = obs::registry().counter(
      "sweep.points_resumed", obs::Stability::kStable);
  if (resumed) resumed_points.add();

  if (ctx != nullptr && observer_) {
    // Stable counters derive from the canonical records only: integer
    // sums are order-independent, so these are identical at any --jobs.
    namespace o = pas::obs;
    static o::Counter& points =
        o::registry().counter("sweep.points", o::Stability::kStable);
    static o::Counter& cached_points =
        o::registry().counter("sweep.points_cached", o::Stability::kStable);
    static o::Counter& failed_points =
        o::registry().counter("sweep.points_failed", o::Stability::kStable);
    static o::Counter& run_retries =
        o::registry().counter("sweep.run_retries", o::Stability::kStable);
    static o::Counter& send_retries =
        o::registry().counter("sweep.send_retries", o::Stability::kStable);
    // Which points re-price (first-in-column simulates, the rest
    // replay) is a function of the grid and the cache contents alone,
    // never of scheduling — so the counter is stable at any --jobs.
    static o::Counter& repriced_points =
        o::registry().counter("sweep.points_repriced", o::Stability::kStable);
    points.add();
    if (from_cache) cached_points.add();
    if (repriced) repriced_points.add();
    if (rec.failed()) failed_points.add();
    if (rec.sampled) {
      // Registered lazily — the rows only exist once a sampled record
      // flows, so exact sweeps' metrics.csv is byte-identical to
      // pre-sampling builds. The CI gauge is an order-independent max,
      // stable at any --jobs like the counters.
      static o::Counter& sampled_points = o::registry().counter(
          "sweep.points_sampled", o::Stability::kStable);
      sampled_points.add();
      static o::Gauge& ci_max = o::registry().gauge(
          "sampling.ci_halfwidth_max", o::Stability::kStable);
      static std::mutex ci_mutex;
      const std::lock_guard<std::mutex> ci_lock(ci_mutex);
      if (rec.ci_seconds > ci_max.value()) ci_max.set(rec.ci_seconds);
    }
    run_retries.add(static_cast<std::uint64_t>(rec.attempts - 1));
    send_retries.add(static_cast<std::uint64_t>(rec.send_retries));
    observer_->record_point(
        ctx->sweep, ctx->index,
        make_report_point(kernel.name(), p.comm_dvfs_mhz, rec, from_cache));
  }
}

void SweepExecutor::run_column(const npb::Kernel& kernel,
                               const std::vector<Point>& points,
                               const std::vector<std::size_t>& members,
                               const ObsCtx* ctx_of, ColumnState& col,
                               std::vector<RunRecord>& records) {
  if (scalar_reprice_) {
    // Reference path: every point prices through the scalar Repricer.
    for (const std::size_t i : members)
      records[i] = run_point(kernel, points[i],
                             ctx_of ? &ctx_of[i] : nullptr, &col);
    return;
  }

  // Pass 1, in grid order: cached points resolve immediately; the
  // column's ledger is resolved (loaded, or recorded by simulating the
  // first miss in full); every remaining frequency is deferred into one
  // batched replay. The per-point outcomes — which point simulates,
  // which reprices, which hits the record cache — are identical to the
  // scalar path's by construction.
  struct Pending {
    std::size_t index;
    std::string key;
  };
  std::vector<Pending> todo;
  for (const std::size_t i : members) {
    const Point& p = points[i];
    const ObsCtx* ctx = ctx_of ? &ctx_of[i] : nullptr;
    const double wall_t0 = wall_seconds();
    std::string key;
    if (use_cache_ || journal_ != nullptr) key = point_key(kernel, p);
    // Journaled resume, same contract as run_point: traced points
    // re-simulate instead of skipping.
    const bool tracing_point =
        observer_ && observer_->tracing() && ctx != nullptr;
    if (journal_ && !tracing_point) {
      if (std::optional<RunRecord> done = journal_->find(key)) {
        records[i] = std::move(*done);
        note_point(kernel, p, ctx, records[i], false, false, true,
                   wall_seconds() - wall_t0);
        continue;
      }
    }
    if (std::optional<RunRecord> cached =
            use_cache_ ? cache_.lookup(key) : std::nullopt) {
      records[i] = std::move(*cached);
      if (journal_) journal_->append(key, records[i]);
      note_point(kernel, p, ctx, records[i], true, false, false,
                 wall_seconds() - wall_t0);
      continue;
    }
    if (!col.recording_declined) {
      if (!col.ledger && use_cache_ && !col.cache_checked) {
        col.cache_checked = true;
        col.ledger = cache_.lookup_ledger(RunCache::ledger_key(
            kernel, cluster_, p.nodes, p.comm_dvfs_mhz));
        if (col.ledger) note_ledger_resolved(ctx, *col.ledger);
      }
      if (col.ledger) {
        todo.push_back(Pending{i, std::move(key)});
        continue;
      }
      sim::WorkLedger fresh;
      RunRecord rec = simulate_failsoft(kernel, p, ctx, &fresh);
      if (rec.failed() || !fresh.replayable) {
        col.recording_declined = true;
        if (!rec.failed() && !fresh.decline_reason.empty())
          util::log_info(util::strf(
              "%s N=%d: charged-work recording declined (%s); the column "
              "simulates in full",
              kernel.name().c_str(), p.nodes, fresh.decline_reason.c_str()));
      } else if (use_cache_) {
        col.ledger = cache_.store_ledger(
            RunCache::ledger_key(kernel, cluster_, p.nodes, p.comm_dvfs_mhz),
            std::move(fresh));
        if (col.ledger) note_ledger_resolved(ctx, *col.ledger);
      } else {
        col.ledger = std::make_shared<const sim::WorkLedger>(std::move(fresh));
        note_ledger_resolved(ctx, *col.ledger);
      }
      if (use_cache_ && !rec.failed()) cache_.store(key, rec);
      records[i] = std::move(rec);
      if (journal_) journal_->append(key, records[i]);
      note_point(kernel, p, ctx, records[i], false, false, false,
                 wall_seconds() - wall_t0);
      continue;
    }
    RunRecord rec = simulate_failsoft(kernel, p, ctx);
    if (use_cache_ && !rec.failed()) cache_.store(key, rec);
    records[i] = std::move(rec);
    if (journal_) journal_->append(key, records[i]);
    note_point(kernel, p, ctx, records[i], false, false, false,
               wall_seconds() - wall_t0);
  }
  if (todo.empty()) return;

  // Pass 2: one BatchRepricer call prices every deferred frequency
  // simultaneously (DESIGN.md §11) — records and trace events are
  // bit-identical to the scalar engine's, lane by lane.
  const double batch_t0 = wall_seconds();
  const bool tracing = observer_ && observer_->tracing() && ctx_of != nullptr;
  std::vector<double> freqs;
  freqs.reserve(todo.size());
  for (const Pending& t : todo)
    freqs.push_back(points[t.index].frequency_mhz);
  std::vector<std::unique_ptr<sim::Tracer>> sinks;
  std::vector<sim::Tracer*> tracer_ptrs;
  if (tracing) {
    sinks.reserve(todo.size());
    for (std::size_t j = 0; j < todo.size(); ++j) {
      sinks.push_back(std::make_unique<sim::Tracer>());
      sinks.back()->enable();
      tracer_ptrs.push_back(sinks.back().get());
    }
  }
  const BatchRepricer repricer(cluster_, power_);
  std::vector<RunRecord> repriced =
      repricer.reprice(*col.ledger, freqs, tracer_ptrs);
  note_repriced_lanes(ctx_of ? &ctx_of[todo.front().index] : nullptr,
                      todo.size(), col.ledger->total_ops() * todo.size());
  // The batch call's wall cost is shared; attribute an equal share to
  // each lane's histogram sample.
  const double batch_share =
      (wall_seconds() - batch_t0) / static_cast<double>(todo.size());

  // Pass 3, in grid order: per-point trace harvest, verification, log
  // line, record-cache store and observer notification — the same
  // per-point epilogue reprice_point runs on the scalar path.
  for (std::size_t j = 0; j < todo.size(); ++j) {
    const std::size_t i = todo[j].index;
    const Point& p = points[i];
    const ObsCtx* ctx = ctx_of ? &ctx_of[i] : nullptr;
    const double point_t0 = wall_seconds();
    RunRecord& rec = repriced[j];
    if (tracing && ctx != nullptr) {
      obs::RunTrace trace;
      trace.nranks = p.nodes;
      trace.frequency_mhz = p.frequency_mhz;
      trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
      trace.makespan_s = rec.seconds;
      trace.events = sinks[j]->events();
      trace.wall_s = observer_->wall_now_s();
      observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
    }
    if (verify_replay_) {
      const RunRecord fresh = simulate_failsoft(kernel, p, nullptr);
      const std::string repriced_bytes = RunCache::encode_record(rec);
      const std::string simulated_bytes = RunCache::encode_record(fresh);
      if (repriced_bytes != simulated_bytes)
        throw std::runtime_error(util::strf(
            "--verify-replay: repriced record differs from full simulation "
            "at %s N=%d f=%.0fMHz\n--- repriced ---\n%s--- simulated ---\n%s",
            kernel.name().c_str(), p.nodes, p.frequency_mhz,
            repriced_bytes.c_str(), simulated_bytes.c_str()));
      static obs::Counter& verified_points =
          obs::registry().counter("sweep.points_verified");
      verified_points.add();
    }
    util::log_info(util::strf(
        "%s N=%d f=%.0fMHz: T=%.4fs, overhead=%.4fs, E=%.1fJ, verified=%d "
        "(repriced)",
        kernel.name().c_str(), p.nodes, p.frequency_mhz, rec.seconds,
        rec.mean_overhead_s, rec.energy.total_j(), rec.verified ? 1 : 0));
    if (use_cache_ && !rec.failed()) cache_.store(todo[j].key, rec);
    records[i] = std::move(rec);
    if (journal_) journal_->append(todo[j].key, records[i]);
    note_point(kernel, p, ctx, records[i], false, true, false,
               batch_share + (wall_seconds() - point_t0));
  }
}

RunRecord SweepExecutor::run_one(const npb::Kernel& kernel, int nodes,
                                 double frequency_mhz, double comm_dvfs_mhz) {
  return run_point(kernel, Point{nodes, frequency_mhz, comm_dvfs_mhz},
                   nullptr);
}

void SweepExecutor::run_points_isolated(const npb::Kernel& kernel,
                                        const std::vector<Point>& points,
                                        const ObsCtx* ctx_of,
                                        std::vector<RunRecord>& records) {
  namespace o = pas::obs;
  // Supervisor traffic is wall-clock-dependent (which worker dies,
  // which retry lands) — volatile diagnostics only.
  static o::Counter& isolated_columns =
      o::registry().counter("sweep.isolated_columns");
  static o::Counter& worker_crashes =
      o::registry().counter("sweep.worker_crashes");
  static o::Counter& worker_timeouts =
      o::registry().counter("sweep.worker_timeouts");
  static o::Counter& worker_retries =
      o::registry().counter("sweep.worker_retries");

  // Pre-pass: points the journal already holds (a --resume of a killed
  // isolated sweep) never reach a worker. Tracing is off by contract
  // (the ctor rejects --isolate + tracing), so the skip is safe.
  std::vector<std::string> keys(points.size());
  std::vector<char> resolved(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    keys[i] = point_key(kernel, p);
    if (std::optional<RunRecord> done = journal_->find(keys[i])) {
      records[i] = std::move(*done);
      resolved[i] = 1;
      note_point(kernel, p, ctx_of ? &ctx_of[i] : nullptr, records[i], false,
                 false, true, 0.0);
    }
  }

  // Group the unresolved remainder into (N, comm-DVFS) columns — the
  // same unit the fast path uses, so a worker child prices its column
  // with one ledger however many frequencies it carries.
  struct Job {
    std::vector<std::size_t> members;
    int attempts = 0;
    double not_before = 0.0;
  };
  std::vector<Job> jobs;
  {
    std::unordered_map<long long, std::size_t> job_of;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (resolved[i]) continue;
      const long long column_key =
          (static_cast<long long>(points[i].nodes) << 32) |
          static_cast<long long>(sim::NodeState::fkey(points[i].comm_dvfs_mhz));
      const auto [it, inserted] = job_of.emplace(column_key, jobs.size());
      if (inserted) jobs.emplace_back();
      jobs[it->second].members.push_back(i);
    }
  }

  struct Live {
    util::Subprocess::Handle handle;
    std::size_t job = 0;
    double t0 = 0.0;
    double deadline = 0.0;
    bool timed_out = false;
  };
  std::vector<Live> live;
  std::vector<std::size_t> queue;
  queue.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) queue.push_back(j);
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, pool_.max_threads()));
  const std::string journal_path = journal_->path();

  const auto launch = [&](std::size_t ji) {
    Job& job = jobs[ji];
    ++job.attempts;
    isolated_columns.add();
    std::vector<Point> member_points;
    member_points.reserve(job.members.size());
    for (const std::size_t i : job.members) member_points.push_back(points[i]);
    Live l;
    // fork without exec: the child builds a FRESH executor (fresh rank
    // pool, fresh RunMatrix — the parent's pool threads do not survive
    // the fork) and reports through the shared journal. resume=true
    // makes a re-forked child skip whatever its predecessor finished.
    l.handle = util::Subprocess::spawn(
        [this, &kernel, member_points, &journal_path]() -> int {
          SweepSpec spec;
          spec.cluster = cluster_;
          spec.power = power_;
          spec.options.jobs = 1;
          spec.options.cache_dir = cache_.dir();
          spec.options.cache_cap_bytes = cache_.cap_bytes();
          spec.options.use_cache = use_cache_;
          spec.options.run_retries = run_retries_;
          spec.options.verify_replay = verify_replay_;
          spec.options.sampling = sampling_;
          spec.options.sample_period = sample_period_;
          spec.options.warmup_iters = warmup_iters_;
          spec.options.verify_sampling = verify_sampling_;
          spec.options.checkpoints = checkpoints_;
          spec.options.journal_path = journal_path;
          spec.options.resume = true;
          SweepExecutor child(std::move(spec));
          child.run_points(kernel, member_points);
          return 0;
        });
    l.job = ji;
    l.t0 = wall_seconds();
    l.deadline = l.t0 + isolate_timeout_s_;
    live.push_back(std::move(l));
  };

  while (!queue.empty() || !live.empty()) {
    const double now = wall_seconds();
    for (auto it = queue.begin(); it != queue.end() && live.size() < window;) {
      if (jobs[*it].not_before <= now) {
        launch(*it);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
    bool reaped_any = false;
    for (std::size_t k = 0; k < live.size();) {
      Live& l = live[k];
      if (!l.handle.poll()) {
        if (!l.timed_out && wall_seconds() > l.deadline) {
          l.timed_out = true;
          l.handle.kill(SIGKILL);
        }
        ++k;
        continue;
      }
      reaped_any = true;
      util::Subprocess::Result res = l.handle.result();
      res.timed_out = res.timed_out || l.timed_out;
      Job& job = jobs[l.job];
      // Harvest whatever the child journaled — a crashed worker's
      // completed points survive, only in-flight work is lost.
      journal_->refresh();
      bool complete = true;
      const double elapsed = wall_seconds() - l.t0;
      for (const std::size_t i : job.members) {
        if (resolved[i]) continue;
        if (std::optional<RunRecord> done = journal_->find(keys[i])) {
          records[i] = std::move(*done);
          resolved[i] = 1;
          note_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr,
                     records[i], false, false, false, elapsed);
        } else {
          complete = false;
        }
      }
      if (!complete) {
        if (res.timed_out)
          worker_timeouts.add();
        else
          worker_crashes.add();
        // The dead child may have left a torn frame; appending after it
        // would hide every later record, so repair before anyone else
        // writes at that offset. Safe against live writers: repair
        // holds the journal flock, and anything past the last good
        // frame is unreachable garbage by definition.
        journal_->repair_tail();
        const Point& p0 = points[job.members.front()];
        if (job.attempts <= isolate_retries_) {
          worker_retries.add();
          // Same doubling policy as message-send retries (pas::fault),
          // at supervisor scale: 50 ms base.
          const double backoff = fault::backoff_s(0.05, job.attempts - 1);
          job.not_before = wall_seconds() + backoff;
          queue.push_back(l.job);
          util::log_warn(util::strf(
              "%s N=%d column worker %s; retrying in %.0f ms (attempt "
              "%d/%d)",
              kernel.name().c_str(), p0.nodes, res.describe().c_str(),
              backoff * 1e3, job.attempts + 1, isolate_retries_ + 1));
        } else {
          util::log_warn(util::strf(
              "%s N=%d column worker %s after %d attempt(s); recording "
              "unfinished points as %s",
              kernel.name().c_str(), p0.nodes, res.describe().c_str(),
              job.attempts, res.timed_out ? "timeout" : "crashed"));
          for (const std::size_t i : job.members) {
            if (resolved[i]) continue;
            RunRecord rec;
            rec.nodes = points[i].nodes;
            rec.frequency_mhz = points[i].frequency_mhz;
            rec.status =
                res.timed_out ? RunStatus::kTimeout : RunStatus::kCrashed;
            rec.error = "isolated worker " + res.describe();
            rec.attempts = job.attempts;
            records[i] = std::move(rec);
            resolved[i] = 1;
            // Deliberately NOT journaled: a crash is an environmental
            // accident, and a --resume should retry the point for real.
            note_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr,
                       records[i], false, false, false, elapsed);
          }
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    if (!reaped_any && (!live.empty() || !queue.empty()))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::vector<RunRecord> SweepExecutor::run_points(
    const npb::Kernel& kernel, const std::vector<Point>& points) {
  int sweep_id = -1;
  if (observer_) {
    std::vector<obs::GridPoint> grid;
    grid.reserve(points.size());
    for (const Point& p : points)
      grid.push_back(obs::GridPoint{p.nodes, p.frequency_mhz,
                                    p.comm_dvfs_mhz});
    sweep_id = observer_->begin_sweep(kernel.name(), std::move(grid));
  }
  std::vector<ObsCtx> ctxs(points.size());
  const ObsCtx* ctx_of = nullptr;
  if (sweep_id >= 0) {
    for (std::size_t i = 0; i < points.size(); ++i)
      ctxs[i] = ObsCtx{sweep_id, static_cast<int>(i)};
    ctx_of = ctxs.data();
  }

  std::vector<RunRecord> records(points.size());
  if (isolate_) {
    run_points_isolated(kernel, points, ctx_of, records);
    return records;
  }
  if (!fast_path_eligible(kernel)) {
    if (points.size() <= 1 || pool_.max_threads() == 1) {
      for (std::size_t i = 0; i < points.size(); ++i)
        records[i] =
            run_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr);
      return records;
    }
    std::vector<std::future<void>> done;
    done.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      done.push_back(
          pool_.submit([this, &kernel, &points, &records, ctx_of, i] {
            records[i] =
                run_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr);
          }));
    }
    // Drain every future before rethrowing so no task still references
    // the local vectors.
    std::exception_ptr first;
    for (std::future<void>& f : done) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return records;
  }

  // Frequency collapse: group the grid into (N, comm-DVFS) columns in
  // first-appearance order. Each column is one sequential task — its
  // first cache-missing frequency simulates and records the ledger,
  // every later frequency re-prices from it — so parallelism shifts
  // from points to columns. Record values are unchanged: replay is
  // bit-identical to full simulation (Repricer contract).
  std::vector<std::vector<std::size_t>> columns;
  {
    std::unordered_map<long long, std::size_t> column_of;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const long long column_key =
          (static_cast<long long>(points[i].nodes) << 32) |
          static_cast<long long>(
              sim::NodeState::fkey(points[i].comm_dvfs_mhz));
      const auto [it, inserted] = column_of.emplace(column_key,
                                                    columns.size());
      if (inserted) columns.emplace_back();
      columns[it->second].push_back(i);
    }
  }
  std::vector<ColumnState> cols(columns.size());
  const auto run_col = [&](std::size_t c) {
    run_column(kernel, points, columns[c], ctx_of, cols[c], records);
  };
  if (columns.size() <= 1 || pool_.max_threads() == 1) {
    for (std::size_t c = 0; c < columns.size(); ++c) run_col(c);
    return records;
  }
  std::vector<std::future<void>> done;
  done.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c)
    done.push_back(pool_.submit([&run_col, c] { run_col(c); }));
  std::exception_ptr first;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return records;
}

MatrixResult SweepExecutor::run(const SweepRequest& request) {
  if (request.kernel == nullptr)
    throw std::invalid_argument("SweepRequest.kernel must be set");
  const npb::Kernel& kernel = *request.kernel;
  std::vector<Point> points;
  points.reserve(request.node_counts.size() * request.freqs_mhz.size());
  for (int n : request.node_counts) {
    for (double f : request.freqs_mhz)
      points.push_back(Point{n, f, request.comm_dvfs_mhz});
  }
  std::vector<RunRecord> records = run_points(kernel, points);
  MatrixResult result;
  for (RunRecord& rec : records) result.add(std::move(rec));
  if (const auto failed = result.failed_points(); !failed.empty()) {
    std::string detail;
    for (const RunRecord* r : failed)
      detail += util::strf(" [N=%d f=%.0f: %s]", r->nodes, r->frequency_mhz,
                           run_status_name(r->status));
    util::log_warn(util::strf(
        "%s: %zu/%zu sweep points failed under fault injection;%s excluded "
        "from the timing matrix",
        kernel.name().c_str(), failed.size(), result.records.size(),
        detail.c_str()));
  }
  return result;
}

MatrixResult SweepExecutor::run() {
  const std::unique_ptr<npb::Kernel> kernel = make_spec_kernel(spec_);
  return run(SweepRequest{kernel.get(), spec_.resolved_nodes(),
                          spec_.resolved_freqs(), spec_.comm_dvfs_mhz});
}

}  // namespace pas::analysis
