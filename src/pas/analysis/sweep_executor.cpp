#include "pas/analysis/sweep_executor.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "pas/analysis/batch_repricer.hpp"
#include "pas/analysis/repricer.hpp"
#include "pas/obs/metrics.hpp"
#include "pas/util/cli.hpp"
#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {
namespace {

/// Environment values obey the same rules as the flags they stand in
/// for — a typo'd $PASIM_JOBS must fail loudly, not fall back to 0.
long parse_positive_env_int(const char* name, const char* value) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v < 1)
    throw std::invalid_argument(pas::util::strf(
        "$%s must be a positive integer (got \"%s\")", name, value));
  return v;
}

obs::ReportPoint make_report_point(const std::string& kernel,
                                   double comm_dvfs_mhz, const RunRecord& rec,
                                   bool from_cache) {
  obs::ReportPoint rp;
  rp.kernel = kernel;
  rp.nodes = rec.nodes;
  rp.frequency_mhz = rec.frequency_mhz;
  rp.comm_dvfs_mhz = comm_dvfs_mhz;
  rp.status = run_status_name(rec.status);
  rp.verified = rec.verified;
  rp.from_cache = from_cache;
  rp.attempts = rec.attempts;
  rp.seconds = rec.seconds;
  rp.mean_overhead_s = rec.mean_overhead_s;
  rp.mean_cpu_s = rec.mean_cpu_s;
  rp.mean_memory_s = rec.mean_memory_s;
  rp.send_retries = rec.send_retries;
  rp.energy_cpu_j = rec.energy.cpu_j;
  rp.energy_memory_j = rec.energy.memory_j;
  rp.energy_network_j = rec.energy.network_j;
  rp.energy_idle_j = rec.energy.idle_j;
  return rp;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SweepOptions SweepOptions::from_cli(const util::Cli& cli) {
  SweepOptions opts;
  long default_jobs = 0;
  if (!cli.has("jobs")) {
    // The environment only stands in when the flag is absent, and is
    // then held to the flag's rules.
    if (const char* env_jobs = std::getenv("PASIM_JOBS"))
      default_jobs = parse_positive_env_int("PASIM_JOBS", env_jobs);
  }
  opts.jobs = static_cast<int>(cli.get_int("jobs", default_jobs));
  if (cli.has("jobs") && opts.jobs < 1)
    throw std::invalid_argument(pas::util::strf(
        "--jobs must be >= 1 (got %ld)", cli.get_int("jobs", 0)));
  opts.run_retries = static_cast<int>(cli.get_int("retries", opts.run_retries));
  if (opts.run_retries < 0)
    throw std::invalid_argument(pas::util::strf(
        "--retries must be >= 0 (got %d)", opts.run_retries));
  if (cli.has("cache")) {
    opts.cache_dir = cli.get("cache", "");
    if (opts.cache_dir.empty()) opts.cache_dir = ".pasim_cache";
  } else if (const char* env_dir = std::getenv("PASIM_CACHE_DIR")) {
    if (*env_dir == '\0')
      throw std::invalid_argument(
          "$PASIM_CACHE_DIR is set but empty; unset it or point it at a "
          "cache directory");
    opts.cache_dir = env_dir;
  }
  if (cli.get_bool("no-cache", false)) {
    opts.use_cache = false;
    opts.cache_dir.clear();
  }
  opts.verify_replay = cli.get_bool("verify-replay", false);
  if (opts.verify_replay && !opts.use_cache)
    throw std::invalid_argument(
        "--verify-replay cannot be combined with --no-cache: the "
        "verification pass compares records through the cache encoding; "
        "drop one of the two flags");
  return opts;
}

/// RAII lease of a RunMatrix slot: taken from the free list, or created
/// when every existing instance is busy (bounded by the pool size, so
/// at most `jobs` instances ever exist).
class SweepExecutor::MatrixLease {
 public:
  explicit MatrixLease(SweepExecutor& exec) : exec_(exec) {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    if (!exec_.free_matrices_.empty()) {
      matrix_ = exec_.free_matrices_.back();
      exec_.free_matrices_.pop_back();
    } else {
      exec_.matrices_.push_back(
          std::make_unique<RunMatrix>(exec_.cluster_, exec_.power_));
      matrix_ = exec_.matrices_.back().get();
    }
  }
  ~MatrixLease() {
    std::lock_guard<std::mutex> lock(exec_.slots_mutex_);
    exec_.free_matrices_.push_back(matrix_);
  }
  RunMatrix& operator*() { return *matrix_; }

 private:
  SweepExecutor& exec_;
  RunMatrix* matrix_ = nullptr;
};

SweepExecutor::SweepExecutor(SweepSpec spec)
    : cluster_(std::move(spec.cluster)),
      power_(std::move(spec.power)),
      pool_(spec.options.jobs > 0 ? spec.options.jobs
                                  : util::ThreadPool::default_jobs()),
      cache_(spec.options.cache_dir),
      use_cache_(spec.options.use_cache),
      run_retries_(spec.options.run_retries),
      verify_replay_(spec.options.verify_replay),
      scalar_reprice_([] {
        const char* v = std::getenv("PASIM_SCALAR_REPRICE");
        return v != nullptr && *v != '\0' && std::string(v) != "0";
      }()),
      observer_(std::move(spec.observer)) {
  if (spec.fault) cluster_.fault = *spec.fault;
  if (observer_) observer_->set_power_model(power_);
}

SweepExecutor::SweepExecutor(sim::ClusterConfig cluster,
                             power::PowerModel power, SweepOptions options)
    : SweepExecutor(SweepSpec{std::move(cluster), std::move(power),
                              std::nullopt, std::move(options), nullptr}) {}

RunRecord SweepExecutor::simulate_failsoft(const npb::Kernel& kernel,
                                           const Point& p, const ObsCtx* ctx,
                                           sim::WorkLedger* ledger_out) {
  // Retries only make sense when fault injection is on: each attempt
  // replays a differently-salted (still deterministic) FaultPlan. A
  // deadlock in a fault-free run is a bug in the kernel body and would
  // reproduce identically, so it is recorded on the first attempt.
  const int max_attempts =
      1 + (cluster_.fault.enabled() ? std::max(0, run_retries_) : 0);
  const bool tracing = observer_ && observer_->tracing() && ctx != nullptr;
  for (int attempt = 0;; ++attempt) {
    RunStatus status;
    std::string error;
    try {
      MatrixLease lease(*this);
      // Leased matrices are shared across points, so the tracer must
      // come back disabled and empty whatever happens; an aborted
      // attempt's partial events are wall-clock-dependent and are
      // never harvested (DESIGN.md §8).
      struct TraceGuard {
        sim::Tracer* t;
        ~TraceGuard() {
          if (t == nullptr) return;
          t->disable();
          t->clear();
        }
      } guard{tracing ? &(*lease).tracer() : nullptr};
      if (tracing) {
        (*lease).tracer().clear();
        (*lease).tracer().enable();
      }
      // Charged-work recording, same lifecycle discipline as tracing:
      // armed per attempt, harvested only from a successful run — an
      // aborted attempt's partial ledger is never replayed.
      struct RecorderGuard {
        sim::WorkLedgerRecorder* rec;
        ~RecorderGuard() {
          if (rec != nullptr) rec->abort();
        }
      } recorder{nullptr};
      if (ledger_out != nullptr) {
        (*lease).ledger_recorder().begin(p.nodes, p.comm_dvfs_mhz);
        recorder.rec = &(*lease).ledger_recorder();
      }
      RunRecord rec = (*lease).run_one(kernel, p.nodes, p.frequency_mhz,
                                       p.comm_dvfs_mhz, attempt);
      rec.attempts = attempt + 1;
      if (recorder.rec != nullptr) {
        *ledger_out = recorder.rec->take();
        recorder.rec = nullptr;
        // The verification verdict is frequency-invariant (same
        // arithmetic, same results); replayed records reuse it.
        ledger_out->verified = rec.verified;
      }
      if (tracing) {
        obs::RunTrace trace;
        trace.nranks = p.nodes;
        trace.frequency_mhz = p.frequency_mhz;
        trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
        trace.makespan_s = rec.seconds;
        trace.events = (*lease).tracer().events();
        trace.wall_s = observer_->wall_now_s();
        observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
      }
      return rec;
    } catch (const fault::NodeFailedError& e) {
      status = RunStatus::kNodeFailure;
      error = e.what();
    } catch (const fault::MessageLossError& e) {
      status = RunStatus::kMessageLoss;
      error = e.what();
    } catch (const mpi::TimeoutError& e) {
      status = RunStatus::kTimeout;
      error = e.what();
    } catch (const mpi::DeadlockError& e) {
      status = RunStatus::kDeadlock;
      error = e.what();
    }
    // Fault-induced aborts are data, not bugs. Anything else (bad
    // operating point, rank-body exception, ...) propagates above.
    if (attempt + 1 < max_attempts) {
      util::log_info(util::strf(
          "%s N=%d f=%.0fMHz: %s (%s); retrying (attempt %d/%d)",
          kernel.name().c_str(), p.nodes, p.frequency_mhz,
          run_status_name(status), error.c_str(), attempt + 2, max_attempts));
      continue;
    }
    RunRecord rec;
    rec.nodes = p.nodes;
    rec.frequency_mhz = p.frequency_mhz;
    rec.status = status;
    rec.error = std::move(error);
    rec.attempts = attempt + 1;
    return rec;
  }
}

bool SweepExecutor::fast_path_eligible(const npb::Kernel& kernel) const {
  // The exactness gate (DESIGN.md §10): the kernel must declare that
  // its control flow never depends on virtual time, and fault
  // injection perturbs every run per-frequency (jitter draws, drops,
  // straggler scaling), so armed faults always simulate in full.
  return kernel.frequency_invariant_control_flow() &&
         !cluster_.fault.enabled();
}

RunRecord SweepExecutor::reprice_point(const npb::Kernel& kernel,
                                       const Point& p,
                                       const sim::WorkLedger& ledger,
                                       const ObsCtx* ctx) {
  const bool tracing = observer_ && observer_->tracing() && ctx != nullptr;
  const Repricer repricer(cluster_, power_);
  RunRecord rec;
  if (tracing) {
    // Replay emits the same event set a traced full run records; the
    // obs layer's canonical sort makes the export byte-identical.
    sim::Tracer tracer;
    tracer.enable();
    rec = repricer.reprice(ledger, p.frequency_mhz, &tracer);
    obs::RunTrace trace;
    trace.nranks = p.nodes;
    trace.frequency_mhz = p.frequency_mhz;
    trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
    trace.makespan_s = rec.seconds;
    trace.events = tracer.events();
    trace.wall_s = observer_->wall_now_s();
    observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
  } else {
    rec = repricer.reprice(ledger, p.frequency_mhz);
  }
  if (verify_replay_) {
    const RunRecord fresh = simulate_failsoft(kernel, p, nullptr);
    const std::string repriced_bytes = RunCache::encode_record(rec);
    const std::string simulated_bytes = RunCache::encode_record(fresh);
    if (repriced_bytes != simulated_bytes)
      throw std::runtime_error(util::strf(
          "--verify-replay: repriced record differs from full simulation "
          "at %s N=%d f=%.0fMHz\n--- repriced ---\n%s--- simulated ---\n%s",
          kernel.name().c_str(), p.nodes, p.frequency_mhz,
          repriced_bytes.c_str(), simulated_bytes.c_str()));
    static obs::Counter& verified_points =
        obs::registry().counter("sweep.points_verified");
    verified_points.add();
  }
  util::log_info(util::strf(
      "%s N=%d f=%.0fMHz: T=%.4fs, overhead=%.4fs, E=%.1fJ, verified=%d "
      "(repriced)",
      kernel.name().c_str(), p.nodes, p.frequency_mhz, rec.seconds,
      rec.mean_overhead_s, rec.energy.total_j(), rec.verified ? 1 : 0));
  note_repriced_lanes(ctx, 1, ledger.total_ops());
  return rec;
}

void SweepExecutor::note_repriced_lanes(const ObsCtx* ctx, std::size_t lanes,
                                        std::size_t ops) {
  (void)ctx;
  namespace o = pas::obs;
  // Lane totals are a function of the grid and cache contents alone —
  // the batched engine prices a column's lanes in one call, the scalar
  // engine one per point, and both sum to the same values at any
  // --jobs, so the rows are stable. Ticked with or without an observer
  // (counters are process-global and cost one relaxed add): the
  // full_report summary derives lanes-per-column from them even when
  // nothing is exported.
  static o::Counter& batch_lanes =
      o::registry().counter("repricer.batch_lanes", o::Stability::kStable);
  static o::Counter& ops_replayed =
      o::registry().counter("repricer.ops_replayed", o::Stability::kStable);
  batch_lanes.add(static_cast<std::uint64_t>(lanes));
  ops_replayed.add(static_cast<std::uint64_t>(ops));
}

void SweepExecutor::note_ledger_resolved(const ObsCtx* ctx,
                                         const sim::WorkLedger& ledger) {
  (void)ctx;
  namespace o = pas::obs;
  static o::Counter& ledger_bytes =
      o::registry().counter("repricer.ledger_bytes", o::Stability::kStable);
  static o::Counter& columns =
      o::registry().counter("repricer.columns", o::Stability::kStable);
  ledger_bytes.add(static_cast<std::uint64_t>(ledger.arena_bytes()));
  columns.add();
}

RunRecord SweepExecutor::run_point(const npb::Kernel& kernel, const Point& p,
                                   const ObsCtx* ctx, ColumnState* col) {
  const double wall_t0 = wall_seconds();
  bool from_cache = false;
  bool repriced = false;
  RunRecord rec;
  std::string key;
  if (use_cache_)
    key = RunCache::key(kernel, cluster_, power_, p.nodes, p.frequency_mhz,
                        p.comm_dvfs_mhz);
  if (std::optional<RunRecord> cached =
          use_cache_ ? cache_.lookup(key) : std::nullopt) {
    rec = *cached;
    from_cache = true;
  } else {
    // Fast path: re-price from the column's ledger when one exists
    // (recorded earlier in this column, or persisted by a previous
    // process).
    const sim::WorkLedger* ledger = nullptr;
    if (col != nullptr && !col->recording_declined) {
      if (!col->ledger && use_cache_ && !col->cache_checked) {
        col->cache_checked = true;
        col->ledger = cache_.lookup_ledger(RunCache::ledger_key(
            kernel, cluster_, p.nodes, p.comm_dvfs_mhz));
        if (col->ledger) note_ledger_resolved(ctx, *col->ledger);
      }
      ledger = col->ledger.get();
    }
    if (ledger != nullptr) {
      rec = reprice_point(kernel, p, *ledger, ctx);
      repriced = true;
    } else if (col != nullptr && !col->recording_declined) {
      sim::WorkLedger fresh;
      rec = simulate_failsoft(kernel, p, ctx, &fresh);
      if (rec.failed() || !fresh.replayable) {
        col->recording_declined = true;
        if (!rec.failed() && !fresh.decline_reason.empty())
          util::log_info(util::strf(
              "%s N=%d: charged-work recording declined (%s); the column "
              "simulates in full",
              kernel.name().c_str(), p.nodes, fresh.decline_reason.c_str()));
      } else if (use_cache_) {
        col->ledger = cache_.store_ledger(
            RunCache::ledger_key(kernel, cluster_, p.nodes, p.comm_dvfs_mhz),
            std::move(fresh));
        if (col->ledger) note_ledger_resolved(ctx, *col->ledger);
      } else {
        col->ledger =
            std::make_shared<const sim::WorkLedger>(std::move(fresh));
        note_ledger_resolved(ctx, *col->ledger);
      }
    } else {
      rec = simulate_failsoft(kernel, p, ctx);
    }
    // Failed records are never cached: a later sweep with more retries
    // (or a fixed kernel) must get a fresh chance at the point.
    if (use_cache_ && !rec.failed()) cache_.store(key, rec);
  }

  note_point(kernel, p, ctx, rec, from_cache, repriced,
             wall_seconds() - wall_t0);
  return rec;
}

void SweepExecutor::note_point(const npb::Kernel& kernel, const Point& p,
                               const ObsCtx* ctx, const RunRecord& rec,
                               bool from_cache, bool repriced,
                               double elapsed_s) {
  static obs::Histogram& point_wall =
      obs::registry().histogram("sweep.point_wall_seconds");
  point_wall.observe(elapsed_s);

  if (ctx != nullptr && observer_) {
    // Stable counters derive from the canonical records only: integer
    // sums are order-independent, so these are identical at any --jobs.
    namespace o = pas::obs;
    static o::Counter& points =
        o::registry().counter("sweep.points", o::Stability::kStable);
    static o::Counter& cached_points =
        o::registry().counter("sweep.points_cached", o::Stability::kStable);
    static o::Counter& failed_points =
        o::registry().counter("sweep.points_failed", o::Stability::kStable);
    static o::Counter& run_retries =
        o::registry().counter("sweep.run_retries", o::Stability::kStable);
    static o::Counter& send_retries =
        o::registry().counter("sweep.send_retries", o::Stability::kStable);
    // Which points re-price (first-in-column simulates, the rest
    // replay) is a function of the grid and the cache contents alone,
    // never of scheduling — so the counter is stable at any --jobs.
    static o::Counter& repriced_points =
        o::registry().counter("sweep.points_repriced", o::Stability::kStable);
    points.add();
    if (from_cache) cached_points.add();
    if (repriced) repriced_points.add();
    if (rec.failed()) failed_points.add();
    run_retries.add(static_cast<std::uint64_t>(rec.attempts - 1));
    send_retries.add(static_cast<std::uint64_t>(rec.send_retries));
    observer_->record_point(
        ctx->sweep, ctx->index,
        make_report_point(kernel.name(), p.comm_dvfs_mhz, rec, from_cache));
  }
}

void SweepExecutor::run_column(const npb::Kernel& kernel,
                               const std::vector<Point>& points,
                               const std::vector<std::size_t>& members,
                               const ObsCtx* ctx_of, ColumnState& col,
                               std::vector<RunRecord>& records) {
  if (scalar_reprice_) {
    // Reference path: every point prices through the scalar Repricer.
    for (const std::size_t i : members)
      records[i] = run_point(kernel, points[i],
                             ctx_of ? &ctx_of[i] : nullptr, &col);
    return;
  }

  // Pass 1, in grid order: cached points resolve immediately; the
  // column's ledger is resolved (loaded, or recorded by simulating the
  // first miss in full); every remaining frequency is deferred into one
  // batched replay. The per-point outcomes — which point simulates,
  // which reprices, which hits the record cache — are identical to the
  // scalar path's by construction.
  struct Pending {
    std::size_t index;
    std::string key;
  };
  std::vector<Pending> todo;
  for (const std::size_t i : members) {
    const Point& p = points[i];
    const ObsCtx* ctx = ctx_of ? &ctx_of[i] : nullptr;
    const double wall_t0 = wall_seconds();
    std::string key;
    if (use_cache_)
      key = RunCache::key(kernel, cluster_, power_, p.nodes, p.frequency_mhz,
                          p.comm_dvfs_mhz);
    if (std::optional<RunRecord> cached =
            use_cache_ ? cache_.lookup(key) : std::nullopt) {
      records[i] = std::move(*cached);
      note_point(kernel, p, ctx, records[i], true, false,
                 wall_seconds() - wall_t0);
      continue;
    }
    if (!col.recording_declined) {
      if (!col.ledger && use_cache_ && !col.cache_checked) {
        col.cache_checked = true;
        col.ledger = cache_.lookup_ledger(RunCache::ledger_key(
            kernel, cluster_, p.nodes, p.comm_dvfs_mhz));
        if (col.ledger) note_ledger_resolved(ctx, *col.ledger);
      }
      if (col.ledger) {
        todo.push_back(Pending{i, std::move(key)});
        continue;
      }
      sim::WorkLedger fresh;
      RunRecord rec = simulate_failsoft(kernel, p, ctx, &fresh);
      if (rec.failed() || !fresh.replayable) {
        col.recording_declined = true;
        if (!rec.failed() && !fresh.decline_reason.empty())
          util::log_info(util::strf(
              "%s N=%d: charged-work recording declined (%s); the column "
              "simulates in full",
              kernel.name().c_str(), p.nodes, fresh.decline_reason.c_str()));
      } else if (use_cache_) {
        col.ledger = cache_.store_ledger(
            RunCache::ledger_key(kernel, cluster_, p.nodes, p.comm_dvfs_mhz),
            std::move(fresh));
        if (col.ledger) note_ledger_resolved(ctx, *col.ledger);
      } else {
        col.ledger = std::make_shared<const sim::WorkLedger>(std::move(fresh));
        note_ledger_resolved(ctx, *col.ledger);
      }
      if (use_cache_ && !rec.failed()) cache_.store(key, rec);
      records[i] = std::move(rec);
      note_point(kernel, p, ctx, records[i], false, false,
                 wall_seconds() - wall_t0);
      continue;
    }
    RunRecord rec = simulate_failsoft(kernel, p, ctx);
    if (use_cache_ && !rec.failed()) cache_.store(key, rec);
    records[i] = std::move(rec);
    note_point(kernel, p, ctx, records[i], false, false,
               wall_seconds() - wall_t0);
  }
  if (todo.empty()) return;

  // Pass 2: one BatchRepricer call prices every deferred frequency
  // simultaneously (DESIGN.md §11) — records and trace events are
  // bit-identical to the scalar engine's, lane by lane.
  const double batch_t0 = wall_seconds();
  const bool tracing = observer_ && observer_->tracing() && ctx_of != nullptr;
  std::vector<double> freqs;
  freqs.reserve(todo.size());
  for (const Pending& t : todo)
    freqs.push_back(points[t.index].frequency_mhz);
  std::vector<std::unique_ptr<sim::Tracer>> sinks;
  std::vector<sim::Tracer*> tracer_ptrs;
  if (tracing) {
    sinks.reserve(todo.size());
    for (std::size_t j = 0; j < todo.size(); ++j) {
      sinks.push_back(std::make_unique<sim::Tracer>());
      sinks.back()->enable();
      tracer_ptrs.push_back(sinks.back().get());
    }
  }
  const BatchRepricer repricer(cluster_, power_);
  std::vector<RunRecord> repriced =
      repricer.reprice(*col.ledger, freqs, tracer_ptrs);
  note_repriced_lanes(ctx_of ? &ctx_of[todo.front().index] : nullptr,
                      todo.size(), col.ledger->total_ops() * todo.size());
  // The batch call's wall cost is shared; attribute an equal share to
  // each lane's histogram sample.
  const double batch_share =
      (wall_seconds() - batch_t0) / static_cast<double>(todo.size());

  // Pass 3, in grid order: per-point trace harvest, verification, log
  // line, record-cache store and observer notification — the same
  // per-point epilogue reprice_point runs on the scalar path.
  for (std::size_t j = 0; j < todo.size(); ++j) {
    const std::size_t i = todo[j].index;
    const Point& p = points[i];
    const ObsCtx* ctx = ctx_of ? &ctx_of[i] : nullptr;
    const double point_t0 = wall_seconds();
    RunRecord& rec = repriced[j];
    if (tracing && ctx != nullptr) {
      obs::RunTrace trace;
      trace.nranks = p.nodes;
      trace.frequency_mhz = p.frequency_mhz;
      trace.op = cluster_.operating_points.at_mhz(p.frequency_mhz);
      trace.makespan_s = rec.seconds;
      trace.events = sinks[j]->events();
      trace.wall_s = observer_->wall_now_s();
      observer_->record_run_trace(ctx->sweep, ctx->index, std::move(trace));
    }
    if (verify_replay_) {
      const RunRecord fresh = simulate_failsoft(kernel, p, nullptr);
      const std::string repriced_bytes = RunCache::encode_record(rec);
      const std::string simulated_bytes = RunCache::encode_record(fresh);
      if (repriced_bytes != simulated_bytes)
        throw std::runtime_error(util::strf(
            "--verify-replay: repriced record differs from full simulation "
            "at %s N=%d f=%.0fMHz\n--- repriced ---\n%s--- simulated ---\n%s",
            kernel.name().c_str(), p.nodes, p.frequency_mhz,
            repriced_bytes.c_str(), simulated_bytes.c_str()));
      static obs::Counter& verified_points =
          obs::registry().counter("sweep.points_verified");
      verified_points.add();
    }
    util::log_info(util::strf(
        "%s N=%d f=%.0fMHz: T=%.4fs, overhead=%.4fs, E=%.1fJ, verified=%d "
        "(repriced)",
        kernel.name().c_str(), p.nodes, p.frequency_mhz, rec.seconds,
        rec.mean_overhead_s, rec.energy.total_j(), rec.verified ? 1 : 0));
    if (use_cache_ && !rec.failed()) cache_.store(todo[j].key, rec);
    records[i] = std::move(rec);
    note_point(kernel, p, ctx, records[i], false, true,
               batch_share + (wall_seconds() - point_t0));
  }
}

RunRecord SweepExecutor::run_one(const npb::Kernel& kernel, int nodes,
                                 double frequency_mhz, double comm_dvfs_mhz) {
  return run_point(kernel, Point{nodes, frequency_mhz, comm_dvfs_mhz},
                   nullptr);
}

std::vector<RunRecord> SweepExecutor::run_points(
    const npb::Kernel& kernel, const std::vector<Point>& points) {
  int sweep_id = -1;
  if (observer_) {
    std::vector<obs::GridPoint> grid;
    grid.reserve(points.size());
    for (const Point& p : points)
      grid.push_back(obs::GridPoint{p.nodes, p.frequency_mhz,
                                    p.comm_dvfs_mhz});
    sweep_id = observer_->begin_sweep(kernel.name(), std::move(grid));
  }
  std::vector<ObsCtx> ctxs(points.size());
  const ObsCtx* ctx_of = nullptr;
  if (sweep_id >= 0) {
    for (std::size_t i = 0; i < points.size(); ++i)
      ctxs[i] = ObsCtx{sweep_id, static_cast<int>(i)};
    ctx_of = ctxs.data();
  }

  std::vector<RunRecord> records(points.size());
  if (!fast_path_eligible(kernel)) {
    if (points.size() <= 1 || pool_.max_threads() == 1) {
      for (std::size_t i = 0; i < points.size(); ++i)
        records[i] =
            run_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr);
      return records;
    }
    std::vector<std::future<void>> done;
    done.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      done.push_back(
          pool_.submit([this, &kernel, &points, &records, ctx_of, i] {
            records[i] =
                run_point(kernel, points[i], ctx_of ? &ctx_of[i] : nullptr);
          }));
    }
    // Drain every future before rethrowing so no task still references
    // the local vectors.
    std::exception_ptr first;
    for (std::future<void>& f : done) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return records;
  }

  // Frequency collapse: group the grid into (N, comm-DVFS) columns in
  // first-appearance order. Each column is one sequential task — its
  // first cache-missing frequency simulates and records the ledger,
  // every later frequency re-prices from it — so parallelism shifts
  // from points to columns. Record values are unchanged: replay is
  // bit-identical to full simulation (Repricer contract).
  std::vector<std::vector<std::size_t>> columns;
  {
    std::unordered_map<long long, std::size_t> column_of;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const long long column_key =
          (static_cast<long long>(points[i].nodes) << 32) |
          static_cast<long long>(
              sim::NodeState::fkey(points[i].comm_dvfs_mhz));
      const auto [it, inserted] = column_of.emplace(column_key,
                                                    columns.size());
      if (inserted) columns.emplace_back();
      columns[it->second].push_back(i);
    }
  }
  std::vector<ColumnState> cols(columns.size());
  const auto run_col = [&](std::size_t c) {
    run_column(kernel, points, columns[c], ctx_of, cols[c], records);
  };
  if (columns.size() <= 1 || pool_.max_threads() == 1) {
    for (std::size_t c = 0; c < columns.size(); ++c) run_col(c);
    return records;
  }
  std::vector<std::future<void>> done;
  done.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c)
    done.push_back(pool_.submit([&run_col, c] { run_col(c); }));
  std::exception_ptr first;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return records;
}

MatrixResult SweepExecutor::run(const SweepRequest& request) {
  if (request.kernel == nullptr)
    throw std::invalid_argument("SweepRequest.kernel must be set");
  const npb::Kernel& kernel = *request.kernel;
  std::vector<Point> points;
  points.reserve(request.node_counts.size() * request.freqs_mhz.size());
  for (int n : request.node_counts) {
    for (double f : request.freqs_mhz)
      points.push_back(Point{n, f, request.comm_dvfs_mhz});
  }
  std::vector<RunRecord> records = run_points(kernel, points);
  MatrixResult result;
  for (RunRecord& rec : records) result.add(std::move(rec));
  if (const auto failed = result.failed_points(); !failed.empty()) {
    std::string detail;
    for (const RunRecord* r : failed)
      detail += util::strf(" [N=%d f=%.0f: %s]", r->nodes, r->frequency_mhz,
                           run_status_name(r->status));
    util::log_warn(util::strf(
        "%s: %zu/%zu sweep points failed under fault injection;%s excluded "
        "from the timing matrix",
        kernel.name().c_str(), failed.size(), result.records.size(),
        detail.c_str()));
  }
  return result;
}

MatrixResult SweepExecutor::sweep(const npb::Kernel& kernel,
                                  const std::vector<int>& node_counts,
                                  const std::vector<double>& freqs_mhz,
                                  double comm_dvfs_mhz) {
  return run(SweepRequest{&kernel, node_counts, freqs_mhz, comm_dvfs_mhz});
}

}  // namespace pas::analysis
