#include "pas/analysis/sweep_journal.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "pas/analysis/run_cache.hpp"
#include "pas/util/format.hpp"
#include "pas/util/fs.hpp"
#include "pas/util/log.hpp"

namespace pas::analysis {
namespace {

constexpr char kMagic[] = "pasim-sweep-journal v1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

long env_count(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  return (end != v && *end == '\0' && n > 0) ? n : 0;
}

std::atomic<long>& crash_after_counter() {
  static std::atomic<long> v{env_count("PASIM_CRASH_AFTER_APPENDS")};
  return v;
}

std::atomic<long>& crash_mid_counter() {
  static std::atomic<long> v{env_count("PASIM_CRASH_MID_APPEND")};
  return v;
}

/// Counts one append against an armed crash trigger; true exactly when
/// this append is the n-th (the one that must die).
bool take_trigger(std::atomic<long>& v) {
  long cur = v.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (v.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed))
      return cur == 1;
  }
  return false;
}

std::string encode_payload(const std::string& key, const RunRecord& rec) {
  std::ostringstream out;
  out << "key " << key << '\n';
  out << "status " << static_cast<int>(rec.status) << '\n';
  // Length-prefixed raw bytes: the error text of a failed run is free
  // text and must not be able to break the line framing.
  out << "error " << rec.error.size() << '\n' << rec.error << '\n';
  out << RunCache::encode_record(rec);
  out << "end\n";
  return out.str();
}

bool decode_payload(const std::string& p, std::string* key, RunRecord* rec) {
  std::size_t off = 0;
  const auto line = [&](std::string* out) {
    const std::size_t nl = p.find('\n', off);
    if (nl == std::string::npos) return false;
    *out = p.substr(off, nl - off);
    off = nl + 1;
    return true;
  };
  std::string l;
  if (!line(&l) || l.rfind("key ", 0) != 0) return false;
  *key = l.substr(4);
  if (key->empty()) return false;
  if (!line(&l) || l.rfind("status ", 0) != 0) return false;
  char* end = nullptr;
  const long status = std::strtol(l.c_str() + 7, &end, 10);
  if (end == nullptr || *end != '\0' || status < 0 ||
      status > static_cast<long>(RunStatus::kCrashed))
    return false;
  rec->status = static_cast<RunStatus>(status);
  if (!line(&l) || l.rfind("error ", 0) != 0) return false;
  const long err_len = std::strtol(l.c_str() + 6, &end, 10);
  if (end == nullptr || *end != '\0' || err_len < 0 ||
      off + static_cast<std::size_t>(err_len) + 1 > p.size())
    return false;
  rec->error = p.substr(off, static_cast<std::size_t>(err_len));
  off += static_cast<std::size_t>(err_len);
  if (p[off] != '\n') return false;
  ++off;
  std::istringstream rest(p.substr(off));
  if (!RunCache::decode_record(rest, rec)) return false;
  std::string tail;
  if (!(rest >> tail) || tail != "end") return false;
  return true;
}

}  // namespace

SweepJournal::SweepJournal(std::string path, bool resume)
    : path_(std::move(path)) {
  const auto init_fresh = [&] {
    read_offset_ = kMagicLen;
    if (const int err = util::atomic_write_file(path_, kMagic)) {
      pas::util::log_warn("sweep journal: cannot create " + path_ + ": " +
                          std::string(std::strerror(err)) +
                          "; journaling disabled for this run");
      write_failed_ = true;
    }
  };
  if (!resume) {
    init_fresh();
    return;
  }
  const std::optional<std::string> bytes = util::read_file(path_);
  if (!bytes) {
    // --resume with no journal yet: same as a fresh sweep.
    init_fresh();
    return;
  }
  if (bytes->size() < kMagicLen ||
      bytes->compare(0, kMagicLen, kMagic) != 0) {
    pas::util::log_warn("sweep journal: " + path_ +
                        " is not a journal (bad magic); starting fresh");
    init_fresh();
    return;
  }
  refresh();
  repair_tail();
}

std::size_t SweepJournal::refresh_locked() {
  const std::optional<std::string> bytes = util::read_file(path_);
  if (!bytes) return 0;
  const std::string& s = *bytes;
  std::size_t off = read_offset_;
  if (off == 0) {
    if (s.size() < kMagicLen || s.compare(0, kMagicLen, kMagic) != 0)
      return 0;
    off = kMagicLen;
    read_offset_ = off;
  }
  std::size_t added = 0;
  while (off < s.size()) {
    const std::size_t nl = s.find('\n', off);
    if (nl == std::string::npos) break;  // torn header line
    const std::string header = s.substr(off, nl - off);
    std::size_t payload_len = 0;
    std::uint64_t sum = 0;
    {
      std::istringstream in(header);
      std::string tag, hex;
      if (!(in >> tag >> payload_len >> hex) || tag != "J" || hex.size() != 16)
        break;
      char* end = nullptr;
      sum = std::strtoull(hex.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') break;
    }
    const std::size_t payload_at = nl + 1;
    if (payload_at + payload_len > s.size()) break;  // torn payload
    const std::string payload = s.substr(payload_at, payload_len);
    if (util::fnv1a(payload) != sum) break;  // bit rot / interleave
    std::string key;
    RunRecord rec;
    if (!decode_payload(payload, &key, &rec)) break;
    if (records_.emplace(key, std::move(rec)).second) ++added;
    off = payload_at + payload_len;
    read_offset_ = off;
  }
  return added;
}

std::size_t SweepJournal::refresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  return refresh_locked();
}

void SweepJournal::repair_tail() {
  std::lock_guard<std::mutex> lock(mutex_);
  const util::FileLock fl = util::FileLock::acquire(path_ + ".lock");
  // Harvest any frames a still-exiting writer got in before the lock;
  // whatever remains past read_offset_ is torn or unreachable garbage,
  // and appending after it would hide every later record. Cut it.
  refresh_locked();
  const std::optional<std::string> bytes = util::read_file(path_);
  if (!bytes || read_offset_ == 0 || bytes->size() <= read_offset_) return;
  const std::size_t dropped = bytes->size() - read_offset_;
  if (::truncate(path_.c_str(), static_cast<off_t>(read_offset_)) != 0) {
    pas::util::log_warn("sweep journal: cannot truncate torn tail of " +
                        path_);
    return;
  }
  const int fd = ::open(path_.c_str(), O_WRONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  pas::util::log_warn(pas::util::strf(
      "sweep journal: truncated %zu torn tail byte(s) of %s (crashed "
      "writer); %zu record(s) intact",
      dropped, path_.c_str(), records_.size()));
}

std::optional<RunRecord> SweepJournal::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool SweepJournal::append(const std::string& key, const RunRecord& rec) {
  const std::string payload = encode_payload(key, rec);
  const std::string frame =
      pas::util::strf("J %zu %016" PRIx64 "\n", payload.size(),
                      util::fnv1a(payload)) +
      payload;
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.find(key) != records_.end()) return true;
  const util::FileLock fl = util::FileLock::acquire(path_ + ".lock");
  if (take_trigger(crash_mid_counter())) {
    // Torture hook: die halfway through the frame, leaving exactly the
    // torn tail repair_tail() exists for.
    util::append_durable(
        path_, std::string_view(frame).substr(0, frame.size() / 2));
    ::raise(SIGKILL);
  }
  if (const int err = util::append_durable(path_, frame)) {
    if (!write_failed_) {
      pas::util::log_warn("sweep journal: append to " + path_ + " failed: " +
                          std::string(std::strerror(err)) +
                          "; continuing without journaling");
      write_failed_ = true;
    }
    return false;
  }
  records_.emplace(key, rec);
  if (take_trigger(crash_after_counter())) ::raise(SIGKILL);
  return true;
}

std::size_t SweepJournal::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void SweepJournal::set_crash_after_appends(long n) {
  crash_after_counter().store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void SweepJournal::set_crash_mid_append(long n) {
  crash_mid_counter().store(n > 0 ? n : 0, std::memory_order_relaxed);
}

}  // namespace pas::analysis
