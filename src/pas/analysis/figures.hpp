// Figure-series rendering for the paper's plots (Fig 1a/1b, 2a/2b):
// execution time vs processor count per frequency, and the
// two-dimensional speedup surface over (frequency, processor count).
#pragma once

#include <string>
#include <vector>

#include "pas/core/measurement.hpp"
#include "pas/util/table.hpp"

namespace pas::analysis {

/// Fig 1a / 2a: one row per node count, one column per frequency,
/// entries are execution times in seconds.
util::TextTable execution_time_table(const core::TimingMatrix& times,
                                     const std::vector<int>& nodes,
                                     const std::vector<double>& freqs_mhz,
                                     const std::string& title);

/// Fig 1b / 2b: the 2-D speedup surface relative to (1, base_f).
util::TextTable speedup_surface(const core::TimingMatrix& times,
                                const std::vector<int>& nodes,
                                const std::vector<double>& freqs_mhz,
                                double base_f_mhz, const std::string& title);

/// The speedup values of one surface row (fixed node count), used by
/// tests asserting figure shapes.
std::vector<double> speedup_row(const core::TimingMatrix& times, int nodes,
                                const std::vector<double>& freqs_mhz,
                                double base_f_mhz);

/// The speedup values of one surface column (fixed frequency).
std::vector<double> speedup_column(const core::TimingMatrix& times,
                                   const std::vector<int>& nodes,
                                   double f_mhz, double base_f_mhz);

}  // namespace pas::analysis
