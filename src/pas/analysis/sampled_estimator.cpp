#include "pas/analysis/sampled_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace pas::analysis {

SampledEstimate estimate_sampled_run(const sim::SampleProbe& probe,
                                     int total_iters, int start_iter,
                                     int warmup_iters, int sample_period,
                                     double measured_seconds) {
  (void)sample_period;  // the plan is encoded in the recorded boundaries
  SampledEstimate est;
  est.total_iters = total_iters;
  if (total_iters <= start_iter) {
    // The run resumed at (or past) its full depth: only the epilogue
    // executed and the measured makespan is already exact.
    est.valid = true;
    est.seconds = measured_seconds;
    return est;
  }
  if (probe.nranks() < 1) return est;

  // Cluster series: max-over-ranks `now` at each recorded boundary.
  // Lanes are append-only per rank; boundaries are shared (every rank
  // follows the same sampling plan), so keying by iteration aligns
  // them without assuming identical lane lengths mid-run.
  std::map<int, double> series;
  for (int r = 0; r < probe.nranks(); ++r) {
    for (const sim::RankSample& s : probe.lane(r)) {
      auto [it, inserted] = series.emplace(s.iter, s.now);
      if (!inserted) it->second = std::max(it->second, s.now);
    }
  }
  est.sampled_iters = static_cast<int>(series.size());
  for (const auto& [iter, now] : series) {
    (void)now;
    if (iter <= start_iter) --est.sampled_iters;  // warm-start baseline
  }

  // The detailed subset covers every iteration the run executed; the
  // remainder is what the estimator must account for.
  const int skipped = (total_iters - start_iter) - est.sampled_iters;
  if (skipped <= 0) {
    // Nothing was skipped (trivial plan or short loop): the measured
    // makespan is already the full-run makespan.
    est.valid = true;
    est.seconds = measured_seconds;
    return est;
  }

  // Post-warmup deltas between consecutive recorded boundaries: each
  // spans exactly one detailed iteration (skipped iterations between
  // them executed nothing).
  std::vector<double> deltas;
  const double* prev = nullptr;
  for (const auto& [iter, now] : series) {
    if (prev != nullptr && iter - start_iter > warmup_iters)
      deltas.push_back(now - *prev);
    prev = &now;
  }
  if (deltas.empty()) return est;  // cannot extrapolate: no samples

  double mean = 0.0;
  for (double d : deltas) mean += d;
  mean /= static_cast<double>(deltas.size());
  double var = 0.0;
  for (double d : deltas) var += (d - mean) * (d - mean);
  const std::size_t n = deltas.size();
  const double sd = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;

  est.valid = true;
  est.seconds =
      measured_seconds + mean * static_cast<double>(skipped);
  est.ci_seconds = 1.96 * sd / std::sqrt(static_cast<double>(n)) *
                   static_cast<double>(skipped);
  return est;
}

}  // namespace pas::analysis
