// BatchRepricer — one forward pass over a charged-work ledger that
// prices every requested DVFS operating point simultaneously
// (DESIGN.md §11).
//
// The scalar Repricer replays a ledger once per operating point, so a
// 12-frequency column walks the same op streams 11 times. This engine
// exploits the structure of the replay instead: message matching is
// FIFO per (src, dst, tag) and a receive blocks only on an empty
// channel — both facts independent of frequency — so every lane
// (operating point) follows the *same* op schedule and only the priced
// seconds differ. State that varies per lane (clocks, port busy-until
// times, per-operating-point activity buckets) lives in
// structure-of-arrays vectors indexed [rank * lanes + lane], making the
// per-op inner loop over lanes branch-uniform; state that is
// frequency-invariant (channel queues, message counts, executed
// instruction mixes, the comm-phase flag) is kept once and shared.
//
// Exactness contract: each lane runs the identical arithmetic the
// scalar Repricer (and the full simulator) runs, in the identical
// order — frequency-invariant terms (ON-chip cycle counts, wire
// serialization seconds) are hoisted and computed once per op, but the
// per-lane operations consuming them are the same divisions and
// multiplications CpuModel::time_split and NetworkFabric::transfer
// perform, never reassociated or inverted. reprice() therefore returns
// RunRecords bit-identical to Repricer::reprice at each frequency; the
// scalar engine stays in the tree as the reference oracle the
// equivalence tests (BatchRepricer.*) diff against.
#pragma once

#include <vector>

#include "pas/analysis/run_matrix.hpp"
#include "pas/power/energy_meter.hpp"
#include "pas/sim/cluster.hpp"
#include "pas/sim/trace.hpp"
#include "pas/sim/work_ledger.hpp"

namespace pas::analysis {

class BatchRepricer {
 public:
  explicit BatchRepricer(sim::ClusterConfig cluster,
                         power::PowerModel power = power::PowerModel());

  const sim::ClusterConfig& cluster() const { return cluster_; }

  /// Replays `ledger` once and returns one RunRecord per entry of
  /// `freqs_mhz` (index-aligned), each bit-identical to
  /// Repricer::reprice(ledger, freqs_mhz[i]). `tracers`, when
  /// non-empty, must have one slot per frequency; lane i's replay
  /// events (the same set a traced full run records) are emitted into
  /// tracers[i] when that slot is non-null.
  ///
  /// Throws std::logic_error when the ledger is not replayable, its op
  /// streams are inconsistent, or it has more ranks than the channel
  /// keys can address; std::out_of_range for a frequency with no
  /// operating point; std::invalid_argument when `tracers` is
  /// non-empty but not index-aligned with `freqs_mhz`.
  std::vector<RunRecord> reprice(
      const sim::WorkLedger& ledger, const std::vector<double>& freqs_mhz,
      const std::vector<sim::Tracer*>& tracers = {}) const;

 private:
  sim::ClusterConfig cluster_;
  power::EnergyMeter meter_;
};

}  // namespace pas::analysis
