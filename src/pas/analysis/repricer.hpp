// Repricer — analytic replay of a charged-work ledger at a different
// DVFS operating point (the frequency-collapse fast path, DESIGN.md
// §10).
//
// The paper's decomposition (Eq 14/18) says a workload's cost at any
// frequency is determined by its ON-chip work, OFF-chip work and
// parallel overhead — quantities a single simulated run of the same
// (kernel, size, N) column already measured. The Repricer re-executes
// a recorded sim::WorkLedger deterministically on one thread: every
// compute block re-runs CpuModel::time_split at the new point, every
// message re-books the same NetworkFabric arithmetic, and the comm-DVFS
// phase machine is re-driven op by op. Because it runs the *identical*
// pricing code that the full simulator runs (never scaling recorded
// seconds), a repriced RunRecord is bit-identical to the record a full
// simulation at that frequency would produce — a property the sweep
// executor's --verify-replay mode and the grid-equivalence tests check
// field by field.
//
// Replay is single-threaded and allocation-light: per-channel FIFO
// queues stand in for mailboxes (exact (src, tag) matching means the
// n-th receive on a channel matches the n-th send), and a round-robin
// scheduler advances each rank until it blocks on an empty channel.
// Only receives can block; a full pass with no progress means the
// ledger is inconsistent and raises std::logic_error.
#pragma once

#include "pas/analysis/run_matrix.hpp"
#include "pas/power/energy_meter.hpp"
#include "pas/sim/cluster.hpp"
#include "pas/sim/trace.hpp"
#include "pas/sim/work_ledger.hpp"

namespace pas::analysis {

class Repricer {
 public:
  explicit Repricer(sim::ClusterConfig cluster,
                    power::PowerModel power = power::PowerModel());

  const sim::ClusterConfig& cluster() const { return cluster_; }

  /// Replays `ledger` at `frequency_mhz` and assembles the RunRecord
  /// exactly as RunMatrix::run_one would (same summation order, same
  /// energy slicing). With a non-null `tracer`, emits the same event
  /// set a traced full run records (per-op spans, dvfs markers and the
  /// per-rank program spans); event order within the sink may differ,
  /// which is invisible after the obs layer's canonical sort.
  ///
  /// Throws std::logic_error when the ledger is not replayable or its
  /// op streams are inconsistent (a blocked receive no send resolves),
  /// and std::out_of_range for a frequency with no operating point.
  RunRecord reprice(const sim::WorkLedger& ledger, double frequency_mhz,
                    sim::Tracer* tracer = nullptr) const;

 private:
  sim::ClusterConfig cluster_;
  power::EnergyMeter meter_;
};

}  // namespace pas::analysis
