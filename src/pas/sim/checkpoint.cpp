#include "pas/sim/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pas::sim {
namespace {

// Same conventions as the run-cache ledger payloads: one field per
// line, %a hexfloat doubles so a restored checkpoint continues with
// bit-identical arithmetic inputs.
void put_d(std::ostream& out, const char* field, double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  out << field << ' ' << buf << '\n';
}

void put_u(std::ostream& out, const char* field, std::uint64_t x) {
  out << field << ' ' << x << '\n';
}

void put_i(std::ostream& out, const char* field, long long x) {
  out << field << ' ' << x << '\n';
}

bool get_hexdouble(std::istream& in, double* x) {
  std::string value;
  if (!(in >> value)) return false;
  char* end = nullptr;
  *x = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool get_d(std::istream& in, const char* field, double* x) {
  std::string name;
  if (!(in >> name) || name != field) return false;
  return get_hexdouble(in, x);
}

bool get_u(std::istream& in, const char* field, std::uint64_t* x) {
  std::string name;
  return (in >> name >> *x) && name == field;
}

bool get_i(std::istream& in, const char* field, long long* x) {
  std::string name;
  return (in >> name >> *x) && name == field;
}

void put_mix(std::ostream& out, const char* field,
             const InstructionMix& mix) {
  char a[64], b[64], c[64], d[64];
  std::snprintf(a, sizeof a, "%a", mix.reg_ops);
  std::snprintf(b, sizeof b, "%a", mix.l1_ops);
  std::snprintf(c, sizeof c, "%a", mix.l2_ops);
  std::snprintf(d, sizeof d, "%a", mix.mem_ops);
  out << field << ' ' << a << ' ' << b << ' ' << c << ' ' << d << '\n';
}

bool get_mix(std::istream& in, const char* field, InstructionMix* mix) {
  std::string name;
  if (!(in >> name) || name != field) return false;
  return get_hexdouble(in, &mix->reg_ops) && get_hexdouble(in, &mix->l1_ops) &&
         get_hexdouble(in, &mix->l2_ops) && get_hexdouble(in, &mix->mem_ops);
}

void put_activities(std::ostream& out, const char* field,
                    const std::array<double, kNumActivities>& a) {
  out << field;
  char buf[64];
  for (double x : a) {
    std::snprintf(buf, sizeof buf, "%a", x);
    out << ' ' << buf;
  }
  out << '\n';
}

bool get_activities(std::istream& in, const char* field,
                    std::array<double, kNumActivities>* a) {
  std::string name;
  if (!(in >> name) || name != field) return false;
  for (double& x : *a) {
    if (!get_hexdouble(in, &x)) return false;
  }
  return true;
}

}  // namespace

std::string Checkpoint::encode() const {
  std::ostringstream out;
  put_i(out, "nranks", nranks);
  put_i(out, "boundary", boundary);
  put_d(out, "freq", frequency_mhz);
  put_d(out, "comm_dvfs", comm_dvfs_mhz);
  out << "fabric_tx " << fabric_tx_busy.size();
  {
    char buf[64];
    for (double x : fabric_tx_busy) {
      std::snprintf(buf, sizeof buf, "%a", x);
      out << ' ' << buf;
    }
    out << '\n';
  }
  put_u(out, "fabric_bytes", fabric_bytes);
  put_u(out, "fabric_messages", fabric_messages);
  for (int r = 0; r < nranks; ++r) {
    const RankCheckpoint& rc = ranks[static_cast<std::size_t>(r)];
    out << "rank " << r << '\n';
    put_d(out, "now", rc.now);
    put_activities(out, "act", rc.by_activity);
    put_mix(out, "exec", rc.executed);
    out << "fkeys " << rc.activity_by_fkey.size() << '\n';
    for (const auto& [fkey, secs] : rc.activity_by_fkey) {
      out << "fkey " << fkey;
      char buf[64];
      for (double x : secs) {
        std::snprintf(buf, sizeof buf, "%a", x);
        out << ' ' << buf;
      }
      out << '\n';
    }
    put_d(out, "cpu_mhz", rc.cpu_mhz);
    put_i(out, "collective_seq", rc.collective_seq);
    put_i(out, "isend_seq", rc.isend_seq);
    put_d(out, "rx_busy", rc.rx_busy);
    put_d(out, "rank_comm_dvfs", rc.comm_dvfs_mhz);
    put_i(out, "in_comm_phase", rc.in_comm_phase ? 1 : 0);
    put_d(out, "app_mhz", rc.app_mhz);
    put_u(out, "msgs_sent", rc.messages_sent);
    put_u(out, "bytes_sent", rc.bytes_sent);
    put_u(out, "msgs_recv", rc.messages_received);
    put_u(out, "bytes_recv", rc.bytes_received);
    put_u(out, "collectives", rc.collective_calls);
    put_u(out, "retries", rc.sends_retried);
    out << "fault_rng " << rc.fault_rng[0] << ' ' << rc.fault_rng[1] << ' '
        << rc.fault_rng[2] << ' ' << rc.fault_rng[3] << '\n';
    put_u(out, "ledger_ops", rc.ledger_ops);
    out << "mailbox " << rc.mailbox.size() << '\n';
    for (const CheckpointMessage& m : rc.mailbox) {
      char a[64], b[64];
      std::snprintf(a, sizeof a, "%a", m.at_switch);
      std::snprintf(b, sizeof b, "%a", m.rx_ser_s);
      out << "msg " << m.src << ' ' << m.tag << ' ' << m.bytes << ' ' << a
          << ' ' << b << ' ' << m.data.size();
      char buf[64];
      for (double x : m.data) {
        std::snprintf(buf, sizeof buf, "%a", x);
        out << ' ' << buf;
      }
      out << '\n';
    }
    // Kernel blobs are token streams themselves; frame with a byte
    // count so the reader never scans past a malformed blob.
    out << "blob " << rc.kernel_blob.size() << '\n'
        << rc.kernel_blob << '\n';
  }
  out << "end\n";
  return out.str();
}

bool Checkpoint::decode(const std::string& payload, Checkpoint* out) {
  std::istringstream in(payload);
  std::string name;
  long long v = 0;
  if (!get_i(in, "nranks", &v) || v < 1 || v > 0xffff) return false;
  out->nranks = static_cast<int>(v);
  if (!get_i(in, "boundary", &v) || v < 0) return false;
  out->boundary = static_cast<int>(v);
  if (!get_d(in, "freq", &out->frequency_mhz)) return false;
  if (!get_d(in, "comm_dvfs", &out->comm_dvfs_mhz)) return false;
  std::size_t ntx = 0;
  if (!(in >> name >> ntx) || name != "fabric_tx" || ntx > 0xffff)
    return false;
  out->fabric_tx_busy.assign(ntx, 0.0);
  for (double& x : out->fabric_tx_busy) {
    if (!get_hexdouble(in, &x)) return false;
  }
  if (!get_u(in, "fabric_bytes", &out->fabric_bytes)) return false;
  if (!get_u(in, "fabric_messages", &out->fabric_messages)) return false;
  out->ranks.assign(static_cast<std::size_t>(out->nranks), {});
  for (int r = 0; r < out->nranks; ++r) {
    RankCheckpoint& rc = out->ranks[static_cast<std::size_t>(r)];
    int rank = -1;
    if (!(in >> name >> rank) || name != "rank" || rank != r) return false;
    if (!get_d(in, "now", &rc.now)) return false;
    if (!get_activities(in, "act", &rc.by_activity)) return false;
    if (!get_mix(in, "exec", &rc.executed)) return false;
    std::size_t nfkeys = 0;
    if (!(in >> name >> nfkeys) || name != "fkeys" || nfkeys > 0xffff)
      return false;
    long prev_fkey = 0;
    for (std::size_t i = 0; i < nfkeys; ++i) {
      long fkey = 0;
      if (!(in >> name >> fkey) || name != "fkey") return false;
      if (i > 0 && fkey <= prev_fkey) return false;  // sorted + unique
      prev_fkey = fkey;
      ActivitySeconds secs{};
      for (double& x : secs) {
        if (!get_hexdouble(in, &x)) return false;
      }
      rc.activity_by_fkey.emplace(fkey, secs);
    }
    if (!get_d(in, "cpu_mhz", &rc.cpu_mhz)) return false;
    if (!get_i(in, "collective_seq", &v) || v < 0) return false;
    rc.collective_seq = static_cast<int>(v);
    if (!get_i(in, "isend_seq", &v) || v < 0) return false;
    rc.isend_seq = static_cast<int>(v);
    if (!get_d(in, "rx_busy", &rc.rx_busy)) return false;
    if (!get_d(in, "rank_comm_dvfs", &rc.comm_dvfs_mhz)) return false;
    if (!get_i(in, "in_comm_phase", &v) || (v != 0 && v != 1)) return false;
    rc.in_comm_phase = v != 0;
    if (!get_d(in, "app_mhz", &rc.app_mhz)) return false;
    if (!get_u(in, "msgs_sent", &rc.messages_sent)) return false;
    if (!get_u(in, "bytes_sent", &rc.bytes_sent)) return false;
    if (!get_u(in, "msgs_recv", &rc.messages_received)) return false;
    if (!get_u(in, "bytes_recv", &rc.bytes_received)) return false;
    if (!get_u(in, "collectives", &rc.collective_calls)) return false;
    if (!get_u(in, "retries", &rc.sends_retried)) return false;
    if (!(in >> name >> rc.fault_rng[0] >> rc.fault_rng[1] >>
          rc.fault_rng[2] >> rc.fault_rng[3]) ||
        name != "fault_rng")
      return false;
    if (!get_u(in, "ledger_ops", &rc.ledger_ops)) return false;
    std::size_t nmsgs = 0;
    if (!(in >> name >> nmsgs) || name != "mailbox" || nmsgs > 1u << 20)
      return false;
    rc.mailbox.assign(nmsgs, {});
    for (CheckpointMessage& m : rc.mailbox) {
      std::size_t nd = 0;
      if (!(in >> name >> m.src >> m.tag >> m.bytes) || name != "msg")
        return false;
      if (!get_hexdouble(in, &m.at_switch) || !get_hexdouble(in, &m.rx_ser_s))
        return false;
      if (!(in >> nd) || nd > 1u << 26) return false;
      m.data.assign(nd, 0.0);
      for (double& x : m.data) {
        if (!get_hexdouble(in, &x)) return false;
      }
    }
    std::size_t blob_len = 0;
    if (!(in >> name >> blob_len) || name != "blob" || blob_len > 1u << 30)
      return false;
    if (in.get() != '\n') return false;  // exactly one separator
    rc.kernel_blob.resize(blob_len);
    if (blob_len > 0 &&
        !in.read(rc.kernel_blob.data(),
                 static_cast<std::streamsize>(blob_len)))
      return false;
    if (in.get() != '\n') return false;
  }
  if (!(in >> name) || name != "end") return false;
  return true;
}

void BlobWriter::put_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  if (!out_.empty()) out_ += ' ';
  out_ += buf;
}

void BlobWriter::put_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  if (!out_.empty()) out_ += ' ';
  out_ += buf;
}

void BlobWriter::put_doubles(const double* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) put_double(v[i]);
}

bool BlobReader::next_token(std::string* tok) {
  if (!ok_) return false;
  while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n')) ++pos_;
  if (pos_ >= s_.size()) {
    ok_ = false;
    return false;
  }
  const std::size_t start = pos_;
  while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '\n') ++pos_;
  tok->assign(s_, start, pos_ - start);
  return true;
}

bool BlobReader::get_int(long long* v) {
  std::string tok;
  if (!next_token(&tok)) return false;
  char* end = nullptr;
  *v = std::strtoll(tok.c_str(), &end, 10);
  ok_ = end != nullptr && *end == '\0';
  return ok_;
}

bool BlobReader::get_double(double* v) {
  std::string tok;
  if (!next_token(&tok)) return false;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  ok_ = end != nullptr && *end == '\0';
  return ok_;
}

bool BlobReader::get_doubles(double* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!get_double(&v[i])) return false;
  }
  return true;
}

}  // namespace pas::sim
