// Per-rank virtual time with activity accounting.
//
// Every simulated rank owns a VirtualClock. Computation and
// communication advance it; the per-activity breakdown feeds the power
// model (busy CPU burns dynamic power, memory stalls and network waits
// burn less) and the analysis layer (ON-chip vs OFF-chip vs overhead
// time, the decomposition at the heart of the paper).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace pas::sim {

/// What a node is doing while virtual time passes.
enum class Activity : std::size_t {
  kCpu = 0,      ///< ON-chip computation (scales with f_ON)
  kMemory = 1,   ///< OFF-chip access stalls (scale with f_OFF)
  kNetwork = 2,  ///< communication overhead / transfer / wait
  kIdle = 3,     ///< waiting with nothing to do (e.g. barrier slack)
};
inline constexpr std::size_t kNumActivities = 4;

const char* activity_name(Activity a);

class VirtualClock {
 public:
  double now() const { return now_; }

  /// Advances by `dt >= 0` seconds spent in `activity`.
  void advance(double dt, Activity activity);

  /// Jumps forward to absolute time `t` (no-op if `t <= now`),
  /// attributing the gap to `activity` (default: idle wait).
  void advance_to(double t, Activity activity = Activity::kIdle);

  /// Total seconds attributed to `activity` so far.
  double seconds_in(Activity activity) const;

  /// CPU + memory time (the node was executing the application).
  double busy_seconds() const;

  void reset();

  /// Per-activity totals, for checkpoint capture.
  const std::array<double, kNumActivities>& by_activity() const {
    return by_activity_;
  }

  /// Overwrites the full clock state (checkpoint restore).
  void restore(double now, const std::array<double, kNumActivities>& by) {
    now_ = now;
    by_activity_ = by;
  }

  std::string to_string() const;

 private:
  double now_ = 0.0;
  std::array<double, kNumActivities> by_activity_{};
};

}  // namespace pas::sim
