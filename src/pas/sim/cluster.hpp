// The simulated power-aware cluster: N homogeneous DVFS-capable nodes
// behind one switch. Reproduces the paper's testbed (16 Dell Inspiron
// 8600 / Pentium M 1.4 GHz, Fast Ethernet) by default.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pas/fault/fault.hpp"
#include "pas/sim/cpu_model.hpp"
#include "pas/sim/network.hpp"
#include "pas/sim/virtual_clock.hpp"

namespace pas::sim {

struct ClusterConfig {
  int num_nodes = 16;
  CpuConfig cpu = CpuConfig::pentium_m();
  MemoryHierarchyConfig memory = MemoryHierarchyConfig::pentium_m();
  OperatingPointTable operating_points = OperatingPointTable::pentium_m_1400();
  NetworkConfig network = NetworkConfig::fast_ethernet();
  /// Latency of one DVFS operating-point transition (SpeedStep-era
  /// voltage ramp). Charged whenever a per-phase schedule switches.
  double dvfs_transition_s = 10e-6;
  /// Fault injection (stragglers, message loss/delay, node failure);
  /// disabled by default. See pas/fault/fault.hpp and DESIGN.md §7.
  fault::FaultConfig fault;

  /// The paper's 16-node power-aware cluster (section 4.1).
  static ClusterConfig paper_testbed(int num_nodes = 16);

  std::string to_string() const;
};

/// Activity seconds at one operating point — the granularity a
/// per-phase DVFS schedule needs for energy accounting.
using ActivitySeconds = std::array<double, kNumActivities>;

/// Per-node simulation state.
struct NodeState {
  explicit NodeState(const ClusterConfig& cfg)
      : cpu(cfg.cpu, cfg.memory, cfg.operating_points) {}

  CpuModel cpu;
  VirtualClock clock;
  /// Everything this node has executed, for counter derivation.
  InstructionMix executed;
  /// Activity time resolved by the operating point it ran at (key:
  /// frequency in 0.1 MHz units). With static DVFS there is a single
  /// entry; per-phase scheduling spreads time across points.
  std::map<long, ActivitySeconds> activity_by_fkey;

  static long fkey(double mhz) { return static_cast<long>(mhz * 10.0 + 0.5); }

  /// Advances the clock by `dt` of `activity` and attributes it to the
  /// node's current operating point.
  void spend(double dt, Activity activity);

  /// advance_to + per-point attribution.
  void spend_until(double t, Activity activity);
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  int size() const { return cfg_.num_nodes; }

  NodeState& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  const NodeState& node(int i) const {
    return *nodes_.at(static_cast<std::size_t>(i));
  }

  NetworkFabric& fabric() { return fabric_; }
  const NetworkFabric& fabric() const { return fabric_; }

  /// Sets every node's DVFS point (cluster-wide static scheduling, as
  /// in the paper's per-configuration runs).
  void set_frequency_mhz(double mhz);
  double frequency_mhz() const;

  /// Virtual time at which the last node finished (max over clocks).
  double makespan() const;

  /// Resets clocks, executed-work accounting and network state.
  void reset();

 private:
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  NetworkFabric fabric_;
};

}  // namespace pas::sim
