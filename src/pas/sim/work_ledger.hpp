// Charged-work ledger: the frequency-independent record of everything
// one run charged to its virtual clocks.
//
// The paper's central claim (Eq 14/18) is that a workload decomposes
// into ON-chip work (scales with f), OFF-chip work (pinned to the bus
// clock) and parallel overhead — so once one run has been simulated,
// every other DVFS point of the same (kernel, size, N) column is a
// re-pricing, not a re-execution. The ledger captures the inputs of
// that re-pricing: per rank, in program order, every compute block's
// InstructionMix, every raw-seconds charge, and every communication
// event (peer, tag, wire bytes, blocking-ness). Deliberately *no*
// charged seconds are stored for frequency-dependent work — the
// replayer (analysis::Repricer) re-runs the identical arithmetic
// through the same CpuModel/NetworkConfig code at the new operating
// point, which is what makes replayed records bit-identical to full
// simulation rather than merely close (DESIGN.md §10).
//
// Storage is a single contiguous arena of WorkOps grouped by rank,
// addressed through per-rank spans: the replay engines scan it
// cache-linearly, and the (batch) repricer's per-op inner loop never
// chases an outer vector-of-vectors indirection (DESIGN.md §11). The
// recorder appends into fixed-size per-rank chunks so the rank threads
// pay no geometric reallocation copies; take() splices the chunks into
// the arena once, after the pool join.
//
// A ledger is only valid for kernels whose control flow is independent
// of virtual time (npb::Kernel::frequency_invariant_control_flow());
// the recorder additionally declines when it observes a virtual-time
// receive timeout, the one Comm feature whose outcome is
// timing-dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pas/sim/cpu_model.hpp"
#include "pas/sim/virtual_clock.hpp"

namespace pas::sim {

/// One charged operation of one rank, at Comm-call granularity.
struct WorkOp {
  enum class Kind : std::uint8_t {
    kCompute,     ///< Comm::compute(mix)
    kRawSeconds,  ///< Comm::compute_seconds(seconds, activity)
    kSend,        ///< blocking send or isend posting (peer = dst)
    kSendWait,    ///< wait() on an isend (ordinal = isend sequence no.)
    kRecv,        ///< matched receive (peer = src)
    kCommDvfs,    ///< set_comm_dvfs_mhz(mhz)
  };

  InstructionMix mix;               ///< kCompute
  double seconds = 0.0;             ///< kRawSeconds
  double mhz = 0.0;                 ///< kCommDvfs
  std::size_t bytes = 0;            ///< kSend: wire bytes (payload + header)
  int peer = -1;                    ///< kSend dst / kRecv src
  int tag = 0;                      ///< kSend / kRecv
  int ordinal = -1;                 ///< kSendWait: per-rank isend ordinal
  Kind kind = Kind::kCompute;
  Activity activity = Activity::kCpu;  ///< kRawSeconds
  bool blocking = true;             ///< kSend

  static WorkOp compute(const InstructionMix& m) {
    WorkOp op;
    op.kind = Kind::kCompute;
    op.mix = m;
    return op;
  }
  static WorkOp raw_seconds(double s, Activity act) {
    WorkOp op;
    op.kind = Kind::kRawSeconds;
    op.seconds = s;
    op.activity = act;
    return op;
  }
  static WorkOp send(int dst, int tag, std::size_t wire_bytes, bool blocking) {
    WorkOp op;
    op.kind = Kind::kSend;
    op.peer = dst;
    op.tag = tag;
    op.bytes = wire_bytes;
    op.blocking = blocking;
    return op;
  }
  static WorkOp send_wait(int ordinal) {
    WorkOp op;
    op.kind = Kind::kSendWait;
    op.ordinal = ordinal;
    return op;
  }
  static WorkOp recv(int src, int tag) {
    WorkOp op;
    op.kind = Kind::kRecv;
    op.peer = src;
    op.tag = tag;
    return op;
  }
  static WorkOp comm_dvfs(double mhz) {
    WorkOp op;
    op.kind = Kind::kCommDvfs;
    op.mhz = mhz;
    return op;
  }
};

/// The op streams of one recorded run: one flat arena, grouped by rank.
struct WorkLedger {
  /// Position of one rank's stream inside the arena.
  struct Span {
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  int nranks = 0;
  /// Communication-phase DVFS point the run was configured with
  /// (0 = disabled); kept for cache-consistency checks — the ops
  /// themselves re-drive the phase state machine at replay.
  double comm_dvfs_mhz = 0.0;
  /// Kernel verification verdict of the recorded run (frequency-
  /// invariant, so replayed records reuse it verbatim).
  bool verified = false;
  /// False when recording observed a timing-dependent construct; a
  /// non-replayable ledger must never be priced.
  bool replayable = true;
  std::string decline_reason;
  /// Every rank's ops, contiguous and rank-grouped; rank_spans[r]
  /// addresses rank r's stream in that rank's program order.
  std::vector<WorkOp> arena;
  std::vector<Span> rank_spans;

  const WorkOp* rank_ops(int rank) const {
    return arena.data() + rank_spans[static_cast<std::size_t>(rank)].offset;
  }
  std::size_t rank_size(int rank) const {
    return rank_spans[static_cast<std::size_t>(rank)].count;
  }

  std::size_t total_ops() const { return arena.size(); }
  /// Arena footprint (the batch engine's repricer.ledger_bytes metric).
  std::size_t arena_bytes() const { return arena.size() * sizeof(WorkOp); }
};

/// Recording sink owned by mpi::Runtime, mirroring the Tracer pattern:
/// begin() before the rank threads start, take()/abort() after they
/// join. Each rank appends only to its own chunk list and decline slot,
/// so recording needs no locking (the pool join provides the
/// synchronization edges).
class WorkLedgerRecorder {
 public:
  /// Arms recording for a run of `nranks` ranks.
  void begin(int nranks, double comm_dvfs_mhz);

  bool enabled() const { return enabled_; }

  /// Appends `op` to `rank`'s stream. Caller must check enabled().
  void record(int rank, WorkOp op) {
    RankStream& s = streams_[static_cast<std::size_t>(rank)];
    if (s.chunks.empty() || s.chunks.back().size() == kChunkOps) {
      s.chunks.emplace_back();
      s.chunks.back().reserve(kChunkOps);
    }
    s.chunks.back().push_back(op);
  }

  /// Marks the run as non-replayable (e.g. a virtual-time recv
  /// timeout was used). Safe from any rank thread: each rank writes
  /// only its own slot.
  void decline(int rank, std::string reason) {
    decline_reasons_[static_cast<std::size_t>(rank)] = std::move(reason);
  }

  /// Disarms, splices the per-rank chunks into the flat arena and
  /// returns the finished ledger. Per-rank declines are merged
  /// deterministically (lowest rank wins).
  WorkLedger take();

  /// Disarms and discards (failed or abandoned run).
  void abort();

 private:
  /// Chunk capacity: big enough that splicing is a handful of bulk
  /// copies, small enough that an idle rank wastes little.
  static constexpr std::size_t kChunkOps = 4096;
  struct RankStream {
    std::vector<std::vector<WorkOp>> chunks;
  };

  bool enabled_ = false;
  WorkLedger ledger_;
  std::vector<RankStream> streams_;
  std::vector<std::string> decline_reasons_;
};

}  // namespace pas::sim
