// sim::Checkpoint — full mid-run simulator state at a kernel iteration
// boundary, for bit-identical warm-started continuation (DESIGN.md §14).
//
// Capture protocol: a run is *truncated* at boundary B (every rank
// returns from the kernel body after completing iteration B), the pool
// joins, and the runtime then harvests global state with no rank
// in flight — per-node virtual clocks and executed-work accounting,
// CPU operating points, per-rank Comm internals (collective/isend
// sequence numbers, receiver-port occupancy, comm-DVFS phase state,
// stats), fault-stream RNG positions, undelivered mailbox messages,
// network-fabric port occupancy, the WorkLedgerRecorder position, and
// one opaque per-rank kernel-state blob written by the kernel itself.
// Restoring a checkpoint into a fresh run and continuing produces
// records and trace events bit-identical to the uninterrupted run:
// every input of the virtual-time arithmetic is part of the state.
//
// Serialization uses the run-cache text conventions (hex-float doubles,
// one field per line) so round-trips are bit-exact; RunCache stores
// checkpoints as content-hash-keyed `.ckpt` entries (cache v5) with the
// same checksum + quarantine discipline as runs and ledgers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pas/sim/cluster.hpp"

namespace pas::sim {

/// One queued (delivered but not yet received) message; mirrors
/// mpi::Message without depending on the mpi layer.
struct CheckpointMessage {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  double at_switch = 0.0;
  double rx_ser_s = 0.0;
  std::vector<double> data;
};

/// Everything one rank carries across a boundary.
struct RankCheckpoint {
  // Virtual clock.
  double now = 0.0;
  std::array<double, kNumActivities> by_activity{};
  // Node accounting.
  InstructionMix executed;
  std::map<long, ActivitySeconds> activity_by_fkey;
  double cpu_mhz = 0.0;  ///< current operating point (comm-DVFS may differ
                         ///< from the run frequency at a boundary)
  // Comm internals.
  int collective_seq = 0;
  int isend_seq = 0;
  double rx_busy = 0.0;
  double comm_dvfs_mhz = 0.0;
  bool in_comm_phase = false;
  double app_mhz = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collective_calls = 0;
  std::uint64_t sends_retried = 0;
  // Fault stream position (all-zero when fault injection is off).
  std::array<std::uint64_t, 4> fault_rng{};
  // WorkLedgerRecorder position (ops recorded so far; checkpointed runs
  // normally decline recording, so this is a restore-time invariant
  // check rather than replayed state).
  std::uint64_t ledger_ops = 0;
  // In-flight messages addressed to this rank.
  std::vector<CheckpointMessage> mailbox;
  // Opaque kernel state (npb::Kernel::run_ctl save/load).
  std::string kernel_blob;
};

struct Checkpoint {
  int nranks = 0;
  int boundary = 0;  ///< iterations [1, boundary] are complete
  double frequency_mhz = 0.0;
  double comm_dvfs_mhz = 0.0;
  // Fabric state.
  std::vector<double> fabric_tx_busy;
  std::uint64_t fabric_bytes = 0;
  std::uint64_t fabric_messages = 0;
  std::vector<RankCheckpoint> ranks;

  /// Canonical serialized form (hex-float text); decode() parses
  /// exactly these bytes. Returns false on any malformed field.
  std::string encode() const;
  static bool decode(const std::string& payload, Checkpoint* out);
};

/// Text-token writer/reader for kernel state blobs: doubles round-trip
/// bit-exactly (%a), and a short-read is always detectable.
class BlobWriter {
 public:
  void put_int(long long v);
  void put_double(double v);
  void put_doubles(const double* v, std::size_t n);
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class BlobReader {
 public:
  explicit BlobReader(const std::string& blob) : s_(blob) {}
  bool get_int(long long* v);
  bool get_double(double* v);
  bool get_doubles(double* v, std::size_t n);
  bool ok() const { return ok_; }

 private:
  bool next_token(std::string* tok);
  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pas::sim
