#include "pas/sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::sim {

std::string NetworkConfig::to_string() const {
  return pas::util::strf(
      "%.1f Mb/s, switch %.0f us, o_msg %.0f cy, %.1f cy/B, contention %s",
      bandwidth_bps / 1e6, switch_latency_s * 1e6, per_message_cpu_cycles,
      cpu_cycles_per_byte, model_port_contention ? "on" : "off");
}

NetworkFabric::NetworkFabric(int num_nodes, NetworkConfig cfg)
    : cfg_(cfg), tx_busy_(static_cast<std::size_t>(num_nodes), 0.0) {
  if (num_nodes <= 0) throw std::invalid_argument("num_nodes must be > 0");
}

NetworkFabric::Transfer NetworkFabric::transfer(int src, int dst,
                                                std::size_t bytes,
                                                double tx_ready) {
  if (src < 0 || src >= num_nodes() || dst < 0 || dst >= num_nodes())
    throw std::out_of_range("NetworkFabric::transfer: bad node id");

  std::lock_guard<std::mutex> lock(mutex_);
  ++total_messages_;
  total_bytes_ += bytes;

  Transfer t;
  if (src == dst) {
    // Local loopback: a memcpy-scale cost, no link occupancy.
    t.tx_start = tx_ready;
    t.tx_end = tx_ready;
    t.at_switch = tx_ready + 1e-6;
    t.rx_ser_s = 0.0;
    return t;
  }

  const double ser = cfg_.serialization_s(bytes);
  const auto s = static_cast<std::size_t>(src);
  t.rx_ser_s = ser;

  if (!cfg_.model_port_contention) {
    t.tx_start = tx_ready;
    t.tx_end = tx_ready + ser;
    t.at_switch = t.tx_end + cfg_.switch_latency_s;
    return t;
  }

  t.tx_start = std::max(tx_ready, tx_busy_[s]);
  t.tx_end = t.tx_start + ser;
  tx_busy_[s] = t.tx_end;

  // Store-and-forward: the switch begins forwarding once the message is
  // fully received; the receiver port serializes it again — booked by
  // the receiver itself (see header).
  t.at_switch = t.tx_end + cfg_.switch_latency_s;
  return t;
}

std::size_t NetworkFabric::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

std::size_t NetworkFabric::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_messages_;
}

void NetworkFabric::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(tx_busy_.begin(), tx_busy_.end(), 0.0);
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace pas::sim
