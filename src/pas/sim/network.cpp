#include "pas/sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::sim {

std::string NetworkConfig::to_string() const {
  return pas::util::strf(
      "%.1f Mb/s, switch %.0f us, o_msg %.0f cy, %.1f cy/B, contention %s",
      bandwidth_bps / 1e6, switch_latency_s * 1e6, per_message_cpu_cycles,
      cpu_cycles_per_byte, model_port_contention ? "on" : "off");
}

NetworkFabric::NetworkFabric(int num_nodes, NetworkConfig cfg)
    : cfg_(cfg), tx_busy_(static_cast<std::size_t>(num_nodes), 0.0) {
  if (num_nodes <= 0) throw std::invalid_argument("num_nodes must be > 0");
}

NetworkFabric::Transfer NetworkFabric::transfer(int src, int dst,
                                                std::size_t bytes,
                                                double tx_ready) {
  if (src < 0 || src >= num_nodes() || dst < 0 || dst >= num_nodes())
    throw std::out_of_range("NetworkFabric::transfer: bad node id");

  std::lock_guard<std::mutex> lock(mutex_);
  ++total_messages_;
  total_bytes_ += bytes;

  return book_transfer(cfg_, src, dst, cfg_.serialization_s(bytes), tx_ready,
                       tx_busy_[static_cast<std::size_t>(src)]);
}

std::size_t NetworkFabric::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

std::size_t NetworkFabric::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_messages_;
}

void NetworkFabric::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(tx_busy_.begin(), tx_busy_.end(), 0.0);
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace pas::sim
