// DVFS-aware CPU timing model.
//
// Converts a block of work, expressed as instruction counts per memory
// level (an InstructionMix), into virtual seconds at the current
// operating point:
//
//   t = on_chip_cycles / f_ON  +  mem_ops * dram_latency(f_ON)
//
// ON-chip instructions (register, L1, L2) are paced by the CPU clock
// (the paper's CPI_ON / f_ON term); main-memory operations are paced by
// the bus (CPI_OFF / f_OFF), independent of DVFS except for the
// optional low-frequency bus slowdown (Table 6).
#pragma once

#include <string>

#include "pas/sim/memory_hierarchy.hpp"
#include "pas/sim/operating_point.hpp"

namespace pas::sim {

/// A block of work: instruction counts by the level that serves their
/// data. `reg_ops` are pure register/ALU instructions with no data
/// cache access.
struct InstructionMix {
  double reg_ops = 0.0;
  double l1_ops = 0.0;
  double l2_ops = 0.0;
  double mem_ops = 0.0;

  double total() const { return reg_ops + l1_ops + l2_ops + mem_ops; }
  double on_chip() const { return reg_ops + l1_ops + l2_ops; }

  InstructionMix& operator+=(const InstructionMix& o);
  friend InstructionMix operator+(InstructionMix a, const InstructionMix& b) {
    a += b;
    return a;
  }
  friend InstructionMix operator*(InstructionMix m, double k) {
    m.reg_ops *= k;
    m.l1_ops *= k;
    m.l2_ops *= k;
    m.mem_ops *= k;
    return m;
  }

  /// Builds a mix of `ops` data-referencing instructions distributed by
  /// `mix`, plus `reg` register-only instructions.
  static InstructionMix from_level_mix(double ops, const LevelMix& mix,
                                       double reg = 0.0);

  std::string to_string() const;
};

/// Per-level cycles-per-instruction. Defaults approximate the Pentium M
/// with the paper's weighted ON-chip CPI of ~2.19 (Table 6) given the
/// LU distribution 44.66 % register / 53.89 % L1 / 1.45 % L2.
struct CpuConfig {
  double reg_cpi = 1.35;  ///< ALU/FP with ILP overlap
  double l1_cpi = 2.80;
  double l2_cpi = 10.0;
  /// Per-instruction front-end cycles already folded into the numbers
  /// above; kept explicit so experiments can perturb it.
  double issue_overhead_cpi = 0.0;

  static CpuConfig pentium_m() { return CpuConfig{}; }
};

/// A DVFS-capable CPU: holds an operating-point table, a current point,
/// and turns InstructionMix blocks into virtual seconds.
class CpuModel {
 public:
  CpuModel(CpuConfig cfg, MemoryHierarchyConfig mem, OperatingPointTable opts);

  /// Pentium M 1.4 GHz node (Table 2 operating points).
  static CpuModel pentium_m();

  const CpuConfig& config() const { return cfg_; }
  const MemoryHierarchyConfig& memory() const { return mem_; }
  const OperatingPointTable& operating_points() const { return opts_; }

  /// Current operating point (defaults to the highest). Always a
  /// *nominal* table entry — perf_scale does not create new points, so
  /// energy accounting by operating point stays well-defined.
  const OperatingPoint& current() const { return current_; }
  double frequency_hz() const { return current_.frequency_hz * perf_scale_; }

  /// Switches the DVFS point; throws std::out_of_range for unknown mhz.
  void set_frequency_mhz(double mhz);

  /// Straggler skew (fault injection): effective CPU and bus speed as a
  /// fraction of nominal. 1.0 = healthy; 0.75 = 25 % slower. Applied on
  /// top of whatever operating point is selected.
  void set_perf_scale(double scale);
  double perf_scale() const { return perf_scale_; }

  /// ON-chip cycles consumed by `mix` (frequency-independent). Inline:
  /// the batch repricer hoists this out of its per-lane loop, pricing
  /// the cycle count once per op and dividing per lane.
  double on_chip_cycles(const InstructionMix& mix) const {
    const double per_ins_overhead = cfg_.issue_overhead_cpi * mix.total();
    return mix.reg_ops * cfg_.reg_cpi + mix.l1_ops * cfg_.l1_cpi +
           mix.l2_ops * cfg_.l2_cpi + per_ins_overhead;
  }

  /// Virtual seconds for `mix` at the current operating point.
  double time_for(const InstructionMix& mix) const;

  /// Split of time_for into ON-chip and OFF-chip components.
  struct TimeSplit {
    double on_chip_s = 0.0;
    double off_chip_s = 0.0;
    double total() const { return on_chip_s + off_chip_s; }
  };
  TimeSplit time_split(const InstructionMix& mix) const {
    // frequency_hz() folds in perf_scale: a straggler's clock *and* bus
    // run slower, so both terms stretch by 1/scale (the bus-slowdown
    // threshold still sees the effective frequency).
    return split_at(on_chip_cycles(mix), mix.mem_ops, frequency_hz(),
                    seconds_per_mem_op());
  }

  /// The frequency-dependent tail of time_split, with the invariant
  /// inputs (cycle count, mem-op count) already priced: the identical
  /// two operations time_split performs, exposed so a replay lane can
  /// run them against its own (f_hz, seconds-per-mem-op) constants and
  /// stay bit-identical to the live path.
  static TimeSplit split_at(double on_chip_cycles, double mem_ops,
                            double f_hz, double seconds_per_mem_op) {
    TimeSplit split;
    split.on_chip_s = on_chip_cycles / f_hz;
    split.off_chip_s = mem_ops * seconds_per_mem_op;
    return split;
  }

  /// Average ON-chip CPI of a mix (cycles / on-chip instructions).
  double cpi_on(const InstructionMix& mix) const;

  /// Seconds per OFF-chip operation at the current point (CPI_OFF/f_OFF).
  double seconds_per_mem_op() const;

 private:
  CpuConfig cfg_;
  MemoryHierarchyConfig mem_;
  OperatingPointTable opts_;
  OperatingPoint current_;
  double perf_scale_ = 1.0;
};

}  // namespace pas::sim
