// DVFS operating points (frequency / supply-voltage pairs).
//
// The default table reproduces Table 2 of the paper: the five Enhanced
// SpeedStep points of the Pentium M 1.4 GHz used in the 16-node
// power-aware cluster.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pas::sim {

/// One DVFS operating point.
struct OperatingPoint {
  double frequency_hz = 0.0;  ///< CPU core clock (f_ON in the paper)
  double voltage_v = 0.0;     ///< supply voltage at this point

  double frequency_mhz() const { return frequency_hz / 1e6; }
};

/// An ordered set of operating points (ascending frequency).
class OperatingPointTable {
 public:
  OperatingPointTable() = default;
  explicit OperatingPointTable(std::vector<OperatingPoint> points);

  /// Table 2 of the paper: Pentium M 1.4 GHz SpeedStep points.
  ///   1.4 GHz/1.484 V, 1.2/1.436, 1.0/1.308, 0.8/1.180, 0.6/0.956.
  static OperatingPointTable pentium_m_1400();

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const OperatingPoint& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<OperatingPoint>& points() const { return points_; }

  /// Lowest available frequency — the paper's base f0 for speedup.
  const OperatingPoint& lowest() const;
  const OperatingPoint& highest() const;

  /// Finds the point whose frequency matches `mhz` within 0.5 MHz.
  /// Throws std::out_of_range if absent.
  const OperatingPoint& at_mhz(double mhz) const;
  bool has_mhz(double mhz) const;

  /// All frequencies in MHz, ascending (convenience for sweep loops).
  std::vector<double> frequencies_mhz() const;

  std::string to_string() const;

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace pas::sim
