#include "pas/sim/operating_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::sim {

OperatingPointTable::OperatingPointTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.frequency_hz < b.frequency_hz;
            });
}

OperatingPointTable OperatingPointTable::pentium_m_1400() {
  return OperatingPointTable({
      {600e6, 0.956},
      {800e6, 1.180},
      {1000e6, 1.308},
      {1200e6, 1.436},
      {1400e6, 1.484},
  });
}

const OperatingPoint& OperatingPointTable::lowest() const {
  if (points_.empty()) throw std::out_of_range("empty OperatingPointTable");
  return points_.front();
}

const OperatingPoint& OperatingPointTable::highest() const {
  if (points_.empty()) throw std::out_of_range("empty OperatingPointTable");
  return points_.back();
}

const OperatingPoint& OperatingPointTable::at_mhz(double mhz) const {
  for (const OperatingPoint& p : points_) {
    if (std::fabs(p.frequency_mhz() - mhz) < 0.5) return p;
  }
  throw std::out_of_range(
      pas::util::strf("no operating point at %.1f MHz", mhz));
}

bool OperatingPointTable::has_mhz(double mhz) const {
  for (const OperatingPoint& p : points_) {
    if (std::fabs(p.frequency_mhz() - mhz) < 0.5) return true;
  }
  return false;
}

std::vector<double> OperatingPointTable::frequencies_mhz() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const OperatingPoint& p : points_) out.push_back(p.frequency_mhz());
  return out;
}

std::string OperatingPointTable::to_string() const {
  std::string out;
  for (const OperatingPoint& p : points_) {
    out += pas::util::strf("%.0f MHz @ %.3f V\n", p.frequency_mhz(),
                           p.voltage_v);
  }
  return out;
}

}  // namespace pas::sim
