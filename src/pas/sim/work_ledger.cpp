#include "pas/sim/work_ledger.hpp"

#include <stdexcept>
#include <utility>

namespace pas::sim {

void WorkLedgerRecorder::begin(int nranks, double comm_dvfs_mhz) {
  if (nranks < 1)
    throw std::invalid_argument("WorkLedgerRecorder: nranks must be >= 1");
  ledger_ = WorkLedger{};
  ledger_.nranks = nranks;
  ledger_.comm_dvfs_mhz = comm_dvfs_mhz;
  streams_.assign(static_cast<std::size_t>(nranks), {});
  decline_reasons_.assign(static_cast<std::size_t>(nranks), {});
  enabled_ = true;
}

WorkLedger WorkLedgerRecorder::take() {
  enabled_ = false;
  for (const std::string& reason : decline_reasons_) {
    if (!reason.empty()) {
      ledger_.replayable = false;
      ledger_.decline_reason = reason;
      break;
    }
  }
  // Splice: one sizing pass, one allocation, then bulk copies — the
  // rank threads never paid a geometric reallocation.
  std::size_t total = 0;
  for (const RankStream& s : streams_)
    for (const std::vector<WorkOp>& c : s.chunks) total += c.size();
  ledger_.arena.reserve(total);
  ledger_.rank_spans.resize(streams_.size());
  for (std::size_t r = 0; r < streams_.size(); ++r) {
    WorkLedger::Span& span = ledger_.rank_spans[r];
    span.offset = ledger_.arena.size();
    for (const std::vector<WorkOp>& c : streams_[r].chunks)
      ledger_.arena.insert(ledger_.arena.end(), c.begin(), c.end());
    span.count = ledger_.arena.size() - span.offset;
  }
  streams_.clear();
  decline_reasons_.clear();
  return std::exchange(ledger_, WorkLedger{});
}

void WorkLedgerRecorder::abort() {
  enabled_ = false;
  ledger_ = WorkLedger{};
  streams_.clear();
  decline_reasons_.clear();
}

}  // namespace pas::sim
