#include "pas/sim/work_ledger.hpp"

#include <stdexcept>
#include <utility>

namespace pas::sim {

void WorkLedgerRecorder::begin(int nranks, double comm_dvfs_mhz) {
  if (nranks < 1)
    throw std::invalid_argument("WorkLedgerRecorder: nranks must be >= 1");
  ledger_ = WorkLedger{};
  ledger_.nranks = nranks;
  ledger_.comm_dvfs_mhz = comm_dvfs_mhz;
  ledger_.ops.assign(static_cast<std::size_t>(nranks), {});
  decline_reasons_.assign(static_cast<std::size_t>(nranks), {});
  enabled_ = true;
}

WorkLedger WorkLedgerRecorder::take() {
  enabled_ = false;
  for (const std::string& reason : decline_reasons_) {
    if (!reason.empty()) {
      ledger_.replayable = false;
      ledger_.decline_reason = reason;
      break;
    }
  }
  decline_reasons_.clear();
  return std::exchange(ledger_, WorkLedger{});
}

void WorkLedgerRecorder::abort() {
  enabled_ = false;
  ledger_ = WorkLedger{};
  decline_reasons_.clear();
}

}  // namespace pas::sim
