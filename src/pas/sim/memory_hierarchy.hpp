// Memory-hierarchy parameters and the ON-/OFF-chip timing split.
//
// The paper's model divides every workload into ON-chip work (data in
// CPU registers, L1 or L2 — latency counted in CPU cycles, so it scales
// with the DVFS frequency f_ON) and OFF-chip work (main memory — paced
// by the bus clock f_OFF, unaffected by DVFS). This module defines the
// level parameters for the simulated Pentium M node and the analytic
// working-set classifier the NPB kernels use to derive the memory-level
// mix of their inner loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pas::sim {

/// Memory levels in the paper's Table 5 decomposition.
enum class MemoryLevel : std::size_t {
  kRegister = 0,  ///< CPU/register (no data-cache access)
  kL1 = 1,
  kL2 = 2,
  kMemory = 3,  ///< OFF-chip (DRAM)
};
inline constexpr std::size_t kNumMemoryLevels = 4;

const char* memory_level_name(MemoryLevel level);

/// Geometry + latency of one cache level.
struct CacheConfig {
  std::size_t capacity_bytes = 0;
  std::size_t line_bytes = 64;
  std::size_t associativity = 8;
  double access_cycles = 1.0;  ///< hit latency in CPU cycles

  std::size_t num_sets() const {
    return capacity_bytes / (line_bytes * associativity);
  }
};

/// Whole-hierarchy parameters for one node.
struct MemoryHierarchyConfig {
  CacheConfig l1;
  CacheConfig l2;
  /// DRAM access latency (seconds) when the front-side bus runs at full
  /// speed. Independent of CPU frequency — this is the paper's f_OFF.
  double dram_latency_s = 110e-9;
  /// Table 6 of the paper observed a system-specific slowdown of the
  /// bus when the CPU clock drops to 800 MHz or below (140 ns vs
  /// 110 ns per OFF-chip workload). Modeled as a step, optional.
  bool bus_slowdown_at_low_freq = true;
  double slow_dram_latency_s = 140e-9;
  double bus_slowdown_threshold_hz = 900e6;  ///< below this: slow DRAM

  /// Pentium M 1.4 GHz (Dell Inspiron 8600 node of the paper's cluster):
  /// 32 KB 8-way L1D, 1 MB 8-way L2, 64-byte lines.
  static MemoryHierarchyConfig pentium_m();

  /// Effective DRAM latency in seconds given the CPU clock.
  double dram_latency(double cpu_frequency_hz) const;

  std::string to_string() const;
};

/// Analytic working-set classifier.
///
/// Given the footprint of a loop's working set and its reuse pattern,
/// estimates the fraction of data references served by each level.
/// The NPB kernels use this to attach a memory-level mix to each block
/// of real computation (DESIGN.md, decision 5).
struct AccessPattern {
  std::size_t working_set_bytes = 0;  ///< bytes touched per traversal
  std::size_t stride_bytes = 8;       ///< distance between references
  double temporal_reuse = 1.0;  ///< avg times each element is re-referenced
                                ///< while it is still resident
};

struct LevelMix {
  /// Fractions over data references; sums to 1.
  double l1 = 0.0;
  double l2 = 0.0;
  double memory = 0.0;

  double on_chip() const { return l1 + l2; }
};

/// Estimates where the data references of `pattern` are served, for a
/// hierarchy `cfg`. Monotone: larger working sets push references down
/// the hierarchy; unit-stride streaming gets line-grain spatial reuse.
LevelMix classify(const MemoryHierarchyConfig& cfg,
                  const AccessPattern& pattern);

}  // namespace pas::sim
