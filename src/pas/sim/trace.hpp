// Execution tracing for the simulated cluster.
//
// When enabled on a Runtime, every compute block, send and receive is
// recorded as a (node, start, duration, activity, label) interval in
// *virtual* time. Traces export to the Chrome trace-event JSON format
// (load in chrome://tracing or Perfetto) with one row per node — the
// quickest way to see a kernel's communication structure, pipeline
// fill, or a DVFS schedule's phase boundaries.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "pas/sim/virtual_clock.hpp"

namespace pas::sim {

struct TraceEvent {
  int node = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  Activity activity = Activity::kCpu;
  std::string label;
};

/// Thread-safe event sink. Disabled by default; recording while
/// disabled is a cheap no-op.
class Tracer {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(int node, double start_s, double duration_s, Activity activity,
              std::string label);

  /// Snapshot of all recorded events (copy; safe after the run).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events, microsecond
  /// timestamps, tid = node, category = activity).
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace pas::sim
