// Execution tracing for the simulated cluster.
//
// When enabled on a Runtime, every compute block, send and receive is
// recorded as a (node, start, duration, activity, label) interval in
// *virtual* time; instrumented layers additionally record spans with a
// free-form category ("rank" program spans) and zero-duration markers
// ("dvfs" transitions, "fault" events). Traces export to the Chrome
// trace-event JSON format (load in chrome://tracing or Perfetto) with
// one row per node — the quickest way to see a kernel's communication
// structure, pipeline fill, or a DVFS schedule's phase boundaries.
//
// The pas::obs layer builds on this sink: SweepExecutor harvests each
// run's events into per-sweep-point tracks and exports them through
// obs::Exporter (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "pas/obs/write_result.hpp"
#include "pas/sim/virtual_clock.hpp"

namespace pas::sim {

struct TraceEvent {
  int node = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  Activity activity = Activity::kCpu;
  /// Chrome trace category; empty means activity_name(activity).
  std::string category;
  std::string label;
  /// Marker events have no extent (Chrome "i" phase).
  bool instant = false;
};

/// Thread-safe event sink. Disabled by default; recording while
/// disabled is a cheap no-op.
class Tracer {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(int node, double start_s, double duration_s, Activity activity,
              std::string label);

  /// A span with an explicit category (e.g. "rank" program spans).
  void record_span(int node, double start_s, double duration_s,
                   std::string category, std::string label);

  /// A zero-duration marker (e.g. "dvfs" transition, "fault" event).
  void record_marker(int node, double at_s, std::string category,
                     std::string label);

  /// Snapshot of all recorded events (copy; safe after the run).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events / "i" instants,
  /// microsecond timestamps, tid = node, category = activity or the
  /// event's own category).
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`.
  obs::WriteResult write_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

/// Deterministic event order for exports: (node, start, duration,
/// category, label) — per-node virtual-time program order, independent
/// of the wall-clock interleaving that filled the sink.
void sort_events(std::vector<TraceEvent>& events);

/// The canonical Chrome JSON line of one event ("X" or "i" phase) with
/// the given pid/tid. Shared by Tracer::to_chrome_json and the obs
/// exporters so both spell events identically.
std::string chrome_event_json(const TraceEvent& e, int pid, int tid);

}  // namespace pas::sim
