// Switched-cluster network model (the paper's 100 Mb Cisco Catalyst
// 2950 fabric).
//
// Cost model per message, LogGP-flavoured with explicit port occupancy:
//
//   sender CPU  : o_s(f) = (per_message_cycles + bytes*cycles_per_byte)/f
//   sender link : serialization T_ser = bytes / bandwidth
//   switch      : store-and-forward latency L
//   receiver link: T_ser again (store-and-forward), subject to rx-port
//                  availability (incast contention)
//   receiver CPU: o_r(f), same form as o_s
//
// The CPU overheads scale with the DVFS frequency — this is the
// mechanism behind the paper's Table 6 observation that large-message
// communication slows slightly at the lowest CPU clock while wire time
// dominates and is frequency-independent (the basis of Assumption 2,
// w_PO^ON ≈ 0).
//
// Determinism: the sender link's "busy until" state is only ever
// touched by the owning rank's thread (sends are initiated locally), so
// tx booking is deterministic. Receiver-port serialization is NOT
// booked here — the fabric returns the switch-forwarding time and the
// serialization length, and the *receiver* books its own rx port in its
// program order when it matches the message (Comm::complete_recv).
// This keeps incast contention modeled while making results a pure
// function of the program, independent of thread scheduling (DESIGN.md
// decision 1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace pas::sim {

struct NetworkConfig {
  double bandwidth_bps = 100e6 * 0.9;  ///< effective wire bandwidth
  double switch_latency_s = 30e-6;     ///< store-and-forward + wire
  double per_message_cpu_cycles = 2000.0;  ///< each side, per message
  double cpu_cycles_per_byte = 4.0;        ///< each side (stack + copy)
  bool model_port_contention = true;

  /// The paper's testbed fabric: 100 Mb Fast Ethernet, MPICH over TCP.
  static NetworkConfig fast_ethernet() { return NetworkConfig{}; }

  /// Wire serialization time of a message (bandwidth is in bits/s).
  double serialization_s(std::size_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }

  /// CPU overhead seconds on one side at CPU frequency `f_hz`.
  double cpu_overhead_s(std::size_t bytes, double f_hz) const {
    return (per_message_cpu_cycles +
            cpu_cycles_per_byte * static_cast<double>(bytes)) /
           f_hz;
  }

  /// Uncontended end-to-end NIC-to-NIC time (excludes CPU overheads).
  double wire_time_s(std::size_t bytes) const {
    return 2.0 * serialization_s(bytes) + switch_latency_s;
  }

  std::string to_string() const;
};

/// The booked schedule of one message.
struct NetworkTransfer {
  double tx_start = 0.0;   ///< sender NIC begins serializing
  double tx_end = 0.0;     ///< sender link free again
  double at_switch = 0.0;  ///< switch begins forwarding (store&forward)
  double rx_ser_s = 0.0;   ///< receiver-port serialization length
  /// Arrival assuming an idle receiver port; the receiver applies its
  /// own port occupancy on top (Comm::complete_recv).
  double nominal_arrival() const { return at_switch + rx_ser_s; }
};

/// The booking arithmetic of one transfer, shared verbatim between the
/// live fabric (NetworkFabric::transfer) and the replay engines: the
/// repricers must run the *identical* operations to stay bit-identical,
/// and the batch engine prices `ser` — the frequency-invariant wire
/// term — once per op, then books each lane against its own
/// `tx_busy_src` port state. `ser` must be cfg.serialization_s(bytes);
/// it is a parameter purely so that hoisting is possible.
inline NetworkTransfer book_transfer(const NetworkConfig& cfg, int src,
                                     int dst, double ser, double tx_ready,
                                     double& tx_busy_src) {
  NetworkTransfer t;
  if (src == dst) {
    // Local loopback: a memcpy-scale cost, no link occupancy.
    t.tx_start = tx_ready;
    t.tx_end = tx_ready;
    t.at_switch = tx_ready + 1e-6;
    t.rx_ser_s = 0.0;
    return t;
  }

  t.rx_ser_s = ser;

  if (!cfg.model_port_contention) {
    t.tx_start = tx_ready;
    t.tx_end = tx_ready + ser;
    t.at_switch = t.tx_end + cfg.switch_latency_s;
    return t;
  }

  t.tx_start = std::max(tx_ready, tx_busy_src);
  t.tx_end = t.tx_start + ser;
  tx_busy_src = t.tx_end;

  // Store-and-forward: the switch begins forwarding once the message is
  // fully received; the receiver port serializes it again — booked by
  // the receiver itself (see header comment).
  t.at_switch = t.tx_end + cfg.switch_latency_s;
  return t;
}

/// Port-occupancy state for an n-node star (one full-duplex link per
/// node into a non-blocking switch). Thread-safe.
class NetworkFabric {
 public:
  NetworkFabric(int num_nodes, NetworkConfig cfg);

  const NetworkConfig& config() const { return cfg_; }
  int num_nodes() const { return static_cast<int>(tx_busy_.size()); }

  using Transfer = NetworkTransfer;

  /// Books a `bytes`-sized message from `src` to `dst`, whose sender
  /// NIC is ready at virtual time `tx_ready`. Returns the booked
  /// schedule. `src == dst` models a local (shared-memory) copy with
  /// no link usage and a small fixed cost.
  Transfer transfer(int src, int dst, std::size_t bytes, double tx_ready);

  /// Total bytes ever sent through the fabric (diagnostics).
  std::size_t total_bytes() const;
  std::size_t total_messages() const;

  void reset();

  /// Checkpoint capture/restore: per-port "busy until" occupancy plus
  /// the traffic totals. Only meaningful with no transfer in flight
  /// (the runtime calls these after the rank pool has joined).
  struct State {
    std::vector<double> tx_busy;
    std::size_t total_bytes = 0;
    std::size_t total_messages = 0;
  };
  State snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return State{tx_busy_, total_bytes_, total_messages_};
  }
  void restore(const State& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    tx_busy_ = s.tx_busy;
    total_bytes_ = s.total_bytes;
    total_messages_ = s.total_messages;
  }

 private:
  NetworkConfig cfg_;
  mutable std::mutex mutex_;
  std::vector<double> tx_busy_;
  std::size_t total_bytes_ = 0;
  std::size_t total_messages_ = 0;
};

}  // namespace pas::sim
