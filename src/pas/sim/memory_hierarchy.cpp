#include "pas/sim/memory_hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "pas/util/format.hpp"

namespace pas::sim {

const char* memory_level_name(MemoryLevel level) {
  switch (level) {
    case MemoryLevel::kRegister:
      return "CPU/Register";
    case MemoryLevel::kL1:
      return "L1 Cache";
    case MemoryLevel::kL2:
      return "L2 Cache";
    case MemoryLevel::kMemory:
      return "Main Memory";
  }
  return "?";
}

MemoryHierarchyConfig MemoryHierarchyConfig::pentium_m() {
  MemoryHierarchyConfig cfg;
  cfg.l1 = CacheConfig{.capacity_bytes = 32 * 1024,
                       .line_bytes = 64,
                       .associativity = 8,
                       .access_cycles = 3.0};
  cfg.l2 = CacheConfig{.capacity_bytes = 1024 * 1024,
                       .line_bytes = 64,
                       .associativity = 8,
                       .access_cycles = 10.0};
  cfg.dram_latency_s = 110e-9;
  cfg.bus_slowdown_at_low_freq = true;
  cfg.slow_dram_latency_s = 140e-9;
  cfg.bus_slowdown_threshold_hz = 900e6;
  return cfg;
}

double MemoryHierarchyConfig::dram_latency(double cpu_frequency_hz) const {
  if (bus_slowdown_at_low_freq && cpu_frequency_hz < bus_slowdown_threshold_hz)
    return slow_dram_latency_s;
  return dram_latency_s;
}

std::string MemoryHierarchyConfig::to_string() const {
  return pas::util::strf(
      "L1 %zuKB/%zu-way/%.0fcy, L2 %zuKB/%zu-way/%.0fcy, DRAM %.0fns"
      " (%.0fns below %.0fMHz)",
      l1.capacity_bytes / 1024, l1.associativity, l1.access_cycles,
      l2.capacity_bytes / 1024, l2.associativity, l2.access_cycles,
      dram_latency_s * 1e9,
      bus_slowdown_at_low_freq ? slow_dram_latency_s * 1e9 : dram_latency_s * 1e9,
      bus_slowdown_threshold_hz / 1e6);
}

LevelMix classify(const MemoryHierarchyConfig& cfg,
                  const AccessPattern& pattern) {
  LevelMix mix;
  const double ws = static_cast<double>(pattern.working_set_bytes);
  const double l1_cap = static_cast<double>(cfg.l1.capacity_bytes);
  const double l2_cap = static_cast<double>(cfg.l2.capacity_bytes);

  // Fraction of the working set resident in each level. A soft
  // occupancy curve (cap/ws clipped to 1) approximates LRU behaviour on
  // a scanning workload: once the set exceeds a level, the resident
  // fraction of any given traversal decays as cap/ws.
  const double fit_l1 = ws <= l1_cap ? 1.0 : l1_cap / ws;
  const double fit_l2 = ws <= l2_cap ? 1.0 : l2_cap / ws;

  // Spatial reuse: with stride s and line L, only ceil(s/L)^-1 ... i.e.
  // one miss per line; the other L/s references on the line hit L1.
  const double line = static_cast<double>(cfg.l1.line_bytes);
  const double stride = std::max<double>(1.0, static_cast<double>(pattern.stride_bytes));
  const double refs_per_line = std::max(1.0, line / stride);

  // Temporal reuse keeps re-references in L1 while resident.
  const double reuse = std::max(1.0, pattern.temporal_reuse);

  // First-touch misses per traversal: 1/refs_per_line of references go
  // past L1 when the set does not fit; re-references (reuse-1 of reuse)
  // hit L1 while resident.
  const double first_touch = 1.0 / (refs_per_line * reuse);

  // References that must come from beyond L1 / beyond L2.
  const double beyond_l1 = first_touch * (1.0 - fit_l1);
  const double beyond_l2 = first_touch * (1.0 - fit_l2);

  mix.memory = std::clamp(beyond_l2, 0.0, 1.0);
  mix.l2 = std::clamp(beyond_l1 - beyond_l2, 0.0, 1.0 - mix.memory);
  mix.l1 = 1.0 - mix.l2 - mix.memory;
  return mix;
}

}  // namespace pas::sim
