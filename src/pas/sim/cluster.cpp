#include "pas/sim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::sim {

void NodeState::spend(double dt, Activity activity) {
  if (dt <= 0.0) return;
  clock.advance(dt, activity);
  activity_by_fkey[fkey(cpu.current().frequency_mhz())]
                  [static_cast<std::size_t>(activity)] += dt;
}

void NodeState::spend_until(double t, Activity activity) {
  spend(t - clock.now(), activity);
}

ClusterConfig ClusterConfig::paper_testbed(int num_nodes) {
  ClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  return cfg;
}

std::string ClusterConfig::to_string() const {
  return pas::util::strf("%d nodes; mem: %s; net: %s", num_nodes,
                         memory.to_string().c_str(),
                         network.to_string().c_str());
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), fabric_(cfg_.num_nodes, cfg_.network) {
  if (cfg_.num_nodes <= 0)
    throw std::invalid_argument("ClusterConfig.num_nodes must be > 0");
  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int i = 0; i < cfg_.num_nodes; ++i)
    nodes_.push_back(std::make_unique<NodeState>(cfg_));
}

void Cluster::set_frequency_mhz(double mhz) {
  for (auto& n : nodes_) n->cpu.set_frequency_mhz(mhz);
}

double Cluster::frequency_mhz() const {
  return nodes_.front()->cpu.current().frequency_mhz();
}

double Cluster::makespan() const {
  double t = 0.0;
  for (const auto& n : nodes_) t = std::max(t, n->clock.now());
  return t;
}

void Cluster::reset() {
  for (auto& n : nodes_) {
    n->clock.reset();
    n->executed = InstructionMix{};
    n->activity_by_fkey.clear();
    n->cpu.set_perf_scale(1.0);
  }
  fabric_.reset();
}

}  // namespace pas::sim
