// Set-associative LRU cache simulator.
//
// Used by the LMBENCH-like memory probe (Table 6) to realize per-level
// latencies with a real cache, by the PAPI-like counter tests, and to
// validate the analytic working-set classifier in
// memory_hierarchy.hpp against ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "pas/sim/memory_hierarchy.hpp"

namespace pas::sim {

/// One set-associative cache with true-LRU replacement.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up the line containing `addr`; installs it on a miss.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Hit test without installing (no state change).
  bool contains(std::uint64_t addr) const;

  void flush();

  const CacheConfig& config() const { return cfg_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return accesses_ - hits_; }
  double miss_rate() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(misses()) /
                                static_cast<double>(accesses_);
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< larger = more recently used
  };

  std::uint64_t line_of(std::uint64_t addr) const { return addr / cfg_.line_bytes; }

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Way> ways_;  ///< num_sets_ * associativity, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
};

/// Two-level inclusive hierarchy: classifies each access by the level
/// that serves it, maintaining both caches.
class CacheHierarchySim {
 public:
  explicit CacheHierarchySim(const MemoryHierarchyConfig& cfg);

  /// Simulates a data access; returns the serving level (kL1, kL2 or
  /// kMemory — never kRegister).
  MemoryLevel access(std::uint64_t addr);

  void flush();

  const SetAssocCache& l1() const { return l1_; }
  const SetAssocCache& l2() const { return l2_; }

  std::uint64_t served_by(MemoryLevel level) const;
  std::uint64_t total_accesses() const { return l1_.accesses(); }

  /// Observed fraction of accesses served by each level.
  LevelMix observed_mix() const;

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  std::uint64_t served_[kNumMemoryLevels] = {};
};

}  // namespace pas::sim
