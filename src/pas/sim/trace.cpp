#include "pas/sim/trace.hpp"

#include <algorithm>
#include <tuple>

#include "pas/util/format.hpp"

namespace pas::sim {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void Tracer::record(int node, double start_s, double duration_s,
                    Activity activity, std::string label) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{node, start_s, duration_s, activity,
                               std::string(), std::move(label), false});
}

void Tracer::record_span(int node, double start_s, double duration_s,
                         std::string category, std::string label) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{node, start_s, duration_s, Activity::kCpu,
                               std::move(category), std::move(label), false});
}

void Tracer::record_marker(int node, double at_s, std::string category,
                           std::string label) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{node, at_s, 0.0, Activity::kCpu,
                               std::move(category), std::move(label), true});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void sort_events(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.node, a.start_s, a.duration_s, a.category,
                              a.label) < std::tie(b.node, b.start_s,
                                                  b.duration_s, b.category,
                                                  b.label);
            });
}

std::string chrome_event_json(const TraceEvent& e, int pid, int tid) {
  const char* cat =
      e.category.empty() ? activity_name(e.activity) : e.category.c_str();
  if (e.instant) {
    return pas::util::strf(
        R"({"name":"%s","cat":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d})",
        json_escape(e.label).c_str(), json_escape(cat).c_str(), e.start_s * 1e6,
        pid, tid);
  }
  return pas::util::strf(
      R"({"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d})",
      json_escape(e.label).c_str(), json_escape(cat).c_str(), e.start_s * 1e6,
      e.duration_s * 1e6, pid, tid);
}

std::string Tracer::to_chrome_json() const {
  std::vector<TraceEvent> sorted = events();
  sort_events(sorted);
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : sorted) {
    if (!first) out += ",\n";
    first = false;
    out += chrome_event_json(e, /*pid=*/0, /*tid=*/e.node);
  }
  out += "\n]\n";
  return out;
}

obs::WriteResult Tracer::write_chrome_json(const std::string& path) const {
  return obs::write_text_file(path, to_chrome_json());
}

}  // namespace pas::sim
