#include "pas/sim/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "pas/util/format.hpp"
#include "pas/util/log.hpp"

namespace pas::sim {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void Tracer::record(int node, double start_s, double duration_s,
                    Activity activity, std::string label) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{node, start_s, duration_s, activity,
                               std::move(label)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string Tracer::to_chrome_json() const {
  std::vector<TraceEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.start_s < b.start_s;
            });
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : sorted) {
    if (!first) out += ",\n";
    first = false;
    out += pas::util::strf(
        R"({"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d})",
        json_escape(e.label).c_str(), activity_name(e.activity),
        e.start_s * 1e6, e.duration_s * 1e6, e.node);
  }
  out += "\n]\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  errno = 0;
  std::ofstream f(path);
  if (!f) {
    pas::util::log_warn("write_chrome_json: cannot open " + path + ": " +
                        (errno != 0 ? std::strerror(errno)
                                    : "unknown I/O error"));
    return false;
  }
  f << to_chrome_json();
  f.flush();
  if (!f) {
    pas::util::log_warn("write_chrome_json: write to " + path + " failed: " +
                        (errno != 0 ? std::strerror(errno)
                                    : "unknown I/O error"));
    return false;
  }
  return true;
}

}  // namespace pas::sim
