// SMARTS-style systematic-sampling support (DESIGN.md §14).
//
// A sampled run executes only a deterministic subset of a kernel's
// top-level iterations in detail — a warming window of `warmup_iters`
// iterations followed by every `sample_period`-th iteration — and
// skips the rest entirely (no charges, no messages; every rank shares
// the same plan, so communication stays matched). The SampleProbe
// collects a per-rank state snapshot at every detailed iteration
// boundary; analysis::SampledEstimator turns the deltas between
// consecutive snapshots into per-iteration costs, extrapolates the
// skipped iterations, and reports a confidence interval with the
// estimate. Skipped iterations advance no virtual time, so the delta
// between consecutive detailed boundaries is exactly the cost of one
// detailed iteration.
//
// The probe is write-only from the rank threads: each rank appends to
// its own pre-sized lane (the pool join publishes the data), mirroring
// the WorkLedgerRecorder pattern.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "pas/sim/cluster.hpp"

namespace pas::sim {

/// Per-rank state snapshot at one iteration boundary. All fields are
/// cumulative since run start (deltas are taken by the estimator).
struct RankSample {
  int iter = 0;  ///< 1-based iteration just completed (start baseline: 0
                 ///< or the resume boundary)
  double now = 0.0;
  std::array<double, kNumActivities> by_activity{};
  InstructionMix executed;
  std::map<long, ActivitySeconds> activity_by_fkey;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collective_calls = 0;
  std::uint64_t sends_retried = 0;
};

/// Boundary-snapshot sink of one sampled run. begin() before the rank
/// bodies start; each rank records only into its own lane.
class SampleProbe {
 public:
  void begin(int nranks) {
    lanes_.assign(static_cast<std::size_t>(nranks), {});
  }

  /// Appends `s` to `rank`'s lane. Called by mpi::Comm::sample_boundary
  /// from the rank's own thread; boundaries arrive in iteration order.
  void record(int rank, RankSample s) {
    lanes_[static_cast<std::size_t>(rank)].push_back(std::move(s));
  }

  int nranks() const { return static_cast<int>(lanes_.size()); }
  const std::vector<RankSample>& lane(int rank) const {
    return lanes_[static_cast<std::size_t>(rank)];
  }

 private:
  std::vector<std::vector<RankSample>> lanes_;
};

}  // namespace pas::sim
