#include "pas/sim/cpu_model.hpp"

#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::sim {

InstructionMix& InstructionMix::operator+=(const InstructionMix& o) {
  reg_ops += o.reg_ops;
  l1_ops += o.l1_ops;
  l2_ops += o.l2_ops;
  mem_ops += o.mem_ops;
  return *this;
}

InstructionMix InstructionMix::from_level_mix(double ops, const LevelMix& mix,
                                              double reg) {
  InstructionMix m;
  m.reg_ops = reg;
  m.l1_ops = ops * mix.l1;
  m.l2_ops = ops * mix.l2;
  m.mem_ops = ops * mix.memory;
  return m;
}

std::string InstructionMix::to_string() const {
  return pas::util::strf("reg=%.3g l1=%.3g l2=%.3g mem=%.3g", reg_ops, l1_ops,
                         l2_ops, mem_ops);
}

CpuModel::CpuModel(CpuConfig cfg, MemoryHierarchyConfig mem,
                   OperatingPointTable opts)
    : cfg_(cfg), mem_(mem), opts_(std::move(opts)), current_(opts_.highest()) {}

CpuModel CpuModel::pentium_m() {
  return CpuModel(CpuConfig::pentium_m(), MemoryHierarchyConfig::pentium_m(),
                  OperatingPointTable::pentium_m_1400());
}

void CpuModel::set_frequency_mhz(double mhz) { current_ = opts_.at_mhz(mhz); }

void CpuModel::set_perf_scale(double scale) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument(
        pas::util::strf("perf_scale %g out of (0, 1]", scale));
  perf_scale_ = scale;
}

double CpuModel::time_for(const InstructionMix& mix) const {
  return time_split(mix).total();
}

double CpuModel::cpi_on(const InstructionMix& mix) const {
  const double on = mix.on_chip();
  if (on <= 0.0) return 0.0;
  return on_chip_cycles(mix) / on;
}

double CpuModel::seconds_per_mem_op() const {
  return mem_.dram_latency(frequency_hz()) / perf_scale_;
}

}  // namespace pas::sim
