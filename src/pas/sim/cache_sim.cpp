#include "pas/sim/cache_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pas::sim {

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : cfg_(cfg), num_sets_(cfg.num_sets()) {
  if (cfg_.line_bytes == 0 || cfg_.associativity == 0 || num_sets_ == 0)
    throw std::invalid_argument("degenerate CacheConfig");
  ways_.resize(num_sets_ * cfg_.associativity);
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  ++tick_;
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;
  Way* base = &ways_[set * cfg_.associativity];

  Way* victim = base;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;
  const Way* base = &ways_[set * cfg_.associativity];
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  accesses_ = 0;
  hits_ = 0;
}

CacheHierarchySim::CacheHierarchySim(const MemoryHierarchyConfig& cfg)
    : l1_(cfg.l1), l2_(cfg.l2) {}

MemoryLevel CacheHierarchySim::access(std::uint64_t addr) {
  if (l1_.access(addr)) {
    ++served_[static_cast<std::size_t>(MemoryLevel::kL1)];
    return MemoryLevel::kL1;
  }
  if (l2_.access(addr)) {
    ++served_[static_cast<std::size_t>(MemoryLevel::kL2)];
    return MemoryLevel::kL2;
  }
  ++served_[static_cast<std::size_t>(MemoryLevel::kMemory)];
  return MemoryLevel::kMemory;
}

void CacheHierarchySim::flush() {
  l1_.flush();
  l2_.flush();
  std::fill(std::begin(served_), std::end(served_), 0);
}

std::uint64_t CacheHierarchySim::served_by(MemoryLevel level) const {
  return served_[static_cast<std::size_t>(level)];
}

LevelMix CacheHierarchySim::observed_mix() const {
  LevelMix mix;
  const double n = static_cast<double>(total_accesses());
  if (n == 0.0) return mix;
  mix.l1 = static_cast<double>(served_by(MemoryLevel::kL1)) / n;
  mix.l2 = static_cast<double>(served_by(MemoryLevel::kL2)) / n;
  mix.memory = static_cast<double>(served_by(MemoryLevel::kMemory)) / n;
  return mix;
}

}  // namespace pas::sim
