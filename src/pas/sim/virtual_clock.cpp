#include "pas/sim/virtual_clock.hpp"

#include <cassert>

#include "pas/util/format.hpp"

namespace pas::sim {

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::kCpu:
      return "cpu";
    case Activity::kMemory:
      return "memory";
    case Activity::kNetwork:
      return "network";
    case Activity::kIdle:
      return "idle";
  }
  return "?";
}

void VirtualClock::advance(double dt, Activity activity) {
  assert(dt >= 0.0);
  if (dt <= 0.0) return;
  now_ += dt;
  by_activity_[static_cast<std::size_t>(activity)] += dt;
}

void VirtualClock::advance_to(double t, Activity activity) {
  if (t > now_) advance(t - now_, activity);
}

double VirtualClock::seconds_in(Activity activity) const {
  return by_activity_[static_cast<std::size_t>(activity)];
}

double VirtualClock::busy_seconds() const {
  return seconds_in(Activity::kCpu) + seconds_in(Activity::kMemory);
}

void VirtualClock::reset() {
  now_ = 0.0;
  by_activity_.fill(0.0);
}

std::string VirtualClock::to_string() const {
  return pas::util::strf(
      "t=%.6fs (cpu %.6f, mem %.6f, net %.6f, idle %.6f)", now_,
      seconds_in(Activity::kCpu), seconds_in(Activity::kMemory),
      seconds_in(Activity::kNetwork), seconds_in(Activity::kIdle));
}

}  // namespace pas::sim
