// CounterSet — the simulated-node analogue of a PAPI event set, plus
// the paper's Table 5 workload-decomposition derivation.
//
// Events can be fed two ways:
//  * record_mix() — from the instruction mix a rank actually executed
//    (what Comm::compute() accumulates into NodeState::executed);
//  * record_access() — from a CacheHierarchySim replay (ground-truth
//    cache behaviour for validation and the membench probe).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "pas/counters/events.hpp"
#include "pas/sim/cache_sim.hpp"
#include "pas/sim/cpu_model.hpp"

namespace pas::counters {

/// Table 5 output: instructions by the memory level serving their data.
struct WorkloadDecomposition {
  double reg_ins = 0.0;  ///< CPU/Register
  double l1_ins = 0.0;
  double l2_ins = 0.0;
  double mem_ins = 0.0;  ///< OFF-chip (main memory)

  double total() const { return reg_ins + l1_ins + l2_ins + mem_ins; }
  double on_chip() const { return reg_ins + l1_ins + l2_ins; }

  /// ON-chip fraction of the total workload (paper: 98.8 % for LU).
  double on_chip_fraction() const;

  /// Within-ON-chip weights used to compute the weighted CPI_ON
  /// (paper: 44.66 % reg, 53.89 % L1, 1.45 % L2 for LU).
  double reg_weight() const;
  double l1_weight() const;
  double l2_weight() const;

  /// As an InstructionMix (for feeding the CPU model / predictors).
  sim::InstructionMix to_mix() const;

  std::string to_string() const;
};

class CounterSet {
 public:
  void reset();

  /// Accumulates the PAPI events implied by an executed mix: register
  /// ops issue no data-cache access; L1/L2/memory-served ops access L1;
  /// L2/memory-served ops miss L1 and access L2; memory-served ops
  /// miss L2.
  void record_mix(const sim::InstructionMix& mix);

  /// Accumulates one data access served by `level` (plus the implied
  /// instruction), as a cache-simulator replay produces.
  void record_access(sim::MemoryLevel level);

  /// Accumulates `n` register-only instructions.
  void record_register_ops(double n);

  double count(Event e) const {
    return counts_[static_cast<std::size_t>(e)];
  }

  /// Applies the Table 5 formulas to the current counts.
  WorkloadDecomposition decompose() const;

  std::string to_string() const;

 private:
  std::array<double, kNumEvents> counts_{};
};

}  // namespace pas::counters
