#include "pas/counters/events.hpp"

namespace pas::counters {

const char* event_name(Event e) {
  switch (e) {
    case Event::kTotalInstructions:
      return "PAPI_TOT_INS";
    case Event::kL1DataAccesses:
      return "PAPI_L1_DCA";
    case Event::kL1DataMisses:
      return "PAPI_L1_DCM";
    case Event::kL2TotalAccesses:
      return "PAPI_L2_TCA";
    case Event::kL2TotalMisses:
      return "PAPI_L2_TCM";
  }
  return "PAPI_?";
}

}  // namespace pas::counters
