#include "pas/counters/counter_set.hpp"

#include <algorithm>

#include "pas/util/format.hpp"

namespace pas::counters {

double WorkloadDecomposition::on_chip_fraction() const {
  const double t = total();
  return t > 0.0 ? on_chip() / t : 0.0;
}

double WorkloadDecomposition::reg_weight() const {
  const double on = on_chip();
  return on > 0.0 ? reg_ins / on : 0.0;
}

double WorkloadDecomposition::l1_weight() const {
  const double on = on_chip();
  return on > 0.0 ? l1_ins / on : 0.0;
}

double WorkloadDecomposition::l2_weight() const {
  const double on = on_chip();
  return on > 0.0 ? l2_ins / on : 0.0;
}

sim::InstructionMix WorkloadDecomposition::to_mix() const {
  sim::InstructionMix mix;
  mix.reg_ops = reg_ins;
  mix.l1_ops = l1_ins;
  mix.l2_ops = l2_ins;
  mix.mem_ops = mem_ins;
  return mix;
}

std::string WorkloadDecomposition::to_string() const {
  return pas::util::strf(
      "reg %.3g, L1 %.3g, L2 %.3g, mem %.3g (ON-chip %.1f%%)", reg_ins,
      l1_ins, l2_ins, mem_ins, on_chip_fraction() * 100.0);
}

void CounterSet::reset() { counts_.fill(0.0); }

void CounterSet::record_mix(const sim::InstructionMix& mix) {
  auto& c = counts_;
  c[static_cast<std::size_t>(Event::kTotalInstructions)] += mix.total();
  const double dca = mix.l1_ops + mix.l2_ops + mix.mem_ops;
  c[static_cast<std::size_t>(Event::kL1DataAccesses)] += dca;
  const double l1_miss = mix.l2_ops + mix.mem_ops;
  c[static_cast<std::size_t>(Event::kL1DataMisses)] += l1_miss;
  c[static_cast<std::size_t>(Event::kL2TotalAccesses)] += l1_miss;
  c[static_cast<std::size_t>(Event::kL2TotalMisses)] += mix.mem_ops;
}

void CounterSet::record_access(sim::MemoryLevel level) {
  sim::InstructionMix mix;
  switch (level) {
    case sim::MemoryLevel::kRegister:
      mix.reg_ops = 1.0;
      break;
    case sim::MemoryLevel::kL1:
      mix.l1_ops = 1.0;
      break;
    case sim::MemoryLevel::kL2:
      mix.l2_ops = 1.0;
      break;
    case sim::MemoryLevel::kMemory:
      mix.mem_ops = 1.0;
      break;
  }
  record_mix(mix);
}

void CounterSet::record_register_ops(double n) {
  sim::InstructionMix mix;
  mix.reg_ops = n;
  record_mix(mix);
}

WorkloadDecomposition CounterSet::decompose() const {
  WorkloadDecomposition d;
  const double tot = count(Event::kTotalInstructions);
  const double dca = count(Event::kL1DataAccesses);
  const double dcm = count(Event::kL1DataMisses);
  const double tca = count(Event::kL2TotalAccesses);
  const double tcm = count(Event::kL2TotalMisses);
  // Table 5 of the paper, clamped so counter noise cannot go negative.
  d.reg_ins = std::max(0.0, tot - dca);
  d.l1_ins = std::max(0.0, dca - dcm);
  d.l2_ins = std::max(0.0, tca - tcm);
  d.mem_ins = std::max(0.0, tcm);
  return d;
}

std::string CounterSet::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    out += pas::util::strf("%s=%.6g ", event_name(static_cast<Event>(i)),
                           counts_[i]);
  }
  return out;
}

}  // namespace pas::counters
