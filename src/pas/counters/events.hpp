// PAPI-like hardware event definitions.
//
// The paper (§5.2, Table 5) derives the workload decomposition from
// five PAPI presets. We reproduce the same event vocabulary over the
// simulated node so the Table 5 derivation formulas apply verbatim:
//
//   CPU/Register = PAPI_TOT_INS - PAPI_L1_DCA
//   L1 Cache     = PAPI_L1_DCA  - PAPI_L1_DCM
//   L2 Cache     = PAPI_L2_TCA  - PAPI_L2_TCM
//   Main Memory  = PAPI_L2_TCM
#pragma once

#include <cstddef>

namespace pas::counters {

enum class Event : std::size_t {
  kTotalInstructions = 0,  ///< PAPI_TOT_INS
  kL1DataAccesses = 1,     ///< PAPI_L1_DCA
  kL1DataMisses = 2,       ///< PAPI_L1_DCM
  kL2TotalAccesses = 3,    ///< PAPI_L2_TCA
  kL2TotalMisses = 4,      ///< PAPI_L2_TCM
};
inline constexpr std::size_t kNumEvents = 5;

/// PAPI preset name, e.g. "PAPI_TOT_INS".
const char* event_name(Event e);

}  // namespace pas::counters
