#include "pas/mpi/runtime.hpp"

#include <exception>
#include <future>
#include <stdexcept>

#include "pas/obs/metrics.hpp"
#include "pas/util/format.hpp"

namespace pas::mpi {

double RunResult::total_cpu_seconds() const {
  double t = 0.0;
  for (const RankReport& r : ranks) t += r.cpu_seconds;
  return t;
}

double RunResult::total_memory_seconds() const {
  double t = 0.0;
  for (const RankReport& r : ranks) t += r.memory_seconds;
  return t;
}

double RunResult::total_network_seconds() const {
  double t = 0.0;
  for (const RankReport& r : ranks) t += r.network_seconds;
  return t;
}

double RunResult::total_busy_seconds() const {
  return total_cpu_seconds() + total_memory_seconds();
}

double RunResult::mean_network_seconds() const {
  if (ranks.empty()) return 0.0;
  return total_network_seconds() / static_cast<double>(ranks.size());
}

std::string RunResult::to_string() const {
  return pas::util::strf(
      "N=%d f=%.0fMHz: T=%.4fs (cpu %.4f, mem %.4f, net %.4f per-rank mean)",
      nranks, frequency_mhz,
      makespan,
      nranks ? total_cpu_seconds() / nranks : 0.0,
      nranks ? total_memory_seconds() / nranks : 0.0,
      mean_network_seconds());
}

Runtime::Runtime(sim::ClusterConfig cfg)
    : cfg_(std::move(cfg)), cluster_(cfg_), rank_pool_(cfg_.num_nodes) {
  mailboxes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int i = 0; i < cfg_.num_nodes; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  // On deadlock the monitor wakes every blocked receiver so each rank
  // unwinds with its own DeadlockError (notify needs no mailbox lock).
  monitor_.set_wake_all([this] {
    for (auto& mb : mailboxes_) mb->wake();
  });
}

std::exception_ptr Runtime::pick_error(
    const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr primary, deadlock;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    bool is_deadlock = false;
    try {
      std::rethrow_exception(e);
    } catch (const DeadlockError&) {
      is_deadlock = true;
    } catch (...) {
    }
    if (!is_deadlock) {
      if (!primary) primary = e;
    } else if (!deadlock) {
      deadlock = e;
    }
  }
  return primary ? primary : deadlock;
}

RunResult Runtime::run(int nranks, double frequency_mhz, const RankBody& body) {
  return run(nranks, frequency_mhz, body, nullptr, nullptr);
}

RunResult Runtime::run(int nranks, double frequency_mhz, const RankBody& body,
                       const sim::Checkpoint* restore,
                       sim::Checkpoint* capture) {
  if (nranks < 1 || nranks > cfg_.num_nodes)
    throw std::invalid_argument(pas::util::strf(
        "nranks=%d out of range [1, %d]", nranks, cfg_.num_nodes));
  if ((restore != nullptr || capture != nullptr) && ledger_recorder_.enabled())
    throw std::logic_error(
        "checkpoint hooks are incompatible with an armed ledger recorder");
  if (restore != nullptr && restore->nranks != nranks)
    throw std::invalid_argument(pas::util::strf(
        "checkpoint is for %d ranks, run wants %d", restore->nranks, nranks));

  static obs::Counter& runs = obs::registry().counter("mpi.runs");
  runs.add();

  cluster_.reset();
  cluster_.set_frequency_mhz(frequency_mhz);
  for (auto& mb : mailboxes_) {
    if (mb->pending() != 0) {
      // An aborted run legitimately strands undelivered messages; a
      // *successful* run that leaves some is still a bug in the body.
      if (!last_run_failed_)
        throw std::logic_error("stale messages from a previous run");
      mb->clear();
    }
  }

  const fault::FaultPlan plan(cfg_.fault, nranks, fault_attempt_);
  if (plan.active()) {
    for (int r = 0; r < nranks; ++r)
      cluster_.node(r).cpu.set_perf_scale(plan.speed_factor(r));
  }
  monitor_.begin_run(nranks);

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    comms.push_back(
        std::unique_ptr<Comm>(new Comm(*this, r, nranks, plan.rank_faults(r))));

  if (restore != nullptr) {
    // Re-impose the checkpointed state on the freshly reset cluster.
    // Everything a rank body can observe is overwritten here, so the
    // continuation computes with bit-identical inputs.
    if (static_cast<int>(restore->fabric_tx_busy.size()) != cfg_.num_nodes)
      throw std::invalid_argument("checkpoint fabric size mismatch");
    cluster_.fabric().restore({restore->fabric_tx_busy,
                               restore->fabric_bytes,
                               restore->fabric_messages});
    for (int r = 0; r < nranks; ++r) {
      const sim::RankCheckpoint& rc =
          restore->ranks[static_cast<std::size_t>(r)];
      sim::NodeState& node = cluster_.node(r);
      node.clock.restore(rc.now, rc.by_activity);
      node.executed = rc.executed;
      node.activity_by_fkey = rc.activity_by_fkey;
      node.cpu.set_frequency_mhz(rc.cpu_mhz);
      Comm& c = *comms[static_cast<std::size_t>(r)];
      c.collective_seq_ = rc.collective_seq;
      c.isend_seq_ = rc.isend_seq;
      c.rx_busy_ = rc.rx_busy;
      c.comm_dvfs_mhz_ = rc.comm_dvfs_mhz;
      c.in_comm_phase_ = rc.in_comm_phase;
      c.app_mhz_ = rc.app_mhz;
      c.stats_.messages_sent = rc.messages_sent;
      c.stats_.bytes_sent = rc.bytes_sent;
      c.stats_.messages_received = rc.messages_received;
      c.stats_.bytes_received = rc.bytes_received;
      c.stats_.collective_calls = rc.collective_calls;
      c.stats_.sends_retried = rc.sends_retried;
      c.faults_.set_rng_state(rc.fault_rng);
      for (const sim::CheckpointMessage& m : rc.mailbox) {
        Message msg;
        msg.src = m.src;
        msg.dst = r;
        msg.tag = m.tag;
        msg.bytes = m.bytes;
        msg.at_switch = m.at_switch;
        msg.rx_ser_s = m.rx_ser_s;
        msg.data = m.data;
        mailboxes_[static_cast<std::size_t>(r)]->deliver(std::move(msg));
      }
    }
  }

  // Every rank must hold a worker for the whole run (ranks block on
  // each other through mailboxes and collectives), so the pool needs
  // one worker per rank before any body starts.
  rank_pool_.ensure_workers(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::future<void>> done;
  done.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    done.push_back(rank_pool_.submit([&, r] {
      try {
        body(*comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      // Registered in both outcomes: a finished or aborted rank can
      // complete a deadlock among the survivors.
      monitor_.end_rank(r);
    }));
  }
  for (std::future<void>& f : done) f.get();
  if (std::exception_ptr e = pick_error(errors)) {
    last_run_failed_ = true;
    std::rethrow_exception(e);
  }
  last_run_failed_ = false;

  RunResult result;
  result.nranks = nranks;
  result.frequency_mhz = frequency_mhz;
  result.fabric_bytes = cluster_.fabric().total_bytes();
  result.fabric_messages = cluster_.fabric().total_messages();
  result.ranks.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const sim::NodeState& node = cluster_.node(r);
    RankReport report;
    report.rank = r;
    report.finish_time = node.clock.now();
    report.cpu_seconds = node.clock.seconds_in(sim::Activity::kCpu);
    report.memory_seconds = node.clock.seconds_in(sim::Activity::kMemory);
    report.network_seconds = node.clock.seconds_in(sim::Activity::kNetwork);
    report.idle_seconds = node.clock.seconds_in(sim::Activity::kIdle);
    report.executed = node.executed;
    report.comm = comms[static_cast<std::size_t>(r)]->stats();
    report.activity_by_fkey = node.activity_by_fkey;
    result.makespan = std::max(result.makespan, report.finish_time);
    result.ranks.push_back(report);
  }

  if (capture != nullptr) {
    // The pool has joined: no rank is in flight, so the harvested state
    // is exactly what the truncated bodies left behind. `boundary` and
    // the kernel blobs are the caller's to merge.
    capture->nranks = nranks;
    capture->frequency_mhz = frequency_mhz;
    capture->comm_dvfs_mhz = comms[0]->comm_dvfs_mhz_;
    const sim::NetworkFabric::State fabric = cluster_.fabric().snapshot();
    capture->fabric_tx_busy = fabric.tx_busy;
    capture->fabric_bytes = fabric.total_bytes;
    capture->fabric_messages = fabric.total_messages;
    capture->ranks.assign(static_cast<std::size_t>(nranks), {});
    for (int r = 0; r < nranks; ++r) {
      sim::RankCheckpoint& rc = capture->ranks[static_cast<std::size_t>(r)];
      const sim::NodeState& node = cluster_.node(r);
      const Comm& c = *comms[static_cast<std::size_t>(r)];
      rc.now = node.clock.now();
      rc.by_activity = node.clock.by_activity();
      rc.executed = node.executed;
      rc.activity_by_fkey = node.activity_by_fkey;
      rc.cpu_mhz = node.cpu.current().frequency_mhz();
      rc.collective_seq = c.collective_seq_;
      rc.isend_seq = c.isend_seq_;
      rc.rx_busy = c.rx_busy_;
      rc.comm_dvfs_mhz = c.comm_dvfs_mhz_;
      rc.in_comm_phase = c.in_comm_phase_;
      rc.app_mhz = c.app_mhz_;
      rc.messages_sent = c.stats_.messages_sent;
      rc.bytes_sent = c.stats_.bytes_sent;
      rc.messages_received = c.stats_.messages_received;
      rc.bytes_received = c.stats_.bytes_received;
      rc.collective_calls = c.stats_.collective_calls;
      rc.sends_retried = c.stats_.sends_retried;
      rc.fault_rng = c.faults_.rng_state();
      rc.ledger_ops = 0;
      for (const Message& m : mailboxes_[static_cast<std::size_t>(r)]
                                  ->snapshot()) {
        sim::CheckpointMessage cm;
        cm.src = m.src;
        cm.tag = m.tag;
        cm.bytes = m.bytes;
        cm.at_switch = m.at_switch;
        cm.rx_ser_s = m.rx_ser_s;
        cm.data = m.data;
        rc.mailbox.push_back(std::move(cm));
      }
    }
    // A truncated run legitimately strands its in-flight messages —
    // they are part of the checkpoint now. Drop them so the next run's
    // stale-mailbox invariant stays meaningful.
    for (auto& mb : mailboxes_) mb->clear();
  }
  return result;
}

}  // namespace pas::mpi
