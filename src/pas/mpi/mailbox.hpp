// Per-rank mailbox with (source, tag) matching.
//
// Senders deliver eagerly (buffered sends — no rendezvous in wall-clock
// time, which makes send-then-recv exchange patterns deadlock-free);
// receivers block until a matching message exists. Matching is exact on
// (src, tag), FIFO within a (src, tag) channel — message order from one
// sender follows its program order, so matching is deterministic.
//
// Messages are bucketed per (src, tag) channel, so matching is an O(1)
// hash lookup + pop_front instead of a linear scan of one shared deque.
// Delivery notifies only when the delivered channel has a registered
// waiter (targeted wake); receivers otherwise sleep through unrelated
// traffic. Deadlock unwinding uses wake(): it bumps a wake sequence
// under the mailbox mutex before notifying, so a receiver that checked
// the sequence under the same mutex can never miss the wake — which is
// what lets the blocking waits be event-driven instead of a poll.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "pas/mpi/message.hpp"

namespace pas::mpi {

class RunMonitor;

class Mailbox {
 public:
  /// Thread-safe delivery; wakes a receiver blocked on this channel.
  void deliver(Message msg);

  /// Blocks until a message with exactly (src, tag) is available and
  /// removes it from the queue.
  Message receive(int src, int tag);

  /// Monitored blocking receive: registers the wait with the run's
  /// deadlock watchdog and rethrows its DeadlockError if the run can
  /// no longer make progress (see watchdog.hpp).
  Message receive(int src, int tag, RunMonitor& monitor, int rank);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int src, int tag) const;

  /// Number of queued (undelivered-to-application) messages.
  std::size_t pending() const;

  /// Discards all queued messages (cleanup after an aborted run).
  void clear();

  /// Wakes blocked receivers without delivering (deadlock unwinding).
  /// Must not be called while holding the RunMonitor mutex: it takes
  /// the mailbox mutex to publish the wake.
  void wake();

  /// All queued messages in a canonical order (channels sorted by key,
  /// FIFO within a channel) for checkpoint capture. Only meaningful
  /// with no rank in flight; restore is plain deliver() in this order,
  /// which reproduces the identical per-channel FIFOs.
  std::vector<Message> snapshot() const;

 private:
  static std::uint64_t chan(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }

  /// All three require mutex_.
  std::optional<Message> try_take_locked(std::uint64_t key);
  bool has_message_locked(std::uint64_t key) const;
  void add_waiter_locked(std::uint64_t key);
  void remove_waiter_locked(std::uint64_t key);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// FIFO queue per (src, tag) channel. Emptied buckets are kept: a
  /// channel that was used once tends to be used again, and reusing
  /// the deque avoids allocator churn. clear() drops them all.
  std::unordered_map<std::uint64_t, std::deque<Message>> buckets_;
  std::size_t pending_ = 0;
  /// Channels with a currently blocked receiver (normally at most
  /// one entry — each mailbox belongs to one rank).
  std::unordered_map<std::uint64_t, int> waiters_;
  int total_waiters_ = 0;
  /// Bumped under mutex_ by wake(); waiters re-check when it moves.
  std::uint64_t wake_seq_ = 0;
};

}  // namespace pas::mpi
