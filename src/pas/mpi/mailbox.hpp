// Per-rank mailbox with (source, tag) matching.
//
// Senders deliver eagerly (buffered sends — no rendezvous in wall-clock
// time, which makes send-then-recv exchange patterns deadlock-free);
// receivers block until a matching message exists. Matching is exact on
// (src, tag), FIFO within a (src, tag) channel — message order from one
// sender follows its program order, so matching is deterministic.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "pas/mpi/message.hpp"

namespace pas::mpi {

class RunMonitor;

class Mailbox {
 public:
  /// Thread-safe delivery; wakes blocked receivers.
  void deliver(Message msg);

  /// Blocks until a message with exactly (src, tag) is available and
  /// removes it from the queue.
  Message receive(int src, int tag);

  /// Monitored blocking receive: registers the wait with the run's
  /// deadlock watchdog and rethrows its DeadlockError if the run can
  /// no longer make progress (see watchdog.hpp).
  Message receive(int src, int tag, RunMonitor& monitor, int rank);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int src, int tag) const;

  /// Number of queued (undelivered-to-application) messages.
  std::size_t pending() const;

  /// Discards all queued messages (cleanup after an aborted run).
  void clear();

  /// Wakes blocked receivers without delivering (deadlock unwinding).
  void wake();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace pas::mpi
