// Comm — the per-rank handle of the simulated message-passing layer
// (simmpi). Provides the MPI-flavoured programming model the NPB
// kernels are written against: explicit compute blocks, point-to-point
// messages, and the collectives the paper's workloads rely on
// (Barrier, Bcast, Reduce, Allreduce, Alltoall, Gather/Scatter).
//
// Time semantics: each rank owns a virtual clock. compute() advances it
// by the CPU model's time for the instruction mix. send() charges the
// sender-side CPU overhead and books link time on the shared fabric;
// recv() completes at max(local time, message arrival) plus the
// receiver-side CPU overhead — a rendezvous in virtual time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pas/fault/fault.hpp"
#include "pas/mpi/mailbox.hpp"
#include "pas/mpi/message.hpp"
#include "pas/sim/cluster.hpp"
#include "pas/sim/sampling.hpp"

namespace pas::mpi {

/// Per-rank communication statistics (feeds the paper's communication
/// profiling step: number of messages and doubles per message, §5.2).
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collective_calls = 0;
  /// Fault-injected send attempts that were dropped and re-sent.
  std::uint64_t sends_retried = 0;

  double avg_doubles_per_message() const {
    if (messages_sent == 0) return 0.0;
    const double payload =
        static_cast<double>(bytes_sent) -
        static_cast<double>(messages_sent) * static_cast<double>(kHeaderBytes);
    return payload > 0.0 ? payload / 8.0 / static_cast<double>(messages_sent)
                         : 0.0;
  }
};

class Runtime;

class Comm {
 public:
  Comm(Runtime& runtime, int rank, int size,
       fault::RankFaults faults = fault::RankFaults{});

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }
  bool is_root() const { return rank_ == 0; }

  /// Virtual time on this rank.
  double now() const;
  sim::VirtualClock& clock();
  sim::CpuModel& cpu();
  sim::NodeState& node();

  // ---- computation ---------------------------------------------------
  /// Executes `mix` on this node: advances the clock by the CPU model's
  /// ON-chip and OFF-chip times and records the work for the counters.
  void compute(const sim::InstructionMix& mix);

  /// Advances the clock by raw seconds of the given activity (used by
  /// probes and tests).
  void compute_seconds(double s, sim::Activity act = sim::Activity::kCpu);

  // ---- per-phase DVFS ---------------------------------------------------
  /// Communication-phase DVFS (the scheduling idea of the paper's §1
  /// and its refs [14, 15]): while set to a valid operating point, the
  /// CPU drops to that point when a communication region begins (first
  /// send/receive) and returns to the application point lazily when the
  /// next compute block starts. The hysteresis keeps transition costs
  /// (ClusterConfig::dvfs_transition_s per actual switch) off the
  /// per-message path — switching per message would wreck codes with
  /// small frequent messages (see bench/dvfs_comm_savings). Pass 0 to
  /// disable.
  void set_comm_dvfs_mhz(double mhz);
  double comm_dvfs_mhz() const { return comm_dvfs_mhz_; }

  // ---- point-to-point -------------------------------------------------
  /// Buffered (eager) send of a payload of doubles.
  void send(int dst, int tag, Payload data);

  /// Timing-only message of `bytes` wire bytes (no payload).
  void send_bytes(int dst, int tag, std::size_t bytes);

  /// Blocking receive matching exactly (src, tag). A positive
  /// `timeout_s` bounds the wait in *virtual* time: if the receive
  /// completes more than timeout_s after it started, TimeoutError is
  /// thrown (a genuine hang is caught by the deadlock watchdog instead;
  /// see watchdog.hpp).
  Payload recv(int src, int tag, double timeout_s = 0.0);

  /// Blocking receive of a timing-only message; returns its wire size.
  std::size_t recv_bytes(int src, int tag, double timeout_s = 0.0);

  /// Simultaneous exchange: sends `data` to `dst`, receives from `src`.
  /// Deadlock-free because sends are buffered.
  Payload sendrecv(int dst, int src, int tag, Payload data);

  // ---- nonblocking point-to-point --------------------------------------
  /// Handle for an outstanding isend/irecv; complete with wait().
  class Request {
   public:
    Request() = default;
    bool valid() const { return kind_ != Kind::kNone; }

   private:
    friend class Comm;
    enum class Kind { kNone, kSend, kRecv };
    Kind kind_ = Kind::kNone;
    int peer_ = -1;
    int tag_ = 0;
    double tx_end_ = 0.0;  ///< send: link free / message fully injected
    /// Per-rank isend sequence number, pairing this request's wait()
    /// with its posting in the charged-work ledger.
    int ledger_ordinal_ = -1;
  };

  /// Nonblocking send: pays the CPU overhead now, lets the NIC
  /// serialize in the background (the link stays booked), and returns.
  /// wait() blocks the virtual clock only if the link is still busy —
  /// this is the communication/computation overlap MPI_Isend buys.
  Request isend(int dst, int tag, Payload data);

  /// Nonblocking receive. Matching happens at wait(); since sends are
  /// eager, this is primarily a convenience for symmetric code.
  Request irecv(int src, int tag);

  /// Completes a request. For a receive returns its payload; for a
  /// send returns an empty payload. The request becomes invalid.
  Payload wait(Request& request);

  /// Completes all requests in order.
  void waitall(std::vector<Request>& requests);

  // ---- collectives ----------------------------------------------------
  // All ranks of the communicator must call collectives in the same
  // order (MPI semantics). Algorithms are documented in collectives.cpp.
  void barrier();
  void bcast(Payload& data, int root = 0);
  double reduce_sum(double x, int root = 0);
  double allreduce_sum(double x);
  std::vector<double> allreduce_sum(std::vector<double> xs);
  double allreduce_max(double x);
  double allreduce_min(double x);
  /// Personalized all-to-all: send_blocks[i] goes to rank i; returns
  /// blocks received, indexed by source rank. Taken by value so
  /// callers can std::move the blocks straight onto the wire.
  std::vector<Payload> alltoall(std::vector<Payload> send_blocks);
  /// Gathers each rank's payload at `root` (indexed by rank); other
  /// ranks receive an empty vector.
  std::vector<Payload> gather(Payload local, int root = 0);
  /// Root distributes blocks[i] to rank i; returns this rank's block.
  /// By value, same zero-copy convention as alltoall.
  Payload scatter(std::vector<Payload> blocks, int root = 0);
  /// Every rank receives every rank's payload (indexed by rank).
  /// Ring algorithm: N-1 neighbour exchanges, bandwidth-optimal.
  std::vector<Payload> allgather(Payload local);
  /// Inclusive prefix sum: rank r receives sum over ranks 0..r.
  /// Linear chain (the latency-bound classic).
  double scan_sum(double x);

  // ---- introspection --------------------------------------------------
  const CommStats& stats() const { return stats_; }
  std::string describe() const;

  /// Snapshots this rank's cumulative state (clock, activity split,
  /// executed work, comm stats) into `probe` as the boundary of
  /// iteration `iter`. Called by sampled kernel runs at detailed
  /// iteration boundaries; advances no virtual time (DESIGN.md §14).
  void sample_boundary(sim::SampleProbe& probe, int iter) const;

 private:
  friend class Runtime;

  /// Sender-side cost + fabric booking + delivery. When `blocking` the
  /// sender's clock advances to the end of the link serialization;
  /// otherwise the serialization end time is returned for wait().
  double post(int dst, int tag, std::size_t payload_bytes, Payload data,
              bool blocking = true);
  /// Receiver-side completion bookkeeping for a matched message.
  void complete_recv(const Message& msg);
  /// Shared body of recv/recv_bytes: monitored mailbox wait +
  /// completion + virtual-time timeout check.
  Message matched_recv(int src, int tag, double timeout_s);
  /// Tag for the next collective phase (lockstep across ranks).
  int next_collective_tag();

  /// Drops the CPU to the comm-DVFS point at the start of a
  /// communication region (no-op when disabled or already down).
  void enter_comm_phase();
  /// Restores the application point at the start of a compute block.
  void exit_comm_phase();

  Runtime& runtime_;
  int rank_;
  int size_;
  /// This rank's fault stream for the current run (inactive when fault
  /// injection is off).
  fault::RankFaults faults_;
  int collective_seq_ = 0;
  int isend_seq_ = 0;
  /// Receiver-port "busy until" in virtual time; owned by this rank's
  /// thread, booked in message-match order (see complete_recv).
  double rx_busy_ = 0.0;
  /// Communication-phase operating point (0 = disabled).
  double comm_dvfs_mhz_ = 0.0;
  bool in_comm_phase_ = false;
  double app_mhz_ = 0.0;  ///< point to restore on phase exit
  CommStats stats_;
};

}  // namespace pas::mpi
