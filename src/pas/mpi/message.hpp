// Message representation for the simulated message-passing layer.
#pragma once

#include <cstddef>
#include <vector>

namespace pas::mpi {

/// All kernel traffic carries doubles (complex values travel as pairs).
using Payload = std::vector<double>;

/// Fixed per-message envelope size added to the modeled wire size.
inline constexpr std::size_t kHeaderBytes = 64;

struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  /// Modeled wire size (payload + envelope, or explicit for
  /// timing-only messages).
  std::size_t bytes = 0;
  /// Virtual time at which the switch begins forwarding toward the
  /// receiver port (store-and-forward schedule from the fabric).
  double at_switch = 0.0;
  /// Receiver-port serialization length; the receiver books its own
  /// port occupancy when matching the message.
  double rx_ser_s = 0.0;
  Payload data;
};

/// Tags >= kCollectiveTagBase are reserved for internal collective
/// traffic; user point-to-point tags must stay below it.
inline constexpr int kCollectiveTagBase = 1 << 24;

}  // namespace pas::mpi
