// Runtime — owns the simulated cluster, one mailbox per rank, and the
// rank threads of one parallel execution.
//
//   pas::mpi::Runtime rt(sim::ClusterConfig::paper_testbed());
//   auto result = rt.run(8, 1200.0, [](pas::mpi::Comm& comm) { ... });
//   result.makespan  // the "measured" parallel execution time T_N(w,f)
//
// Every run starts from a reset cluster (clocks at zero, fabric idle),
// so results are a function of (body, nranks, frequency) only.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pas/fault/fault.hpp"
#include "pas/mpi/communicator.hpp"
#include "pas/mpi/watchdog.hpp"
#include "pas/sim/checkpoint.hpp"
#include "pas/sim/cluster.hpp"
#include "pas/sim/trace.hpp"
#include "pas/sim/work_ledger.hpp"
#include "pas/util/thread_pool.hpp"

namespace pas::mpi {

/// What one rank did during a run.
struct RankReport {
  int rank = 0;
  double finish_time = 0.0;
  double cpu_seconds = 0.0;      ///< ON-chip compute time
  double memory_seconds = 0.0;   ///< OFF-chip stall time
  double network_seconds = 0.0;  ///< communication overhead + waits
  double idle_seconds = 0.0;
  sim::InstructionMix executed;
  CommStats comm;
  /// Activity seconds by operating point (key: 0.1 MHz units) — one
  /// entry under static DVFS, several under per-phase scheduling.
  std::map<long, sim::ActivitySeconds> activity_by_fkey;
};

struct RunResult {
  int nranks = 0;
  double frequency_mhz = 0.0;
  /// Parallel execution time: max over ranks of finish time.
  double makespan = 0.0;
  std::vector<RankReport> ranks;
  std::size_t fabric_bytes = 0;
  std::size_t fabric_messages = 0;

  /// Aggregates over ranks.
  double total_cpu_seconds() const;
  double total_memory_seconds() const;
  double total_network_seconds() const;
  double total_busy_seconds() const;
  /// Mean network (overhead) seconds per rank — the measured T(w_PO).
  double mean_network_seconds() const;

  std::string to_string() const;
};

class Runtime {
 public:
  explicit Runtime(sim::ClusterConfig cfg);

  const sim::ClusterConfig& config() const { return cfg_; }
  sim::Cluster& cluster() { return cluster_; }

  /// Virtual-time execution tracing (disabled by default). Enable
  /// before run(); events accumulate across runs until clear().
  sim::Tracer& tracer() { return tracer_; }

  /// Charged-work recording (disabled by default). begin() before
  /// run(), take()/abort() after it returns — the frequency-collapse
  /// fast path harvests the ledger here (DESIGN.md §10).
  sim::WorkLedgerRecorder& ledger_recorder() { return ledger_recorder_; }

  using RankBody = std::function<void(Comm&)>;

  /// Executes `body` on `nranks` ranks (1 <= nranks <= cluster size) at
  /// the given DVFS point. Blocks until all ranks finish; rethrows the
  /// first rank exception, if any.
  ///
  /// Rank bodies execute on a pool of worker threads owned by this
  /// Runtime: a K-rank run reuses K pooled workers, so back-to-back
  /// runs (sweeps, parameterization passes) pay thread creation once
  /// per worker, not once per rank per run.
  RunResult run(int nranks, double frequency_mhz, const RankBody& body);

  /// run() with checkpoint hooks (DESIGN.md §14). When `restore` is
  /// non-null its simulator state (clocks, executed work, CPU points,
  /// Comm internals, fault-stream positions, queued messages, fabric
  /// occupancy) is applied after the reset and before any rank body
  /// starts, so the run continues mid-kernel; the kernel re-creates its
  /// own state from the checkpoint's per-rank blobs via IterationCtl.
  /// When `capture` is non-null it is filled after a successful join
  /// with everything except `boundary` and the kernel blobs (the
  /// caller merges those — only the kernel knows them). The hooks are
  /// incompatible with an armed ledger recorder: a restored segment
  /// would record a partial, non-replayable ledger (throws logic_error).
  RunResult run(int nranks, double frequency_mhz, const RankBody& body,
                const sim::Checkpoint* restore, sim::Checkpoint* capture);

  /// Rank workers created so far (grows to the largest nranks seen).
  int pooled_rank_threads() const { return rank_pool_.spawned(); }

  /// Attempt number for the next run's FaultPlan: a sweep-level retry
  /// bumps it so the retried run replays a fresh (still deterministic)
  /// fault schedule. Ignored when cfg.fault is disabled.
  void set_fault_attempt(int attempt) { fault_attempt_ = attempt; }
  int fault_attempt() const { return fault_attempt_; }

 private:
  friend class Comm;

  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  RunMonitor& monitor() { return monitor_; }

  /// Picks the exception to rethrow after a failed run: the lowest
  /// rank's non-DeadlockError if any (root causes — a fault abort or a
  /// user error — beat the secondary deadlocks they induce), else the
  /// lowest rank's DeadlockError. Deterministic: rank order, not
  /// wall-clock order.
  static std::exception_ptr pick_error(
      const std::vector<std::exception_ptr>& errors);

  sim::ClusterConfig cfg_;
  sim::Cluster cluster_;
  sim::Tracer tracer_;
  sim::WorkLedgerRecorder ledger_recorder_;
  RunMonitor monitor_;
  int fault_attempt_ = 0;
  /// A failed run may leave undelivered messages behind; the next run
  /// clears them instead of treating them as a stale-state bug.
  bool last_run_failed_ = false;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  /// Every rank of a run must hold a worker for the whole run (ranks
  /// rendezvous through mailboxes), so capacity is the cluster size and
  /// run() pre-spawns one worker per rank before submitting the batch.
  util::ThreadPool rank_pool_;
};

}  // namespace pas::mpi
