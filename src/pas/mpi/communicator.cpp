#include "pas/mpi/communicator.hpp"

#include <stdexcept>
#include <utility>

#include "pas/mpi/runtime.hpp"
#include "pas/mpi/watchdog.hpp"
#include "pas/obs/metrics.hpp"
#include "pas/util/format.hpp"

namespace pas::mpi {

Comm::Comm(Runtime& runtime, int rank, int size, fault::RankFaults faults)
    : runtime_(runtime), rank_(rank), size_(size), faults_(std::move(faults)) {}

double Comm::now() const { return runtime_.cluster().node(rank_).clock.now(); }

sim::VirtualClock& Comm::clock() { return runtime_.cluster().node(rank_).clock; }

sim::CpuModel& Comm::cpu() { return runtime_.cluster().node(rank_).cpu; }

sim::NodeState& Comm::node() { return runtime_.cluster().node(rank_); }

void Comm::compute(const sim::InstructionMix& mix) {
  exit_comm_phase();
  sim::NodeState& n = node();
  const double t0 = n.clock.now();
  const sim::CpuModel::TimeSplit split = n.cpu.time_split(mix);
  n.spend(split.on_chip_s, sim::Activity::kCpu);
  n.spend(split.off_chip_s, sim::Activity::kMemory);
  n.executed += mix;
  faults_.check_alive(n.clock.now());
  sim::Tracer& tracer = runtime_.tracer();
  if (tracer.enabled()) {
    // The ON/OFF-chip split is the paper's central quantity: trace the
    // two parts as separate activities so the power timeline bills the
    // memory-stall time at memory power, not CPU power.
    tracer.record(rank_, t0, split.on_chip_s, sim::Activity::kCpu, "compute");
    if (split.off_chip_s > 0.0)
      tracer.record(rank_, t0 + split.on_chip_s, split.off_chip_s,
                    sim::Activity::kMemory, "compute mem");
  }
  sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
  if (ledger.enabled()) ledger.record(rank_, sim::WorkOp::compute(mix));
}

void Comm::compute_seconds(double s, sim::Activity act) {
  exit_comm_phase();
  node().spend(s, act);
  faults_.check_alive(node().clock.now());
  sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
  if (ledger.enabled()) ledger.record(rank_, sim::WorkOp::raw_seconds(s, act));
}

void Comm::set_comm_dvfs_mhz(double mhz) {
  if (mhz != 0.0 && !cpu().operating_points().has_mhz(mhz))
    throw std::out_of_range(
        pas::util::strf("no operating point at %.1f MHz", mhz));
  if (mhz == 0.0) exit_comm_phase();
  comm_dvfs_mhz_ = mhz;
  sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
  if (ledger.enabled()) ledger.record(rank_, sim::WorkOp::comm_dvfs(mhz));
}

void Comm::enter_comm_phase() {
  if (comm_dvfs_mhz_ <= 0.0 || in_comm_phase_) return;
  sim::NodeState& n = node();
  app_mhz_ = n.cpu.current().frequency_mhz();
  in_comm_phase_ = true;
  if (sim::NodeState::fkey(app_mhz_) == sim::NodeState::fkey(comm_dvfs_mhz_))
    return;  // already at the comm point: nothing to switch
  n.spend(runtime_.config().dvfs_transition_s + faults_.draw_dvfs_jitter(),
          sim::Activity::kCpu);
  n.cpu.set_frequency_mhz(comm_dvfs_mhz_);
  sim::Tracer& tracer = runtime_.tracer();
  if (tracer.enabled())
    tracer.record_marker(rank_, n.clock.now(), "dvfs",
                         pas::util::strf("dvfs %.0f->%.0f MHz", app_mhz_,
                                         comm_dvfs_mhz_));
}

void Comm::exit_comm_phase() {
  if (!in_comm_phase_) return;
  in_comm_phase_ = false;
  sim::NodeState& n = node();
  if (sim::NodeState::fkey(n.cpu.current().frequency_mhz()) ==
      sim::NodeState::fkey(app_mhz_))
    return;
  const double from_mhz = n.cpu.current().frequency_mhz();
  n.cpu.set_frequency_mhz(app_mhz_);
  n.spend(runtime_.config().dvfs_transition_s + faults_.draw_dvfs_jitter(),
          sim::Activity::kCpu);
  sim::Tracer& tracer = runtime_.tracer();
  if (tracer.enabled())
    tracer.record_marker(rank_, n.clock.now(), "dvfs",
                         pas::util::strf("dvfs %.0f->%.0f MHz", from_mhz,
                                         app_mhz_));
}

double Comm::post(int dst, int tag, std::size_t payload_bytes, Payload data,
                  bool blocking) {
  if (dst < 0 || dst >= size_)
    throw std::out_of_range(pas::util::strf("send to bad rank %d", dst));
  sim::NodeState& n = node();
  const std::size_t wire_bytes = payload_bytes + kHeaderBytes;
  const double trace_t0 = n.clock.now();

  // Communication region: a per-phase DVFS schedule drops the clock here.
  enter_comm_phase();

  sim::NetworkFabric::Transfer t;
  for (int tries = 1;; ++tries) {
    // Sender-side CPU cost (stack + copy), paced by this node's DVFS
    // frequency — the mechanism that makes large-message overhead
    // mildly frequency-sensitive (Table 6).
    const double o_send = runtime_.cluster().fabric().config().cpu_overhead_s(
        wire_bytes, n.cpu.frequency_hz());
    n.spend(o_send, sim::Activity::kNetwork);

    t = runtime_.cluster().fabric().transfer(rank_, dst, wire_bytes,
                                             n.clock.now());

    // Blocking-send semantics (MPICH over TCP on Fast Ethernet): the
    // sender stays in the stack while its NIC serializes the message, so
    // it pays the wire time inline. This is what makes "number of
    // messages x per-message time" (the paper's w_PO model, §5.2 step 2)
    // an accurate account of communication cost. Nonblocking sends skip
    // the inline wait and settle up in wait().
    if (blocking) n.spend_until(t.tx_end, sim::Activity::kNetwork);

    if (!faults_.message_faults() || !faults_.draw_drop()) break;
    static obs::Counter& drops =
        obs::registry().counter("fault.message_drops");
    drops.add();
    if (runtime_.tracer().enabled())
      runtime_.tracer().record_marker(
          rank_, n.clock.now(), "fault",
          pas::util::strf("drop->%d tag %d (try %d)", dst, tag, tries));
    // Injected loss: the transport retries with exponential backoff,
    // re-paying the CPU overhead and wire time each attempt — the
    // energy cost of unreliability that resilience_sweep measures.
    if (tries >= faults_.max_send_attempts())
      throw fault::MessageLossError(rank_, dst, tag, tries);
    ++stats_.sends_retried;
    n.spend(faults_.backoff_s(tries - 1), sim::Activity::kNetwork);
  }
  faults_.check_alive(n.clock.now());

  const double injected_delay = faults_.draw_delay();
  if (injected_delay > 0.0) {
    static obs::Counter& delays =
        obs::registry().counter("fault.message_delays");
    delays.add();
    if (runtime_.tracer().enabled())
      runtime_.tracer().record_marker(
          rank_, n.clock.now(), "fault",
          pas::util::strf("delay->%d tag %d (+%.3gus)", dst, tag,
                          injected_delay * 1e6));
  }

  Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.bytes = wire_bytes;
  msg.at_switch = t.at_switch + injected_delay;
  msg.rx_ser_s = t.rx_ser_s;
  msg.data = std::move(data);

  ++stats_.messages_sent;
  stats_.bytes_sent += wire_bytes;

  runtime_.monitor().on_deliver(dst, rank_, tag);
  runtime_.mailbox(dst).deliver(std::move(msg));

  sim::Tracer& tracer = runtime_.tracer();
  if (tracer.enabled())
    tracer.record(rank_, trace_t0, n.clock.now() - trace_t0,
                  sim::Activity::kNetwork,
                  pas::util::strf("send->%d tag %d (%zuB)", dst, tag,
                                  wire_bytes));
  sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
  if (ledger.enabled())
    ledger.record(rank_, sim::WorkOp::send(dst, tag, wire_bytes, blocking));
  return t.tx_end;
}

void Comm::send(int dst, int tag, Payload data) {
  const std::size_t payload_bytes = data.size() * sizeof(double);
  post(dst, tag, payload_bytes, std::move(data));
}

Comm::Request Comm::isend(int dst, int tag, Payload data) {
  const std::size_t payload_bytes = data.size() * sizeof(double);
  Request req;
  req.kind_ = Request::Kind::kSend;
  req.peer_ = dst;
  req.tag_ = tag;
  req.ledger_ordinal_ = isend_seq_++;
  req.tx_end_ =
      post(dst, tag, payload_bytes, std::move(data), /*blocking=*/false);
  return req;
}

Comm::Request Comm::irecv(int src, int tag) {
  if (src < 0 || src >= size_)
    throw std::out_of_range(pas::util::strf("irecv from bad rank %d", src));
  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.peer_ = src;
  req.tag_ = tag;
  return req;
}

Payload Comm::wait(Request& request) {
  switch (request.kind_) {
    case Request::Kind::kNone:
      throw std::logic_error("wait() on an invalid request");
    case Request::Kind::kSend: {
      // The link may still be draining the message; the sender's clock
      // only advances if it got ahead of its own NIC.
      node().spend_until(request.tx_end_, sim::Activity::kNetwork);
      sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
      if (ledger.enabled())
        ledger.record(rank_, sim::WorkOp::send_wait(request.ledger_ordinal_));
      request.kind_ = Request::Kind::kNone;
      return {};
    }
    case Request::Kind::kRecv: {
      Payload data = recv(request.peer_, request.tag_);
      request.kind_ = Request::Kind::kNone;
      return data;
    }
  }
  return {};
}

void Comm::waitall(std::vector<Request>& requests) {
  for (Request& r : requests) {
    if (r.valid()) (void)wait(r);
  }
}

void Comm::send_bytes(int dst, int tag, std::size_t bytes) {
  post(dst, tag, bytes, Payload{});
}

void Comm::complete_recv(const Message& msg) {
  sim::NodeState& n = node();
  // Communication region: a per-phase DVFS schedule drops the clock here.
  enter_comm_phase();
  // Book our receiver port in match order (deterministic: only this
  // thread touches rx_busy_), wait until the last byte is in, then pay
  // the receiver-side CPU overhead.
  const sim::NetworkConfig& net = runtime_.cluster().fabric().config();
  double arrival = msg.at_switch + msg.rx_ser_s;
  if (net.model_port_contention && msg.src != rank_) {
    const double rx_begin = std::max(msg.at_switch, rx_busy_);
    arrival = rx_begin + msg.rx_ser_s;
    rx_busy_ = arrival;
  }
  const double trace_t0 = n.clock.now();
  n.spend_until(arrival, sim::Activity::kNetwork);
  const double o_recv = net.cpu_overhead_s(msg.bytes, n.cpu.frequency_hz());
  n.spend(o_recv, sim::Activity::kNetwork);
  ++stats_.messages_received;
  stats_.bytes_received += msg.bytes;

  sim::Tracer& tracer = runtime_.tracer();
  if (tracer.enabled())
    tracer.record(rank_, trace_t0, n.clock.now() - trace_t0,
                  sim::Activity::kNetwork,
                  pas::util::strf("recv<-%d tag %d (%zuB)", msg.src, msg.tag,
                                  msg.bytes));
}

Message Comm::matched_recv(int src, int tag, double timeout_s) {
  if (src < 0 || src >= size_)
    throw std::out_of_range(pas::util::strf("recv from bad rank %d", src));
  const double t0 = now();
  Message msg =
      runtime_.mailbox(rank_).receive(src, tag, runtime_.monitor(), rank_);
  complete_recv(msg);
  const double waited = now() - t0;
  if (timeout_s > 0.0 && waited > timeout_s)
    throw TimeoutError(pas::util::strf(
        "rank %d: recv<-%d (tag %d) completed after %.6gs of virtual time "
        "(timeout %.6gs)",
        rank_, src, tag, waited, timeout_s));
  faults_.check_alive(now());
  sim::WorkLedgerRecorder& ledger = runtime_.ledger_recorder();
  if (ledger.enabled()) {
    // A virtual-time timeout is the one Comm feature whose *outcome*
    // depends on the operating point: a recv that fits the budget at
    // the recorded frequency may exceed it at a slower one.
    if (timeout_s > 0.0)
      ledger.decline(rank_, pas::util::strf(
                                "rank %d uses a virtual-time recv timeout",
                                rank_));
    ledger.record(rank_, sim::WorkOp::recv(src, tag));
  }
  return msg;
}

Payload Comm::recv(int src, int tag, double timeout_s) {
  Message msg = matched_recv(src, tag, timeout_s);
  return std::move(msg.data);
}

std::size_t Comm::recv_bytes(int src, int tag, double timeout_s) {
  Message msg = matched_recv(src, tag, timeout_s);
  return msg.bytes;
}

Payload Comm::sendrecv(int dst, int src, int tag, Payload data) {
  send(dst, tag, std::move(data));
  return recv(src, tag);
}

int Comm::next_collective_tag() {
  // Collectives are called in the same order on every rank, so the
  // per-rank sequence numbers advance in lockstep and act as a shared
  // phase id. Each phase owns a block of 1024 tags for its internal
  // rounds; the modulus keeps tags within the reserved range while
  // leaving 8192 in-flight phases distinguishable.
  const int tag = kCollectiveTagBase + (collective_seq_ % (1 << 13)) * (1 << 10);
  ++collective_seq_;
  ++stats_.collective_calls;
  return tag;
}

std::string Comm::describe() const {
  return pas::util::strf(
      "rank %d/%d: sent %llu msgs (%llu B), recv %llu msgs, %llu collectives",
      rank_, size_, static_cast<unsigned long long>(stats_.messages_sent),
      static_cast<unsigned long long>(stats_.bytes_sent),
      static_cast<unsigned long long>(stats_.messages_received),
      static_cast<unsigned long long>(stats_.collective_calls));
}

void Comm::sample_boundary(sim::SampleProbe& probe, int iter) const {
  const sim::NodeState& node = runtime_.cluster().node(rank_);
  sim::RankSample s;
  s.iter = iter;
  s.now = node.clock.now();
  s.by_activity = node.clock.by_activity();
  s.executed = node.executed;
  s.activity_by_fkey = node.activity_by_fkey;
  s.messages_sent = stats_.messages_sent;
  s.bytes_sent = stats_.bytes_sent;
  s.messages_received = stats_.messages_received;
  s.bytes_received = stats_.bytes_received;
  s.collective_calls = stats_.collective_calls;
  s.sends_retried = stats_.sends_retried;
  probe.record(rank_, std::move(s));
}

}  // namespace pas::mpi
