// Collective algorithms for simmpi.
//
// The algorithm choices mirror what an MPICH-era implementation does on
// a Fast Ethernet cluster and are the mechanism behind the paper's
// parallel-overhead scaling:
//   Barrier   — dissemination, ceil(log2 N) rounds.
//   Bcast     — binomial tree.
//   Reduce    — binomial tree (element-wise op).
//   Allreduce — recursive doubling (power-of-two), else reduce+bcast.
//   Alltoall  — pairwise exchange (XOR partners for power-of-two), the
//               pattern that dominates FT's parallel overhead; each
//               rank moves (N-1) blocks per call, so per-rank overhead
//               grows with N while per-message wire time is independent
//               of the CPU frequency.
//   Gather/Scatter — linear rooted.
#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "pas/mpi/communicator.hpp"
#include "pas/mpi/runtime.hpp"

namespace pas::mpi {
namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

enum class ReduceOp { kSum, kMax, kMin };

void apply_op(Payload& acc, const Payload& other, ReduceOp op) {
  if (acc.size() != other.size())
    throw std::invalid_argument("reduce: mismatched payload sizes");
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], other[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], other[i]);
      break;
  }
}

/// Approximate local memcpy bandwidth for same-rank block moves.
constexpr double kMemcpyBytesPerSecond = 2e9;

}  // namespace

void Comm::barrier() {
  if (size_ == 1) return;
  const int tag = next_collective_tag();
  int round = 0;
  for (int k = 1; k < size_; k <<= 1, ++round) {
    const int to = (rank_ + k) % size_;
    const int from = (rank_ - k + size_) % size_;
    send_bytes(to, tag + round, 1);
    recv_bytes(from, tag + round);
  }
}

void Comm::bcast(Payload& data, int root) {
  if (size_ == 1) return;
  const int tag = next_collective_tag();
  const int relative = (rank_ - root + size_) % size_;

  int mask = 1;
  while (mask < size_) {
    if (relative & mask) {
      const int src = (rank_ - mask + size_) % size_;
      data = recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size_) {
      const int dst = (rank_ + mask) % size_;
      send(dst, tag, data);
    }
    mask >>= 1;
  }
}

namespace {

Payload binomial_reduce(Comm& comm, int rank, int size, int root, int tag,
                        Payload partial, ReduceOp op) {
  const int relative = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int dst = (rank - mask + size) % size;
      comm.send(dst, tag, std::move(partial));
      return {};
    }
    if (relative + mask < size) {
      const int src = (rank + mask) % size;
      Payload other = comm.recv(src, tag);
      apply_op(partial, other, op);
    }
    mask <<= 1;
  }
  return partial;  // only the root reaches here with data
}

Payload allreduce_impl(Comm& comm, int rank, int size, int tag, Payload mine,
                       ReduceOp op) {
  if (size == 1) return mine;
  if (is_power_of_two(size)) {
    int round = 0;
    for (int mask = 1; mask < size; mask <<= 1, ++round) {
      const int partner = rank ^ mask;
      Payload other = comm.sendrecv(partner, partner, tag + round, mine);
      apply_op(mine, other, op);
    }
    return mine;
  }
  // General case: rooted reduce then broadcast (re-uses this phase's
  // tag block: rounds 512+ for the bcast half).
  Payload reduced = binomial_reduce(comm, rank, size, /*root=*/0, tag,
                                    std::move(mine), op);
  // Broadcast from root using the same tag block, offset to avoid the
  // reduce rounds.
  const int bcast_tag = tag + 512;
  const int relative = rank;  // root is 0
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int src = (rank - mask + size) % size;
      reduced = comm.recv(src, bcast_tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (rank + mask) % size;
      comm.send(dst, bcast_tag, reduced);
    }
    mask >>= 1;
  }
  return reduced;
}

}  // namespace

double Comm::reduce_sum(double x, int root) {
  if (size_ == 1) return x;
  const int tag = next_collective_tag();
  Payload result = binomial_reduce(*this, rank_, size_, root, tag,
                                   Payload{x}, ReduceOp::kSum);
  return rank_ == root && !result.empty() ? result[0] : 0.0;
}

double Comm::allreduce_sum(double x) {
  const int tag = next_collective_tag();
  Payload out = allreduce_impl(*this, rank_, size_, tag, Payload{x},
                               ReduceOp::kSum);
  return out[0];
}

std::vector<double> Comm::allreduce_sum(std::vector<double> xs) {
  const int tag = next_collective_tag();
  return allreduce_impl(*this, rank_, size_, tag, std::move(xs),
                        ReduceOp::kSum);
}

double Comm::allreduce_max(double x) {
  const int tag = next_collective_tag();
  Payload out = allreduce_impl(*this, rank_, size_, tag, Payload{x},
                               ReduceOp::kMax);
  return out[0];
}

double Comm::allreduce_min(double x) {
  const int tag = next_collective_tag();
  Payload out = allreduce_impl(*this, rank_, size_, tag, Payload{x},
                               ReduceOp::kMin);
  return out[0];
}

std::vector<Payload> Comm::alltoall(std::vector<Payload> send_blocks) {
  if (static_cast<int>(send_blocks.size()) != size_)
    throw std::invalid_argument("alltoall: need one block per rank");
  const int tag = next_collective_tag();
  std::vector<Payload> result(static_cast<std::size_t>(size_));

  // Each block is consumed exactly once, so the blocks move to the
  // wire (and the local slot) instead of being copied. The charged
  // local-copy time is unchanged: it models the application-level
  // buffer exchange, not this implementation's allocation strategy.
  result[static_cast<std::size_t>(rank_)] =
      std::move(send_blocks[static_cast<std::size_t>(rank_)]);
  const double copy_bytes =
      static_cast<double>(result[static_cast<std::size_t>(rank_)].size()) *
      sizeof(double);
  compute_seconds(copy_bytes / kMemcpyBytesPerSecond, sim::Activity::kMemory);

  if (size_ == 1) return result;

  if (is_power_of_two(size_)) {
    // Pairwise exchange: in round `step` everyone exchanges with
    // rank^step — each port carries exactly one message per round.
    for (int step = 1; step < size_; ++step) {
      const int partner = rank_ ^ step;
      result[static_cast<std::size_t>(partner)] =
          sendrecv(partner, partner, tag + step,
                   std::move(send_blocks[static_cast<std::size_t>(partner)]));
    }
  } else {
    for (int step = 1; step < size_; ++step) {
      const int dst = (rank_ + step) % size_;
      const int src = (rank_ - step + size_) % size_;
      send(dst, tag + step,
           std::move(send_blocks[static_cast<std::size_t>(dst)]));
      result[static_cast<std::size_t>(src)] = recv(src, tag + step);
    }
  }
  return result;
}

std::vector<Payload> Comm::gather(Payload local, int root) {
  const int tag = next_collective_tag();
  if (rank_ != root) {
    send(root, tag, std::move(local));
    return {};
  }
  std::vector<Payload> out(static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(root)] = std::move(local);
  for (int r = 0; r < size_; ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] = recv(r, tag);
  }
  return out;
}

std::vector<Payload> Comm::allgather(Payload local) {
  const int tag = next_collective_tag();
  std::vector<Payload> out(static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(rank_)] = std::move(local);
  if (size_ == 1) return out;
  // Ring: in step s, forward the block that originated s hops back.
  const int right = (rank_ + 1) % size_;
  const int left = (rank_ - 1 + size_) % size_;
  for (int step = 0; step < size_ - 1; ++step) {
    const int send_origin = (rank_ - step + size_) % size_;
    const int recv_origin = (rank_ - step - 1 + size_) % size_;
    out[static_cast<std::size_t>(recv_origin)] =
        sendrecv(right, left, tag + step,
                 out[static_cast<std::size_t>(send_origin)]);
  }
  return out;
}

double Comm::scan_sum(double x) {
  const int tag = next_collective_tag();
  if (size_ == 1) return x;
  double prefix = x;
  if (rank_ > 0) {
    const Payload upstream = recv(rank_ - 1, tag);
    prefix += upstream[0];
  }
  if (rank_ + 1 < size_) send(rank_ + 1, tag, Payload{prefix});
  return prefix;
}

Payload Comm::scatter(std::vector<Payload> blocks, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    if (static_cast<int>(blocks.size()) != size_)
      throw std::invalid_argument("scatter: root needs one block per rank");
    // Root consumes each block once: move them to the wire.
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      send(r, tag, std::move(blocks[static_cast<std::size_t>(r)]));
    }
    return std::move(blocks[static_cast<std::size_t>(root)]);
  }
  return recv(root, tag);
}

}  // namespace pas::mpi
