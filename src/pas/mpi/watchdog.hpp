// Deadlock watchdog for the rank runtime.
//
// RunMonitor keeps its own accounting of undelivered messages (one
// counter per (dst, src, tag) channel, updated by the sender before
// delivery and by the receiver on take) plus the set of ranks currently
// blocked in a receive. When every live rank is blocked and no blocked
// rank's awaited channel has a pending message, the run can never make
// progress: the monitor latches a deadlock, wakes every mailbox, and
// each blocked rank unwinds with a DeadlockError carrying the full
// rank -> wait-for graph.
//
// The scan touches only monitor-internal state, so the lock order is
// strictly mailbox mutex -> monitor mutex and the watchdog itself can
// never deadlock. The wake-up that announces a latch runs only after
// every monitor/mailbox lock is released (Mailbox::wake publishes a
// wake sequence under each mailbox mutex, which would invert the lock
// order if called from inside the scan). Detection is exact (no
// timers involved): transient
// states where a taker has removed a message but not yet resumed are
// ruled out because that taker is, by definition, not blocked.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace pas::mpi {

/// One edge of the wait-for graph: `rank` is blocked receiving
/// (src=waits_for, tag).
struct WaitEdge {
  int rank = -1;
  int waits_for = -1;
  int tag = 0;
};

/// Thrown out of a blocking receive when the run has deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  DeadlockError(const std::string& what, std::vector<WaitEdge> graph);
  /// Every blocked rank with what it was waiting for, sorted by rank.
  const std::vector<WaitEdge>& wait_for_graph() const { return graph_; }

 private:
  std::vector<WaitEdge> graph_;
};

/// A blocking receive completed later (in virtual time) than its
/// caller-supplied timeout allowed.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RunMonitor {
 public:
  /// Callback that wakes every blocked receiver (Mailbox::wake on each
  /// mailbox). Must be set before rank threads start; wake_peers reads
  /// it without the monitor lock.
  void set_wake_all(std::function<void()> wake) { wake_all_ = std::move(wake); }

  /// Invokes the wake-all callback. Mailbox::wake takes each mailbox
  /// mutex, so call this with NO mailbox or monitor lock held — the
  /// rank that latched a deadlock unlocks its own mailbox first, then
  /// announces (see Mailbox::receive).
  void wake_peers() const {
    if (wake_all_) wake_all_();
  }

  /// Resets all accounting for a fresh run of `nranks` ranks.
  void begin_run(int nranks);
  /// Marks `rank` finished (normally or by exception). A finishing
  /// rank can complete a deadlock among the remaining ones.
  void end_rank(int rank);

  /// Sender-side: a message for channel (dst, src, tag) is about to be
  /// delivered. Called before Mailbox::deliver.
  void on_deliver(int dst, int src, int tag);
  /// Receiver-side: a matching message was taken off the queue.
  void on_take(int dst, int src, int tag);

  /// Marks `rank` blocked on (src, tag). Throws DeadlockError if this
  /// completes the no-progress condition (or one is already latched);
  /// the throwing rank is unregistered first.
  void enter_wait(int rank, int src, int tag);
  void exit_wait(int rank);

  bool deadlocked() const;

 private:
  /// Requires mutex_. Latches the deadlock + graph if no blocked rank
  /// can make progress; returns true exactly when this call latched.
  /// Deliberately does NOT wake peers: that takes mailbox mutexes and
  /// must happen after every lock here is released.
  bool detect_locked();
  DeadlockError make_error_locked() const;

  static std::uint64_t chan_key(int dst, int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 48) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }

  struct Wait {
    bool blocked = false;
    int src = -1;
    int tag = 0;
  };

  mutable std::mutex mutex_;
  std::function<void()> wake_all_;
  int nranks_ = 0;
  int blocked_ = 0;
  int done_ = 0;
  bool deadlock_ = false;
  std::vector<Wait> waits_;
  std::vector<WaitEdge> graph_;
  /// Undelivered-message count per channel. Counts may be transiently
  /// negative when a take is recorded before its deliver; that only
  /// happens while the taker is running, which falsifies "all blocked".
  std::unordered_map<std::uint64_t, int> pending_;
};

}  // namespace pas::mpi
