#include "pas/mpi/message.hpp"

// Message is a plain aggregate; this TU exists so the library has a
// stable archive member for the header's constants.
namespace pas::mpi {}
