#include "pas/mpi/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "pas/mpi/watchdog.hpp"

namespace pas::mpi {
namespace {

auto matcher(int src, int tag) {
  return [src, tag](const Message& m) { return m.src == src && m.tag == tag; };
}

}  // namespace

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), matcher(src, tag));
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

Message Mailbox::receive(int src, int tag, RunMonitor& monitor, int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), matcher(src, tag));
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      monitor.on_take(rank, src, tag);
      return msg;
    }
    // enter_wait throws DeadlockError when this wait completes the
    // no-progress condition (or a peer already latched one). The
    // bounded wait makes missed deadlock wakeups harmless: the rank
    // re-checks within 20 ms of wall time.
    monitor.enter_wait(rank, src, tag);
    cv_.wait_for(lock, std::chrono::milliseconds(20));
    monitor.exit_wait(rank);
  }
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), matcher(src, tag));
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.clear();
}

void Mailbox::wake() { cv_.notify_all(); }

}  // namespace pas::mpi
