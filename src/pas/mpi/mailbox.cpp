#include "pas/mpi/mailbox.hpp"

#include <algorithm>

namespace pas::mpi {
namespace {

auto matcher(int src, int tag) {
  return [src, tag](const Message& m) { return m.src == src && m.tag == tag; };
}

}  // namespace

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), matcher(src, tag));
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), matcher(src, tag));
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace pas::mpi
