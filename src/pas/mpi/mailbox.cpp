#include "pas/mpi/mailbox.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "pas/mpi/watchdog.hpp"

namespace pas::mpi {

std::optional<Message> Mailbox::try_take_locked(std::uint64_t key) {
  auto it = buckets_.find(key);
  if (it == buckets_.end() || it->second.empty()) return std::nullopt;
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  --pending_;
  return msg;
}

bool Mailbox::has_message_locked(std::uint64_t key) const {
  const auto it = buckets_.find(key);
  return it != buckets_.end() && !it->second.empty();
}

void Mailbox::add_waiter_locked(std::uint64_t key) {
  ++waiters_[key];
  ++total_waiters_;
}

void Mailbox::remove_waiter_locked(std::uint64_t key) {
  auto it = waiters_.find(key);
  if (--it->second == 0) waiters_.erase(it);
  --total_waiters_;
}

void Mailbox::deliver(Message msg) {
  bool notify = false;
  bool broadcast = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t key = chan(msg.src, msg.tag);
    buckets_[key].push_back(std::move(msg));
    ++pending_;
    notify = waiters_.count(key) != 0;
    // One condition variable serves all waiters; with several blocked
    // channels notify_one could wake the wrong one, which would sleep
    // again and strand the right one.
    broadcast = total_waiters_ > 1;
  }
  if (!notify) return;
  if (broadcast)
    cv_.notify_all();
  else
    cv_.notify_one();
}

Message Mailbox::receive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t key = chan(src, tag);
  for (;;) {
    if (auto msg = try_take_locked(key)) return std::move(*msg);
    const std::uint64_t seq = wake_seq_;
    add_waiter_locked(key);
    // Untimed: no watchdog is armed here, and the targeted notify in
    // deliver() (or a wake() bump, re-checked under this mutex) is
    // guaranteed to land — there is nothing to poll for.
    cv_.wait(lock,
             [&] { return has_message_locked(key) || wake_seq_ != seq; });
    remove_waiter_locked(key);
  }
}

Message Mailbox::receive(int src, int tag, RunMonitor& monitor, int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t key = chan(src, tag);
  for (;;) {
    if (auto msg = try_take_locked(key)) {
      monitor.on_take(rank, src, tag);
      return std::move(*msg);
    }
    const std::uint64_t seq = wake_seq_;
    add_waiter_locked(key);
    try {
      // Lock order is mailbox -> monitor, same as on_take/on_deliver.
      // enter_wait throws DeadlockError when this wait completes the
      // no-progress condition (or a peer already latched one).
      monitor.enter_wait(rank, src, tag);
      // Detection is exact and wakes cannot be missed (the deadlock
      // path bumps wake_seq_ under this mutex), so the wait is
      // event-driven; the bound is a defense-in-depth backstop kept
      // only while the monitor is active, not the detection mechanism.
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [&] { return has_message_locked(key) || wake_seq_ != seq; });
      monitor.exit_wait(rank);
      remove_waiter_locked(key);
    } catch (...) {
      remove_waiter_locked(key);
      // Announce the latch with no locks held: wake() takes each peer
      // mailbox mutex to publish its wake sequence, so calling it with
      // this mailbox (or the monitor) locked would invert lock order.
      lock.unlock();
      monitor.wake_peers();
      throw;
    }
  }
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_message_locked(chan(src, tag));
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

void Mailbox::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  pending_ = 0;
}

void Mailbox::wake() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++wake_seq_;
  }
  cv_.notify_all();
}

std::vector<Message> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> keys;
  keys.reserve(buckets_.size());
  for (const auto& [key, queue] : buckets_) {
    if (!queue.empty()) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<Message> out;
  for (std::uint64_t key : keys) {
    const auto& queue = buckets_.at(key);
    out.insert(out.end(), queue.begin(), queue.end());
  }
  return out;
}

}  // namespace pas::mpi
