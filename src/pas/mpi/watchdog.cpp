#include "pas/mpi/watchdog.hpp"

#include <sstream>

#include "pas/obs/metrics.hpp"

namespace pas::mpi {

DeadlockError::DeadlockError(const std::string& what,
                             std::vector<WaitEdge> graph)
    : std::runtime_error(what), graph_(std::move(graph)) {}

void RunMonitor::begin_run(int nranks) {
  std::lock_guard<std::mutex> lock(mutex_);
  nranks_ = nranks;
  blocked_ = 0;
  done_ = 0;
  deadlock_ = false;
  waits_.assign(static_cast<std::size_t>(nranks), Wait{});
  graph_.clear();
  pending_.clear();
}

void RunMonitor::end_rank(int rank) {
  bool latched = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (rank < 0 || static_cast<std::size_t>(rank) >= waits_.size()) return;
    ++done_;
    latched = detect_locked();
  }
  // A finishing rank can complete a deadlock among the remaining
  // ones; it is the only live thread, so it must announce the latch.
  if (latched) wake_peers();
}

void RunMonitor::on_deliver(int dst, int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  int& count = pending_[chan_key(dst, src, tag)];
  if (++count == 0) pending_.erase(chan_key(dst, src, tag));
}

void RunMonitor::on_take(int dst, int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  int& count = pending_[chan_key(dst, src, tag)];
  if (--count == 0) pending_.erase(chan_key(dst, src, tag));
}

void RunMonitor::enter_wait(int rank, int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (deadlock_) throw make_error_locked();
  Wait& w = waits_.at(static_cast<std::size_t>(rank));
  w.blocked = true;
  w.src = src;
  w.tag = tag;
  ++blocked_;
  detect_locked();
  if (deadlock_) {
    // Unregister before unwinding; the peers wake via wake_all_ and
    // throw from their own next enter_wait.
    w.blocked = false;
    --blocked_;
    throw make_error_locked();
  }
}

void RunMonitor::exit_wait(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  Wait& w = waits_.at(static_cast<std::size_t>(rank));
  if (w.blocked) {
    w.blocked = false;
    --blocked_;
  }
}

bool RunMonitor::deadlocked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadlock_;
}

bool RunMonitor::detect_locked() {
  if (deadlock_ || blocked_ == 0 || blocked_ + done_ < nranks_) return false;
  for (int r = 0; r < nranks_; ++r) {
    const Wait& w = waits_[static_cast<std::size_t>(r)];
    if (!w.blocked) continue;
    const auto it = pending_.find(chan_key(r, w.src, w.tag));
    if (it != pending_.end() && it->second > 0) return false;  // deliverable
  }
  deadlock_ = true;
  static obs::Counter& latches = obs::registry().counter("mpi.deadlocks");
  latches.add();
  graph_.clear();
  for (int r = 0; r < nranks_; ++r) {
    const Wait& w = waits_[static_cast<std::size_t>(r)];
    if (w.blocked) graph_.push_back(WaitEdge{r, w.src, w.tag});
  }
  return true;
}

DeadlockError RunMonitor::make_error_locked() const {
  std::ostringstream out;
  out << "deadlock: every live rank is blocked with no deliverable message;"
      << " wait-for:";
  for (const WaitEdge& e : graph_)
    out << ' ' << e.rank << "->" << e.waits_for << "(tag " << e.tag << ")";
  if (done_ > 0) out << " [" << done_ << " rank(s) already finished]";
  return DeadlockError(out.str(), graph_);
}

}  // namespace pas::mpi
