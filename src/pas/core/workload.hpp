// Workload decomposition vocabulary of the power-aware speedup model
// (paper §3).
//
// A workload w is decomposed two ways simultaneously:
//   * ON-chip vs OFF-chip (does the work scale with the DVFS clock
//     f_ON, or with the bus clock f_OFF?), and
//   * by degree of parallelism (DOP i: w_i can use at most i
//     processors at once),
// plus a parallel-overhead term w_PO (communication/synchronization),
// itself ON/OFF-chip split.
#pragma once

#include <map>
#include <string>

namespace pas::core {

/// An amount of work (instructions) split into the part paced by the
/// CPU clock and the part paced by the bus.
struct Work {
  double on_chip = 0.0;
  double off_chip = 0.0;

  double total() const { return on_chip + off_chip; }

  Work& operator+=(const Work& o) {
    on_chip += o.on_chip;
    off_chip += o.off_chip;
    return *this;
  }
  friend Work operator+(Work a, const Work& b) {
    a += b;
    return a;
  }
  friend Work operator*(Work w, double k) {
    w.on_chip *= k;
    w.off_chip *= k;
    return w;
  }
};

/// The full decomposition: w = sum_i w_i (1 <= i <= m) plus overhead.
struct DopWorkload {
  /// w_i by degree of parallelism i (i >= 1).
  std::map<int, Work> by_dop;
  /// Parallel overhead w_PO. The paper assumes it cannot be
  /// parallelized; for message-passing codes w_PO^ON ~ 0 (§4.3).
  Work overhead;

  /// Maximum DOP m.
  int max_dop() const;

  /// Total application work (excluding overhead).
  Work application_work() const;

  /// Serial fraction: w_1 / total (the Amdahl bottleneck).
  double serial_fraction() const;

  /// Convenience: perfectly parallelizable workload (w = w_m, m = dop),
  /// the paper's Assumption 1.
  static DopWorkload perfectly_parallel(Work w, int dop);

  /// Amdahl-style two-piece workload: serial part w1 + parallel part
  /// w_N with DOP = dop.
  static DopWorkload serial_plus_parallel(Work w1, Work wn, int dop);

  std::string to_string() const;
};

}  // namespace pas::core
