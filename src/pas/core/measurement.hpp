// Measurement records — the only things the predictors are allowed to
// see (DESIGN.md decision 2: the predictor/measurement firewall).
// These are what a stopwatch, PAPI, LMBENCH and MPPTEST would give you
// on the real cluster.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pas::core {

/// One timed run at a system configuration.
struct TimingSample {
  int nodes = 0;
  double frequency_mhz = 0.0;
  double seconds = 0.0;
};

/// A (nodes, frequency) -> execution-time table.
class TimingMatrix {
 public:
  void add(int nodes, double frequency_mhz, double seconds);
  void add(const TimingSample& s) { add(s.nodes, s.frequency_mhz, s.seconds); }

  bool has(int nodes, double frequency_mhz) const;
  /// Throws std::out_of_range when the entry is missing.
  double at(int nodes, double frequency_mhz) const;

  /// Measured speedup relative to (base_nodes, base_f).
  double speedup(int nodes, double frequency_mhz, int base_nodes,
                 double base_f) const;

  std::vector<int> node_counts() const;
  std::vector<double> frequencies_mhz() const;
  std::size_t size() const { return samples_.size(); }

 private:
  /// Frequencies keyed to 0.1 MHz to avoid float-key surprises.
  static long fkey(double mhz) { return static_cast<long>(mhz * 10.0 + 0.5); }
  std::map<std::pair<int, long>, double> samples_;
};

/// Communication profile of a kernel at a node count (§5.2 step 2:
/// "the product of number of messages and message time").
struct CommProfile {
  int nodes = 0;
  /// Messages per run on one rank's critical path.
  double messages = 0.0;
  /// Representative payload size (doubles per message).
  double doubles_per_message = 0.0;
};

}  // namespace pas::core
