// Fine-grain parameterization (FP) — paper §5.2.
//
// Three steps, all driven by measurements:
//   Step 1 (workload distribution): instruction counts by memory level
//     from hardware counters (Table 5; pas::counters supplies them on
//     the simulated node).
//   Step 2 (workload time): seconds-per-instruction for each level per
//     frequency from an LMBENCH-like probe, and seconds-per-message
//     from an MPPTEST-like probe (Table 6).
//   Step 3 (prediction): Eq 14 for sequential time, Eq 15 for parallel
//     time = T_1(w,f)/N + T(w_PO, f), with T(w_PO) = messages * message
//     time.
//
// Unlike SP, FP separates ON- and OFF-chip workloads explicitly and
// needs no end-to-end timing runs — only probes and counters.
#pragma once

#include <map>

#include "pas/core/measurement.hpp"

namespace pas::core {

/// Step 1 input: instructions by serving level (counter-derived).
struct LevelWorkload {
  double reg_ins = 0.0;
  double l1_ins = 0.0;
  double l2_ins = 0.0;
  double mem_ins = 0.0;

  double total() const { return reg_ins + l1_ins + l2_ins + mem_ins; }
  double on_chip() const { return reg_ins + l1_ins + l2_ins; }
};

/// Step 2 input: seconds per instruction at one frequency.
struct LevelSeconds {
  double reg_s = 0.0;
  double l1_s = 0.0;
  double l2_s = 0.0;
  double mem_s = 0.0;
};

class FineGrainParameterization {
 public:
  FineGrainParameterization(LevelWorkload workload,
                            double base_frequency_mhz);

  double base_frequency_mhz() const { return base_f_mhz_; }
  const LevelWorkload& workload() const { return workload_; }

  /// Step 2: level times measured at `f_mhz`.
  void set_level_seconds(double f_mhz, const LevelSeconds& t);

  /// Step 2: communication profile at `nodes` — messages per run and
  /// the measured per-message time at `f_mhz`.
  void set_comm(int nodes, double messages, double f_mhz,
                double seconds_per_message);

  /// Weighted ON-chip seconds per instruction at `f_mhz` (the paper's
  /// CPI_ON / f_ON with the Step 1 weights).
  double on_chip_seconds_per_ins(double f_mhz) const;

  /// Eq 14 — predicted sequential time.
  double predict_sequential(double f_mhz) const;

  /// T(w_PO, f) — predicted overhead time (0 for one node).
  double predict_overhead(int nodes, double f_mhz) const;

  /// Eq 15 — predicted parallel time (Assumption 1: workload fully
  /// parallelizable).
  double predict_parallel(int nodes, double f_mhz) const;

  /// Predicted power-aware speedup relative to (1, f0).
  double predict_speedup(int nodes, double f_mhz) const;

 private:
  static long fkey(double mhz) { return static_cast<long>(mhz * 10.0 + 0.5); }
  const LevelSeconds& level_seconds(double f_mhz) const;

  LevelWorkload workload_;
  double base_f_mhz_;
  std::map<long, LevelSeconds> level_seconds_;
  struct CommEntry {
    double messages = 0.0;
    std::map<long, double> seconds_per_message;  ///< by frequency
  };
  std::map<int, CommEntry> comm_;
};

}  // namespace pas::core
