// Baseline speedup models the paper positions itself against (§2 and
// §6): Amdahl's Law, its multi-enhancement generalization (Equations
// 2-3 — the model whose Table 1 failure motivates the paper), plus
// Gustafson fixed-time, Sun-Ni memory-bounded, Karp-Flatt experimental
// serial fraction, and Grama isoefficiency helpers.
#pragma once

#include <span>

#include "pas/core/measurement.hpp"

namespace pas::core {

/// Eq 2: S = 1 / ((1-FE) + FE/SE) for a single enhancement applied to
/// a fraction FE of the workload with speedup factor SE.
double amdahl_enhancement_speedup(double enhanced_fraction,
                                  double enhancement_speedup);

/// Classic Amdahl with N processors over a parallel fraction.
double amdahl_speedup(double parallel_fraction, int processors);

/// Eq 3: the product form for e simultaneous enhancements, which
/// assumes their effects are independent.
struct Enhancement {
  double enhanced_fraction = 0.0;  ///< FE_e
  double speedup_factor = 1.0;     ///< SE_e
};
double generalized_amdahl_speedup(std::span<const Enhancement> enhancements);

/// The Table 1 predictor: estimate S(N, f) as the product of the two
/// measured single-enhancement speedups,
///   S_pred(N, f) = [T(1,f0)/T(N,f0)] * [T(1,f0)/T(1,f)],
/// exactly how Eq 3 is applied to a power-aware cluster with e = 2.
/// Over-predicts whenever parallel overhead couples the enhancements.
double eq3_product_prediction(const TimingMatrix& measured, int nodes,
                              double frequency_mhz, int base_nodes,
                              double base_frequency_mhz);

/// Gustafson's fixed-time scaled speedup: S = N - alpha * (N - 1),
/// alpha the serial fraction of the *scaled* run.
double gustafson_speedup(double serial_fraction, int processors);

/// Sun-Ni memory-bounded speedup:
///   S = (alpha + (1 - alpha) * g) / (alpha + (1 - alpha) * g / N),
/// where g = G(N) is the workload-growth factor allowed by memory.
double sun_ni_speedup(double serial_fraction, int processors, double growth);

/// Karp-Flatt experimentally determined serial fraction:
///   e = (1/S - 1/N) / (1 - 1/N).
double karp_flatt_serial_fraction(double speedup, int processors);

/// Isoefficiency helper: parallel efficiency E = S / N.
double parallel_efficiency(double speedup, int processors);

}  // namespace pas::core
