#include "pas/core/sweet_spot.hpp"

#include <algorithm>

namespace pas::core {

SweetSpotFinder::SweetSpotFinder(power::PowerModel model,
                                 sim::OperatingPointTable points)
    : model_(std::move(model)), points_(std::move(points)) {}

double SweetSpotFinder::predict_energy(int nodes, double f_mhz, double time_s,
                                       double overhead_s) const {
  const sim::OperatingPoint& p = points_.at_mhz(f_mhz);
  const double comm = std::clamp(overhead_s, 0.0, time_s);
  const double busy = time_s - comm;
  const double per_node =
      busy * model_.node_power_w(sim::Activity::kCpu, p) +
      comm * model_.node_power_w(sim::Activity::kNetwork, p);
  return static_cast<double>(nodes) * per_node;
}

std::vector<power::MetricPoint> SweetSpotFinder::evaluate(
    const std::vector<int>& node_counts, const std::vector<double>& freqs_mhz,
    const TimeFn& time, const OverheadFn& overhead) const {
  std::vector<power::MetricPoint> points;
  points.reserve(node_counts.size() * freqs_mhz.size());
  for (int n : node_counts) {
    for (double f : freqs_mhz) {
      power::MetricPoint p;
      p.nodes = n;
      p.frequency_mhz = f;
      p.time_s = time(n, f);
      const double ov = overhead ? overhead(n, f) : 0.0;
      p.energy_j = predict_energy(n, f, p.time_s, ov);
      points.push_back(p);
    }
  }
  return points;
}

power::MetricPoint SweetSpotFinder::find(const std::vector<int>& node_counts,
                                         const std::vector<double>& freqs_mhz,
                                         const TimeFn& time,
                                         power::Objective objective,
                                         const OverheadFn& overhead) const {
  return power::best(evaluate(node_counts, freqs_mhz, time, overhead),
                     objective);
}

}  // namespace pas::core
