// Isoefficiency analysis (Grama, Gupta & Kumar — ref [18] of the
// paper's related work): how fast must the workload grow with the
// processor count to hold parallel efficiency constant?
//
// Built on the fitted workload surface (workload_fit.hpp): with
// T(N) = A + B/N + C + D/N at a fixed frequency, scaling the
// frequency-scaled work by k scales A and B while the overhead terms
// stay; the efficiency of the scaled run is
//
//   E(N, k) = k (A + B) / (N * T_scaled(N, k)).
//
// iso_workload_factor solves for the k that achieves a target
// efficiency; the growth of k with N is the isoefficiency function.
#pragma once

#include <vector>

#include "pas/core/workload_fit.hpp"

namespace pas::core {

/// Parallel efficiency of the *fitted* surface at (nodes, f0), i.e.
/// T(1) / (N * T(N)).
double fitted_efficiency(const WorkloadFit& fit, int nodes);

/// The workload scale factor k >= 0 that makes the scaled run hit
/// `target_efficiency` on `nodes` processors at the base frequency.
/// Returns +inf when the target is unreachable (overhead alone already
/// exceeds the allowed budget). Throws std::invalid_argument for a
/// target outside (0, 1] or nodes < 1.
double iso_workload_factor(const WorkloadFit& fit, int nodes,
                           double target_efficiency);

/// The isoefficiency curve over a set of node counts.
struct IsoPoint {
  int nodes = 0;
  double workload_factor = 0.0;
};
std::vector<IsoPoint> isoefficiency_curve(const WorkloadFit& fit,
                                          const std::vector<int>& node_counts,
                                          double target_efficiency);

/// True if the workload (per the fit) is scalable in the isoefficiency
/// sense: a finite workload factor exists for every requested count.
bool is_scalable(const WorkloadFit& fit, const std::vector<int>& node_counts,
                 double target_efficiency);

}  // namespace pas::core
