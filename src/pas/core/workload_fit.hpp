// Workload estimation from timing measurements — the direction the
// paper names as future work ("we are working presently to obtain
// better estimates of DOP" and "exploring ways to measure w_1
// directly", §5.2 / footnote 5).
//
// Model fitted by linear least squares over a measured (N, f) matrix
// (parallel configurations only carry the overhead terms):
//
//   T(N, f) = A * (f0/f) + B * (f0/f) / N + C + D / N
//
//   A — serial, frequency-scaled time (w_1's ON-chip work at f0),
//   B — parallelizable, frequency-scaled time (w_N at f0),
//   C — frequency- and parallelism-blind overhead (per-rank latency
//       floor: barriers, collective depth),
//   D — frequency-blind overhead that shrinks with N (per-rank data
//       volume: FT's all-to-all moves ~1/N of the grid per rank).
//
// The decomposition separates exactly the quantities the power-aware
// speedup model needs but SP/FP must assume: the serial fraction
// (Assumption 1) and the frequency sensitivity of the remainder
// (Assumption 2).
#pragma once

#include "pas/core/measurement.hpp"

namespace pas::core {

struct WorkloadFit {
  double base_f_mhz = 0.0;
  double serial_s = 0.0;        ///< A at the base frequency
  double parallel_s = 0.0;      ///< B at the base frequency
  double invariant_s = 0.0;     ///< C
  double overhead_per_n_s = 0.0;  ///< D
  double r2 = 0.0;              ///< coefficient of determination

  /// w_1 / (w_1 + w_N) in time-at-base terms.
  double serial_fraction() const;

  /// Total frequency-blind overhead at a node count (C + D/N).
  double overhead_seconds(int nodes) const;

  /// The fitted surface evaluated at a configuration.
  double predict_time(int nodes, double f_mhz) const;

  /// Predicted power-aware speedup relative to (1 node, base f).
  double predict_speedup(int nodes, double f_mhz) const;
};

/// Fits the three-parameter surface to all samples of `measured`.
/// Requires at least 3 samples spanning more than one N and more than
/// one f (otherwise the system is singular); throws
/// std::invalid_argument in that case.
WorkloadFit fit_workload(const TimingMatrix& measured, double base_f_mhz);

}  // namespace pas::core
