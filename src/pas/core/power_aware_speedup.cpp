#include "pas/core/power_aware_speedup.hpp"

#include <cmath>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::core {

PowerAwareModel::PowerAwareModel(DopWorkload workload, MachineRates rates,
                                 double base_frequency_mhz)
    : workload_(std::move(workload)),
      rates_(rates),
      base_f_mhz_(base_frequency_mhz) {
  if (base_f_mhz_ <= 0.0)
    throw std::invalid_argument("base frequency must be > 0");
  for (const auto& [dop, w] : workload_.by_dop) {
    if (dop < 1) throw std::invalid_argument("DOP must be >= 1");
    (void)w;
  }
}

double PowerAwareModel::sequential_time(double f_mhz) const {
  const Work w = workload_.application_work();
  return w.on_chip * rates_.sec_per_on_op(f_mhz) +
         w.off_chip * rates_.off_op_seconds(f_mhz);
}

double PowerAwareModel::overhead_time(double f_mhz) const {
  return workload_.overhead.on_chip * rates_.sec_per_on_op(f_mhz) +
         workload_.overhead.off_chip * rates_.off_op_seconds(f_mhz);
}

double PowerAwareModel::dop_term_time(const Work& w, int dop, int nodes,
                                      double f_mhz) const {
  // With i <= N the term runs i-wide: w_i / i per processor. With
  // i > N the footnote's ceil(i/N) factor serializes the surplus.
  const double i = static_cast<double>(dop);
  const double waves = std::ceil(i / static_cast<double>(nodes));
  const double scale = waves / i;
  return w.on_chip * scale * rates_.sec_per_on_op(f_mhz) +
         w.off_chip * scale * rates_.off_op_seconds(f_mhz);
}

double PowerAwareModel::parallel_time(int nodes, double f_mhz) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  double t = 0.0;
  for (const auto& [dop, w] : workload_.by_dop)
    t += dop_term_time(w, dop, nodes, f_mhz);
  if (nodes > 1) t += overhead_time(f_mhz);
  return t;
}

double PowerAwareModel::speedup(int nodes, double f_mhz) const {
  return sequential_time(base_f_mhz_) / parallel_time(nodes, f_mhz);
}

double PowerAwareModel::same_frequency_speedup(int nodes,
                                               double f_mhz) const {
  return sequential_time(f_mhz) / parallel_time(nodes, f_mhz);
}

std::string PowerAwareModel::to_string() const {
  return pas::util::strf(
      "PowerAwareModel{%s; CPI_ON=%.3f, off=%.0fns/%.0fns, f0=%.0fMHz}",
      workload_.to_string().c_str(), rates_.cpi_on,
      rates_.sec_per_off_op * 1e9, rates_.sec_per_off_op_slow * 1e9,
      base_f_mhz_);
}

}  // namespace pas::core
