#include "pas/core/workload_fit.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace pas::core {
namespace {

constexpr int kBasis = 4;
using Row = std::array<double, kBasis>;
using Matrix = std::array<Row, kBasis>;

/// Basis phi(N, f) = {g, g/N, [N>1], [N>1]/N} with g = f0/f. The
/// serial run carries no overhead terms, matching the model's T_1
/// (Eq 6) having no w_PO contribution.
Row basis(int n, double g) {
  const double par = n > 1 ? 1.0 : 0.0;
  return Row{g, g / static_cast<double>(n), par,
             par / static_cast<double>(n)};
}

/// Solves M x = b by Gaussian elimination with partial pivoting.
/// Throws on a (near-)singular system.
std::array<double, kBasis> solve(Matrix m, Row b) {
  for (int col = 0; col < kBasis; ++col) {
    int pivot = col;
    for (int row = col + 1; row < kBasis; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) pivot = row;
    }
    if (std::fabs(m[pivot][col]) < 1e-25)
      throw std::invalid_argument(
          "fit_workload: singular system (need variation in both N and f)");
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    for (int row = col + 1; row < kBasis; ++row) {
      const double factor = m[row][col] / m[col][col];
      for (int k = col; k < kBasis; ++k) m[row][k] -= factor * m[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::array<double, kBasis> x{};
  for (int row = kBasis - 1; row >= 0; --row) {
    double sum = b[row];
    for (int k = row + 1; k < kBasis; ++k) sum -= m[row][k] * x[k];
    x[row] = sum / m[row][row];
  }
  return x;
}

}  // namespace

double WorkloadFit::serial_fraction() const {
  const double total = serial_s + parallel_s;
  return total > 0.0 ? serial_s / total : 0.0;
}

double WorkloadFit::overhead_seconds(int nodes) const {
  if (nodes <= 1) return 0.0;
  return invariant_s + overhead_per_n_s / static_cast<double>(nodes);
}

double WorkloadFit::predict_time(int nodes, double f_mhz) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  const double g = base_f_mhz / f_mhz;
  return serial_s * g + parallel_s * g / static_cast<double>(nodes) +
         overhead_seconds(nodes);
}

double WorkloadFit::predict_speedup(int nodes, double f_mhz) const {
  return predict_time(1, base_f_mhz) / predict_time(nodes, f_mhz);
}

WorkloadFit fit_workload(const TimingMatrix& measured, double base_f_mhz) {
  if (base_f_mhz <= 0.0)
    throw std::invalid_argument("base frequency must be > 0");
  if (measured.size() < static_cast<std::size_t>(kBasis))
    throw std::invalid_argument("fit_workload: need >= 4 samples");

  Matrix m{};
  Row rhs{};
  double sum_t = 0.0;
  std::size_t count = 0;
  for (int n : measured.node_counts()) {
    for (double f : measured.frequencies_mhz()) {
      if (!measured.has(n, f)) continue;
      const double t = measured.at(n, f);
      const Row phi = basis(n, base_f_mhz / f);
      for (int i = 0; i < kBasis; ++i) {
        rhs[static_cast<std::size_t>(i)] +=
            phi[static_cast<std::size_t>(i)] * t;
        for (int j = 0; j < kBasis; ++j)
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
              phi[static_cast<std::size_t>(i)] *
              phi[static_cast<std::size_t>(j)];
      }
      sum_t += t;
      ++count;
    }
  }

  const std::array<double, kBasis> coeff = solve(m, rhs);
  WorkloadFit fit;
  fit.base_f_mhz = base_f_mhz;
  fit.serial_s = coeff[0];
  fit.parallel_s = coeff[1];
  fit.invariant_s = coeff[2];
  fit.overhead_per_n_s = coeff[3];

  // R^2 over all samples.
  const double mean_t = sum_t / static_cast<double>(count);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (int n : measured.node_counts()) {
    for (double f : measured.frequencies_mhz()) {
      if (!measured.has(n, f)) continue;
      const double t = measured.at(n, f);
      const double p = fit.predict_time(n, f);
      ss_res += (t - p) * (t - p);
      ss_tot += (t - mean_t) * (t - mean_t);
    }
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace pas::core
