// Simplified parameterization (SP) — paper §5.1.
//
// Inputs (measurements only):
//   Step 1: T_N(w, f0) for each processor count at the base frequency.
//   Step 3: T_1(w, f) for each frequency on one processor.
// Derivation:
//   Step 2 (Eq 17): T(w_PO)_N = T_N(w, f0) - T_1(w, f0) / N.
//   Step 4 (Eq 18): T_N(w, f) = T_1(w, f) / N + T(w_PO)_N.
//
// Assumptions (the documented error sources):
//   1. the workload is perfectly parallelizable (w = w_N), and
//   2. parallel overhead is frequency-independent (w_PO^ON = 0).
#pragma once

#include "pas/core/measurement.hpp"

namespace pas::core {

class SimplifiedParameterization {
 public:
  explicit SimplifiedParameterization(double base_frequency_mhz);

  double base_frequency_mhz() const { return base_f_mhz_; }

  /// Step 3 (and Step 1's N=1 entry): sequential time at `f_mhz`.
  void add_sequential(double f_mhz, double seconds);

  /// Step 1: parallel time at the base frequency for `nodes`.
  void add_parallel_base(int nodes, double seconds);

  /// Ingests every (1, f) and (N, f0) sample of a measured matrix.
  void ingest(const TimingMatrix& measured);

  /// Eq 17 — derived overhead time for `nodes` (0 for nodes == 1).
  double overhead_seconds(int nodes) const;

  /// Eq 18 — predicted execution time at (nodes, f_mhz).
  double predict_time(int nodes, double f_mhz) const;

  /// Predicted power-aware speedup relative to (1, f0).
  double predict_speedup(int nodes, double f_mhz) const;

  /// True once the base sequential time is available.
  bool ready() const;

 private:
  double base_f_mhz_;
  TimingMatrix sequential_;     ///< (1, f) samples
  TimingMatrix parallel_base_;  ///< (N, f0) samples
};

}  // namespace pas::core
