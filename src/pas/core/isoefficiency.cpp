#include "pas/core/isoefficiency.hpp"

#include <limits>
#include <stdexcept>

namespace pas::core {

double fitted_efficiency(const WorkloadFit& fit, int nodes) {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  const double t1 = fit.serial_s + fit.parallel_s;
  const double tn = fit.serial_s +
                    fit.parallel_s / static_cast<double>(nodes) +
                    fit.overhead_seconds(nodes);
  if (tn <= 0.0) return 0.0;
  return t1 / (static_cast<double>(nodes) * tn);
}

double iso_workload_factor(const WorkloadFit& fit, int nodes,
                           double target_efficiency) {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  if (target_efficiency <= 0.0 || target_efficiency > 1.0)
    throw std::invalid_argument("target efficiency must be in (0, 1]");
  const double n = static_cast<double>(nodes);
  const double a = fit.serial_s;
  const double b = fit.parallel_s;
  const double e = target_efficiency;
  // Scaling the frequency-scaled work by k while the overhead stays:
  //   E = k (A + B) / (N (kA + kB/N + C + D/N))
  // => k [(A + B) - E (N A + B)] = E (N C + D).
  const double denom = (a + b) - e * (n * a + b);
  const double overhead_budget =
      e * (n * fit.invariant_s + fit.overhead_per_n_s);
  if (denom <= 0.0) {
    // Amdahl ceiling: the serial part alone caps E below the target.
    // With zero overhead and E exactly at the ceiling, any k works.
    return overhead_budget <= 0.0 && denom == 0.0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  // Negative budgets (fit noise can make C or D slightly negative)
  // mean the target is already exceeded at any workload.
  return std::max(0.0, overhead_budget / denom);
}

std::vector<IsoPoint> isoefficiency_curve(const WorkloadFit& fit,
                                          const std::vector<int>& node_counts,
                                          double target_efficiency) {
  std::vector<IsoPoint> out;
  out.reserve(node_counts.size());
  for (int n : node_counts)
    out.push_back(IsoPoint{n, iso_workload_factor(fit, n, target_efficiency)});
  return out;
}

bool is_scalable(const WorkloadFit& fit, const std::vector<int>& node_counts,
                 double target_efficiency) {
  for (int n : node_counts) {
    const double k = iso_workload_factor(fit, n, target_efficiency);
    if (!(k < std::numeric_limits<double>::infinity())) return false;
  }
  return true;
}

}  // namespace pas::core
