#include "pas/core/fine_grain_param.hpp"

#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::core {

FineGrainParameterization::FineGrainParameterization(LevelWorkload workload,
                                                     double base_frequency_mhz)
    : workload_(workload), base_f_mhz_(base_frequency_mhz) {
  if (base_f_mhz_ <= 0.0)
    throw std::invalid_argument("base frequency must be > 0");
  if (workload_.total() <= 0.0)
    throw std::invalid_argument("empty workload");
}

void FineGrainParameterization::set_level_seconds(double f_mhz,
                                                  const LevelSeconds& t) {
  level_seconds_[fkey(f_mhz)] = t;
}

void FineGrainParameterization::set_comm(int nodes, double messages,
                                         double f_mhz,
                                         double seconds_per_message) {
  CommEntry& entry = comm_[nodes];
  entry.messages = messages;
  entry.seconds_per_message[fkey(f_mhz)] = seconds_per_message;
}

const LevelSeconds& FineGrainParameterization::level_seconds(
    double f_mhz) const {
  auto it = level_seconds_.find(fkey(f_mhz));
  if (it == level_seconds_.end())
    throw std::out_of_range(
        pas::util::strf("no level times at %.1f MHz", f_mhz));
  return it->second;
}

double FineGrainParameterization::on_chip_seconds_per_ins(
    double f_mhz) const {
  const LevelSeconds& t = level_seconds(f_mhz);
  const double on = workload_.on_chip();
  if (on <= 0.0) return 0.0;
  return (workload_.reg_ins * t.reg_s + workload_.l1_ins * t.l1_s +
          workload_.l2_ins * t.l2_s) /
         on;
}

double FineGrainParameterization::predict_sequential(double f_mhz) const {
  const LevelSeconds& t = level_seconds(f_mhz);
  return workload_.reg_ins * t.reg_s + workload_.l1_ins * t.l1_s +
         workload_.l2_ins * t.l2_s + workload_.mem_ins * t.mem_s;
}

double FineGrainParameterization::predict_overhead(int nodes,
                                                   double f_mhz) const {
  if (nodes <= 1) return 0.0;
  auto it = comm_.find(nodes);
  if (it == comm_.end())
    throw std::out_of_range(
        pas::util::strf("no communication profile for %d nodes", nodes));
  const auto& per_msg = it->second.seconds_per_message;
  auto jt = per_msg.find(fkey(f_mhz));
  if (jt == per_msg.end())
    throw std::out_of_range(pas::util::strf(
        "no message time for %d nodes at %.1f MHz", nodes, f_mhz));
  return it->second.messages * jt->second;
}

double FineGrainParameterization::predict_parallel(int nodes,
                                                   double f_mhz) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  const double t1 = predict_sequential(f_mhz);
  if (nodes == 1) return t1;
  return t1 / static_cast<double>(nodes) + predict_overhead(nodes, f_mhz);
}

double FineGrainParameterization::predict_speedup(int nodes,
                                                  double f_mhz) const {
  return predict_sequential(base_f_mhz_) / predict_parallel(nodes, f_mhz);
}

}  // namespace pas::core
