#include "pas/core/baseline_models.hpp"

#include <stdexcept>

namespace pas::core {

double amdahl_enhancement_speedup(double enhanced_fraction,
                                  double enhancement_speedup) {
  if (enhanced_fraction < 0.0 || enhanced_fraction > 1.0)
    throw std::invalid_argument("enhanced_fraction must be in [0, 1]");
  if (enhancement_speedup <= 0.0)
    throw std::invalid_argument("enhancement_speedup must be > 0");
  return 1.0 /
         ((1.0 - enhanced_fraction) + enhanced_fraction / enhancement_speedup);
}

double amdahl_speedup(double parallel_fraction, int processors) {
  if (processors < 1) throw std::invalid_argument("processors must be >= 1");
  return amdahl_enhancement_speedup(parallel_fraction,
                                    static_cast<double>(processors));
}

double generalized_amdahl_speedup(std::span<const Enhancement> enhancements) {
  double product = 1.0;
  for (const Enhancement& e : enhancements)
    product *= amdahl_enhancement_speedup(e.enhanced_fraction,
                                          e.speedup_factor);
  return product;
}

double eq3_product_prediction(const TimingMatrix& measured, int nodes,
                              double frequency_mhz, int base_nodes,
                              double base_frequency_mhz) {
  const double parallel_speedup =
      measured.speedup(nodes, base_frequency_mhz, base_nodes,
                       base_frequency_mhz);
  const double frequency_speedup =
      measured.speedup(base_nodes, frequency_mhz, base_nodes,
                       base_frequency_mhz);
  return parallel_speedup * frequency_speedup;
}

double gustafson_speedup(double serial_fraction, int processors) {
  if (processors < 1) throw std::invalid_argument("processors must be >= 1");
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::invalid_argument("serial_fraction must be in [0, 1]");
  const double n = static_cast<double>(processors);
  return n - serial_fraction * (n - 1.0);
}

double sun_ni_speedup(double serial_fraction, int processors, double growth) {
  if (processors < 1) throw std::invalid_argument("processors must be >= 1");
  if (growth <= 0.0) throw std::invalid_argument("growth must be > 0");
  const double n = static_cast<double>(processors);
  const double par = 1.0 - serial_fraction;
  return (serial_fraction + par * growth) /
         (serial_fraction + par * growth / n);
}

double karp_flatt_serial_fraction(double speedup, int processors) {
  if (processors < 2)
    throw std::invalid_argument("Karp-Flatt needs >= 2 processors");
  if (speedup <= 0.0) throw std::invalid_argument("speedup must be > 0");
  const double n = static_cast<double>(processors);
  return (1.0 / speedup - 1.0 / n) / (1.0 - 1.0 / n);
}

double parallel_efficiency(double speedup, int processors) {
  if (processors < 1) throw std::invalid_argument("processors must be >= 1");
  return speedup / static_cast<double>(processors);
}

}  // namespace pas::core
