#include "pas/core/workload.hpp"

#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::core {

int DopWorkload::max_dop() const {
  return by_dop.empty() ? 0 : by_dop.rbegin()->first;
}

Work DopWorkload::application_work() const {
  Work total;
  for (const auto& [dop, w] : by_dop) total += w;
  return total;
}

double DopWorkload::serial_fraction() const {
  const double total = application_work().total();
  if (total <= 0.0) return 0.0;
  auto it = by_dop.find(1);
  return it == by_dop.end() ? 0.0 : it->second.total() / total;
}

DopWorkload DopWorkload::perfectly_parallel(Work w, int dop) {
  if (dop < 1) throw std::invalid_argument("dop must be >= 1");
  DopWorkload out;
  out.by_dop[dop] = w;
  return out;
}

DopWorkload DopWorkload::serial_plus_parallel(Work w1, Work wn, int dop) {
  if (dop < 1) throw std::invalid_argument("dop must be >= 1");
  DopWorkload out;
  if (w1.total() > 0.0) out.by_dop[1] = w1;
  out.by_dop[dop] += wn;
  return out;
}

std::string DopWorkload::to_string() const {
  std::string out;
  for (const auto& [dop, w] : by_dop)
    out += pas::util::strf("w[%d]=(on %.3g, off %.3g) ", dop, w.on_chip,
                           w.off_chip);
  out += pas::util::strf("wPO=(on %.3g, off %.3g)", overhead.on_chip,
                         overhead.off_chip);
  return out;
}

}  // namespace pas::core
