#include "pas/core/measurement.hpp"

#include <algorithm>
#include <stdexcept>

#include "pas/util/format.hpp"

namespace pas::core {

void TimingMatrix::add(int nodes, double frequency_mhz, double seconds) {
  samples_[{nodes, fkey(frequency_mhz)}] = seconds;
}

bool TimingMatrix::has(int nodes, double frequency_mhz) const {
  return samples_.count({nodes, fkey(frequency_mhz)}) != 0;
}

double TimingMatrix::at(int nodes, double frequency_mhz) const {
  auto it = samples_.find({nodes, fkey(frequency_mhz)});
  if (it == samples_.end())
    throw std::out_of_range(pas::util::strf(
        "TimingMatrix: no sample at N=%d f=%.1f MHz", nodes, frequency_mhz));
  return it->second;
}

double TimingMatrix::speedup(int nodes, double frequency_mhz, int base_nodes,
                             double base_f) const {
  return at(base_nodes, base_f) / at(nodes, frequency_mhz);
}

std::vector<int> TimingMatrix::node_counts() const {
  std::vector<int> out;
  for (const auto& [key, value] : samples_) {
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> TimingMatrix::frequencies_mhz() const {
  std::vector<long> keys;
  for (const auto& [key, value] : samples_) keys.push_back(key.second);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<double> out;
  out.reserve(keys.size());
  for (long k : keys) out.push_back(static_cast<double>(k) / 10.0);
  return out;
}

}  // namespace pas::core
