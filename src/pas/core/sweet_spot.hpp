// Sweet-spot search (paper §2: "identify 'sweet spot' system
// configurations of processor count and frequency" and §7: "Coupled
// with an energy-delay metric, this new speedup model can predict both
// the performance and the energy/power consumption").
//
// Couples any execution-time predictor (SP, FP, or the analytic model)
// with the node power model to produce predicted MetricPoints over a
// configuration grid, then ranks them under a chosen objective.
#pragma once

#include <functional>
#include <vector>

#include "pas/power/energy_delay.hpp"
#include "pas/power/power_model.hpp"

namespace pas::core {

class SweetSpotFinder {
 public:
  /// Predicted execution time at a configuration (seconds).
  using TimeFn = std::function<double(int nodes, double f_mhz)>;
  /// Predicted communication/overhead time within that run (seconds);
  /// pass nullptr-equivalent (empty) to treat runs as all-compute.
  using OverheadFn = std::function<double(int nodes, double f_mhz)>;

  SweetSpotFinder(power::PowerModel model, sim::OperatingPointTable points);

  /// Predicted energy of one configuration: `nodes` nodes drawing
  /// compute power for (time - overhead) and network power for the
  /// overhead portion.
  double predict_energy(int nodes, double f_mhz, double time_s,
                        double overhead_s) const;

  /// Evaluates the whole grid.
  std::vector<power::MetricPoint> evaluate(
      const std::vector<int>& node_counts,
      const std::vector<double>& freqs_mhz, const TimeFn& time,
      const OverheadFn& overhead = {}) const;

  /// Convenience: evaluate + pick the optimum under `objective`.
  power::MetricPoint find(const std::vector<int>& node_counts,
                          const std::vector<double>& freqs_mhz,
                          const TimeFn& time, power::Objective objective,
                          const OverheadFn& overhead = {}) const;

 private:
  power::PowerModel model_;
  sim::OperatingPointTable points_;
};

}  // namespace pas::core
