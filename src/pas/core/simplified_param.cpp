#include "pas/core/simplified_param.hpp"

#include <stdexcept>

namespace pas::core {

SimplifiedParameterization::SimplifiedParameterization(
    double base_frequency_mhz)
    : base_f_mhz_(base_frequency_mhz) {
  if (base_f_mhz_ <= 0.0)
    throw std::invalid_argument("base frequency must be > 0");
}

void SimplifiedParameterization::add_sequential(double f_mhz, double seconds) {
  sequential_.add(1, f_mhz, seconds);
}

void SimplifiedParameterization::add_parallel_base(int nodes, double seconds) {
  parallel_base_.add(nodes, base_f_mhz_, seconds);
}

void SimplifiedParameterization::ingest(const TimingMatrix& measured) {
  for (double f : measured.frequencies_mhz()) {
    if (measured.has(1, f)) add_sequential(f, measured.at(1, f));
  }
  for (int n : measured.node_counts()) {
    if (measured.has(n, base_f_mhz_))
      add_parallel_base(n, measured.at(n, base_f_mhz_));
  }
}

bool SimplifiedParameterization::ready() const {
  return sequential_.has(1, base_f_mhz_);
}

double SimplifiedParameterization::overhead_seconds(int nodes) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  if (nodes == 1) return 0.0;
  const double t1_base = sequential_.at(1, base_f_mhz_);
  const double tn_base = parallel_base_.at(nodes, base_f_mhz_);
  // Eq 17. Can come out slightly negative for super-linear regions;
  // keep the raw value — the prediction formula is linear in it and a
  // clamp would bias Eq 18.
  return tn_base - t1_base / static_cast<double>(nodes);
}

double SimplifiedParameterization::predict_time(int nodes,
                                                double f_mhz) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  const double t1 = sequential_.at(1, f_mhz);
  if (nodes == 1) return t1;
  return t1 / static_cast<double>(nodes) + overhead_seconds(nodes);
}

double SimplifiedParameterization::predict_speedup(int nodes,
                                                   double f_mhz) const {
  return sequential_.at(1, base_f_mhz_) / predict_time(nodes, f_mhz);
}

}  // namespace pas::core
