// Power-aware speedup — the paper's primary contribution (§3,
// Equations 4-11).
//
// Given a DOP + ON-/OFF-chip workload decomposition and machine rates
// (CPI_ON, CPI_OFF and the two clocks), the model produces:
//
//   T_1(w, f)   = w_ON * CPI_ON/f_ON + w_OFF * CPI_OFF/f_OFF      (Eq 6)
//   T_N(w, f)   = sum_i [ w_i^ON/i * CPI_ON/f_ON
//                        + w_i^OFF/i * CPI_OFF/f_OFF ]
//                 + T(w_PO^ON, f) + T(w_PO^OFF, f)                (Eq 9)
//   S_N(w, f)   = T_1(w, f0) / T_N(w, f)                        (Eq 4/10)
//
// For m > N the footnote's ceil(i/N) factor limits achievable
// parallelism to the available processors.
#pragma once

#include <string>

#include "pas/core/workload.hpp"

namespace pas::core {

/// Machine rates in the model's terms. `cpi_on` is the weighted
/// ON-chip cycles per instruction; `sec_per_off_op(f)` covers the
/// optional bus-slowdown step at low CPU clocks (Table 6).
struct MachineRates {
  double cpi_on = 2.19;
  /// Seconds per OFF-chip workload at full bus speed (CPI_OFF/f_OFF).
  double sec_per_off_op = 110e-9;
  /// Seconds per OFF-chip workload when the CPU clock sits below
  /// `bus_slowdown_below_mhz` (0 disables the step).
  double sec_per_off_op_slow = 140e-9;
  double bus_slowdown_below_mhz = 900.0;

  double sec_per_on_op(double f_mhz) const {
    return cpi_on / (f_mhz * 1e6);
  }
  double off_op_seconds(double f_mhz) const {
    if (bus_slowdown_below_mhz > 0.0 && f_mhz < bus_slowdown_below_mhz)
      return sec_per_off_op_slow;
    return sec_per_off_op;
  }
};

/// The analytic model: workload + rates + base frequency.
class PowerAwareModel {
 public:
  PowerAwareModel(DopWorkload workload, MachineRates rates,
                  double base_frequency_mhz);

  const DopWorkload& workload() const { return workload_; }
  const MachineRates& rates() const { return rates_; }
  double base_frequency_mhz() const { return base_f_mhz_; }

  /// Eq 6 — sequential execution time at frequency `f_mhz` (overhead
  /// excluded: one processor incurs no parallel overhead).
  double sequential_time(double f_mhz) const;

  /// Execution time of the overhead term T(w_PO, f) (Eq 8's additive
  /// terms). w_PO^ON is paced by the CPU clock, w_PO^OFF is not.
  double overhead_time(double f_mhz) const;

  /// Eq 9 — parallel execution time on `nodes` processors at `f_mhz`.
  double parallel_time(int nodes, double f_mhz) const;

  /// Eq 4/10 — power-aware speedup relative to (1 processor, base f0).
  double speedup(int nodes, double f_mhz) const;

  /// Traditional same-frequency speedup T_1(f)/T_N(f) for comparison.
  double same_frequency_speedup(int nodes, double f_mhz) const;

  std::string to_string() const;

 private:
  /// Time for one Work term with DOP i on `nodes` processors.
  double dop_term_time(const Work& w, int dop, int nodes,
                       double f_mhz) const;

  DopWorkload workload_;
  MachineRates rates_;
  double base_f_mhz_;
};

}  // namespace pas::core
