// MsgBench — an MPPTEST-like message-timing probe (paper §5.2, step 2:
// "we measure the seconds per communication for different message
// sizes using the MPPTEST toolset").
//
// Runs real ping-pong / exchange traffic through the simulated cluster
// and reports seconds per message. Because the sender/receiver CPU
// overheads are paced by the DVFS clock while wire time is not, the
// probe reproduces Table 6's observation: large messages slow slightly
// at the lowest frequency, small messages do not move.
#pragma once

#include <cstddef>
#include <vector>

#include "pas/mpi/runtime.hpp"

namespace pas::tools {

struct MsgTime {
  std::size_t doubles = 0;     ///< payload size in doubles
  double frequency_mhz = 0.0;
  double seconds_per_message = 0.0;
};

class MsgBench {
 public:
  explicit MsgBench(sim::ClusterConfig cfg);

  /// One-way time per message of `doubles` doubles between two nodes at
  /// DVFS point `f_mhz` (half the mean ping-pong round trip).
  double pingpong_seconds(std::size_t doubles, double f_mhz, int reps = 20);

  /// Per-message time during a simultaneous neighbour exchange among
  /// `nodes` nodes (each node sends and receives every round) —
  /// matches how LU's boundary exchanges stress the fabric.
  double exchange_seconds(std::size_t doubles, double f_mhz, int nodes,
                          int reps = 20);

  /// Marginal per-message time of a pipelined one-directional stream
  /// (MPPTEST's overlap mode): `count` back-to-back messages, makespan
  /// divided by count. Serialization-dominated — the right price for
  /// overlapped patterns (LU's pipelined boundary messages, FT's
  /// full-duplex transpose rounds), and what the fine-grain
  /// parameterization uses for T(w_PO).
  double streaming_seconds(std::size_t doubles, double f_mhz,
                           int count = 32);

  /// Table 6-style sweep: per-message time for each (size, frequency).
  std::vector<MsgTime> sweep(const std::vector<std::size_t>& sizes,
                             const std::vector<double>& freqs_mhz);

 private:
  sim::ClusterConfig cfg_;
};

}  // namespace pas::tools
