#include "pas/tools/msgbench.hpp"

#include <stdexcept>

namespace pas::tools {

MsgBench::MsgBench(sim::ClusterConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.num_nodes < 2)
    throw std::invalid_argument("MsgBench needs >= 2 nodes");
}

double MsgBench::pingpong_seconds(std::size_t doubles, double f_mhz,
                                  int reps) {
  mpi::Runtime rt(cfg_);
  const mpi::RunResult result =
      rt.run(2, f_mhz, [doubles, reps](mpi::Comm& comm) {
        mpi::Payload ball(doubles, 1.0);
        for (int i = 0; i < reps; ++i) {
          if (comm.rank() == 0) {
            comm.send(1, 7, ball);
            ball = comm.recv(1, 8);
          } else {
            ball = comm.recv(0, 7);
            comm.send(0, 8, ball);
          }
        }
      });
  return result.makespan / (2.0 * static_cast<double>(reps));
}

double MsgBench::exchange_seconds(std::size_t doubles, double f_mhz,
                                  int nodes, int reps) {
  if (nodes < 2 || nodes > cfg_.num_nodes)
    throw std::invalid_argument("exchange_seconds: bad node count");
  mpi::Runtime rt(cfg_);
  const mpi::RunResult result =
      rt.run(nodes, f_mhz, [doubles, reps, nodes](mpi::Comm& comm) {
        mpi::Payload block(doubles, 1.0);
        const int right = (comm.rank() + 1) % nodes;
        const int left = (comm.rank() - 1 + nodes) % nodes;
        for (int i = 0; i < reps; ++i)
          block = comm.sendrecv(right, left, 9, block);
      });
  // Every rank moved one message per round.
  return result.makespan / static_cast<double>(reps);
}

double MsgBench::streaming_seconds(std::size_t doubles, double f_mhz,
                                   int count) {
  if (count < 1) throw std::invalid_argument("streaming_seconds: count >= 1");
  mpi::Runtime rt(cfg_);
  const mpi::RunResult result =
      rt.run(2, f_mhz, [doubles, count](mpi::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < count; ++i)
            comm.send(1, 11, mpi::Payload(doubles, 1.0));
        } else {
          for (int i = 0; i < count; ++i) comm.recv(0, 11);
        }
      });
  return result.makespan / static_cast<double>(count);
}

std::vector<MsgTime> MsgBench::sweep(const std::vector<std::size_t>& sizes,
                                     const std::vector<double>& freqs_mhz) {
  std::vector<MsgTime> out;
  out.reserve(sizes.size() * freqs_mhz.size());
  for (std::size_t doubles : sizes) {
    for (double f : freqs_mhz) {
      out.push_back(MsgTime{doubles, f, pingpong_seconds(doubles, f)});
    }
  }
  return out;
}

}  // namespace pas::tools
