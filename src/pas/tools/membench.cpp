#include "pas/tools/membench.hpp"

#include <stdexcept>

namespace pas::tools {

double LevelTimes::at(sim::MemoryLevel level) const {
  switch (level) {
    case sim::MemoryLevel::kRegister:
      return reg_s;
    case sim::MemoryLevel::kL1:
      return l1_s;
    case sim::MemoryLevel::kL2:
      return l2_s;
    case sim::MemoryLevel::kMemory:
      return mem_s;
  }
  return 0.0;
}

MemBench::MemBench(sim::CpuModel cpu) : cpu_(std::move(cpu)) {}

double MemBench::latency_at(std::size_t bytes, double f_mhz,
                            std::size_t stride, std::size_t accesses) {
  if (bytes == 0) throw std::invalid_argument("latency_at: empty buffer");
  cpu_.set_frequency_mhz(f_mhz);

  sim::CacheHierarchySim caches(cpu_.memory());
  const std::size_t steps = std::max<std::size_t>(1, bytes / stride);

  // Warm-up traversal fills the caches with the working set.
  for (std::size_t i = 0; i < steps; ++i)
    caches.access(static_cast<std::uint64_t>(i * stride));

  // Measured traversal: every access is one data-referencing
  // instruction served by whichever level holds the line.
  sim::InstructionMix mix;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < accesses; ++i) {
    const sim::MemoryLevel level =
        caches.access(static_cast<std::uint64_t>(pos * stride));
    switch (level) {
      case sim::MemoryLevel::kRegister:
        mix.reg_ops += 1.0;
        break;
      case sim::MemoryLevel::kL1:
        mix.l1_ops += 1.0;
        break;
      case sim::MemoryLevel::kL2:
        mix.l2_ops += 1.0;
        break;
      case sim::MemoryLevel::kMemory:
        mix.mem_ops += 1.0;
        break;
    }
    pos = (pos + 1) % steps;
  }
  return cpu_.time_for(mix) / static_cast<double>(accesses);
}

LevelTimes MemBench::probe(double f_mhz) {
  cpu_.set_frequency_mhz(f_mhz);
  LevelTimes t;
  t.frequency_mhz = f_mhz;
  t.reg_s = cpu_.config().reg_cpi / cpu_.frequency_hz();

  const auto& mem = cpu_.memory();
  // Working sets comfortably inside each level (half capacity), and
  // well beyond L2 for main memory.
  t.l1_s = latency_at(mem.l1.capacity_bytes / 2, f_mhz);
  t.l2_s = latency_at((mem.l1.capacity_bytes + mem.l2.capacity_bytes) / 2,
                      f_mhz);
  t.mem_s = latency_at(mem.l2.capacity_bytes * 8, f_mhz);
  return t;
}

std::vector<MemBench::CurvePoint> MemBench::latency_curve(
    double f_mhz, const std::vector<std::size_t>& sizes) {
  std::vector<CurvePoint> curve;
  curve.reserve(sizes.size());
  for (std::size_t bytes : sizes)
    curve.push_back(CurvePoint{bytes, latency_at(bytes, f_mhz)});
  return curve;
}

}  // namespace pas::tools
