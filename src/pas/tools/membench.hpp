// MemBench — an LMBENCH-like memory-latency probe over the simulated
// node (paper §5.2, step 2: "We use the LMBENCH toolset as it enables
// us to isolate the latency for each of these workload types").
//
// Probes run a pointer-chase access stream over a working set sized to
// target one level, replay it through the *real* cache simulator
// (SetAssocCache hierarchy), classify each access by serving level, and
// price the run with the CPU model at a chosen DVFS point. The result
// is seconds-per-workload for each level — Table 6's CPI/f rows.
#pragma once

#include <cstddef>
#include <vector>

#include "pas/sim/cache_sim.hpp"
#include "pas/sim/cpu_model.hpp"

namespace pas::tools {

/// Seconds per instruction for each workload type at one frequency.
struct LevelTimes {
  double frequency_mhz = 0.0;
  double reg_s = 0.0;
  double l1_s = 0.0;
  double l2_s = 0.0;
  double mem_s = 0.0;

  double at(sim::MemoryLevel level) const;
};

class MemBench {
 public:
  explicit MemBench(sim::CpuModel cpu);

  /// Seconds per access for a stride-`stride` chase over `bytes` of
  /// memory at DVFS point `f_mhz` (measured through the cache sim
  /// after a warm-up traversal).
  double latency_at(std::size_t bytes, double f_mhz,
                    std::size_t stride = 64, std::size_t accesses = 20000);

  /// Per-level probe: register latency from the CPU config, cache and
  /// memory latencies from chases sized inside each level.
  LevelTimes probe(double f_mhz);

  /// lat_mem_rd-style curve: latency for each working-set size.
  struct CurvePoint {
    std::size_t bytes = 0;
    double seconds = 0.0;
  };
  std::vector<CurvePoint> latency_curve(double f_mhz,
                                        const std::vector<std::size_t>& sizes);

 private:
  sim::CpuModel cpu_;
};

}  // namespace pas::tools
