#!/usr/bin/env bash
# Records the simulator's own performance baseline: the google-benchmark
# microbenchmarks (bench/micro_sim) and one timed end-to-end run each of
# bench/full_report and bench/resilience_sweep (the fault-ensemble axis,
# which bypasses every analytic fast path). Writes BENCH_micro_sim.json,
# BENCH_full_report.json and BENCH_resilience_sweep.json at the repo
# root so a perf regression shows up as a diff against the committed
# baseline. Record-only: nothing here
# fails on a slow result — scripts/check_bench_schema.py validates the
# shape, humans judge the numbers.
#
# Usage: scripts/bench_record.sh [build_dir]
#   build_dir   tree with micro_sim and full_report built (default: build)
#   PASIM_BENCH_JOBS  --jobs for the full_report run (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="${PASIM_BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}"

for bin in "$BUILD/bench/micro_sim" "$BUILD/bench/full_report" \
           "$BUILD/bench/resilience_sweep"; do
  [ -x "$bin" ] || { echo "bench_record: missing $bin (build it first)"; exit 1; }
done

echo "== bench_record: micro_sim =="
"$BUILD/bench/micro_sim" \
  --benchmark_format=json \
  --benchmark_out=BENCH_micro_sim.json \
  --benchmark_out_format=json >/dev/null
echo "wrote BENCH_micro_sim.json"

echo "== bench_record: full_report (--jobs $JOBS) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
START_NS="$(date +%s%N)"
"$BUILD/bench/full_report" --out "$OUT_DIR/report" --jobs "$JOBS" \
  --no-cache >"$OUT_DIR/log" 2>&1
END_NS="$(date +%s%N)"
WALL_MEASURED="$(awk "BEGIN { printf \"%.3f\", ($END_NS - $START_NS) / 1e9 }")"
# The binary prints its own wall clock ("wall time 12.34s, ..."): record
# both the self-reported and the outside measurement.
WALL_REPORTED="$(sed -n 's/^wall time \([0-9.]*\)s.*/\1/p' "$OUT_DIR/log" | tail -1)"
WALL_REPORTED="${WALL_REPORTED:-0}"

cat > BENCH_full_report.json <<EOF
{
  "schema": "pasim-bench-full-report/1",
  "command": "bench/full_report --out <tmp> --jobs $JOBS --no-cache",
  "jobs": $JOBS,
  "wall_seconds_reported": $WALL_REPORTED,
  "wall_seconds_measured": $WALL_MEASURED,
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "wrote BENCH_full_report.json (wall ${WALL_REPORTED}s at --jobs $JOBS)"

echo "== bench_record: resilience_sweep (--jobs $JOBS) =="
# The fault-ensemble axis: no repricing, no checkpoints, no sampling
# apply (fault injection bypasses every fast path), so this wall time
# tracks the raw simulation throughput the resilience sweeps depend on.
START_NS="$(date +%s%N)"
"$BUILD/bench/resilience_sweep" --jobs "$JOBS" --no-cache \
  >"$OUT_DIR/resilience_log" 2>&1
END_NS="$(date +%s%N)"
WALL_RESIL="$(awk "BEGIN { printf \"%.3f\", ($END_NS - $START_NS) / 1e9 }")"

cat > BENCH_resilience_sweep.json <<EOF
{
  "schema": "pasim-bench-resilience-sweep/1",
  "command": "bench/resilience_sweep --jobs $JOBS --no-cache",
  "jobs": $JOBS,
  "wall_seconds_measured": $WALL_RESIL,
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "wrote BENCH_resilience_sweep.json (wall ${WALL_RESIL}s at --jobs $JOBS)"
