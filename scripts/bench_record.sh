#!/usr/bin/env bash
# Records the simulator's own performance baseline: the google-benchmark
# microbenchmarks (bench/micro_sim) and one timed end-to-end run each of
# bench/full_report and bench/resilience_sweep (the fault-ensemble axis,
# which bypasses every analytic fast path), plus the serving-fabric
# throughput of bench/serve_throughput at fleet sizes 1 and 2. Writes
# BENCH_micro_sim.json, BENCH_full_report.json,
# BENCH_resilience_sweep.json and BENCH_serve_throughput.json at the
# repo root so a perf regression shows up as a diff against the
# committed baseline. Record-only: nothing here
# fails on a slow result — scripts/check_bench_schema.py validates the
# shape, humans judge the numbers.
#
# Usage: scripts/bench_record.sh [build_dir]
#   build_dir   tree with micro_sim and full_report built (default: build)
#   PASIM_BENCH_JOBS  --jobs for the full_report run (default: nproc)
#   PASIM_BENCH_SERVE_CLIENTS / PASIM_BENCH_SERVE_QUERIES
#               load shape for serve_throughput (default: 8 x 6)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="${PASIM_BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}"

for bin in "$BUILD/bench/micro_sim" "$BUILD/bench/full_report" \
           "$BUILD/bench/resilience_sweep" "$BUILD/bench/serve_throughput"; do
  [ -x "$bin" ] || { echo "bench_record: missing $bin (build it first)"; exit 1; }
done

echo "== bench_record: micro_sim =="
"$BUILD/bench/micro_sim" \
  --benchmark_format=json \
  --benchmark_out=BENCH_micro_sim.json \
  --benchmark_out_format=json >/dev/null
echo "wrote BENCH_micro_sim.json"

echo "== bench_record: full_report (--jobs $JOBS) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
START_NS="$(date +%s%N)"
"$BUILD/bench/full_report" --out "$OUT_DIR/report" --jobs "$JOBS" \
  --no-cache >"$OUT_DIR/log" 2>&1
END_NS="$(date +%s%N)"
WALL_MEASURED="$(awk "BEGIN { printf \"%.3f\", ($END_NS - $START_NS) / 1e9 }")"
# The binary prints its own wall clock ("wall time 12.34s, ..."): record
# both the self-reported and the outside measurement.
WALL_REPORTED="$(sed -n 's/^wall time \([0-9.]*\)s.*/\1/p' "$OUT_DIR/log" | tail -1)"
WALL_REPORTED="${WALL_REPORTED:-0}"

cat > BENCH_full_report.json <<EOF
{
  "schema": "pasim-bench-full-report/1",
  "command": "bench/full_report --out <tmp> --jobs $JOBS --no-cache",
  "jobs": $JOBS,
  "wall_seconds_reported": $WALL_REPORTED,
  "wall_seconds_measured": $WALL_MEASURED,
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "wrote BENCH_full_report.json (wall ${WALL_REPORTED}s at --jobs $JOBS)"

echo "== bench_record: resilience_sweep (--jobs $JOBS) =="
# The fault-ensemble axis: no repricing, no checkpoints, no sampling
# apply (fault injection bypasses every fast path), so this wall time
# tracks the raw simulation throughput the resilience sweeps depend on.
START_NS="$(date +%s%N)"
"$BUILD/bench/resilience_sweep" --jobs "$JOBS" --no-cache \
  >"$OUT_DIR/resilience_log" 2>&1
END_NS="$(date +%s%N)"
WALL_RESIL="$(awk "BEGIN { printf \"%.3f\", ($END_NS - $START_NS) / 1e9 }")"

cat > BENCH_resilience_sweep.json <<EOF
{
  "schema": "pasim-bench-resilience-sweep/1",
  "command": "bench/resilience_sweep --jobs $JOBS --no-cache",
  "jobs": $JOBS,
  "wall_seconds_measured": $WALL_RESIL,
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "wrote BENCH_resilience_sweep.json (wall ${WALL_RESIL}s at --jobs $JOBS)"

echo "== bench_record: serve_throughput =="
# Fleet sizes 1 and 2: the 1-broker line is the serving-stack baseline
# the regression gate tracks; the 2-broker line records how the fabric
# behaves on this machine (it only beats 1 broker when there is more
# than one core to run on, so the ratio is informational).
SERVE_CLIENTS="${PASIM_BENCH_SERVE_CLIENTS:-8}"
SERVE_QUERIES="${PASIM_BENCH_SERVE_QUERIES:-6}"
"$BUILD/bench/serve_throughput" --brokers 1,2 --clients "$SERVE_CLIENTS" \
  --queries "$SERVE_QUERIES" --cache "$OUT_DIR/serve_bench_cache" \
  > "$OUT_DIR/serve_log" 2>&1
FLEETS="$(awk '/^serve_throughput brokers=/ {
  for (i = 1; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
  printf "%s    {\"brokers\": %s, \"queries\": %s, \"wall_seconds\": %s, \
\"qps\": %s, \"seconds_per_query\": %.6f, \"p50_ms\": %s, \"p99_ms\": %s}",
         sep, v["brokers"], v["queries"], v["wall_s"], v["qps"],
         v["wall_s"] / v["queries"], v["p50_ms"], v["p99_ms"]
  sep = ",\n"
}' "$OUT_DIR/serve_log")"
if [ -z "$FLEETS" ]; then
  echo "bench_record: serve_throughput printed no fleet lines:"
  cat "$OUT_DIR/serve_log"
  exit 1
fi

cat > BENCH_serve_throughput.json <<EOF
{
  "schema": "pasim-bench-serve-throughput/1",
  "command": "bench/serve_throughput --brokers 1,2 --clients $SERVE_CLIENTS --queries $SERVE_QUERIES",
  "clients": $SERVE_CLIENTS,
  "queries_per_client": $SERVE_QUERIES,
  "fleets": [
$FLEETS
  ],
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF
echo "wrote BENCH_serve_throughput.json ($SERVE_CLIENTS clients x $SERVE_QUERIES queries)"
