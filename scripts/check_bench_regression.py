#!/usr/bin/env python3
"""Perf-regression check against the committed baselines.

Compares a fresh scripts/bench_record.sh recording with the committed
BENCH_micro_sim.json / BENCH_full_report.json / BENCH_resilience_sweep
.json / BENCH_serve_throughput.json (per-fleet-size seconds/query) and
prints a WARN line for every benchmark that slowed down by
more than the threshold (default 10%). Speed is machine- and load-
dependent, so per-benchmark warnings are a tripwire for humans reading
the tier-1 log, never a gate, and a missing or unparsable file is
skipped (a fresh clone has no baseline to compare against).

--fail-on-regress PCT adds the one hard gate tier-1 enforces: when the
*median* slowdown across all comparisons exceeds PCT percent the script
exits nonzero. A single noisy benchmark cannot trip the median — only
the whole suite drifting slower does, which is what a real perf
regression looks like on a quiet machine.

Stdlib-only. Usage:

  check_bench_regression.py --baseline DIR --fresh DIR
      [--threshold PCT] [--fail-on-regress PCT]

where each DIR holds the BENCH_*.json recordings.
"""
import argparse
import json
import os
import statistics
import sys

MICRO = "BENCH_micro_sim.json"
FULL = "BENCH_full_report.json"
RESIL = "BENCH_resilience_sweep.json"
SERVE = "BENCH_serve_throughput.json"


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: skipping {path}: {e}")
        return None


def micro_times(doc):
    """benchmark name -> real_time in ns, aggregates excluded."""
    times = {}
    for b in (doc or {}).get("benchmarks", []):
        name = b.get("name")
        t = b.get("real_time")
        if isinstance(name, str) and isinstance(t, (int, float)) \
                and "aggregate_name" not in b:
            times[name] = float(t)
    return times


def compare(label, base, fresh, threshold, deltas):
    """Records the delta; returns the number of WARN lines printed."""
    if base is None or fresh is None or base <= 0:
        return 0
    delta = (fresh - base) / base
    deltas.append(delta)
    if delta > threshold:
        print(f"check_bench_regression: WARN {label}: "
              f"{base:.4g} -> {fresh:.4g} (+{delta * 100:.1f}%)")
        return 1
    return 0


def compare_wall(name, key, baseline_dir, fresh_dir, threshold, deltas):
    """One timed end-to-end recording (jobs must match to compare)."""
    base = load(os.path.join(baseline_dir, name))
    fresh = load(os.path.join(fresh_dir, name))
    if base is None or fresh is None:
        return 0
    if base.get("jobs") != fresh.get("jobs"):
        print(f"check_bench_regression: skipping {name} wall time: "
              f"baseline ran --jobs {base.get('jobs')}, fresh ran "
              f"--jobs {fresh.get('jobs')} (not comparable)")
        return 0
    return compare(f"{name.removeprefix('BENCH_').removesuffix('.json')} "
                   f"{key}", base.get(key), fresh.get(key), threshold, deltas)


def compare_serve(baseline_dir, fresh_dir, threshold, deltas):
    """Per-fleet-size seconds/query (higher = slower, like the walls).

    Each fleet size is compared against its own baseline: the 1 -> 2
    broker ratio depends on the machine's core count, so it is recorded
    but never gated.
    """
    base = load(os.path.join(baseline_dir, SERVE))
    fresh = load(os.path.join(fresh_dir, SERVE))
    if base is None or fresh is None:
        return 0
    shape = ("clients", "queries_per_client")
    if any(base.get(k) != fresh.get(k) for k in shape):
        print(f"check_bench_regression: skipping {SERVE}: baseline load "
              f"shape {[base.get(k) for k in shape]} != fresh "
              f"{[fresh.get(k) for k in shape]} (not comparable)")
        return 0
    fresh_fleets = {f.get("brokers"): f for f in fresh.get("fleets", [])
                    if isinstance(f, dict)}
    warns = 0
    for f in base.get("fleets", []):
        if not isinstance(f, dict):
            continue
        other = fresh_fleets.get(f.get("brokers"))
        if other is None:
            print(f"check_bench_regression: WARN serve_throughput "
                  f"brokers={f.get('brokers')}: present in baseline, "
                  "missing from fresh recording")
            warns += 1
            continue
        warns += compare(
            f"serve_throughput brokers={f['brokers']} seconds_per_query",
            f.get("seconds_per_query"), other.get("seconds_per_query"),
            threshold, deltas)
    return warns


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory with the committed BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="directory with the just-recorded BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="per-benchmark WARN threshold in percent "
                         "(default 10)")
    ap.add_argument("--fail-on-regress", type=float, default=None,
                    metavar="PCT",
                    help="exit nonzero when the median slowdown across all "
                         "comparisons exceeds PCT percent")
    args = ap.parse_args()
    threshold = args.threshold / 100.0
    warns = 0
    deltas = []

    base_micro = load(os.path.join(args.baseline, MICRO))
    fresh_micro = load(os.path.join(args.fresh, MICRO))
    if base_micro is not None and fresh_micro is not None:
        base_times = micro_times(base_micro)
        fresh_times = micro_times(fresh_micro)
        for name in sorted(base_times):
            if name not in fresh_times:
                print(f"check_bench_regression: WARN {name}: "
                      "present in baseline, missing from fresh recording")
                warns += 1
                continue
            warns += compare(f"micro_sim {name} (ns)", base_times[name],
                             fresh_times[name], threshold, deltas)

    warns += compare_wall(FULL, "wall_seconds_reported", args.baseline,
                          args.fresh, threshold, deltas)
    warns += compare_wall(RESIL, "wall_seconds_measured", args.baseline,
                          args.fresh, threshold, deltas)
    warns += compare_serve(args.baseline, args.fresh, threshold, deltas)

    gate = ""
    median = statistics.median(deltas) if deltas else 0.0
    if args.fail_on_regress is not None and deltas:
        gate = (f", median {median * 100:+.1f}% vs the "
                f"{args.fail_on_regress:g}% gate")
    print(f"check_bench_regression: {len(deltas)} comparisons, {warns} over "
          f"the +{args.threshold:g}% warn threshold{gate}")
    if args.fail_on_regress is not None and deltas \
            and median * 100.0 > args.fail_on_regress:
        print(f"check_bench_regression: FAIL: median slowdown "
              f"{median * 100:.1f}% exceeds {args.fail_on_regress:g}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
