#!/usr/bin/env python3
"""Warn-only perf-regression check against the committed baselines.

Compares a fresh scripts/bench_record.sh recording with the committed
BENCH_micro_sim.json / BENCH_full_report.json and prints a WARN line
for every benchmark that slowed down by more than the threshold
(default 10%). Speed is machine- and load-dependent, so this is a
tripwire for humans reading the tier-1 log, not a gate: the script
always exits 0 — including when a file is missing or unparsable (a
fresh clone has no baseline to compare against).

Stdlib-only. Usage:

  check_bench_regression.py --baseline DIR --fresh DIR [--threshold PCT]

where each DIR holds BENCH_micro_sim.json and BENCH_full_report.json.
"""
import argparse
import json
import os
import sys

MICRO = "BENCH_micro_sim.json"
FULL = "BENCH_full_report.json"


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: skipping {path}: {e}")
        return None


def micro_times(doc):
    """benchmark name -> real_time in ns, aggregates excluded."""
    times = {}
    for b in (doc or {}).get("benchmarks", []):
        name = b.get("name")
        t = b.get("real_time")
        if isinstance(name, str) and isinstance(t, (int, float)) \
                and "aggregate_name" not in b:
            times[name] = float(t)
    return times


def compare(label, base, fresh, threshold):
    """Returns the number of WARN lines printed."""
    if base is None or fresh is None or base <= 0:
        return 0
    delta = (fresh - base) / base
    if delta > threshold:
        print(f"check_bench_regression: WARN {label}: "
              f"{base:.4g} -> {fresh:.4g} (+{delta * 100:.1f}%)")
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory with the committed BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="directory with the just-recorded BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="slowdown threshold in percent (default 10)")
    args = ap.parse_args()
    threshold = args.threshold / 100.0
    warns = 0
    checked = 0

    base_micro = load(os.path.join(args.baseline, MICRO))
    fresh_micro = load(os.path.join(args.fresh, MICRO))
    if base_micro is not None and fresh_micro is not None:
        base_times = micro_times(base_micro)
        fresh_times = micro_times(fresh_micro)
        for name in sorted(base_times):
            if name not in fresh_times:
                print(f"check_bench_regression: WARN {name}: "
                      "present in baseline, missing from fresh recording")
                warns += 1
                continue
            checked += 1
            warns += compare(f"micro_sim {name} (ns)", base_times[name],
                             fresh_times[name], threshold)

    base_full = load(os.path.join(args.baseline, FULL))
    fresh_full = load(os.path.join(args.fresh, FULL))
    if base_full is not None and fresh_full is not None:
        if base_full.get("jobs") != fresh_full.get("jobs"):
            print("check_bench_regression: skipping full_report wall time: "
                  f"baseline ran --jobs {base_full.get('jobs')}, fresh ran "
                  f"--jobs {fresh_full.get('jobs')} (not comparable)")
        else:
            checked += 1
            warns += compare("full_report wall_seconds_reported",
                             base_full.get("wall_seconds_reported"),
                             fresh_full.get("wall_seconds_reported"),
                             threshold)

    print(f"check_bench_regression: {checked} comparisons, {warns} over "
          f"the +{args.threshold:g}% threshold (warn-only, not a gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
