#!/usr/bin/env python3
"""Validate a pasim SweepSpec document (DESIGN.md §13) from first principles.

Independent re-implementation of the schema rules enforced by
SweepSpec::from_json, so C++-side bugs cannot self-certify: required
version in {1, 2}, no unknown keys at any nesting level, strict types,
and the same value ranges (positive axes, probabilities in [0, 1],
verify_replay requires use_cache, cache_cap_bytes requires cache_dir).

Schema v2 (DESIGN.md §14) adds the `iterations` override and the
sampling/checkpoint options (sampling, sample_period, warmup_iters,
verify_sampling, checkpoints) with their cross-rules: verify_sampling
requires sampling, sampling is incompatible with verify_replay, and
checkpoints require the run cache. A v1 document naming any v2 field
is mislabeled, not forward-compatible, and fails.

Usage: check_spec_schema.py <spec.json> [<spec.json> ...]
"""
import json
import sys

KERNELS = {"EP", "FT", "LU", "CG", "MG"}
SCALES = {"paper", "small"}

TOP_KEYS = {"version", "kernel", "scale", "nodes", "freqs_mhz",
            "comm_dvfs_mhz", "options", "fault"}
OPTION_KEYS = {"jobs", "cache_dir", "use_cache", "run_retries",
               "verify_replay", "journal_path", "resume", "isolate",
               "isolate_timeout_s", "isolate_retries", "cache_cap_bytes"}
TOP_KEYS_V2 = TOP_KEYS | {"iterations"}
OPTION_KEYS_V2 = OPTION_KEYS | {"sampling", "sample_period", "warmup_iters",
                                "verify_sampling", "checkpoints"}
FAULT_KEYS = {"seed", "straggler_fraction", "straggler_slowdown",
              "dvfs_jitter_s", "message_delay_prob", "message_delay_s",
              "message_drop_prob", "max_send_attempts", "retry_backoff_s",
              "node_failure_prob", "node_failure_window_s"}


class SpecError(Exception):
    pass


def fail(field, msg):
    raise SpecError(f"{field}: {msg}")


def is_int(v):
    # bool is an int subclass in Python; the schema keeps them distinct.
    return isinstance(v, int) and not isinstance(v, bool)


def is_number(v):
    return is_int(v) or isinstance(v, float)


def check_keys(obj, allowed, where):
    for key in obj:
        if key not in allowed:
            fail(f"{where}{key}" if where else key, "unknown key")


def get_int(obj, where, key, minimum):
    v = obj.get(key)
    if v is None:
        return None
    if not is_int(v):
        fail(f"{where}{key}", "expected an integer")
    if v < minimum:
        fail(f"{where}{key}", f"must be >= {minimum} (got {v})")
    return v


def get_number(obj, where, key, minimum=None, exclusive=False):
    v = obj.get(key)
    if v is None:
        return None
    if not is_number(v):
        fail(f"{where}{key}", "expected a number")
    if minimum is not None and (v <= minimum if exclusive else v < minimum):
        bound = ">" if exclusive else ">="
        fail(f"{where}{key}", f"must be {bound} {minimum} (got {v})")
    return v


def get_prob(obj, where, key):
    v = get_number(obj, where, key, minimum=0)
    if v is not None and v > 1:
        fail(f"{where}{key}", f"probability {v} out of [0, 1]")
    return v


def get_bool(obj, where, key):
    v = obj.get(key)
    if v is not None and not isinstance(v, bool):
        fail(f"{where}{key}", "expected a boolean")
    return v


def get_string(obj, where, key):
    v = obj.get(key)
    if v is not None and not isinstance(v, str):
        fail(f"{where}{key}", "expected a string")
    return v


def check_options(opts, version):
    if not isinstance(opts, dict):
        fail("options", "expected an object")
    check_keys(opts, OPTION_KEYS_V2 if version >= 2 else OPTION_KEYS,
               "options.")
    get_int(opts, "options.", "jobs", 0)
    cache_dir = get_string(opts, "options.", "cache_dir")
    use_cache = get_bool(opts, "options.", "use_cache")
    get_int(opts, "options.", "run_retries", 0)
    verify_replay = get_bool(opts, "options.", "verify_replay")
    if verify_replay and use_cache is False:
        fail("options.verify_replay", "requires use_cache")
    get_string(opts, "options.", "journal_path")
    get_bool(opts, "options.", "resume")
    get_bool(opts, "options.", "isolate")
    get_number(opts, "options.", "isolate_timeout_s", minimum=0,
               exclusive=True)
    get_int(opts, "options.", "isolate_retries", 0)
    cap = get_int(opts, "options.", "cache_cap_bytes", 0)
    if cap and not cache_dir:
        fail("options.cache_cap_bytes",
             "requires a disk cache (set options.cache_dir)")
    if version >= 2:
        sampling = get_bool(opts, "options.", "sampling")
        get_int(opts, "options.", "sample_period", 2)
        get_int(opts, "options.", "warmup_iters", 0)
        verify_sampling = get_prob(opts, "options.", "verify_sampling")
        if verify_sampling and not sampling:
            fail("options.verify_sampling",
                 "only checks sampled estimates (set options.sampling)")
        if sampling and opts.get("verify_replay"):
            fail("options.sampling",
                 "incompatible with verify_replay: sampled records are "
                 "estimates, never byte-compared (use verify_sampling)")
        checkpoints = get_bool(opts, "options.", "checkpoints")
        if checkpoints and opts.get("use_cache") is False:
            fail("options.checkpoints",
                 "requires use_cache (checkpoints are cache entries)")


def check_fault(fault):
    if not isinstance(fault, dict):
        fail("fault", "expected an object")
    check_keys(fault, FAULT_KEYS, "fault.")
    get_int(fault, "fault.", "seed", 0)
    get_prob(fault, "fault.", "straggler_fraction")
    get_prob(fault, "fault.", "straggler_slowdown")
    get_number(fault, "fault.", "dvfs_jitter_s", minimum=0)
    get_prob(fault, "fault.", "message_delay_prob")
    get_number(fault, "fault.", "message_delay_s", minimum=0)
    get_prob(fault, "fault.", "message_drop_prob")
    get_int(fault, "fault.", "max_send_attempts", 1)
    get_number(fault, "fault.", "retry_backoff_s", minimum=0)
    get_prob(fault, "fault.", "node_failure_prob")
    get_number(fault, "fault.", "node_failure_window_s", minimum=0,
               exclusive=True)


def check_spec(doc):
    if not isinstance(doc, dict):
        fail("document", "expected a JSON object")
    if "version" not in doc:
        fail("version", "required field is missing")
    if not is_int(doc["version"]) or doc["version"] not in (1, 2):
        fail("version", "unsupported schema version (expected 1 or 2)")
    version = doc["version"]
    check_keys(doc, TOP_KEYS_V2 if version >= 2 else TOP_KEYS, "")

    kernel = get_string(doc, "", "kernel")
    if kernel is not None and kernel not in KERNELS:
        fail("kernel", f'unknown kernel "{kernel}" '
             f"(expected one of {sorted(KERNELS)})")
    scale = get_string(doc, "", "scale")
    if scale is not None and scale not in SCALES:
        fail("scale", f'unknown scale "{scale}" '
             f"(expected one of {sorted(SCALES)})")

    nodes = doc.get("nodes")
    if nodes is not None:
        if not isinstance(nodes, list):
            fail("nodes", "expected an array of integers")
        for n in nodes:
            if not is_int(n):
                fail("nodes", "expected an array of integers")
            if n < 1:
                fail("nodes", f"node count {n} must be >= 1")

    freqs = doc.get("freqs_mhz")
    if freqs is not None:
        if not isinstance(freqs, list):
            fail("freqs_mhz", "expected an array of MHz")
        for f in freqs:
            if not is_number(f):
                fail("freqs_mhz", "expected an array of MHz")
            if f <= 0:
                fail("freqs_mhz", f"frequency {f} must be > 0")

    get_number(doc, "", "comm_dvfs_mhz", minimum=0)
    if version >= 2:
        get_int(doc, "", "iterations", 0)
    if "options" in doc:
        check_options(doc["options"], version)
    if "fault" in doc:
        check_fault(doc["fault"])


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            check_spec(doc)
            print(f"{path}: OK")
        except (OSError, json.JSONDecodeError, SpecError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
