#!/usr/bin/env python3
"""Validate a pasim run_report.json (schema pasim-run-report/1).

Stdlib-only, used by scripts/tier1.sh. Checks structure and types of
every section, recomputes the summary from the points, and verifies
that the metrics section is sorted and contains finite numbers. Exits
nonzero with a message on the first violation.

Usage: check_report_schema.py <run_report.json>
"""
import json
import math
import sys

SCHEMA = "pasim-run-report/1"


def fail(msg):
    sys.exit(f"check_report_schema: FAIL: {msg}")


def want(cond, msg):
    if not cond:
        fail(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


POINT_FIELDS = {
    "sweep": int, "index": int, "kernel": str, "nodes": int,
    "frequency_mhz": (int, float), "comm_dvfs_mhz": (int, float),
    "status": str, "verified": bool, "from_cache": bool, "attempts": int,
    "seconds": (int, float), "mean_overhead_s": (int, float),
    "mean_cpu_s": (int, float), "mean_memory_s": (int, float),
    "send_retries": (int, float), "energy_j": dict,
}
ENERGY_FIELDS = ("cpu", "memory", "network", "idle", "total")


def check_point(i, p):
    for name, ty in POINT_FIELDS.items():
        want(name in p, f"points[{i}] missing field {name!r}")
        want(isinstance(p[name], ty) and not (ty is int and
                                              isinstance(p[name], bool)),
             f"points[{i}].{name} has wrong type: {p[name]!r}")
    want(p["nodes"] >= 1, f"points[{i}].nodes must be >= 1")
    want(p["frequency_mhz"] > 0, f"points[{i}].frequency_mhz must be > 0")
    want(p["attempts"] >= 1, f"points[{i}].attempts must be >= 1")
    want(p["seconds"] >= 0, f"points[{i}].seconds must be >= 0")
    e = p["energy_j"]
    for name in ENERGY_FIELDS:
        want(name in e and is_num(e[name]),
             f"points[{i}].energy_j.{name} missing or not a finite number")
    total = e["cpu"] + e["memory"] + e["network"] + e["idle"]
    want(abs(e["total"] - total) <= 1e-9 * max(1.0, abs(total)),
         f"points[{i}].energy_j.total does not equal the component sum")
    if p["status"] == "ok":
        want(p["seconds"] > 0, f"points[{i}] is ok but has seconds == 0")
    # Sampled estimates (DESIGN.md §14) are opt-in: exact points omit
    # the whole block, sampled points carry all of it.
    if "sampled" in p:
        want(p["sampled"] is True,
             f"points[{i}].sampled must be true when present")
        for name in ("total_iters", "sampled_iters"):
            want(isinstance(p.get(name), int) and not
                 isinstance(p.get(name), bool),
                 f"points[{i}].{name} missing or not an int")
        want(0 <= p["sampled_iters"] <= p["total_iters"],
             f"points[{i}]: sampled_iters must be in [0, total_iters]")
        for name in ("ci_seconds", "ci_energy_j"):
            want(is_num(p.get(name)) and p[name] >= 0,
                 f"points[{i}].{name} missing or not a finite number >= 0")
    else:
        for name in ("total_iters", "sampled_iters", "ci_seconds",
                     "ci_energy_j"):
            want(name not in p,
                 f"points[{i}].{name} present without sampled:true")


def main(path):
    try:
        with open(path, "rb") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    want(isinstance(report, dict), "top level must be an object")
    want(report.get("schema") == SCHEMA,
         f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    for key, ty in (("sweeps", list), ("points", list), ("summary", dict),
                    ("metrics", list)):
        want(isinstance(report.get(key), ty), f"{key!r} must be a {ty.__name__}")

    sweeps = report["sweeps"]
    for i, s in enumerate(sweeps):
        want(isinstance(s, dict) and s.get("id") == i,
             f"sweeps[{i}] must be an object with id {i}")
        want(isinstance(s.get("kernel"), str) and s["kernel"],
             f"sweeps[{i}].kernel must be a non-empty string")
        want(isinstance(s.get("points"), int) and s["points"] >= 0,
             f"sweeps[{i}].points must be a non-negative int")

    points = report["points"]
    for i, p in enumerate(points):
        want(isinstance(p, dict), f"points[{i}] must be an object")
        check_point(i, p)
        want(0 <= p["sweep"] < len(sweeps),
             f"points[{i}].sweep out of range")
        want(0 <= p["index"] < sweeps[p["sweep"]]["points"],
             f"points[{i}].index out of range for its sweep")
        want(p["kernel"] == sweeps[p["sweep"]]["kernel"],
             f"points[{i}].kernel disagrees with its sweep")

    # The summary must be exactly what the points imply.
    s = report["summary"]
    calc = {
        "points": len(points),
        "ok": sum(1 for p in points if p["status"] == "ok"),
        "failed": sum(1 for p in points if p["status"] != "ok"),
        "cached": sum(1 for p in points if p["from_cache"]),
        "run_retries": sum(p["attempts"] - 1 for p in points),
    }
    for key, val in calc.items():
        want(s.get(key) == val,
             f"summary.{key} is {s.get(key)!r}, points imply {val}")
    for key in ("send_retries", "energy_total_j"):
        want(is_num(s.get(key)), f"summary.{key} must be a finite number")
    energy = sum(p["energy_j"]["total"] for p in points)
    want(abs(s["energy_total_j"] - energy) <= 1e-9 * max(1.0, abs(energy)),
         "summary.energy_total_j does not equal the sum over points")

    names = []
    for i, m in enumerate(report["metrics"]):
        want(isinstance(m, dict), f"metrics[{i}] must be an object")
        want(isinstance(m.get("name"), str) and m["name"],
             f"metrics[{i}].name must be a non-empty string")
        want(m.get("kind") in ("counter", "gauge", "histogram"),
             f"metrics[{i}].kind is {m.get('kind')!r}")
        want(is_num(m.get("value")),
             f"metrics[{i}].value must be a finite number")
        names.append(m["name"])
    want(names == sorted(names), "metrics must be sorted by name")

    print(f"check_report_schema: OK: {path} "
          f"({len(sweeps)} sweeps, {len(points)} points, "
          f"{len(names)} stable metrics)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    main(sys.argv[1])
