#!/usr/bin/env python3
"""Validate a pasim sweep journal (DESIGN.md §12) from first principles.

Independent re-implementation of the on-disk format so C++-side bugs
cannot self-certify:

    pasim-sweep-journal v1\n
    J <payload_bytes> <fnv1a_hex_16>\n<payload>        (repeated)

with each payload:

    key <cache key>\n
    status <int in 0..5>\n
    error <len>\n<raw len bytes>\n
    <RunCache record lines: "<field> <value>\n" x 24>
    end\n

A torn tail (truncated final frame — the signature of a killed writer)
is reported as a warning and exits 0: that is exactly the state
SweepJournal::repair_tail() recovers from. Structural corruption
*before* the tail (bad magic, checksum mismatch, malformed payload)
exits 1.

Usage: check_journal_schema.py <journal> [<journal> ...]
"""
import sys

MAGIC = b"pasim-sweep-journal v1\n"
FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
MASK = (1 << 64) - 1

# RunCache::encode_record field order, verbatim.
RECORD_FIELDS = [
    "nodes", "frequency_mhz", "seconds", "mean_overhead_s", "mean_cpu_s",
    "mean_memory_s", "verified", "energy_cpu_j", "energy_memory_j",
    "energy_network_j", "energy_idle_j", "messages_per_rank",
    "doubles_per_message", "exec_reg", "exec_l1", "exec_l2", "exec_mem",
    "attempts", "send_retries", "sampled", "total_iters", "sampled_iters",
    "ci_seconds", "ci_energy_j",
]
MAX_STATUS = 5  # RunStatus::kCrashed


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK
    return h


def check_payload(payload, frame):
    """Returns an error string, or None when the payload is well-formed."""
    lines = payload.split(b"\n")
    i = 0

    def take():
        nonlocal i
        if i >= len(lines):
            return None
        line = lines[i]
        i += 1
        return line

    key = take()
    if key is None or not key.startswith(b"key ") or len(key) <= 4:
        return f"frame {frame}: missing/empty key line"
    status = take()
    if status is None or not status.startswith(b"status "):
        return f"frame {frame}: missing status line"
    try:
        status_val = int(status[7:])
    except ValueError:
        return f"frame {frame}: non-integer status {status[7:]!r}"
    if not 0 <= status_val <= MAX_STATUS:
        return f"frame {frame}: status {status_val} out of range"
    err_hdr = take()
    if err_hdr is None or not err_hdr.startswith(b"error "):
        return f"frame {frame}: missing error line"
    try:
        err_len = int(err_hdr[6:])
    except ValueError:
        return f"frame {frame}: non-integer error length"
    # The error text is length-prefixed raw bytes and may itself contain
    # newlines; re-join and skip exactly err_len bytes + "\n".
    rest = b"\n".join(lines[i:])
    if len(rest) < err_len + 1 or rest[err_len : err_len + 1] != b"\n":
        return f"frame {frame}: error text shorter than its declared length"
    rest = rest[err_len + 1 :]
    record_lines = rest.split(b"\n")
    for want in RECORD_FIELDS:
        if not record_lines:
            return f"frame {frame}: record truncated before '{want}'"
        line = record_lines.pop(0)
        parts = line.split(b" ")
        if len(parts) != 2 or parts[0].decode("ascii", "replace") != want:
            return f"frame {frame}: expected record field '{want}', got {line!r}"
    if not record_lines or record_lines.pop(0) != b"end":
        return f"frame {frame}: missing 'end' terminator"
    return None


def check_journal(path: str) -> int:
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        return 1
    if not data.startswith(MAGIC):
        print(f"{path}: bad magic (not a sweep journal)", file=sys.stderr)
        return 1

    off = len(MAGIC)
    frames = 0
    keys = set()
    while off < len(data):
        frames += 1
        nl = data.find(b"\n", off)
        if nl < 0:
            print(f"{path}: torn tail at frame {frames} (truncated header); "
                  f"{frames - 1} intact frame(s) — repairable", file=sys.stderr)
            return 0
        header = data[off:nl]
        parts = header.split(b" ")
        if len(parts) != 3 or parts[0] != b"J" or len(parts[2]) != 16:
            print(f"{path}: frame {frames}: malformed header {header!r}",
                  file=sys.stderr)
            return 1
        try:
            size = int(parts[1])
            want_sum = int(parts[2], 16)
        except ValueError:
            print(f"{path}: frame {frames}: non-numeric header {header!r}",
                  file=sys.stderr)
            return 1
        payload = data[nl + 1 : nl + 1 + size]
        if len(payload) < size:
            print(f"{path}: torn tail at frame {frames} (payload truncated); "
                  f"{frames - 1} intact frame(s) — repairable", file=sys.stderr)
            return 0
        if fnv1a(payload) != want_sum:
            # A checksum mismatch on the FINAL frame is a torn tail (the
            # single-write() append itself was cut short); anywhere else
            # it is corruption of committed data.
            if nl + 1 + size >= len(data):
                print(f"{path}: torn tail at frame {frames} (checksum); "
                      f"{frames - 1} intact frame(s) — repairable",
                      file=sys.stderr)
                return 0
            print(f"{path}: frame {frames}: checksum mismatch on a "
                  f"non-final frame", file=sys.stderr)
            return 1
        err = check_payload(payload, frames)
        if err:
            print(f"{path}: {err}", file=sys.stderr)
            return 1
        keys.add(payload.split(b"\n", 1)[0][4:])
        off = nl + 1 + size
    print(f"{path}: OK — {frames} frame(s), {len(keys)} unique key(s)")
    return 0


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in sys.argv[1:]:
        rc = max(rc, check_journal(path))
    return rc


if __name__ == "__main__":
    sys.exit(main())
