#!/usr/bin/env python3
"""Validate the recorded perf baselines written by scripts/bench_record.sh.

Stdlib-only, used by the tier-1 perf stage. Two file kinds:

  BENCH_micro_sim.json    google-benchmark JSON output: a context object
                          and a non-empty benchmark list, with the
                          simulator hot-path benchmarks present.
  BENCH_full_report.json  schema pasim-bench-full-report/1: one timed
                          end-to-end run of bench/full_report.
  BENCH_resilience_sweep.json
                          schema pasim-bench-resilience-sweep/1: one
                          timed run of bench/resilience_sweep (the
                          fault-ensemble axis has no fast path, so its
                          wall time tracks raw simulation throughput).
  BENCH_serve_throughput.json
                          schema pasim-bench-serve-throughput/1: qps and
                          client-side latency of a pasim_serve fleet at
                          one and two brokers (DESIGN.md §15).

Record-only companion: this checks shape, not speed — a slow run still
validates. Exits nonzero with a message on the first violation.

Usage: check_bench_schema.py BENCH_micro_sim.json BENCH_full_report.json
           [BENCH_resilience_sweep.json [BENCH_serve_throughput.json]]
"""
import json
import math
import sys

FULL_REPORT_SCHEMA = "pasim-bench-full-report/1"
RESILIENCE_SCHEMA = "pasim-bench-resilience-sweep/1"
SERVE_SCHEMA = "pasim-bench-serve-throughput/1"

# The hot paths this PR pinned down must stay covered by the recording.
REQUIRED_BENCHMARKS = (
    "BM_FftPlanRoundtrip",
    "BM_FftPlanBatchRoundtrip",
    "BM_MailboxMatchDepth",
    "BM_MailboxContention",
    "BM_AlltoallPayloads",
    "BM_ScalarReprice",
    "BM_BatchReprice",
)


def fail(msg):
    sys.exit(f"check_bench_schema: FAIL: {msg}")


def want(cond, msg):
    if not cond:
        fail(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")


def check_micro(path):
    doc = load(path)
    want(isinstance(doc, dict), f"{path}: top level must be an object")
    ctx = doc.get("context")
    want(isinstance(ctx, dict), f"{path}: missing context object")
    for key in ("date", "num_cpus", "library_build_type"):
        want(key in ctx, f"{path}: context missing {key!r}")
    benches = doc.get("benchmarks")
    want(isinstance(benches, list) and benches,
         f"{path}: benchmarks must be a non-empty list")
    names = set()
    for i, b in enumerate(benches):
        want(isinstance(b, dict), f"{path}: benchmarks[{i}] must be an object")
        want(isinstance(b.get("name"), str) and b["name"],
             f"{path}: benchmarks[{i}].name must be a non-empty string")
        for key in ("real_time", "cpu_time"):
            want(is_num(b.get(key)) and b[key] >= 0,
                 f"{path}: benchmarks[{i}].{key} must be a finite number >= 0")
        want(isinstance(b.get("time_unit"), str),
             f"{path}: benchmarks[{i}].time_unit must be a string")
        names.add(b["name"].split("/")[0])
    for required in REQUIRED_BENCHMARKS:
        want(required in names,
             f"{path}: hot-path benchmark {required} missing from recording")
    print(f"check_bench_schema: OK: {path} ({len(benches)} benchmarks)")


def check_full_report(path):
    doc = load(path)
    want(isinstance(doc, dict), f"{path}: top level must be an object")
    want(doc.get("schema") == FULL_REPORT_SCHEMA,
         f"{path}: schema must be {FULL_REPORT_SCHEMA!r}, "
         f"got {doc.get('schema')!r}")
    want(isinstance(doc.get("command"), str) and doc["command"],
         f"{path}: command must be a non-empty string")
    want(isinstance(doc.get("jobs"), int) and not
         isinstance(doc.get("jobs"), bool) and doc["jobs"] >= 1,
         f"{path}: jobs must be an int >= 1")
    for key in ("wall_seconds_reported", "wall_seconds_measured"):
        want(is_num(doc.get(key)) and doc[key] > 0,
             f"{path}: {key} must be a finite number > 0")
    want(doc["wall_seconds_measured"] + 1e-9 >= doc["wall_seconds_reported"],
         f"{path}: outside measurement smaller than self-reported wall time")
    want(isinstance(doc.get("recorded_at"), str) and
         "T" in doc.get("recorded_at", ""),
         f"{path}: recorded_at must be an ISO-8601 UTC string")
    print(f"check_bench_schema: OK: {path} "
          f"(--jobs {doc['jobs']}, wall {doc['wall_seconds_reported']}s)")


def check_resilience(path):
    doc = load(path)
    want(isinstance(doc, dict), f"{path}: top level must be an object")
    want(doc.get("schema") == RESILIENCE_SCHEMA,
         f"{path}: schema must be {RESILIENCE_SCHEMA!r}, "
         f"got {doc.get('schema')!r}")
    want(isinstance(doc.get("command"), str) and doc["command"],
         f"{path}: command must be a non-empty string")
    want(isinstance(doc.get("jobs"), int) and not
         isinstance(doc.get("jobs"), bool) and doc["jobs"] >= 1,
         f"{path}: jobs must be an int >= 1")
    want(is_num(doc.get("wall_seconds_measured")) and
         doc["wall_seconds_measured"] > 0,
         f"{path}: wall_seconds_measured must be a finite number > 0")
    want(isinstance(doc.get("recorded_at"), str) and
         "T" in doc.get("recorded_at", ""),
         f"{path}: recorded_at must be an ISO-8601 UTC string")
    print(f"check_bench_schema: OK: {path} "
          f"(--jobs {doc['jobs']}, wall {doc['wall_seconds_measured']}s)")


def check_serve(path):
    doc = load(path)
    want(isinstance(doc, dict), f"{path}: top level must be an object")
    want(doc.get("schema") == SERVE_SCHEMA,
         f"{path}: schema must be {SERVE_SCHEMA!r}, got {doc.get('schema')!r}")
    want(isinstance(doc.get("command"), str) and doc["command"],
         f"{path}: command must be a non-empty string")
    for key in ("clients", "queries_per_client"):
        want(isinstance(doc.get(key), int) and not
             isinstance(doc.get(key), bool) and doc[key] >= 1,
             f"{path}: {key} must be an int >= 1")
    fleets = doc.get("fleets")
    want(isinstance(fleets, list) and fleets,
         f"{path}: fleets must be a non-empty list")
    seen_brokers = set()
    for i, f in enumerate(fleets):
        want(isinstance(f, dict), f"{path}: fleets[{i}] must be an object")
        want(isinstance(f.get("brokers"), int) and not
             isinstance(f.get("brokers"), bool) and f["brokers"] >= 1,
             f"{path}: fleets[{i}].brokers must be an int >= 1")
        want(f["brokers"] not in seen_brokers,
             f"{path}: fleets[{i}].brokers={f['brokers']} recorded twice")
        seen_brokers.add(f["brokers"])
        want(isinstance(f.get("queries"), int) and not
             isinstance(f.get("queries"), bool) and f["queries"] >= 1,
             f"{path}: fleets[{i}].queries must be an int >= 1")
        for key in ("wall_seconds", "qps", "seconds_per_query"):
            want(is_num(f.get(key)) and f[key] > 0,
                 f"{path}: fleets[{i}].{key} must be a finite number > 0")
        for key in ("p50_ms", "p99_ms"):
            want(is_num(f.get(key)) and f[key] >= 0,
                 f"{path}: fleets[{i}].{key} must be a finite number >= 0")
        want(f["p99_ms"] + 1e-9 >= f["p50_ms"],
             f"{path}: fleets[{i}]: p99_ms below p50_ms")
        # seconds_per_query is wall_seconds / queries by construction.
        derived = f["wall_seconds"] / f["queries"]
        want(abs(f["seconds_per_query"] - derived) <= max(1e-5, derived * 0.01),
             f"{path}: fleets[{i}].seconds_per_query does not match "
             f"wall_seconds / queries")
    want(1 in seen_brokers,
         f"{path}: the 1-broker baseline fleet must be recorded")
    print(f"check_bench_schema: OK: {path} ({len(fleets)} fleet size(s), "
          f"{doc['clients']} clients)")


def main(argv):
    if len(argv) not in (3, 4, 5):
        sys.exit(__doc__.strip())
    check_micro(argv[1])
    check_full_report(argv[2])
    if len(argv) >= 4:
        check_resilience(argv[3])
    if len(argv) == 5:
        check_serve(argv[4])


if __name__ == "__main__":
    main(sys.argv)
