#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the
# concurrency tests again under ThreadSanitizer (PASIM_SANITIZE=thread,
# separate build-tsan/ tree) and the fault/error-path tests under
# AddressSanitizer (PASIM_SANITIZE=address, build-asan/). Sanitizer
# stages are skipped gracefully on toolchains without the respective
# -fsanitize support.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

have_sanitizer() {
  printf 'int main(){return 0;}' |
    c++ -x c++ "-fsanitize=$1" -o /dev/null - 2>/dev/null
}

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 1: observability artifacts =="
ROOT="$PWD"
OBS_DIR="$(mktemp -d)"
REPLAY_DIR="$(mktemp -d)"
BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR"' EXIT
# One small faulty sweep with everything on: all five artifacts must
# appear, and run_report.json must satisfy the published schema.
(cd "$OBS_DIR" && "$ROOT/build/bench/resilience_sweep" --small \
  --faults 0.05 --no-cache --jobs 2 \
  --trace obs --metrics obs >/dev/null)
for f in run_report.json trace.json power_timeline.csv metrics.csv \
         metrics_volatile.csv; do
  [ -s "$OBS_DIR/obs/$f" ] || { echo "missing obs artifact: $f"; exit 1; }
done
if command -v python3 >/dev/null; then
  python3 scripts/check_report_schema.py "$OBS_DIR/obs/run_report.json"
else
  echo "skipped schema check: python3 not available"
fi
# The disabled configuration is the default everywhere: it must leave
# no artifacts behind (the no-op path really is a no-op).
(mkdir -p "$OBS_DIR/off" && cd "$OBS_DIR/off" && \
  "$ROOT/build/bench/resilience_sweep" --small --faults 0.05 \
  --no-cache --jobs 2 >/dev/null)
if [ -n "$(ls "$OBS_DIR/off")" ]; then
  echo "disabled run left artifacts behind:"; ls "$OBS_DIR/off"; exit 1
fi
echo "observability artifacts OK"

echo "== tier 1: concurrency tests under TSan =="
if have_sanitizer thread; then
  cmake -B build-tsan -S . -DPASIM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target util_test mpi_test analysis_test fault_test obs_test
  ./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
  # Mailbox.* includes the many-senders/interleaved-tags stress test of
  # the bucketed queues and their targeted wakeups.
  ./build-tsan/tests/mpi_test --gtest_filter='Runtime.*:Mailbox.*'
  # The metrics registry is updated lock-free from every worker.
  ./build-tsan/tests/obs_test --gtest_filter='MetricsRegistry.*'
  ./build-tsan/tests/analysis_test \
    --gtest_filter='SweepExecutor.*:MatrixResult.*:RunMatrix.*'
  # Checkpoint capture/restore crosses the rank threads (truncation,
  # state harvest, warm-started continuation) and sampled sweeps fan
  # out estimator-backed points: both race-prone by construction.
  ./build-tsan/tests/analysis_test \
    --gtest_filter='CheckpointRoundTrip.*:SampledEstimator.*:SweepSampling.*:SweepCheckpoint.*'
  # The watchdog (monitor + mailbox wakeups) and the fail-soft sweep
  # are the raciest code in the tree: run every fault test under TSan.
  ./build-tsan/tests/fault_test
else
  echo "skipped: this toolchain does not support -fsanitize=thread"
fi

echo "== tier 1: frequency-collapse replay =="
# Grid equivalence of the fast path (DESIGN.md §10) — under TSan when
# available, since column tasks re-price concurrently.
REPLAY_FILTER='Repricer.*:ReplayFastPath.*:LedgerCache.*'
if have_sanitizer thread; then
  ./build-tsan/tests/analysis_test --gtest_filter="$REPLAY_FILTER"
else
  ./build/tests/analysis_test --gtest_filter="$REPLAY_FILTER"
fi
# Cold vs warm ledger: the first run records one ledger per column;
# deleting the .run records forces the second run to re-price every
# point from the persisted ledgers (verified against full simulation
# by --verify-replay). Both outputs must be byte-identical.
./build/bench/fig2_ft_surface --small --jobs 2 \
  --cache "$REPLAY_DIR/cache" --csv "$REPLAY_DIR/cold.csv" \
  > "$REPLAY_DIR/cold.out"
rm -f "$REPLAY_DIR/cache/"*.run
./build/bench/fig2_ft_surface --small --jobs 2 --verify-replay \
  --cache "$REPLAY_DIR/cache" --csv "$REPLAY_DIR/warm.csv" \
  > "$REPLAY_DIR/warm.out"
cmp "$REPLAY_DIR/cold.out" "$REPLAY_DIR/warm.out"
cmp "$REPLAY_DIR/cold.csv" "$REPLAY_DIR/warm.csv"
echo "frequency-collapse replay OK (cold/warm byte-identical)"

echo "== tier 1: batch replay =="
# The batched repricing engine (DESIGN.md §11): lane equivalence under
# TSan when available (one column task prices many lanes at once), then
# a byte-compare of whole sweep artifacts — batched engine vs the
# scalar oracle forced by PASIM_SCALAR_REPRICE=1 — at jobs 8.
BATCH_FILTER='BatchRepricer.*:BatchedSweep.*'
if have_sanitizer thread; then
  ./build-tsan/tests/analysis_test --gtest_filter="$BATCH_FILTER"
else
  ./build/tests/analysis_test --gtest_filter="$BATCH_FILTER"
fi
BATCH_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR"' EXIT
./build/bench/fig2_ft_surface --small --jobs 8 --no-cache \
  --csv "$BATCH_DIR/batched.csv" > "$BATCH_DIR/batched.out"
PASIM_SCALAR_REPRICE=1 ./build/bench/fig2_ft_surface --small --jobs 8 \
  --no-cache --csv "$BATCH_DIR/scalar.csv" > "$BATCH_DIR/scalar.out"
cmp "$BATCH_DIR/batched.out" "$BATCH_DIR/scalar.out"
cmp "$BATCH_DIR/batched.csv" "$BATCH_DIR/scalar.csv"
echo "batch replay OK (batched/scalar byte-identical at --jobs 8)"

echo "== tier 1: sampled estimation + checkpoint warm-starts =="
# DESIGN.md §14, on the axis the Repricer cannot collapse (node count
# at one frequency). Three gates:
#   1. CI coverage — a sampled sweep with --verify-sampling 1
#      re-simulates every point exactly and aborts if any exact
#      makespan falls outside the reported 95% interval, so the run
#      completing IS the assertion.
#   2. Exactness of warm-starts — a deep sweep warm-started from a
#      shallow sweep's checkpoints must be byte-identical to the cold
#      uninterrupted run (checkpoints are exact, unlike sampling).
#   3. Speed — sampling + warm-starts must cut wall clock by >= 3x on
#      a deep-iteration grid vs the exact cold run.
SAMPLING_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR" "$SAMPLING_DIR"' EXIT
./build/bench/fig2_ft_surface --small --iterations 96 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --no-cache --sampling --sample-period 8 \
  --warmup-iters 2 --verify-sampling 1 \
  --csv "$SAMPLING_DIR/sampled.csv" > "$SAMPLING_DIR/sampled.out"
echo "sampling CI coverage OK (every exact point inside its interval)"
./build/bench/fig2_ft_surface --small --iterations 24 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --checkpoints --cache "$SAMPLING_DIR/cache" \
  --csv "$SAMPLING_DIR/shallow.csv" >/dev/null
./build/bench/fig2_ft_surface --small --iterations 96 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --checkpoints --cache "$SAMPLING_DIR/cache" \
  --csv "$SAMPLING_DIR/warm.csv" >/dev/null
./build/bench/fig2_ft_surface --small --iterations 96 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --no-cache \
  --csv "$SAMPLING_DIR/cold.csv" >/dev/null
cmp "$SAMPLING_DIR/warm.csv" "$SAMPLING_DIR/cold.csv"
echo "checkpoint warm-start OK (warm-started sweep byte-identical to cold)"
T0="$(date +%s%N)"
./build/bench/fig2_ft_surface --small --iterations 384 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --no-cache \
  --csv "$SAMPLING_DIR/deep_exact.csv" >/dev/null
T1="$(date +%s%N)"
./build/bench/fig2_ft_surface --small --iterations 384 --nodes 1,2,4 \
  --freqs 1000 --jobs 1 --sampling --sample-period 8 --warmup-iters 2 \
  --checkpoints --cache "$SAMPLING_DIR/cache" \
  --csv "$SAMPLING_DIR/deep_sampled.csv" >/dev/null
T2="$(date +%s%N)"
RATIO="$(awk "BEGIN { printf \"%.1f\", ($T1 - $T0) / ($T2 - $T1) }")"
echo "sampled + warm-started sweep: ${RATIO}x faster than exact"
awk "BEGIN { exit !(($T1 - $T0) >= 3 * ($T2 - $T1)) }" || {
  echo "sampling speedup below the 3x floor"; exit 1; }

echo "== tier 1: fault + error paths under ASan =="
if have_sanitizer address; then
  cmake -B build-asan -S . -DPASIM_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target fault_test mpi_test robustness_test serve_test analysis_test
  ./build-asan/tests/fault_test
  # Checkpoint serialization walks every byte of harvested state and
  # the quarantine path handles truncated files — leak/overflow bait.
  ./build-asan/tests/analysis_test \
    --gtest_filter='CheckpointRoundTrip.*:SampledEstimator.*:SweepSampling.*:SweepCheckpoint.*'
  # Exception-heavy error paths (invalid requests, collective
  # mismatches) where leaks from unwound ranks would hide.
  ./build-asan/tests/mpi_test \
    --gtest_filter='Collectives.*:Nonblocking.*:Runtime.*'
  # The crash-safety torture tests (DESIGN.md §12) and the serve stack
  # (§13) fork and SIGKILL themselves on purpose — ASan, never TSan
  # (fork and TSan don't mix).
  ./build-asan/tests/robustness_test
  ./build-asan/tests/serve_test
else
  echo "skipped: this toolchain does not support -fsanitize=address"
fi

echo "== tier 1: crash-safety torture (SIGKILL / corrupt / resume) =="
# Shell-level proof of the ISSUE 7 acceptance criteria: a --jobs 8
# sweep SIGKILLed mid-flight (at several journal depths), its cache
# entries corrupted, then resumed — the stable artifacts (REPORT.md +
# CSVs) must be byte-identical to an uninterrupted --jobs 1 run.
ROBUST_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR" "$SAMPLING_DIR" "$ROBUST_DIR"' EXIT
REF="$ROBUST_DIR/ref"
"$ROOT/build/bench/full_report" --small --jobs 1 --no-cache \
  --out "$REF" >/dev/null
CRASH_OUT="$ROBUST_DIR/crashed"
JOURNAL="$ROBUST_DIR/sweep.journal"
CACHE="$ROBUST_DIR/cache"
for k in 5 11 23; do
  if PASIM_CRASH_AFTER_APPENDS=$k "$ROOT/build/bench/full_report" --small \
      --jobs 8 --cache "$CACHE" --journal "$JOURNAL" --resume \
      --out "$CRASH_OUT" >/dev/null 2>&1; then
    echo "crash injection failed: run survived PASIM_CRASH_AFTER_APPENDS=$k"
    exit 1
  fi
  # Every partial journal must still satisfy the published schema.
  if command -v python3 >/dev/null; then
    python3 scripts/check_journal_schema.py "$JOURNAL"
  fi
done
"$ROOT/build/bench/full_report" --small --jobs 8 --cache "$CACHE" \
  --journal "$JOURNAL" --resume --out "$CRASH_OUT" >/dev/null 2>&1
for f in "$REF"/*; do
  cmp "$f" "$CRASH_OUT/$(basename "$f")"
done
echo "crash/resume OK (artifacts byte-identical to clean run)"
# Corrupt what the crashes left behind: flip a byte inside one record
# entry, cut one ledger short. A journal-less re-run (so every point
# actually reads the cache instead of being served from the journal)
# must quarantine the flipped entry (.bad), not crash, and still
# reconverge.
run_entry="$(ls "$CACHE"/*.run 2>/dev/null | head -1 || true)"
ledger_entry="$(ls "$CACHE"/*.ledger 2>/dev/null | head -1 || true)"
if [ -n "$run_entry" ]; then
  # Overwrite a byte near the END of the entry: that is checksummed
  # payload (bytes near the start are the key line, where a flip reads
  # as a filename collision, a different — legitimate — miss path).
  size=$(stat -c %s "$run_entry")
  printf 'X' | dd of="$run_entry" bs=1 seek=$((size - 10)) \
    conv=notrunc status=none
fi
[ -n "$ledger_entry" ] && truncate -s 40 "$ledger_entry"
"$ROOT/build/bench/full_report" --small --jobs 8 --cache "$CACHE" \
  --out "$ROBUST_DIR/corrupt_out" >/dev/null 2>&1
for f in "$REF"/*; do
  cmp "$f" "$ROBUST_DIR/corrupt_out/$(basename "$f")"
done
if [ -n "$run_entry" ] && [ ! -f "$run_entry.bad" ]; then
  echo "corrupted cache entry was not quarantined: $run_entry"; exit 1
fi
echo "corrupt-cache quarantine OK (artifacts byte-identical to clean run)"
# Tracing leg: under --trace, resumed points re-simulate (so trace.json
# stays byte-identical); compare against an uninterrupted traced run.
TRACE_JOURNAL="$ROBUST_DIR/trace.journal"
"$ROOT/build/bench/full_report" --small --jobs 1 --no-cache \
  --trace "$ROBUST_DIR/tref" --out "$ROBUST_DIR/tref_out" >/dev/null
if PASIM_CRASH_AFTER_APPENDS=7 "$ROOT/build/bench/full_report" --small \
    --jobs 8 --no-cache --journal "$TRACE_JOURNAL" --resume \
    --trace "$ROBUST_DIR/tres" --out "$ROBUST_DIR/tres_out" \
    >/dev/null 2>&1; then
  echo "crash injection failed on the tracing leg"; exit 1
fi
"$ROOT/build/bench/full_report" --small --jobs 8 --no-cache \
  --journal "$TRACE_JOURNAL" --resume --trace "$ROBUST_DIR/tres" \
  --out "$ROBUST_DIR/tres_out" >/dev/null
cmp "$ROBUST_DIR/tref/trace.json" "$ROBUST_DIR/tres/trace.json"
cmp "$ROBUST_DIR/tref_out/REPORT.md" "$ROBUST_DIR/tres_out/REPORT.md"
echo "traced crash/resume OK (trace.json byte-identical)"
# Two concurrent processes sharing one cache directory must both
# finish cleanly and agree byte-for-byte.
SHARED="$ROBUST_DIR/shared_cache"
"$ROOT/build/bench/fig2_ft_surface" --small --jobs 2 --cache "$SHARED" \
  --csv "$ROBUST_DIR/p1.csv" >/dev/null & P1=$!
"$ROOT/build/bench/fig2_ft_surface" --small --jobs 2 --cache "$SHARED" \
  --csv "$ROBUST_DIR/p2.csv" >/dev/null & P2=$!
wait $P1
wait $P2
cmp "$ROBUST_DIR/p1.csv" "$ROBUST_DIR/p2.csv"
if ls "$SHARED"/*.bad >/dev/null 2>&1; then
  echo "concurrent cache sharing quarantined entries:"; ls "$SHARED"; exit 1
fi
echo "concurrent shared-cache OK"
# Simulated disk-full: the run must fail soft (clean nonzero exit and
# an errno on stderr), never die on a signal or corrupt state.
set +e
PASIM_INJECT_WRITE_FAULT_AFTER=3 "$ROOT/build/bench/full_report" --small \
  --jobs 2 --cache "$ROBUST_DIR/enospc_cache" \
  --out "$ROBUST_DIR/enospc_out" >/dev/null 2>"$ROBUST_DIR/enospc.err"
ENOSPC_RC=$?
set -e
if [ "$ENOSPC_RC" -eq 0 ] || [ "$ENOSPC_RC" -ge 128 ]; then
  echo "injected ENOSPC: expected a clean nonzero exit, got rc=$ENOSPC_RC"
  cat "$ROBUST_DIR/enospc.err"
  exit 1
fi
echo "injected-ENOSPC degradation OK (rc=$ENOSPC_RC)"

echo "== tier 1: sweep-spec schema + --spec equivalence =="
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR" "$SAMPLING_DIR" "$ROBUST_DIR" "$SERVE_DIR"' EXIT
# The committed sample specs and a freshly printed document must both
# satisfy the published schema, checked from first principles.
"$ROOT/build/tools/pasim_client" --print-spec --small --kernel FT \
  --faults 0.1 > "$SERVE_DIR/printed_spec.json"
if command -v python3 >/dev/null; then
  python3 scripts/check_spec_schema.py specs/*.json \
    "$SERVE_DIR/printed_spec.json"
else
  echo "skipped spec schema check: python3 not available"
fi
# The same sweep described by flags and by a --spec file must produce
# byte-identical output.
./build/bench/fig2_ft_surface --small --jobs 2 --no-cache \
  --csv "$SERVE_DIR/flags.csv" > "$SERVE_DIR/flags.out"
./build/bench/fig2_ft_surface --spec specs/ft_small.json --jobs 2 \
  --no-cache --csv "$SERVE_DIR/spec.csv" > "$SERVE_DIR/spec.out"
cmp "$SERVE_DIR/flags.out" "$SERVE_DIR/spec.out"
cmp "$SERVE_DIR/flags.csv" "$SERVE_DIR/spec.csv"
echo "spec schema + --spec equivalence OK"

echo "== tier 1: serve (cold / warm / concurrent vs offline) =="
# A pasim_serve broker answering pasim_client submissions must return
# records whose artifacts are byte-identical to an offline run of the
# same spec — cold (workers simulate), warm (pure cache hits) and under
# concurrent duplicate submissions (in-flight dedup).
SOCK="$SERVE_DIR/serve.sock"
"$ROOT/build/tools/pasim_serve" --socket "$SOCK" \
  --cache "$SERVE_DIR/serve_cache" --workers 2 \
  --metrics-csv "$SERVE_DIR/serve_metrics.csv" \
  > "$SERVE_DIR/serve.log" 2>&1 & SERVE_PID=$!
CLIENT="$ROOT/build/tools/pasim_client"
"$CLIENT" --socket "$SOCK" --wait 15 --ping >/dev/null
"$CLIENT" --socket "$SOCK" --spec specs/ft_small.json \
  --out "$SERVE_DIR/cold" > "$SERVE_DIR/cold.txt"
"$CLIENT" --socket "$SOCK" --spec specs/ft_small.json \
  --out "$SERVE_DIR/warm1" > "$SERVE_DIR/warm1.txt" & C1=$!
"$CLIENT" --socket "$SOCK" --spec specs/ft_small.json \
  --out "$SERVE_DIR/warm2" > "$SERVE_DIR/warm2.txt" & C2=$!
wait $C1
wait $C2
# Offline oracle: the same spec through full_report.
"$ROOT/build/bench/full_report" --spec specs/ft_small.json --jobs 1 \
  --no-cache --out "$SERVE_DIR/offline" >/dev/null
for d in cold warm1 warm2; do
  cmp "$SERVE_DIR/$d/FT_time.csv" "$SERVE_DIR/offline/FT_time.csv"
  cmp "$SERVE_DIR/$d/FT_speedup.csv" "$SERVE_DIR/offline/FT_speedup.csv"
done
# The warm passes must be answered from the shared cache.
grep -q "cache_hits=0," "$SERVE_DIR/cold.txt"
for w in warm1 warm2; do
  if grep -q "cache_hits=0," "$SERVE_DIR/$w.txt"; then
    echo "warm submission $w had zero cache hits:"; cat "$SERVE_DIR/$w.txt"
    exit 1
  fi
done
"$CLIENT" --socket "$SOCK" --stats | grep -q '"journal_entries"'
"$CLIENT" --socket "$SOCK" --shutdown >/dev/null
wait $SERVE_PID
# The server's parting metrics snapshot must include serving counters.
grep -q "serve.sweeps" "$SERVE_DIR/serve_metrics.csv"
grep -q "serve.request_seconds" "$SERVE_DIR/serve_metrics.csv"
echo "serve OK (cold/warm/concurrent byte-identical to offline)"

echo "== tier 1: distributed serve (fabric / steal / kill-one) =="
# The multi-broker shard fabric of DESIGN.md §15, exercised exactly as
# deployed: separate pasim_serve processes on ephemeral TCP ports with
# separate cache directories, joined with --peer. Three legs:
#   1. fabric — cold sweep through one broker, warm re-reads through
#      its peer: every artifact byte-identical to the offline oracle,
#      and the peer answers via cas.get read-through (cas.hit > 0).
#   2. steal — a one-worker victim with a queue and an idle thief:
#      the thief drains queued columns (steal_columns / steal_given
#      > 0) and the victim's client output stays byte-identical.
#   3. kill-one — SIGKILL a peer mid-sweep: the survivor reclaims its
#      forwarded columns, re-runs them locally, and still answers
#      byte-identically.
FAB_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR" "$SAMPLING_DIR" "$ROBUST_DIR" "$SERVE_DIR" "$FAB_DIR"' EXIT
serve_port() {
  # Parse the ephemeral port from a broker's "listening" line.
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^pasim_serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            "$1" 2>/dev/null | head -1)"
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "serve_port: no listening line in $1" >&2
  return 1
}
metric_positive() {
  # metric_positive CSV NAME: the named counter must be > 0.
  awk -F, -v n="$2" '$1 == n { v = $4 } END { exit !(v + 0 > 0) }' "$1" || {
    echo "expected $2 > 0 in $1:"; cat "$1"; exit 1; }
}
# Column identity is (kernel, N, comm-DVFS, cluster signature), so
# eight small EP specs — comm-DVFS operating points crossed with fault
# ensembles — give each direction of the fabric 12 distinct columns
# (4 specs x the default 3 node counts). The rendezvous split of 12
# columns across two brokers is one-sided with probability 2^-12: the
# counter assertions below are deterministic in practice. The fault
# specs also push deterministic-failure records across the wire,
# covering the status framing of the CAS payloads end to end.
"$CLIENT" --print-spec --small --kernel EP > "$FAB_DIR/spec_a1.json"
"$CLIENT" --print-spec --small --kernel EP \
  --comm-dvfs 600 > "$FAB_DIR/spec_a2.json"
"$CLIENT" --print-spec --small --kernel EP \
  --faults 0.05 --fault-seed 1 > "$FAB_DIR/spec_a3.json"
"$CLIENT" --print-spec --small --kernel EP --comm-dvfs 600 \
  --faults 0.05 --fault-seed 3 > "$FAB_DIR/spec_a4.json"
"$CLIENT" --print-spec --small --kernel EP \
  --comm-dvfs 1000 > "$FAB_DIR/spec_b1.json"
"$CLIENT" --print-spec --small --kernel EP \
  --comm-dvfs 1400 > "$FAB_DIR/spec_b2.json"
"$CLIENT" --print-spec --small --kernel EP \
  --faults 0.05 --fault-seed 2 > "$FAB_DIR/spec_b3.json"
"$CLIENT" --print-spec --small --kernel EP --comm-dvfs 1000 \
  --faults 0.05 --fault-seed 4 > "$FAB_DIR/spec_b4.json"
for s in a1 a2 a3 a4 b1 b2 b3 b4; do
  "$ROOT/build/bench/full_report" --spec "$FAB_DIR/spec_$s.json" --jobs 1 \
    --no-cache --out "$FAB_DIR/offline_$s" >/dev/null
done
# Leg 1: broker A standalone, broker B peered to it.
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_a" \
  --workers 2 --metrics-csv "$FAB_DIR/metrics_a.csv" \
  > "$FAB_DIR/a.log" 2>&1 & FAB_A=$!
PORT_A="$(serve_port "$FAB_DIR/a.log")"
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_b" \
  --workers 2 --peer "127.0.0.1:$PORT_A" \
  --metrics-csv "$FAB_DIR/metrics_b.csv" > "$FAB_DIR/b.log" 2>&1 & FAB_B=$!
PORT_B="$(serve_port "$FAB_DIR/b.log")"
"$CLIENT" --tcp "$PORT_A" --wait 15 --ping >/dev/null
"$CLIENT" --tcp "$PORT_B" --wait 15 --ping >/dev/null
# Cold through A (all local: A has no peers), warm re-reads through B
# (B pulls the A-owned records over cas.get), then fresh cold grids
# submitted to B so B forwards their A-owned columns to A for
# execution.
for s in a1 a2 a3 a4; do
  "$CLIENT" --tcp "$PORT_A" --spec "$FAB_DIR/spec_$s.json" \
    --out "$FAB_DIR/cold_$s" >/dev/null
  "$CLIENT" --tcp "$PORT_B" --spec "$FAB_DIR/spec_$s.json" \
    --out "$FAB_DIR/warm_$s" >/dev/null
  cmp "$FAB_DIR/cold_$s/EP_time.csv" "$FAB_DIR/offline_$s/EP_time.csv"
  cmp "$FAB_DIR/cold_$s/EP_speedup.csv" "$FAB_DIR/offline_$s/EP_speedup.csv"
  cmp "$FAB_DIR/warm_$s/EP_time.csv" "$FAB_DIR/offline_$s/EP_time.csv"
  cmp "$FAB_DIR/warm_$s/EP_speedup.csv" "$FAB_DIR/offline_$s/EP_speedup.csv"
done
for s in b1 b2 b3 b4; do
  "$CLIENT" --tcp "$PORT_B" --spec "$FAB_DIR/spec_$s.json" \
    --out "$FAB_DIR/fwd_$s" >/dev/null
  cmp "$FAB_DIR/fwd_$s/EP_time.csv" "$FAB_DIR/offline_$s/EP_time.csv"
  cmp "$FAB_DIR/fwd_$s/EP_speedup.csv" "$FAB_DIR/offline_$s/EP_speedup.csv"
done
"$CLIENT" --tcp "$PORT_B" --shutdown >/dev/null
"$CLIENT" --tcp "$PORT_A" --shutdown >/dev/null
wait $FAB_B
wait $FAB_A
metric_positive "$FAB_DIR/metrics_b.csv" "cas.hit"
metric_positive "$FAB_DIR/metrics_b.csv" "serve.forwarded_columns"
echo "fabric OK (cold/warm/forwarded byte-identical, peer read through CAS)"
# Leg 2: skewed load. The victim runs one worker and owns every column
# (it has no peers); the idle thief is peered to it. All eight specs
# land on the victim at once — 24 queued columns, several hundred
# milliseconds of backlog — so the thief's probes find a queue to
# drain, and every stolen column's record rides back over cas.put.
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_v" \
  --workers 1 --metrics-csv "$FAB_DIR/metrics_v.csv" \
  > "$FAB_DIR/v.log" 2>&1 & FAB_V=$!
PORT_V="$(serve_port "$FAB_DIR/v.log")"
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_t" \
  --workers 2 --peer "127.0.0.1:$PORT_V" \
  --metrics-csv "$FAB_DIR/metrics_t.csv" > "$FAB_DIR/t.log" 2>&1 & FAB_T=$!
PORT_T="$(serve_port "$FAB_DIR/t.log")"
"$CLIENT" --tcp "$PORT_V" --wait 15 --ping >/dev/null
"$CLIENT" --tcp "$PORT_T" --wait 15 --ping >/dev/null
STEAL_CLIENTS=""
for s in a1 a2 a3 a4 b1 b2 b3 b4; do
  "$CLIENT" --tcp "$PORT_V" --spec "$FAB_DIR/spec_$s.json" \
    --out "$FAB_DIR/steal_$s" >/dev/null & STEAL_CLIENTS="$STEAL_CLIENTS $!"
done
for pid in $STEAL_CLIENTS; do wait "$pid"; done
for s in a1 a2 a3 a4 b1 b2 b3 b4; do
  cmp "$FAB_DIR/steal_$s/EP_time.csv" "$FAB_DIR/offline_$s/EP_time.csv"
  cmp "$FAB_DIR/steal_$s/EP_speedup.csv" "$FAB_DIR/offline_$s/EP_speedup.csv"
done
"$CLIENT" --tcp "$PORT_T" --shutdown >/dev/null
"$CLIENT" --tcp "$PORT_V" --shutdown >/dev/null
wait $FAB_T
wait $FAB_V
metric_positive "$FAB_DIR/metrics_t.csv" "serve.steal_columns"
metric_positive "$FAB_DIR/metrics_v.csv" "serve.steal_given"
echo "steal OK (idle thief drained the victim, output byte-identical)"
# Leg 3: SIGKILL one broker mid-sweep. All eight specs land cold on
# the survivor (fresh caches), which forwards the peer-owned columns;
# 150ms in — while the backlog is still draining — the peer vanishes
# without a goodbye. The survivor must reclaim whatever it had
# forwarded or lent, re-run it locally, and still answer every
# submission byte-identically.
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_b3" \
  --workers 2 > "$FAB_DIR/b3.log" 2>&1 & FAB_B3=$!
PORT_B3="$(serve_port "$FAB_DIR/b3.log")"
"$ROOT/build/tools/pasim_serve" --tcp 0 --cache "$FAB_DIR/cache_a3" \
  --workers 2 --peer "127.0.0.1:$PORT_B3" \
  > "$FAB_DIR/a3.log" 2>&1 & FAB_A3=$!
PORT_A3="$(serve_port "$FAB_DIR/a3.log")"
"$CLIENT" --tcp "$PORT_A3" --wait 15 --ping >/dev/null
"$CLIENT" --tcp "$PORT_B3" --wait 15 --ping >/dev/null
KILL_CLIENTS=""
for s in a1 a2 a3 a4 b1 b2 b3 b4; do
  "$CLIENT" --tcp "$PORT_A3" --spec "$FAB_DIR/spec_$s.json" \
    --out "$FAB_DIR/kill_$s" >/dev/null & KILL_CLIENTS="$KILL_CLIENTS $!"
done
sleep 0.15
kill -9 "$FAB_B3"
wait "$FAB_B3" 2>/dev/null || true
for pid in $KILL_CLIENTS; do wait "$pid"; done
for s in a1 a2 a3 a4 b1 b2 b3 b4; do
  cmp "$FAB_DIR/kill_$s/EP_time.csv" "$FAB_DIR/offline_$s/EP_time.csv"
  cmp "$FAB_DIR/kill_$s/EP_speedup.csv" "$FAB_DIR/offline_$s/EP_speedup.csv"
done
"$CLIENT" --tcp "$PORT_A3" --shutdown >/dev/null
wait $FAB_A3
echo "kill-one OK (survivor healed, output byte-identical to offline)"

echo "== tier 1: perf baseline =="
# Optimized tree, fresh recording of BENCH_micro_sim.json,
# BENCH_full_report.json and BENCH_resilience_sweep.json, then a schema
# check of all three. Per-benchmark slowdowns are warn-only (machines
# differ), but a *median* slowdown above 25% across the whole suite is
# a hard failure — individual noise cannot trip it, a genuine perf
# regression will.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j "$JOBS" \
  --target micro_sim full_report resilience_sweep serve_throughput
# Keep the committed baselines aside before bench_record.sh overwrites
# them, so the fresh recording can be compared against them.
for f in BENCH_micro_sim.json BENCH_full_report.json \
         BENCH_resilience_sweep.json BENCH_serve_throughput.json; do
  [ -f "$f" ] && cp "$f" "$BASELINE_DIR/"
done
scripts/bench_record.sh build-perf
if command -v python3 >/dev/null; then
  python3 scripts/check_bench_schema.py \
    BENCH_micro_sim.json BENCH_full_report.json \
    BENCH_resilience_sweep.json BENCH_serve_throughput.json
  python3 scripts/check_bench_regression.py \
    --baseline "$BASELINE_DIR" --fresh . --fail-on-regress 25
else
  echo "skipped bench schema + regression checks: python3 not available"
fi

echo "tier 1 OK"
