#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the
# concurrency tests again under ThreadSanitizer (PASIM_SANITIZE=thread,
# separate build-tsan/ tree) and the fault/error-path tests under
# AddressSanitizer (PASIM_SANITIZE=address, build-asan/). Sanitizer
# stages are skipped gracefully on toolchains without the respective
# -fsanitize support.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

have_sanitizer() {
  printf 'int main(){return 0;}' |
    c++ -x c++ "-fsanitize=$1" -o /dev/null - 2>/dev/null
}

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 1: observability artifacts =="
ROOT="$PWD"
OBS_DIR="$(mktemp -d)"
REPLAY_DIR="$(mktemp -d)"
BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR"' EXIT
# One small faulty sweep with everything on: all five artifacts must
# appear, and run_report.json must satisfy the published schema.
(cd "$OBS_DIR" && "$ROOT/build/bench/resilience_sweep" --small \
  --faults 0.05 --no-cache --jobs 2 \
  --trace obs --metrics obs >/dev/null)
for f in run_report.json trace.json power_timeline.csv metrics.csv \
         metrics_volatile.csv; do
  [ -s "$OBS_DIR/obs/$f" ] || { echo "missing obs artifact: $f"; exit 1; }
done
if command -v python3 >/dev/null; then
  python3 scripts/check_report_schema.py "$OBS_DIR/obs/run_report.json"
else
  echo "skipped schema check: python3 not available"
fi
# The disabled configuration is the default everywhere: it must leave
# no artifacts behind (the no-op path really is a no-op).
(mkdir -p "$OBS_DIR/off" && cd "$OBS_DIR/off" && \
  "$ROOT/build/bench/resilience_sweep" --small --faults 0.05 \
  --no-cache --jobs 2 >/dev/null)
if [ -n "$(ls "$OBS_DIR/off")" ]; then
  echo "disabled run left artifacts behind:"; ls "$OBS_DIR/off"; exit 1
fi
echo "observability artifacts OK"

echo "== tier 1: concurrency tests under TSan =="
if have_sanitizer thread; then
  cmake -B build-tsan -S . -DPASIM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target util_test mpi_test analysis_test fault_test obs_test
  ./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
  # Mailbox.* includes the many-senders/interleaved-tags stress test of
  # the bucketed queues and their targeted wakeups.
  ./build-tsan/tests/mpi_test --gtest_filter='Runtime.*:Mailbox.*'
  # The metrics registry is updated lock-free from every worker.
  ./build-tsan/tests/obs_test --gtest_filter='MetricsRegistry.*'
  ./build-tsan/tests/analysis_test \
    --gtest_filter='SweepExecutor.*:MatrixResult.*:RunMatrix.*'
  # The watchdog (monitor + mailbox wakeups) and the fail-soft sweep
  # are the raciest code in the tree: run every fault test under TSan.
  ./build-tsan/tests/fault_test
else
  echo "skipped: this toolchain does not support -fsanitize=thread"
fi

echo "== tier 1: frequency-collapse replay =="
# Grid equivalence of the fast path (DESIGN.md §10) — under TSan when
# available, since column tasks re-price concurrently.
REPLAY_FILTER='Repricer.*:ReplayFastPath.*:LedgerCache.*'
if have_sanitizer thread; then
  ./build-tsan/tests/analysis_test --gtest_filter="$REPLAY_FILTER"
else
  ./build/tests/analysis_test --gtest_filter="$REPLAY_FILTER"
fi
# Cold vs warm ledger: the first run records one ledger per column;
# deleting the .run records forces the second run to re-price every
# point from the persisted ledgers (verified against full simulation
# by --verify-replay). Both outputs must be byte-identical.
./build/bench/fig2_ft_surface --small --jobs 2 \
  --cache "$REPLAY_DIR/cache" --csv "$REPLAY_DIR/cold.csv" \
  > "$REPLAY_DIR/cold.out"
rm -f "$REPLAY_DIR/cache/"*.run
./build/bench/fig2_ft_surface --small --jobs 2 --verify-replay \
  --cache "$REPLAY_DIR/cache" --csv "$REPLAY_DIR/warm.csv" \
  > "$REPLAY_DIR/warm.out"
cmp "$REPLAY_DIR/cold.out" "$REPLAY_DIR/warm.out"
cmp "$REPLAY_DIR/cold.csv" "$REPLAY_DIR/warm.csv"
echo "frequency-collapse replay OK (cold/warm byte-identical)"

echo "== tier 1: batch replay =="
# The batched repricing engine (DESIGN.md §11): lane equivalence under
# TSan when available (one column task prices many lanes at once), then
# a byte-compare of whole sweep artifacts — batched engine vs the
# scalar oracle forced by PASIM_SCALAR_REPRICE=1 — at jobs 8.
BATCH_FILTER='BatchRepricer.*:BatchedSweep.*'
if have_sanitizer thread; then
  ./build-tsan/tests/analysis_test --gtest_filter="$BATCH_FILTER"
else
  ./build/tests/analysis_test --gtest_filter="$BATCH_FILTER"
fi
BATCH_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$REPLAY_DIR" "$BASELINE_DIR" "$BATCH_DIR"' EXIT
./build/bench/fig2_ft_surface --small --jobs 8 --no-cache \
  --csv "$BATCH_DIR/batched.csv" > "$BATCH_DIR/batched.out"
PASIM_SCALAR_REPRICE=1 ./build/bench/fig2_ft_surface --small --jobs 8 \
  --no-cache --csv "$BATCH_DIR/scalar.csv" > "$BATCH_DIR/scalar.out"
cmp "$BATCH_DIR/batched.out" "$BATCH_DIR/scalar.out"
cmp "$BATCH_DIR/batched.csv" "$BATCH_DIR/scalar.csv"
echo "batch replay OK (batched/scalar byte-identical at --jobs 8)"

echo "== tier 1: fault + error paths under ASan =="
if have_sanitizer address; then
  cmake -B build-asan -S . -DPASIM_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" --target fault_test mpi_test
  ./build-asan/tests/fault_test
  # Exception-heavy error paths (invalid requests, collective
  # mismatches) where leaks from unwound ranks would hide.
  ./build-asan/tests/mpi_test \
    --gtest_filter='Collectives.*:Nonblocking.*:Runtime.*'
else
  echo "skipped: this toolchain does not support -fsanitize=address"
fi

echo "== tier 1: perf baseline (record-only) =="
# Optimized tree, fresh recording of BENCH_micro_sim.json and
# BENCH_full_report.json, then a schema check of both. Record-only:
# nothing fails on a slow machine — regressions are judged from the
# committed baselines' diff, not gated here.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j "$JOBS" --target micro_sim full_report
# Keep the committed baselines aside before bench_record.sh overwrites
# them, so the fresh recording can be compared against them.
for f in BENCH_micro_sim.json BENCH_full_report.json; do
  [ -f "$f" ] && cp "$f" "$BASELINE_DIR/"
done
scripts/bench_record.sh build-perf
if command -v python3 >/dev/null; then
  python3 scripts/check_bench_schema.py \
    BENCH_micro_sim.json BENCH_full_report.json
  python3 scripts/check_bench_regression.py \
    --baseline "$BASELINE_DIR" --fresh .
else
  echo "skipped bench schema + regression checks: python3 not available"
fi

echo "tier 1 OK"
