#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the
# concurrency tests again under ThreadSanitizer (PASIM_SANITIZE=thread,
# separate build-tsan/ tree). The TSan stage is skipped gracefully on
# toolchains without -fsanitize=thread support.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 1: concurrency tests under TSan =="
if ! printf 'int main(){return 0;}' |
  c++ -x c++ -fsanitize=thread -o /dev/null - 2>/dev/null; then
  echo "skipped: this toolchain does not support -fsanitize=thread"
  exit 0
fi

cmake -B build-tsan -S . -DPASIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target util_test mpi_test analysis_test
./build-tsan/tests/util_test --gtest_filter='ThreadPool.*'
./build-tsan/tests/mpi_test --gtest_filter='Runtime.*'
./build-tsan/tests/analysis_test \
  --gtest_filter='SweepExecutor.*:MatrixResult.*:RunMatrix.*'

echo "tier 1 OK"
