# Empty compiler generated dependencies file for table2_operating_points.
# This may be replaced when dependencies are built.
