file(REMOVE_RECURSE
  "CMakeFiles/table2_operating_points.dir/table2_operating_points.cpp.o"
  "CMakeFiles/table2_operating_points.dir/table2_operating_points.cpp.o.d"
  "table2_operating_points"
  "table2_operating_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_operating_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
