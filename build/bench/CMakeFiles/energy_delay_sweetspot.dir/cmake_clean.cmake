file(REMOVE_RECURSE
  "CMakeFiles/energy_delay_sweetspot.dir/energy_delay_sweetspot.cpp.o"
  "CMakeFiles/energy_delay_sweetspot.dir/energy_delay_sweetspot.cpp.o.d"
  "energy_delay_sweetspot"
  "energy_delay_sweetspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_delay_sweetspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
