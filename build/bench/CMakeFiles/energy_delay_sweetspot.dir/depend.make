# Empty dependencies file for energy_delay_sweetspot.
# This may be replaced when dependencies are built.
