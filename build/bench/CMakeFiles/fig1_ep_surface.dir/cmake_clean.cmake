file(REMOVE_RECURSE
  "CMakeFiles/fig1_ep_surface.dir/fig1_ep_surface.cpp.o"
  "CMakeFiles/fig1_ep_surface.dir/fig1_ep_surface.cpp.o.d"
  "fig1_ep_surface"
  "fig1_ep_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ep_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
