# Empty dependencies file for table3_ft_sp_errors.
# This may be replaced when dependencies are built.
