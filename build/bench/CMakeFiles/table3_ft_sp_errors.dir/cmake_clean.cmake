file(REMOVE_RECURSE
  "CMakeFiles/table3_ft_sp_errors.dir/table3_ft_sp_errors.cpp.o"
  "CMakeFiles/table3_ft_sp_errors.dir/table3_ft_sp_errors.cpp.o.d"
  "table3_ft_sp_errors"
  "table3_ft_sp_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ft_sp_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
