file(REMOVE_RECURSE
  "CMakeFiles/fig2_ft_surface.dir/fig2_ft_surface.cpp.o"
  "CMakeFiles/fig2_ft_surface.dir/fig2_ft_surface.cpp.o.d"
  "fig2_ft_surface"
  "fig2_ft_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ft_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
