# Empty compiler generated dependencies file for fig2_ft_surface.
# This may be replaced when dependencies are built.
