file(REMOVE_RECURSE
  "CMakeFiles/table7_lu_fp_sp_errors.dir/table7_lu_fp_sp_errors.cpp.o"
  "CMakeFiles/table7_lu_fp_sp_errors.dir/table7_lu_fp_sp_errors.cpp.o.d"
  "table7_lu_fp_sp_errors"
  "table7_lu_fp_sp_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_lu_fp_sp_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
