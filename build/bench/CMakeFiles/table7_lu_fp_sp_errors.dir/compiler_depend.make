# Empty compiler generated dependencies file for table7_lu_fp_sp_errors.
# This may be replaced when dependencies are built.
