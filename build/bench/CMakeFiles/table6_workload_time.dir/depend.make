# Empty dependencies file for table6_workload_time.
# This may be replaced when dependencies are built.
