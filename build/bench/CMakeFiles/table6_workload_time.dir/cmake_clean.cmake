file(REMOVE_RECURSE
  "CMakeFiles/table6_workload_time.dir/table6_workload_time.cpp.o"
  "CMakeFiles/table6_workload_time.dir/table6_workload_time.cpp.o.d"
  "table6_workload_time"
  "table6_workload_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_workload_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
