# Empty dependencies file for dvfs_comm_savings.
# This may be replaced when dependencies are built.
