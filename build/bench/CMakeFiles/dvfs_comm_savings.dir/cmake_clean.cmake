file(REMOVE_RECURSE
  "CMakeFiles/dvfs_comm_savings.dir/dvfs_comm_savings.cpp.o"
  "CMakeFiles/dvfs_comm_savings.dir/dvfs_comm_savings.cpp.o.d"
  "dvfs_comm_savings"
  "dvfs_comm_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_comm_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
