file(REMOVE_RECURSE
  "CMakeFiles/workload_fit_surface.dir/workload_fit_surface.cpp.o"
  "CMakeFiles/workload_fit_surface.dir/workload_fit_surface.cpp.o.d"
  "workload_fit_surface"
  "workload_fit_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fit_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
