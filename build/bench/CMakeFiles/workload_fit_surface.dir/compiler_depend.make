# Empty compiler generated dependencies file for workload_fit_surface.
# This may be replaced when dependencies are built.
