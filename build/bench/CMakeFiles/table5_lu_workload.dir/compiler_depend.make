# Empty compiler generated dependencies file for table5_lu_workload.
# This may be replaced when dependencies are built.
