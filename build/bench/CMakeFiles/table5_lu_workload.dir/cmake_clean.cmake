file(REMOVE_RECURSE
  "CMakeFiles/table5_lu_workload.dir/table5_lu_workload.cpp.o"
  "CMakeFiles/table5_lu_workload.dir/table5_lu_workload.cpp.o.d"
  "table5_lu_workload"
  "table5_lu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_lu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
