# Empty dependencies file for table1_amdahl_errors.
# This may be replaced when dependencies are built.
