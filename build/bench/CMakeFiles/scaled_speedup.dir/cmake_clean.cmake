file(REMOVE_RECURSE
  "CMakeFiles/scaled_speedup.dir/scaled_speedup.cpp.o"
  "CMakeFiles/scaled_speedup.dir/scaled_speedup.cpp.o.d"
  "scaled_speedup"
  "scaled_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaled_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
