# Empty compiler generated dependencies file for scaled_speedup.
# This may be replaced when dependencies are built.
