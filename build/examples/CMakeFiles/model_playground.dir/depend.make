# Empty dependencies file for model_playground.
# This may be replaced when dependencies are built.
