file(REMOVE_RECURSE
  "CMakeFiles/model_playground.dir/model_playground.cpp.o"
  "CMakeFiles/model_playground.dir/model_playground.cpp.o.d"
  "model_playground"
  "model_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
