file(REMOVE_RECURSE
  "libpas_counters.a"
)
