file(REMOVE_RECURSE
  "CMakeFiles/pas_counters.dir/pas/counters/counter_set.cpp.o"
  "CMakeFiles/pas_counters.dir/pas/counters/counter_set.cpp.o.d"
  "CMakeFiles/pas_counters.dir/pas/counters/events.cpp.o"
  "CMakeFiles/pas_counters.dir/pas/counters/events.cpp.o.d"
  "libpas_counters.a"
  "libpas_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pas_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
