# Empty dependencies file for pas_counters.
# This may be replaced when dependencies are built.
