file(REMOVE_RECURSE
  "libpas_tools.a"
)
