# Empty compiler generated dependencies file for pas_tools.
# This may be replaced when dependencies are built.
