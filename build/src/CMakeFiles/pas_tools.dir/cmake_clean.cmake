file(REMOVE_RECURSE
  "CMakeFiles/pas_tools.dir/pas/tools/membench.cpp.o"
  "CMakeFiles/pas_tools.dir/pas/tools/membench.cpp.o.d"
  "CMakeFiles/pas_tools.dir/pas/tools/msgbench.cpp.o"
  "CMakeFiles/pas_tools.dir/pas/tools/msgbench.cpp.o.d"
  "libpas_tools.a"
  "libpas_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pas_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
