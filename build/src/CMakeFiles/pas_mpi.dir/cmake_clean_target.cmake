file(REMOVE_RECURSE
  "libpas_mpi.a"
)
