
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pas/mpi/collectives.cpp" "src/CMakeFiles/pas_mpi.dir/pas/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/pas_mpi.dir/pas/mpi/collectives.cpp.o.d"
  "/root/repo/src/pas/mpi/communicator.cpp" "src/CMakeFiles/pas_mpi.dir/pas/mpi/communicator.cpp.o" "gcc" "src/CMakeFiles/pas_mpi.dir/pas/mpi/communicator.cpp.o.d"
  "/root/repo/src/pas/mpi/mailbox.cpp" "src/CMakeFiles/pas_mpi.dir/pas/mpi/mailbox.cpp.o" "gcc" "src/CMakeFiles/pas_mpi.dir/pas/mpi/mailbox.cpp.o.d"
  "/root/repo/src/pas/mpi/message.cpp" "src/CMakeFiles/pas_mpi.dir/pas/mpi/message.cpp.o" "gcc" "src/CMakeFiles/pas_mpi.dir/pas/mpi/message.cpp.o.d"
  "/root/repo/src/pas/mpi/runtime.cpp" "src/CMakeFiles/pas_mpi.dir/pas/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/pas_mpi.dir/pas/mpi/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
