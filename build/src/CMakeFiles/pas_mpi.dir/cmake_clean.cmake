file(REMOVE_RECURSE
  "CMakeFiles/pas_mpi.dir/pas/mpi/collectives.cpp.o"
  "CMakeFiles/pas_mpi.dir/pas/mpi/collectives.cpp.o.d"
  "CMakeFiles/pas_mpi.dir/pas/mpi/communicator.cpp.o"
  "CMakeFiles/pas_mpi.dir/pas/mpi/communicator.cpp.o.d"
  "CMakeFiles/pas_mpi.dir/pas/mpi/mailbox.cpp.o"
  "CMakeFiles/pas_mpi.dir/pas/mpi/mailbox.cpp.o.d"
  "CMakeFiles/pas_mpi.dir/pas/mpi/message.cpp.o"
  "CMakeFiles/pas_mpi.dir/pas/mpi/message.cpp.o.d"
  "CMakeFiles/pas_mpi.dir/pas/mpi/runtime.cpp.o"
  "CMakeFiles/pas_mpi.dir/pas/mpi/runtime.cpp.o.d"
  "libpas_mpi.a"
  "libpas_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pas_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
