# Empty dependencies file for pas_mpi.
# This may be replaced when dependencies are built.
